"""Mediabench-like applications for the full-program study (Section 4.2).

Importing this package registers six applications in
:data:`repro.apps.common.APPS`: ``mpeg2_encode``, ``mpeg2_decode``,
``jpeg_encode``, ``jpeg_decode`` and ``gsm_encode`` (``gsm_decode`` is
dropped, as in the paper, for its very low vectorization percentage), plus
the frame-scale ``mpeg2_frame`` target -- one full 720x480 frame through
the MPEG-2 encoder, driven by the ``frame-scale`` preset.  ``mpeg2_frame``
is deliberately not part of :data:`APP_ORDER`: Figure 7's grid and its
pinned results stay on the mini-frame workloads.
"""

from .common import APP_ISAS, APPS, AppSpec, BuiltApp, make_stages, psnr
from . import gsm    # noqa: F401  (registration side effect)
from . import jpeg   # noqa: F401
from . import mpeg2  # noqa: F401

#: Application presentation order used by Figure 7.
APP_ORDER = ("jpeg_encode", "jpeg_decode", "gsm_encode",
             "mpeg2_decode", "mpeg2_encode")

__all__ = ["APP_ISAS", "APPS", "APP_ORDER", "AppSpec", "BuiltApp",
           "make_stages", "psnr"]
