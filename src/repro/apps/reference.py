"""Bit-exact numpy reference for every application stage.

The decoder builds need the encoder's side data (motion vectors, quantized
coefficients) before emitting their own traces, and the tests need golden
outputs; both come from these functions, which mirror the fixed-point stage
semantics of :mod:`repro.apps.stages` exactly.
"""

from __future__ import annotations

import numpy as np

from ..kernels.idct import (OUT_MAX, OUT_MIN, PASS1_ROUND, PASS1_SHIFT,
                            PASS2_ROUND, PASS2_SHIFT)
from ..kernels.rgb2ycc import COMPONENTS as RGB2YCC
from .stages import QUANT_SHIFT


def transform8_ref(block: np.ndarray, mat: np.ndarray,
                   clamp: bool) -> np.ndarray:
    """Two-pass fixed-point transform, identical to ``stages.transform8``."""
    x = block.astype(np.int64)
    m = mat.astype(np.int64)
    tmp = np.clip((m @ x + PASS1_ROUND) >> PASS1_SHIFT, -32768, 32767)
    out = np.clip((tmp @ m.T + PASS2_ROUND) >> PASS2_SHIFT, -32768, 32767)
    if clamp:
        out = np.clip(out, OUT_MIN, OUT_MAX)
    return out.astype(np.int16)


def quant_ref(coef: np.ndarray) -> np.ndarray:
    """``q = sign(x) * (|x| >> 4)``."""
    c = coef.astype(np.int64)
    return (np.sign(c) * (np.abs(c) >> QUANT_SHIFT)).astype(np.int16)


def dequant_ref(q: np.ndarray) -> np.ndarray:
    """``x = q << 4``."""
    return (q.astype(np.int64) << QUANT_SHIFT).astype(np.int16)


def sad_ref(a: np.ndarray, c: np.ndarray) -> int:
    return int(np.abs(a.astype(np.int64) - c.astype(np.int64)).sum())


def motion_search_ref(candidates: list[np.ndarray], blk: np.ndarray) -> int:
    """Strictly-less first-minimum, matching the cmov idiom in the stages."""
    best, best_index = 1 << 30, 0
    for index, window in enumerate(candidates):
        sad = sad_ref(window, blk)
        if sad < best:
            best, best_index = sad, index
    return best_index


def residual_ref(cur: np.ndarray, pred: np.ndarray) -> np.ndarray:
    return (cur.astype(np.int64) - pred.astype(np.int64)).astype(np.int16)


def addblock_ref(pred: np.ndarray, resid: np.ndarray) -> np.ndarray:
    return np.clip(
        pred.astype(np.int64) + resid.astype(np.int64), 0, 255
    ).astype(np.uint8)


def avg_ref(a: np.ndarray, c: np.ndarray) -> np.ndarray:
    return ((a.astype(np.int64) + c.astype(np.int64) + 1) >> 1).astype(np.uint8)


def rgb2ycc_ref(r: np.ndarray, g: np.ndarray, b: np.ndarray):
    """Returns (y, cb, cr) uint8 planes."""
    planes = []
    r64, g64, b64 = (p.astype(np.int64) for p in (r, g, b))
    for _name, kr, kg, kb, bias in RGB2YCC:
        value = ((kr * r64 + kg * g64 + kb * b64 + 128) >> 8) + bias
        planes.append(value.astype(np.uint8))
    return tuple(planes)


def ycc2rgb_ref(y: np.ndarray, cb: np.ndarray, cr: np.ndarray):
    """Returns (r, g, b) uint8 planes, clamped like ``packushb``."""
    y64 = y.astype(np.int64)
    cbd = cb.astype(np.int64) - 128
    crd = cr.astype(np.int64) - 128
    r = y64 + ((179 * crd + 64) >> 7)
    g = y64 + ((-44 * cbd - 91 * crd + 64) >> 7)
    b = y64 + ((227 * cbd + 64) >> 7)
    return tuple(np.clip(p, 0, 255).astype(np.uint8) for p in (r, g, b))


def downsample2_ref(plane: np.ndarray) -> np.ndarray:
    """Point-sampled 2:1 decimation."""
    return plane[0::2, 0::2].copy()


def upsample2_ref(plane: np.ndarray) -> np.ndarray:
    """2x2 replication."""
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)


def dot16_ref(a: np.ndarray, c: np.ndarray) -> int:
    return int((a.astype(np.int64) * c.astype(np.int64)).sum())
