"""Synthetic workload generators standing in for the Mediabench inputs.

The paper uses ``mei16v2rec`` (four 352x480 frames), ``penguin.ppm``
(1024x739) and ``clinton.pcm``.  Those files are not redistributable here,
so we synthesize structurally-similar data at simulator-friendly sizes:

* video: frames containing textured moving objects over a gradient
  background, so motion estimation finds genuine matches at non-zero
  displacements;
* image: smooth colour gradients with structured detail, giving realistic
  DCT energy compaction (most post-quantization blocks sparse but nonzero);
* audio: band-limited speech-like 13-bit PCM with pitch periodicity inside
  the GSM LTP lag range, so the lag search has a real peak to find.
"""

from __future__ import annotations

import numpy as np

from ..kernels.common import rng_for


def video_frames(width: int = 32, height: int = 32, count: int = 2,
                 scale: int = 1) -> np.ndarray:
    """``count`` uint8 frames with a moving textured square."""
    rng = rng_for("video", scale)
    yy, xx = np.mgrid[0:height, 0:width]
    background = ((xx * 3 + yy * 5) % 197).astype(np.int32)
    texture = rng.integers(0, 64, (12, 12), dtype=np.int32)
    frames = []
    for t in range(count):
        frame = background + rng.integers(0, 4, background.shape)
        ox = (4 + 2 * t) % (width - 12)
        oy = (6 + t) % (height - 12)
        frame[oy : oy + 12, ox : ox + 12] = 120 + texture
        frames.append(np.clip(frame, 0, 255).astype(np.uint8))
    return np.stack(frames)


def rgb_image(width: int = 32, height: int = 32, scale: int = 1):
    """Planar RGB test image (returns r, g, b uint8 planes)."""
    rng = rng_for("image", scale)
    yy, xx = np.mgrid[0:height, 0:width]
    r = (xx * 255 // max(1, width - 1)).astype(np.int32)
    g = (yy * 255 // max(1, height - 1)).astype(np.int32)
    b = ((xx + yy) * 127 // max(1, width + height - 2)).astype(np.int32)
    detail = rng.integers(-24, 25, (height, width))
    planes = []
    for plane in (r, g, b):
        planes.append(np.clip(plane + detail, 0, 255).astype(np.uint8))
    return planes[0], planes[1], planes[2]


def pcm_audio(frames: int = 2, scale: int = 1) -> np.ndarray:
    """Speech-like 13-bit PCM: pitched harmonics + noise, int16."""
    rng = rng_for("audio", scale)
    n = frames * 160
    t = np.arange(n)
    pitch_period = 55                      # inside the GSM lag range 40..120
    signal = (
        1200 * np.sin(2 * np.pi * t / pitch_period)
        + 500 * np.sin(2 * np.pi * t / (pitch_period / 2.0) + 0.7)
        + 200 * np.sin(2 * np.pi * t / 7.3)
    )
    envelope = 0.5 + 0.5 * np.sin(2 * np.pi * t / (n / 2.0)) ** 2
    noisy = signal * envelope + rng.normal(0, 60, n)
    return np.clip(noisy, -4096, 4095).astype(np.int16)
