"""Per-ISA stage emitters composed by the application pipelines.

The paper's methodology rewrites the hot functions of each Mediabench
program against the emulation libraries and leaves the rest scalar.  These
classes are those rewritten functions: every method emits instructions into
the application's builder *and* performs the computation functionally, so
application outputs can be validated end-to-end.

Three implementations exist -- :class:`ScalarStages` (plain Alpha),
:class:`MmxStages` and :class:`MomStages` -- matching the three full-program
configurations of Figure 7 (the paper omits MDMX there, "as MDMX exhibits
similar behavior to MMX").  All three produce bit-identical data for every
stage, which the application tests assert.

Fixed-point stage definitions (mirrored by the numpy reference in
:mod:`repro.apps.reference`):

* ``transform8`` -- the same two-pass 14-bit transform as the idct kernel,
  parameterized by the constant matrix (IDCT uses ``M``, FDCT uses ``M.T``).
* ``quant8`` -- ``q = sign(x) * (|x| >> 4)`` (quality step 16).
* ``dequant8`` -- ``x = q << 4``.
* ``rgb2ycc`` / ``ycc2rgb`` -- the 8-bit integer conversions documented in
  the kernel and in :data:`YCC2RGB` below.
"""

from __future__ import annotations

import numpy as np

from ..emulib.alpha_builder import emit_abs_diff
from ..emulib.scalar_section import SectionProfile, emit_scalar_section
from ..kernels.idct import (N, OUT_MAX, OUT_MIN, PASS1_ROUND, PASS1_SHIFT,
                            PASS2_ROUND, PASS2_SHIFT, idct_matrix)
from ..kernels.rgb2ycc import COMPONENTS as RGB2YCC

#: ycc2rgb integer coefficients: value = clamp(Y + (sum + 64) >> 7).
#: (name, cY, cCb, cCr) with Cb/Cr pre-biased by -128.
YCC2RGB = (
    ("r", 179),          # R = Y + (179 * (Cr - 128) + 64) >> 7
    ("g", (-44, -91)),   # G = Y + (-44*(Cb-128) - 91*(Cr-128) + 64) >> 7
    ("b", 227),          # B = Y + (227 * (Cb - 128) + 64) >> 7
)

IDCT_MAT = idct_matrix()
FDCT_MAT = IDCT_MAT.T.copy()

BLOCK16 = 16
QUANT_SHIFT = 4


class ScalarStages:
    """Stage emitters for the pure-Alpha configuration."""

    isa = "alpha"

    def __init__(self, b) -> None:
        self.b = b
        # Persistent scalar working registers shared by all stages.
        self.z = b.ireg(0)
        self.r = [b.ireg() for _ in range(10)]
        self._scratch8 = b.mem.alloc(N * N * 2)

    # --- generic helpers -----------------------------------------------------

    def scalar_section(self, profile: SectionProfile, seed: int = 1) -> None:
        emit_scalar_section(self.b, profile, seed)

    # --- motion estimation -----------------------------------------------------

    def sad16(self, ref_addr: int, ref_stride: int, blk_addr: int,
              blk_stride: int, out):
        """SAD of one 16x16 block pair into integer register ``out``."""
        b = self.b
        pa, pb, va, vb, d, scr, rows = self.r[:7]
        site = b.site()
        b.li(pa, ref_addr)
        b.li(pb, blk_addr)
        b.li(out, 0)
        b.li(rows, BLOCK16)
        for _row in range(BLOCK16):
            for i in range(BLOCK16):
                b.ldbu(va, pa, i)
                b.ldbu(vb, pb, i)
                emit_abs_diff(b, d, va, vb, scr)
                b.addq(out, out, d)
            b.addi(pa, pa, ref_stride)
            b.addi(pb, pb, blk_stride)
            b.subi(rows, rows, 1)
            b.bne(rows, site)
        return out

    def motion_search(self, candidates: list[int], ref_stride: int,
                      blk_addr: int, blk_stride: int) -> int:
        """SADs over candidate addresses; returns the best index."""
        b = self.b
        s, best, besti, tmp, cand = (self.r[7], b.ireg(1 << 30), b.ireg(0),
                                     self.r[8], self.r[9])
        for index, addr in enumerate(candidates):
            self.sad16(addr, ref_stride, blk_addr, blk_stride, s)
            b.li(cand, index)
            b.cmplt(tmp, s, best)
            b.cmovne(best, tmp, s)
            b.cmovne(besti, tmp, cand)
        winner = int(besti.value)
        b.free(best)
        b.free(besti)
        return winner

    # --- block movement ----------------------------------------------------------

    def copy_block(self, src: int, sstride: int, dst: int, dstride: int,
                   h: int, w: int) -> None:
        b = self.b
        ps, pd, v = self.r[:3]
        b.li(ps, src)
        b.li(pd, dst)
        site = b.site()
        rows = self.r[3]
        b.li(rows, h)
        for _ in range(h):
            for x in range(0, w, 8):
                b.ldq(v, ps, x)
                b.stq(v, pd, x)
            b.addi(ps, ps, sstride)
            b.addi(pd, pd, dstride)
            b.subi(rows, rows, 1)
            b.bne(rows, site)

    def avg_block(self, a: int, astride: int, c: int, cstride: int,
                  dst: int, dstride: int, h: int, w: int) -> None:
        """dst = (a + c + 1) >> 1 per pixel (motion compensation)."""
        b = self.b
        pa, pc, pd, va, vc, rows = self.r[:6]
        b.li(pa, a)
        b.li(pc, c)
        b.li(pd, dst)
        b.li(rows, h)
        site = b.site()
        for _ in range(h):
            for x in range(w):
                b.ldbu(va, pa, x)
                b.ldbu(vc, pc, x)
                b.addq(va, va, vc)
                b.addi(va, va, 1)
                b.srl(va, va, 1)
                b.stb(va, pd, x)
            b.addi(pa, pa, astride)
            b.addi(pc, pc, cstride)
            b.addi(pd, pd, dstride)
            b.subi(rows, rows, 1)
            b.bne(rows, site)

    # --- residual / reconstruction ----------------------------------------------------

    def residual8(self, cur: int, cstride: int, pred: int, pstride: int,
                  dst: int) -> None:
        """dst (int16 8x8, contiguous) = cur - pred."""
        b = self.b
        pc, pp, pd, vc, vp, rows = self.r[:6]
        b.li(pc, cur)
        b.li(pp, pred)
        b.li(pd, dst)
        b.li(rows, N)
        site = b.site()
        for _ in range(N):
            for x in range(N):
                b.ldbu(vc, pc, x)
                b.ldbu(vp, pp, x)
                b.subq(vc, vc, vp)
                b.stw(vc, pd, 2 * x)
            b.addi(pc, pc, cstride)
            b.addi(pp, pp, pstride)
            b.addi(pd, pd, 2 * N)
            b.subi(rows, rows, 1)
            b.bne(rows, site)

    def addblock8(self, pred: int, pstride: int, resid: int, dst: int,
                  dstride: int) -> None:
        """dst = clamp(pred + resid) via the mpeg2play memory table."""
        b = self.b
        if not hasattr(self, "_clamp_tab"):
            table = np.clip(np.arange(767) - 256, 0, 255).astype(np.uint8)
            self._clamp_tab = b.mem.alloc_array(table) + 256
        pp, pr, pd, vp, vr, idx, rows = self.r[:7]
        tab = self.r[7]
        b.li(tab, self._clamp_tab)
        b.li(pp, pred)
        b.li(pr, resid)
        b.li(pd, dst)
        b.li(rows, N)
        site = b.site()
        for _ in range(N):
            for x in range(N):
                b.ldbu(vp, pp, x)
                b.ldwu(vr, pr, 2 * x)
                b.sextw(vr, vr)
                b.addq(vp, vp, vr)
                b.addq(idx, tab, vp)
                b.ldbu(vp, idx, 0)
                b.stb(vp, pd, x)
            b.addi(pp, pp, pstride)
            b.addi(pr, pr, 2 * N)
            b.addi(pd, pd, dstride)
            b.subi(rows, rows, 1)
            b.bne(rows, site)

    # --- transforms ----------------------------------------------------------------------

    def transform8(self, src: int, dst: int, mat: np.ndarray,
                   clamp: bool) -> None:
        """Two-pass fixed-point 8x8 transform (IDCT with ``mat=IDCT_MAT``,
        FDCT with ``mat=FDCT_MAT``)."""
        b = self.b
        v, c, prod, s, psrc, pdst, t = self.r[:7]
        lo, hi = self.r[7], self.r[8]
        b.li(lo, OUT_MIN)
        b.li(hi, OUT_MAX)
        site = b.site()

        def one_pass(sbase, dbase, rnd, shift, column, do_clamp):
            cnt = 0
            for xo in range(N):
                for yo in range(N):
                    b.li(s, rnd)
                    for u in range(N):
                        off = (u * N + yo) if column else (yo * N + u)
                        b.li(psrc, sbase + 2 * off)
                        b.ldwu(v, psrc, 0)
                        b.sextw(v, v)
                        b.li(c, int(mat[xo][u]))
                        b.mulq(prod, v, c)
                        b.addq(s, s, prod)
                    b.sra(s, s, shift)
                    if do_clamp:
                        b.cmplt(t, s, lo)
                        b.cmovne(s, t, lo)
                        b.cmplt(t, hi, s)
                        b.cmovne(s, t, hi)
                    off = (xo * N + yo) if column else (yo * N + xo)
                    b.li(pdst, dbase + 2 * off)
                    b.stw(s, pdst, 0)
                    cnt += 1
                    if cnt % 8 == 0:
                        b.li(t, 1 if cnt == 64 else 0)
                        b.beq(t, site)

        one_pass(src, self._scratch8, PASS1_ROUND, PASS1_SHIFT, True, False)
        one_pass(self._scratch8, dst, PASS2_ROUND, PASS2_SHIFT, False, clamp)

    # --- quantization -----------------------------------------------------------------------

    def quant8(self, addr: int) -> None:
        """In-place ``q = sign(x) * (|x| >> 4)`` over 64 int16 coefficients."""
        b = self.b
        p, v, neg, sign, cnt = self.r[:5]
        b.li(p, addr)
        b.li(cnt, N)
        site = b.site()
        for row in range(N):
            for x in range(N):
                b.ldwu(v, p, 2 * x)
                b.sextw(v, v)
                b.mov(sign, v)
                b.subq(neg, self.z, v)
                b.cmovlt(v, v, neg)            # v = |x|
                b.srl(v, v, QUANT_SHIFT)
                b.subq(neg, self.z, v)
                b.cmovlt(v, sign, neg)         # restore sign
                b.stw(v, p, 2 * x)
            b.addi(p, p, 2 * N)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)

    def dequant8(self, addr: int) -> None:
        """In-place ``x = q << 4``."""
        b = self.b
        p, v, cnt = self.r[:3]
        b.li(p, addr)
        b.li(cnt, N)
        site = b.site()
        for row in range(N):
            for x in range(N):
                b.ldwu(v, p, 2 * x)
                b.sextw(v, v)
                b.sll(v, v, QUANT_SHIFT)
                b.stw(v, p, 2 * x)
            b.addi(p, p, 2 * N)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)

    # --- colour conversion -----------------------------------------------------------------------

    def rgb2ycc(self, r: int, g: int, bb: int, y: int, cb: int, cr: int,
                n: int) -> None:
        b = self.b
        vr, vg, vb, c, prod, s, cnt = self.r[:7]
        outs = {"y": y, "cb": cb, "cr": cr}
        pr, pg, pb = b.ireg(r), b.ireg(g), b.ireg(bb)
        site = b.site()
        b.li(cnt, n // 4)
        for i in range(n):
            b.ldbu(vr, pr, i)
            b.ldbu(vg, pg, i)
            b.ldbu(vb, pb, i)
            for name, kr, kg, kb, bias in RGB2YCC:
                b.li(c, kr)
                b.mulq(s, vr, c)
                b.li(c, kg)
                b.mulq(prod, vg, c)
                b.addq(s, s, prod)
                b.li(c, kb)
                b.mulq(prod, vb, c)
                b.addq(s, s, prod)
                b.addi(s, s, 128)
                b.sra(s, s, 8)
                if bias:
                    b.addi(s, s, bias)
                po = self.r[8]
                b.li(po, outs[name] + i)
                b.stb(s, po, 0)
            if i % 4 == 3:
                b.subi(cnt, cnt, 1)
                b.bne(cnt, site)
        for reg in (pr, pg, pb):
            b.free(reg)

    def ycc2rgb(self, y: int, cb: int, cr: int, r: int, g: int, bb: int,
                n: int) -> None:
        b = self.b
        vy, vcb, vcr, c, prod, s, t, cnt = self.r[:8]
        site = b.site()
        py, pcb, pcr = b.ireg(y), b.ireg(cb), b.ireg(cr)
        pout = self.r[8]
        b.li(cnt, n // 4)
        for i in range(n):
            b.ldbu(vy, py, i)
            b.ldbu(vcb, pcb, i)
            b.ldbu(vcr, pcr, i)
            b.addi(vcb, vcb, -128)
            b.addi(vcr, vcr, -128)
            for name, dst in (("r", r), ("g", g), ("b", bb)):
                if name == "r":
                    b.li(c, 179)
                    b.mulq(s, vcr, c)
                elif name == "b":
                    b.li(c, 227)
                    b.mulq(s, vcb, c)
                else:
                    b.li(c, -44)
                    b.mulq(s, vcb, c)
                    b.li(c, -91)
                    b.mulq(prod, vcr, c)
                    b.addq(s, s, prod)
                b.addi(s, s, 64)
                b.sra(s, s, 7)
                b.addq(s, s, vy)
                b.cmovlt(s, s, self.z)                 # clamp low
                b.li(t, 255)
                b.cmplt(prod, t, s)
                b.cmovne(s, prod, t)                   # clamp high
                b.li(pout, dst + i)
                b.stb(s, pout, 0)
            if i % 4 == 3:
                b.subi(cnt, cnt, 1)
                b.bne(cnt, site)
        for reg in (py, pcb, pcr):
            b.free(reg)

    # --- resampling -------------------------------------------------------------------------------

    def downsample2(self, src: int, w: int, h: int, dst: int) -> None:
        """Point-sampled 2:1 decimation in both axes (4:2:0 chroma)."""
        b = self.b
        ps, pd, v, cnt = self.r[:4]
        site = b.site()
        b.li(cnt, h // 2)
        for y in range(0, h, 2):
            b.li(ps, src + y * w)
            b.li(pd, dst + (y // 2) * (w // 2))
            for x in range(0, w, 2):
                b.ldbu(v, ps, x)
                b.stb(v, pd, x // 2)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)

    def upsample2(self, src: int, w: int, h: int, dst: int) -> None:
        """2x2 pixel replication (the h2v2 kernel's job)."""
        b = self.b
        pi, po0, po1, v, cnt = self.r[:5]
        ow = 2 * w
        site = b.site()
        b.li(cnt, h)
        for y in range(h):
            b.li(pi, src + y * w)
            b.li(po0, dst + (2 * y) * ow)
            b.li(po1, dst + (2 * y + 1) * ow)
            for x in range(w):
                b.ldbu(v, pi, x)
                b.stb(v, po0, 2 * x)
                b.stb(v, po0, 2 * x + 1)
                b.stb(v, po1, 2 * x)
                b.stb(v, po1, 2 * x + 1)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)

    # --- dot products (GSM) -----------------------------------------------------------------------------

    def dot16(self, a: int, c: int, n: int, out) -> None:
        """out = sum of products of two int16 vectors of length ``n``."""
        b = self.b
        pa, pc, va, vc, prod, cnt = self.r[:6]
        b.li(pa, a)
        b.li(pc, c)
        b.li(out, 0)
        b.li(cnt, n // 4)
        site = b.site()
        for k in range(n):
            b.ldwu(va, pa, 2 * k)
            b.sextw(va, va)
            b.ldwu(vc, pc, 2 * k)
            b.sextw(vc, vc)
            b.mulq(prod, va, vc)
            b.addq(out, out, prod)
            if k % 4 == 3:
                b.subi(cnt, cnt, 1)
                b.bne(cnt, site)
