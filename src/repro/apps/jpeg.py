"""jpeg encode / jpeg decode application pipelines.

A baseline-JPEG-like still-image codec over the synthetic RGB workload:
colour conversion (the rgb2ycc kernel), 4:2:0 chroma decimation, 8x8 FDCT
with level shift, quantization, and a Huffman stage whose exact operation
counts drive the synthesized scalar section; the decoder inverts every step
and finishes with the h2v2 upsample kernel and the ycc2rgb conversion.

Correctness contract: all ISA configurations produce bit-identical planes,
and the decoded image round-trips within a PSNR bound of the original.
"""

from __future__ import annotations

import numpy as np

from ..emulib.scalar_section import SectionProfile
from .common import AppSpec, BuiltApp, PhaseTimer, make_stages, register
from .reference import (addblock_ref, dequant_ref, downsample2_ref,
                        quant_ref, rgb2ycc_ref, transform8_ref,
                        upsample2_ref, ycc2rgb_ref)
from .stages import FDCT_MAT, IDCT_MAT
from .workloads import rgb_image

WIDTH = 32
HEIGHT = 32
N = 8
PIXELS = WIDTH * HEIGHT


def _plane_blocks(width: int, height: int):
    for by in range(0, height, N):
        for bx in range(0, width, N):
            yield by, bx


def _huffman_profile(coded_blocks: list[np.ndarray]) -> SectionProfile:
    """Exact operation counts for baseline Huffman coding."""
    profile = SectionProfile(name="scalar_huffman", footprint=4096)
    for coefs in coded_blocks:
        flat = coefs.reshape(-1)
        nz = int(np.count_nonzero(flat))
        profile.alu += 2 * flat.size
        profile.loads += flat.size // 4 + 3 * nz
        profile.alu += 8 * nz
        profile.stores += nz // 2 + 2
        profile.data_branches += 3 * nz
        profile.loop_branches += flat.size // 8
    return profile


def _functional_encode(r, g, b):
    """Side data: quantized coefficient blocks for Y, Cb, Cr planes."""
    y, cb, cr = rgb2ycc_ref(r, g, b)
    cb_s, cr_s = downsample2_ref(cb), downsample2_ref(cr)
    plane_blocks = []
    for plane in (y, cb_s, cr_s):
        h, w = plane.shape
        blocks = []
        for by, bx in _plane_blocks(w, h):
            centered = plane[by : by + N, bx : bx + N].astype(np.int64) - 128
            coef = quant_ref(transform8_ref(centered.astype(np.int16),
                                            FDCT_MAT, False))
            blocks.append(coef)
        plane_blocks.append(blocks)
    return (y, cb_s, cr_s), plane_blocks


def _functional_decode(plane_blocks):
    """Reference decode of the quantized planes back to RGB."""
    shapes = ((HEIGHT, WIDTH), (HEIGHT // 2, WIDTH // 2),
              (HEIGHT // 2, WIDTH // 2))
    planes = []
    for blocks, (h, w) in zip(plane_blocks, shapes):
        plane = np.zeros((h, w), dtype=np.uint8)
        for (by, bx), coef in zip(_plane_blocks(w, h), blocks):
            resid = transform8_ref(dequant_ref(coef), IDCT_MAT, True)
            pred = np.full((N, N), 128, dtype=np.uint8)
            plane[by : by + N, bx : bx + N] = addblock_ref(pred, resid)
        planes.append(plane)
    y, cb_s, cr_s = planes
    cb, cr = upsample2_ref(cb_s), upsample2_ref(cr_s)
    return ycc2rgb_ref(y, cb, cr)


def build_jpeg_encode(isa: str, scale: int = 1) -> BuiltApp:
    r, g, bb = rgb_image(WIDTH, HEIGHT, scale=scale)
    b, st = make_stages(isa)
    timer = PhaseTimer(b)

    # Contiguous planar layout (required by the MOM VL=3 colour stage).
    rgb_addr = b.mem.alloc(3 * PIXELS)
    b.mem.store_array(rgb_addr, np.concatenate([p.reshape(-1) for p in (r, g, bb)]))
    ycc_addr = b.mem.alloc(3 * PIXELS)
    y_addr, cb_addr, cr_addr = (ycc_addr, ycc_addr + PIXELS,
                                ycc_addr + 2 * PIXELS)
    cbs_addr = b.mem.alloc(PIXELS // 4)
    crs_addr = b.mem.alloc(PIXELS // 4)
    block_addr = b.mem.alloc(N * N * 2)
    coef_addr = b.mem.alloc(N * N * 2)
    pred128_addr = b.mem.alloc_array(np.full(N * N, 128, dtype=np.uint8))

    st.rgb2ycc(rgb_addr, rgb_addr + PIXELS, rgb_addr + 2 * PIXELS,
               y_addr, cb_addr, cr_addr, PIXELS)
    timer.close("rgb2ycc")
    st.downsample2(cb_addr, WIDTH, HEIGHT, cbs_addr)
    st.downsample2(cr_addr, WIDTH, HEIGHT, crs_addr)
    timer.close("downsample")

    plane_specs = (
        (y_addr, WIDTH, HEIGHT), (cbs_addr, WIDTH // 2, HEIGHT // 2),
        (crs_addr, WIDTH // 2, HEIGHT // 2),
    )
    coded: list[np.ndarray] = []
    coefs_out = []
    for base, w, h in plane_specs:
        for by, bx in _plane_blocks(w, h):
            sub = base + by * w + bx
            st.residual8(sub, w, pred128_addr, N, block_addr)
            timer.close("level_shift")
            st.transform8(block_addr, coef_addr, FDCT_MAT, False)
            timer.close("fdct")
            st.quant8(coef_addr)
            timer.close("quant")
            coefs = b.mem.load_array(coef_addr, np.int16, N * N).reshape(N, N)
            coded.append(coefs.copy())
            coefs_out.append(coefs.copy())
    st.scalar_section(_huffman_profile(coded), seed=0x7E)
    timer.close("scalar_huffman")

    outputs = {
        "y": b.mem.load_array(y_addr, np.uint8, PIXELS).reshape(HEIGHT, WIDTH),
        "coefs": np.stack(coefs_out),
    }
    return BuiltApp(builder=b, outputs=outputs, phases=timer.phases)


def build_jpeg_decode(isa: str, scale: int = 1) -> BuiltApp:
    r, g, bb = rgb_image(WIDTH, HEIGHT, scale=scale)
    _planes, plane_blocks = _functional_encode(r, g, bb)
    golden_rgb = _functional_decode(plane_blocks)
    b, st = make_stages(isa)
    timer = PhaseTimer(b)

    y_addr = b.mem.alloc(PIXELS)
    cbs_addr = b.mem.alloc(PIXELS // 4)
    crs_addr = b.mem.alloc(PIXELS // 4)
    cb_addr = b.mem.alloc(PIXELS)
    cr_addr = b.mem.alloc(PIXELS)
    out_r = b.mem.alloc(PIXELS)
    out_g = b.mem.alloc(PIXELS)
    out_b = b.mem.alloc(PIXELS)
    coef_addr = b.mem.alloc(N * N * 2)
    rec_addr = b.mem.alloc(N * N * 2)
    pred128_addr = b.mem.alloc_array(np.full(N * N, 128, dtype=np.uint8))

    all_coded = [blk for blocks in plane_blocks for blk in blocks]
    st.scalar_section(_huffman_profile(all_coded), seed=0x7D)
    timer.close("scalar_parse")

    plane_specs = (
        (y_addr, WIDTH, HEIGHT), (cbs_addr, WIDTH // 2, HEIGHT // 2),
        (crs_addr, WIDTH // 2, HEIGHT // 2),
    )
    for (base, w, h), blocks in zip(plane_specs, plane_blocks):
        for (by, bx), coef in zip(_plane_blocks(w, h), blocks):
            b.mem.store_array(coef_addr, coef.astype(np.int16))
            st.dequant8(coef_addr)
            timer.close("dequant")
            st.transform8(coef_addr, rec_addr, IDCT_MAT, True)
            timer.close("idct")
            st.addblock8(pred128_addr, N, rec_addr, base + by * w + bx, w)
            timer.close("level_unshift")
    st.upsample2(cbs_addr, WIDTH // 2, HEIGHT // 2, cb_addr)
    st.upsample2(crs_addr, WIDTH // 2, HEIGHT // 2, cr_addr)
    timer.close("upsample")
    st.ycc2rgb(y_addr, cb_addr, cr_addr, out_r, out_g, out_b, PIXELS)
    timer.close("ycc2rgb")

    decoded = np.stack([
        b.mem.load_array(a, np.uint8, PIXELS).reshape(HEIGHT, WIDTH)
        for a in (out_r, out_g, out_b)
    ])
    outputs = {"decoded": decoded, "golden": np.stack(golden_rgb)}
    return BuiltApp(builder=b, outputs=outputs, phases=timer.phases)


register(AppSpec(
    name="jpeg_encode",
    description="Baseline-JPEG encoder (rgb2ycc, 4:2:0, FDCT, Huffman)",
    build=build_jpeg_encode,
))

register(AppSpec(
    name="jpeg_decode",
    description="Baseline-JPEG decoder (IDCT, upsample, ycc2rgb)",
    build=build_jpeg_decode,
))
