"""Application framework for the full-program study (Section 4.2).

An application build produces one dynamic trace for a chosen ISA
configuration -- ``alpha`` (everything scalar), ``mmx`` or ``mom``
(hand-vectorized hot functions + the same scalar remainder).  The paper
drops MDMX from this study ("as MDMX exhibits similar behavior to MMX");
so do we.

Every build also records *phase markers* (trace offsets at phase
boundaries), from which the vectorizable fraction reported in
EXPERIMENTS.md is computed, and returns its functional outputs so tests can
assert bit-exact agreement across ISA configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from .stages import ScalarStages
from .stages_media import MmxStages, MomStages

#: ISA configurations evaluated at application level (Figure 7).
APP_ISAS = ("alpha", "mmx", "mom")

_BUILDERS = {
    "alpha": (AlphaBuilder, ScalarStages),
    "mmx": (MmxBuilder, MmxStages),
    "mom": (MomBuilder, MomStages),
}


def make_stages(isa: str):
    """Instantiate (builder, stages) for an application ISA configuration."""
    if isa not in _BUILDERS:
        raise ValueError(f"unknown app ISA {isa!r}; pick from {APP_ISAS}")
    builder_cls, stages_cls = _BUILDERS[isa]
    builder = builder_cls()
    return builder, stages_cls(builder)


@dataclass
class BuiltApp:
    """One functionally-executed application run ready for timing."""

    builder: object
    outputs: dict[str, np.ndarray]
    phases: dict[str, int] = field(default_factory=dict)

    @property
    def trace(self):
        return self.builder.trace

    def vector_fraction(self) -> float:
        """Fraction of dynamic instructions inside vectorizable phases."""
        vec = sum(n for name, n in self.phases.items()
                  if not name.startswith("scalar_"))
        total = len(self.trace)
        return vec / total if total else 0.0


class PhaseTimer:
    """Records how many instructions each pipeline phase emitted."""

    def __init__(self, builder) -> None:
        self.builder = builder
        self.phases: dict[str, int] = {}
        self._mark = 0

    def close(self, name: str) -> None:
        now = len(self.builder.trace)
        self.phases[name] = self.phases.get(name, 0) + (now - self._mark)
        self._mark = now


@dataclass(frozen=True)
class AppSpec:
    """Registry entry for one Mediabench-like application."""

    name: str
    description: str
    build: Callable[[str, int], BuiltApp]    # (isa, scale) -> BuiltApp


APPS: dict[str, AppSpec] = {}


def register(spec: AppSpec) -> AppSpec:
    if spec.name in APPS:
        raise ValueError(f"application {spec.name!r} registered twice")
    APPS[spec.name] = spec
    return spec


def psnr(a: np.ndarray, c: np.ndarray) -> float:
    """Peak signal-to-noise ratio between two 8-bit images/signals."""
    diff = a.astype(np.float64) - c.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)
