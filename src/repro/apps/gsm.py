"""gsm encode application pipeline.

A GSM-06.10-flavoured speech encoder over synthetic PCM: per 160-sample
frame it computes the LPC autocorrelation (vectorizable dot products), runs
a Schur-style recursion (synthesized scalar, calibrated), short-term
filters the frame through an order-2 fixed-point lattice (an inherently
serial recurrence -- synthesized from exact counts, data materialized from
the reference computation), then for each 40-sample subframe searches the
long-term-predictor lag by cross-correlation (the ltpparameters kernel) and
quantizes the residual grid (synthesized).

``gsm decode`` is omitted exactly as in the paper: "gsm decode had a very
low vectorization percentage and therefore was dropped from this study."

Correctness contract: autocorrelations and chosen lags are bit-identical
across ISA configurations.
"""

from __future__ import annotations

import numpy as np

from ..emulib.scalar_section import SectionProfile
from .common import AppSpec, BuiltApp, PhaseTimer, make_stages, register
from .workloads import pcm_audio

FRAME = 160
SUBFRAME = 40
ACF_LAGS = 9
LTP_MIN, LTP_MAX = 40, 120
#: Scaled-down LTP search range (the full 81 lags at --scale 3+).
LAGS_PER_SCALE = 16


def _lpc_coeffs(acf: list[int]) -> tuple[int, int]:
    """Order-2 LPC analysis (Levinson-Durbin), Q12 fixed point."""
    if acf[0] == 0:
        return 0, 0
    r0, r1, r2 = float(acf[0]), float(acf[1]), float(acf[2])
    k1 = r1 / r0
    e = r0 * (1 - k1 * k1)
    k2 = (r2 - k1 * r1) / e if e else 0.0
    a1 = k1 - k1 * k2
    a2 = k2
    q = 1 << 12
    return int(np.clip(round(a1 * q), -q, q - 1)), \
        int(np.clip(round(a2 * q), -q, q - 1))


def _stp_filter(samples: np.ndarray, a1: int, a2: int) -> np.ndarray:
    """Short-term analysis filter: d[i] = s[i] - (a1 s[i-1] + a2 s[i-2]) >> 12."""
    s = samples.astype(np.int64)
    d = np.zeros_like(s)
    for i in range(len(s)):
        s1 = s[i - 1] if i >= 1 else 0
        s2 = s[i - 2] if i >= 2 else 0
        d[i] = s[i] - ((a1 * s1 + a2 * s2 + 2048) >> 12)
    return np.clip(d, -32768, 32767).astype(np.int16)


def _schur_profile() -> SectionProfile:
    """Operation counts of an order-8 Schur recursion + coefficient coding."""
    return SectionProfile(
        name="scalar_schur", loads=96, stores=24, alu=420, muls=100,
        loop_branches=36, data_branches=16, footprint=512,
    )


def _stp_profile() -> SectionProfile:
    """Counts for the serial short-term lattice over one frame.

    GSM's order-8 lattice executes 2 MACs per stage per sample; the order-2
    data computation above is a reduced model, but the *charged* work keeps
    the full order-8 cost so the scalar fraction matches the real encoder.
    """
    per_sample_macs = 2 * 8
    return SectionProfile(
        name="scalar_stp",
        loads=FRAME * 2, stores=FRAME,
        alu=FRAME * per_sample_macs, muls=FRAME * per_sample_macs // 2,
        loop_branches=FRAME, footprint=1024,
    )


def _rpe_profile() -> SectionProfile:
    """Counts for RPE grid selection and APCM quantization, per subframe."""
    return SectionProfile(
        name="scalar_rpe", loads=SUBFRAME * 2, stores=SUBFRAME // 2 + 13,
        alu=SUBFRAME * 6, muls=13, loop_branches=SUBFRAME // 4,
        data_branches=8, footprint=512,
    )


def build_gsm_encode(isa: str, scale: int = 1) -> BuiltApp:
    pcm = pcm_audio(frames=1 + max(1, scale), scale=scale)
    n_lags = min(LTP_MAX - LTP_MIN + 1, LAGS_PER_SCALE * max(1, scale))
    b, st = make_stages(isa)
    timer = PhaseTimer(b)

    pcm_addr = b.mem.alloc_array(pcm)
    dp_addr = b.mem.alloc(pcm.size * 2)      # short-term residual history
    corr = b.ireg()
    best, besti, tmp, cand = b.ireg(), b.ireg(), b.ireg(), b.ireg()

    dp_all = np.zeros(pcm.size, dtype=np.int16)
    acfs, lags = [], []
    frames = pcm.size // FRAME
    for f in range(frames):
        base = f * FRAME
        frame_addr = pcm_addr + 2 * base

        # --- LPC autocorrelation: 9 vectorizable dot products -------------
        acf = []
        for k in range(ACF_LAGS):
            st.dot16(frame_addr + 2 * k, frame_addr, 152, corr)
            acf.append(int(corr.value))
        acfs.append(acf)
        timer.close("autocorrelation")

        # --- Schur recursion / reflection coefficients (scalar) ------------
        st.scalar_section(_schur_profile(), seed=0x50 + f)
        timer.close("scalar_schur")

        # --- short-term analysis filter (serial recurrence, scalar) --------
        a1, a2 = _lpc_coeffs(acf)
        dp_frame = _stp_filter(pcm[base : base + FRAME], a1, a2)
        dp_all[base : base + FRAME] = dp_frame
        b.mem.store_array(dp_addr + 2 * base, dp_frame)
        st.scalar_section(_stp_profile(), seed=0x60 + f)
        timer.close("scalar_stp")

        # --- per-subframe long-term predictor search ------------------------
        if f == 0:
            continue          # no residual history yet
        for sub in range(FRAME // SUBFRAME):
            wt_addr = dp_addr + 2 * (base + sub * SUBFRAME)
            b.li(best, -(1 << 62))
            b.li(besti, 0)
            for li, lag in enumerate(range(LTP_MIN, LTP_MIN + n_lags)):
                st.dot16(wt_addr, wt_addr - 2 * lag, SUBFRAME, corr)
                b.li(cand, li)
                b.cmplt(tmp, best, corr)
                b.cmovne(best, tmp, corr)
                b.cmovne(besti, tmp, cand)
            lags.append(LTP_MIN + int(besti.value))
            timer.close("ltp_search")
            st.scalar_section(_rpe_profile(), seed=0x70 + 4 * f + sub)
            timer.close("scalar_rpe")

        st.scalar_section(SectionProfile(
            name="scalar_pack", loads=24, stores=33, alu=180,
            loop_branches=12, footprint=256), seed=0x40 + f)
        timer.close("scalar_pack")

    outputs = {
        "acf": np.asarray(acfs, dtype=np.int64),
        "lags": np.asarray(lags, dtype=np.int64),
    }
    return BuiltApp(builder=b, outputs=outputs, phases=timer.phases)


register(AppSpec(
    name="gsm_encode",
    description="GSM 06.10-style speech encoder (LPC, LTP, RPE)",
    build=build_gsm_encode,
))
