"""mpeg2 encode / mpeg2 decode application pipelines.

A compact but complete MPEG-2-style P-frame codec over the synthetic video
workload: full-search motion estimation (the paper's Figures 1-2), motion
compensation, residual FDCT, quantization, reconstruction (dequant + IDCT +
saturated add), and a run/level VLC whose operation counts calibrate the
synthesized scalar section.  Luma-only, 16x16 macroblocks of four 8x8
blocks, quality step 16.

Two workload geometries are registered:

* ``mpeg2_encode`` / ``mpeg2_decode`` -- the 32x32 mini-frame used by the
  Figure 7 grid, where many (isa, way, memory) points share one build.
* ``mpeg2_frame`` -- one full 720x480 frame (1350 macroblocks, the paper's
  Mediabench-scale working set) through the same encoder pipeline.  This is
  the frame-scale target of the ``frame-scale`` preset; it only became
  buildable when :class:`~repro.emulib.trace.Trace` went columnar -- the
  scalar configuration alone is ~61 million dynamic instructions, minutes
  and tens of gigabytes as a list of objects.

Correctness contract: the decoder's output frames equal the encoder's
reconstructed frames bit-exactly, and every ISA configuration produces
identical outputs.
"""

from __future__ import annotations

import numpy as np

from ..emulib.scalar_section import SectionProfile
from .common import AppSpec, BuiltApp, PhaseTimer, make_stages, register
from .reference import (addblock_ref, dequant_ref, motion_search_ref,
                        quant_ref, residual_ref, transform8_ref)
from .stages import FDCT_MAT, IDCT_MAT
from .workloads import video_frames

WIDTH = 32
HEIGHT = 32
MB = 16
N = 8

#: Geometry of the frame-scale workload: one 720x480 luma frame -- the
#: paper's mei16v2rec frames are 352x480; 720x480 is full-rate CCIR-601.
FRAME_WIDTH = 720
FRAME_HEIGHT = 480

#: Spiral offsets of the paper's fullsearch with win=1 (center + 8 ring).
SEARCH_OFFSETS = [(0, 0), (-1, -1), (-1, 0), (-1, 1), (0, 1),
                  (1, 1), (1, 0), (1, -1), (0, -1)]


def _candidate_positions(mb_y: int, mb_x: int, width: int,
                         height: int) -> list[tuple[int, int]]:
    out = []
    for dy, dx in SEARCH_OFFSETS:
        y = min(max(mb_y + dy, 0), height - MB)
        x = min(max(mb_x + dx, 0), width - MB)
        out.append((y, x))
    return out


def _vlc_profile(coded_blocks: list[np.ndarray]) -> SectionProfile:
    """Exact operation counts for run/level VLC of the coded blocks."""
    profile = SectionProfile(name="scalar_vlc", footprint=2048)
    for coefs in coded_blocks:
        flat = coefs.reshape(-1)
        nz = int(np.count_nonzero(flat))
        profile.alu += 2 * flat.size          # zigzag scan + run counting
        profile.loads += flat.size // 4       # zigzag table, one per word
        profile.loads += 2 * nz               # VLC table lookups
        profile.alu += 6 * nz                 # length/level computation
        profile.stores += nz // 2 + 1         # bitstream bytes
        profile.data_branches += 2 * nz       # code-length decisions
        profile.loop_branches += flat.size // 8
    profile.alu += 64                          # macroblock/slice headers
    profile.stores += 16
    return profile


def _functional_encode(frames: np.ndarray, width: int, height: int):
    """Pure-numpy encoder producing side data and reconstructed frames."""
    prev = frames[0].astype(np.uint8)
    per_frame = []
    recons = []
    for t in range(1, frames.shape[0]):
        cur = frames[t]
        recon = np.zeros_like(prev)
        mbs = []
        for mb_y in range(0, height, MB):
            for mb_x in range(0, width, MB):
                blk = cur[mb_y : mb_y + MB, mb_x : mb_x + MB]
                cands = _candidate_positions(mb_y, mb_x, width, height)
                windows = [prev[y : y + MB, x : x + MB] for y, x in cands]
                best = motion_search_ref(windows, blk)
                pred = windows[best]
                blocks = []
                for sy in (0, N):
                    for sx in (0, N):
                        resid = residual_ref(
                            blk[sy : sy + N, sx : sx + N],
                            pred[sy : sy + N, sx : sx + N],
                        )
                        coef = quant_ref(transform8_ref(resid, FDCT_MAT, False))
                        if np.any(coef):
                            rec_resid = transform8_ref(
                                dequant_ref(coef), IDCT_MAT, True
                            )
                            rec = addblock_ref(
                                pred[sy : sy + N, sx : sx + N], rec_resid
                            )
                        else:
                            rec = pred[sy : sy + N, sx : sx + N]
                        recon[mb_y + sy : mb_y + sy + N,
                              mb_x + sx : mb_x + sx + N] = rec
                        blocks.append(coef)
                mbs.append({"best": best, "cands": cands, "blocks": blocks})
        per_frame.append(mbs)
        recons.append(recon.copy())
        prev = recon
    return per_frame, np.stack(recons)


def _build_encode(isa: str, frames: np.ndarray, width: int,
                  height: int) -> BuiltApp:
    b, st = make_stages(isa)
    timer = PhaseTimer(b)

    prev_addr = b.mem.alloc_array(frames[0])
    pred_addr = b.mem.alloc(MB * MB)
    resid_addr = b.mem.alloc(N * N * 2)
    coef_addrs = [b.mem.alloc(N * N * 2) for _ in range(4)]
    rec_addr = b.mem.alloc(N * N * 2)
    recons = []

    for t in range(1, frames.shape[0]):
        cur_addr = b.mem.alloc_array(frames[t])
        recon_addr = b.mem.alloc(height * width)
        coded_blocks: list[np.ndarray] = []
        for mb_y in range(0, height, MB):
            for mb_x in range(0, width, MB):
                blk_addr = cur_addr + mb_y * width + mb_x
                cands = _candidate_positions(mb_y, mb_x, width, height)
                cand_addrs = [prev_addr + y * width + x for y, x in cands]
                best = st.motion_search(cand_addrs, width, blk_addr, width)
                timer.close("motion_estimation")
                st.copy_block(cand_addrs[best], width, pred_addr, MB, MB, MB)
                timer.close("compensation")
                subs = [(sy, sx) for sy in (0, N) for sx in (0, N)]
                # Forward path for all four blocks first, reconstruction
                # second: keeps each transform's constants resident.
                coded_flags = []
                for bi, (sy, sx) in enumerate(subs):
                    cur_sub = blk_addr + sy * width + sx
                    pred_sub = pred_addr + sy * MB + sx
                    st.residual8(cur_sub, width, pred_sub, MB, resid_addr)
                    timer.close("residual")
                    st.transform8(resid_addr, coef_addrs[bi], FDCT_MAT, False)
                    timer.close("fdct")
                    st.quant8(coef_addrs[bi])
                    timer.close("quant")
                    coefs = b.mem.load_array(coef_addrs[bi], np.int16, N * N)
                    coded_flags.append(bool(np.any(coefs)))
                    if coded_flags[-1]:
                        coded_blocks.append(coefs.reshape(N, N).copy())
                for bi, (sy, sx) in enumerate(subs):
                    pred_sub = pred_addr + sy * MB + sx
                    rec_sub = (recon_addr + (mb_y + sy) * width
                               + mb_x + sx)
                    if coded_flags[bi]:
                        st.dequant8(coef_addrs[bi])
                        timer.close("dequant")
                        st.transform8(coef_addrs[bi], rec_addr, IDCT_MAT, True)
                        timer.close("idct")
                        st.addblock8(pred_sub, MB, rec_addr, rec_sub, width)
                        timer.close("addblock")
                    else:
                        st.copy_block(pred_sub, MB, rec_sub, width, N, N)
                        timer.close("compensation")
        st.scalar_section(_vlc_profile(coded_blocks), seed=0xE0 + t)
        timer.close("scalar_vlc")
        recons.append(
            b.mem.load_array(recon_addr, np.uint8, height * width)
            .reshape(height, width)
        )
        prev_addr = recon_addr

    return BuiltApp(builder=b, outputs={"recon": np.stack(recons)},
                    phases=timer.phases)


def build_mpeg2_encode(isa: str, scale: int = 1) -> BuiltApp:
    frames = video_frames(WIDTH, HEIGHT, count=1 + max(1, scale))
    return _build_encode(isa, frames, WIDTH, HEIGHT)


def build_mpeg2_frame(isa: str, scale: int = 1) -> BuiltApp:
    """One full 720x480 P-frame (plus reference) through the encoder.

    ``scale`` adds further P-frames; the frame geometry is fixed -- the
    point of this target is the Mediabench-scale working set, not a
    tunable mini-workload.
    """
    frames = video_frames(FRAME_WIDTH, FRAME_HEIGHT, count=1 + max(1, scale))
    return _build_encode(isa, frames, FRAME_WIDTH, FRAME_HEIGHT)


def build_mpeg2_decode(isa: str, scale: int = 1) -> BuiltApp:
    frames = video_frames(WIDTH, HEIGHT, count=1 + max(1, scale))
    side, golden_recons = _functional_encode(frames, WIDTH, HEIGHT)
    b, st = make_stages(isa)
    timer = PhaseTimer(b)

    prev_addr = b.mem.alloc_array(frames[0])
    coef_addr = b.mem.alloc(N * N * 2)
    rec_addr = b.mem.alloc(N * N * 2)
    decoded = []

    for t, mbs in enumerate(side):
        out_addr = b.mem.alloc(HEIGHT * WIDTH)
        coded = [blk for mb in mbs for blk in mb["blocks"] if np.any(blk)]
        st.scalar_section(_vlc_profile(coded), seed=0xD0 + t)
        timer.close("scalar_parse")
        index = 0
        for mb_y in range(0, HEIGHT, MB):
            for mb_x in range(0, WIDTH, MB):
                mb = mbs[index]
                index += 1
                y, x = mb["cands"][mb["best"]]
                pred_base = prev_addr + y * WIDTH + x
                mb_out = out_addr + mb_y * WIDTH + mb_x
                st.copy_block(pred_base, WIDTH, mb_out, WIDTH, MB, MB)
                timer.close("compensation")
                for bi, (sy, sx) in enumerate(
                    ((0, 0), (0, N), (N, 0), (N, N))
                ):
                    coef = mb["blocks"][bi]
                    if not np.any(coef):
                        continue
                    # The synthesized parse section stands in for the work
                    # of recovering these coefficients; the values are
                    # materialized for the compute stages.
                    b.mem.store_array(coef_addr, coef.astype(np.int16))
                    st.dequant8(coef_addr)
                    timer.close("dequant")
                    st.transform8(coef_addr, rec_addr, IDCT_MAT, True)
                    timer.close("idct")
                    pred_sub = mb_out + sy * WIDTH + sx
                    st.addblock8(pred_sub, WIDTH, rec_addr, pred_sub, WIDTH)
                    timer.close("addblock")
        decoded.append(
            b.mem.load_array(out_addr, np.uint8, HEIGHT * WIDTH)
            .reshape(HEIGHT, WIDTH)
        )
        prev_addr = out_addr

    outputs = {"decoded": np.stack(decoded), "golden": golden_recons}
    return BuiltApp(builder=b, outputs=outputs, phases=timer.phases)


register(AppSpec(
    name="mpeg2_encode",
    description="MPEG-2 style P-frame encoder (motion est., FDCT, VLC)",
    build=build_mpeg2_encode,
))

register(AppSpec(
    name="mpeg2_decode",
    description="MPEG-2 style P-frame decoder (parse, IDCT, compensation)",
    build=build_mpeg2_decode,
))

register(AppSpec(
    name="mpeg2_frame",
    description="MPEG-2 encoder over one full 720x480 frame (frame-scale)",
    build=build_mpeg2_frame,
))
