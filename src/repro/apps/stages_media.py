"""MMX and MOM implementations of the application stages.

See :mod:`repro.apps.stages` for the stage contracts.  Every override emits
the hand-vectorized instruction sequence for its ISA while computing the
identical fixed-point result; anything not overridden (and every emitted
scalar bookkeeping instruction) falls back to the scalar baseline, exactly
like a partially-vectorized real program.
"""

from __future__ import annotations

import numpy as np

from ..isa.model import ElemType
from ..kernels.idct import N, OUT_MAX, OUT_MIN, PASS1_SHIFT, PASS2_SHIFT
from ..kernels.rgb2ycc import COMPONENTS as RGB2YCC
from .stages import BLOCK16, QUANT_SHIFT, ScalarStages

_E = ElemType


def _interleaved_k(mat: np.ndarray) -> np.ndarray:
    """Pair-interleaved pmaddh constants for a transform matrix."""
    k = np.zeros((4, 4, 4), dtype=np.int16)
    for g in range(4):
        for p in range(4):
            k[g][p] = [mat[2 * g][2 * p], mat[2 * g][2 * p + 1],
                       mat[2 * g + 1][2 * p], mat[2 * g + 1][2 * p + 1]]
    return k


def _broadcast_h(value: int) -> int:
    """A packed word with ``value`` in all four halfword lanes."""
    return int(np.asarray([value] * 4, dtype=np.int16).view(np.uint64)[0])


class MmxStages(ScalarStages):
    """MMX-vectorized application stages."""

    isa = "mmx"

    def __init__(self, b) -> None:
        super().__init__(b)
        self.m = [b.mreg() for _ in range(11)]
        self.k = [b.mreg() for _ in range(16)]
        self.c4 = [b.mreg() for _ in range(4)]   # rnd1 rnd2 cmin cmax / misc
        self.mzero = b.mreg()
        b.pxor(self.mzero, self.mzero, self.mzero)
        self._t_addr = b.mem.alloc(N * N * 2)
        self._r_addr = b.mem.alloc(N * N * 2)
        self._const_addrs: dict[str, int] = {}

    # -- constant tables ----------------------------------------------------------

    def _transform_consts(self, key: str, mat: np.ndarray) -> int:
        if key not in self._const_addrs:
            words = np.concatenate([
                _interleaved_k(mat).reshape(-1, 4).view(np.uint64).reshape(-1),
                np.asarray([1 << (PASS1_SHIFT - 1)] * 2, dtype=np.int32).view(np.uint64),
                np.asarray([1 << (PASS2_SHIFT - 1)] * 2, dtype=np.int32).view(np.uint64),
                np.asarray([OUT_MIN] * 4, dtype=np.int16).view(np.uint64),
                np.asarray([OUT_MAX] * 4, dtype=np.int16).view(np.uint64),
            ])
            self._const_addrs[key] = self.b.mem.alloc_array(words)
        return self._const_addrs[key]

    def _word_const(self, key: str, word: int) -> int:
        if key not in self._const_addrs:
            self._const_addrs[key] = self.b.mem.alloc_array(
                np.asarray([word], dtype=np.uint64)
            )
        return self._const_addrs[key]

    def _load_const(self, reg, key: str, word: int):
        addr_reg = self.r[9]
        self.b.li(addr_reg, self._word_const(key, word))
        self.b.m_ldq(reg, addr_reg, 0)
        return reg

    # -- motion estimation -----------------------------------------------------------

    def sad16(self, ref_addr: int, ref_stride: int, blk_addr: int,
              blk_stride: int, out):
        b = self.b
        pa, pb, rows = self.r[:3]
        a_lo, a_hi, b_lo, b_hi, acc, d1, d2 = self.m[:7]
        site = b.site()
        b.li(pa, ref_addr)
        b.li(pb, blk_addr)
        b.pxor(acc, acc, acc)
        b.li(rows, BLOCK16 // 4)
        for row in range(BLOCK16):
            b.m_ldq(a_lo, pa, 0)
            b.m_ldq(a_hi, pa, 8)
            b.m_ldq(b_lo, pb, 0)
            b.m_ldq(b_hi, pb, 8)
            b.psadb(d1, a_lo, b_lo)
            b.psadb(d2, a_hi, b_hi)
            b.paddw(acc, acc, d1)
            b.paddw(acc, acc, d2)
            b.addi(pa, pa, ref_stride)
            b.addi(pb, pb, blk_stride)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, site)
        b.movd_from(out, acc)
        return out

    # -- block movement -----------------------------------------------------------------

    def copy_block(self, src, sstride, dst, dstride, h, w) -> None:
        b = self.b
        ps, pd, rows = self.r[:3]
        v = self.m[0]
        b.li(ps, src)
        b.li(pd, dst)
        b.li(rows, h)
        site = b.site()
        for _ in range(h):
            for x in range(0, w, 8):
                b.m_ldq(v, ps, x)
                b.m_stq(v, pd, x)
            b.addi(ps, ps, sstride)
            b.addi(pd, pd, dstride)
            b.subi(rows, rows, 1)
            b.bne(rows, site)

    def avg_block(self, a, astride, c, cstride, dst, dstride, h, w) -> None:
        b = self.b
        pa, pc, pd, rows = self.r[:4]
        va, vc = self.m[:2]
        b.li(pa, a)
        b.li(pc, c)
        b.li(pd, dst)
        b.li(rows, h)
        site = b.site()
        for _ in range(h):
            for x in range(0, w, 8):
                b.m_ldq(va, pa, x)
                b.m_ldq(vc, pc, x)
                b.pavgb(va, va, vc)
                b.m_stq(va, pd, x)
            b.addi(pa, pa, astride)
            b.addi(pc, pc, cstride)
            b.addi(pd, pd, dstride)
            b.subi(rows, rows, 1)
            b.bne(rows, site)

    # -- residual / reconstruction ----------------------------------------------------------

    def residual8(self, cur, cstride, pred, pstride, dst) -> None:
        b = self.b
        pc, pp, pd, rows = self.r[:4]
        vc, vp, c_lo, c_hi, p_lo, p_hi = self.m[:6]
        b.li(pc, cur)
        b.li(pp, pred)
        b.li(pd, dst)
        b.li(rows, N // 4)
        site = b.site()
        for row in range(N):
            b.m_ldq(vc, pc, 0)
            b.m_ldq(vp, pp, 0)
            b.punpcklb(c_lo, vc, self.mzero)
            b.punpckhb(c_hi, vc, self.mzero)
            b.punpcklb(p_lo, vp, self.mzero)
            b.punpckhb(p_hi, vp, self.mzero)
            b.psubh(c_lo, c_lo, p_lo)
            b.psubh(c_hi, c_hi, p_hi)
            b.m_stq(c_lo, pd, 0)
            b.m_stq(c_hi, pd, 8)
            b.addi(pc, pc, cstride)
            b.addi(pp, pp, pstride)
            b.addi(pd, pd, 2 * N)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, site)

    def addblock8(self, pred, pstride, resid, dst, dstride) -> None:
        b = self.b
        pp, pr, pd, rows = self.r[:4]
        vp, p_lo, p_hi, r_lo, r_hi = self.m[:5]
        b.li(pp, pred)
        b.li(pr, resid)
        b.li(pd, dst)
        b.li(rows, N // 4)
        site = b.site()
        for row in range(N):
            b.m_ldq(vp, pp, 0)
            b.punpcklb(p_lo, vp, self.mzero)
            b.punpckhb(p_hi, vp, self.mzero)
            b.m_ldq(r_lo, pr, 0)
            b.m_ldq(r_hi, pr, 8)
            b.paddh(p_lo, p_lo, r_lo)
            b.paddh(p_hi, p_hi, r_hi)
            b.packushb(vp, p_lo, p_hi)
            b.m_stq(vp, pd, 0)
            b.addi(pp, pp, pstride)
            b.addi(pr, pr, 2 * N)
            b.addi(pd, pd, dstride)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, site)

    # -- transforms ----------------------------------------------------------------------------

    def transform8(self, src: int, dst: int, mat: np.ndarray,
                   clamp: bool) -> None:
        b = self.b
        key = f"k_{int(mat[0][0])}_{int(mat[0][1])}_{int(mat[1][0])}"
        caddr = self._transform_consts(key, mat)
        addr, ctr = self.r[:2]
        if getattr(self, "_k_tag", None) != key:
            # Constants stay resident in k/c4 across calls; other stages
            # that borrow those registers invalidate the tag.
            for i, reg in enumerate(self.k + self.c4):
                b.li(addr, caddr + 8 * i)
                b.m_ldq(reg, addr, 0)
            self._k_tag = key
        rnd1, rnd2, cmin, cmax = self.c4
        kregs = [self.k[4 * g : 4 * g + 4] for g in range(4)]
        x_lo, x_hi, p01, p23, p45, p67 = self.m[:6]
        accs = self.m[6:10]
        t = self.m[10]
        site = b.site()

        def transpose(sbase, dbase):
            a0, a1, a2, a3 = self.m[:4]
            t0, t1, t2, t3 = self.m[4:8]
            for qr in range(2):
                for qc in range(2):
                    for i, reg in enumerate((a0, a1, a2, a3)):
                        b.li(addr, sbase + ((4 * qr + i) * N + 4 * qc) * 2)
                        b.m_ldq(reg, addr, 0)
                    b.punpcklh(t0, a0, a1)
                    b.punpckhh(t1, a0, a1)
                    b.punpcklh(t2, a2, a3)
                    b.punpckhh(t3, a2, a3)
                    b.punpcklw(a0, t0, t2)
                    b.punpckhw(a1, t0, t2)
                    b.punpcklw(a2, t1, t3)
                    b.punpckhw(a3, t1, t3)
                    for i, reg in enumerate((a0, a1, a2, a3)):
                        b.li(addr, dbase + ((4 * qc + i) * N + 4 * qr) * 2)
                        b.m_stq(reg, addr, 0)

        def row_pass(sbase, dbase, rnd_reg, shift, do_clamp):
            for row in range(N):
                b.li(addr, sbase + row * N * 2)
                b.m_ldq(x_lo, addr, 0)
                b.m_ldq(x_hi, addr, 8)
                b.pshufh(p01, x_lo, (0, 1, 0, 1))
                b.pshufh(p23, x_lo, (2, 3, 2, 3))
                b.pshufh(p45, x_hi, (0, 1, 0, 1))
                b.pshufh(p67, x_hi, (2, 3, 2, 3))
                for g in range(4):
                    b.pmaddh(accs[g], p01, kregs[g][0])
                    b.pmaddh(t, p23, kregs[g][1])
                    b.paddw(accs[g], accs[g], t)
                    b.pmaddh(t, p45, kregs[g][2])
                    b.paddw(accs[g], accs[g], t)
                    b.pmaddh(t, p67, kregs[g][3])
                    b.paddw(accs[g], accs[g], t)
                    b.paddw(accs[g], accs[g], rnd_reg)
                    b.psraw(accs[g], accs[g], shift)
                b.packsswh(p01, accs[0], accs[1])
                b.packsswh(p23, accs[2], accs[3])
                if do_clamp:
                    for yreg in (p01, p23):
                        b.pmaxsh(yreg, yreg, cmin)
                        b.pminsh(yreg, yreg, cmax)
                b.li(addr, dbase + row * N * 2)
                b.m_stq(p01, addr, 0)
                b.m_stq(p23, addr, 8)
                if row % 4 == 3:
                    b.li(ctr, 1 if row == N - 1 else 0)
                    b.beq(ctr, site)

        transpose(src, self._t_addr)
        row_pass(self._t_addr, self._r_addr, rnd1, PASS1_SHIFT, False)
        transpose(self._r_addr, self._t_addr)
        row_pass(self._t_addr, dst, rnd2, PASS2_SHIFT, clamp)

    # -- quantization -------------------------------------------------------------------------------

    def quant8(self, addr: int) -> None:
        b = self.b
        p, rows = self.r[:2]
        x, neg, q, mask = self.m[:4]
        b.li(p, addr)
        b.li(rows, N // 4)
        site = b.site()
        for row in range(N):
            for half in (0, 8):
                b.m_ldq(x, p, half)
                b.psubh(neg, self.mzero, x)
                b.pmaxsh(q, x, neg)                 # |x|
                b.psrlh(q, q, QUANT_SHIFT)
                b.pcmpgth(mask, self.mzero, x)      # lanes where x < 0
                b.pxor(q, q, mask)
                b.psubh(q, q, mask)                 # two's complement negate
                b.m_stq(q, p, half)
            b.addi(p, p, 2 * N)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, site)

    def dequant8(self, addr: int) -> None:
        b = self.b
        p, rows = self.r[:2]
        x = self.m[0]
        b.li(p, addr)
        b.li(rows, N // 4)
        site = b.site()
        for row in range(N):
            for half in (0, 8):
                b.m_ldq(x, p, half)
                b.psllh(x, x, QUANT_SHIFT)
                b.m_stq(x, p, half)
            b.addi(p, p, 2 * N)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, site)

    # -- colour conversion ------------------------------------------------------------------------------

    def rgb2ycc(self, r, g, bb, y, cb, cr, n) -> None:
        b = self.b
        coefs = {}
        for name, kr, kg, kb, _bias in RGB2YCC:
            coefs[f"{name}_r"], coefs[f"{name}_g"], coefs[f"{name}_b"] = kr, kg, kb
        ptr_in = {"r": r, "g": g, "b": bb}
        ptr_out = {"y": y, "cb": cb, "cr": cr}
        p = {k: b.ireg(v) for k, v in ptr_in.items()}
        po = {k: b.ireg(v) for k, v in ptr_out.items()}
        cnt = self.r[0]
        raw = {k: self.m[i] for i, k in enumerate(("r", "g", "b"))}
        h_lo = {k: self.m[3 + i] for i, k in enumerate(("r", "g", "b"))}
        h_hi = {k: self.k[i] for i, k in enumerate(("r", "g", "b"))}
        acc, prod, lo_out, packed = self.m[6], self.m[7], self.m[8], self.m[9]
        rnd = self.k[3]
        bias_reg = self.k[4]
        self._load_const(rnd, "h128", _broadcast_h(128))
        self._load_const(bias_reg, "h128b", _broadcast_h(128))
        coef_regs = {}
        next_k = 5
        for name, kr, kg, kb, _bias in RGB2YCC:
            for coef in (kr, kg, kb):
                if coef not in coef_regs:
                    coef_regs[coef] = self.k[next_k]
                    next_k += 1
                    self._load_const(coef_regs[coef], f"c{coef}",
                                     _broadcast_h(coef))
        self._k_tag = None
        b.li(cnt, n // 8)
        site = b.site()
        for i in range(0, n, 8):
            for k in raw:
                b.m_ldq(raw[k], p[k], i)
                b.punpcklb(h_lo[k], raw[k], self.mzero)
                b.punpckhb(h_hi[k], raw[k], self.mzero)
            for name, kr, kg, kb, bias in RGB2YCC:
                for h, halves in ((0, h_lo), (1, h_hi)):
                    b.pmullh(acc, halves["r"], coef_regs[kr])
                    b.pmullh(prod, halves["g"], coef_regs[kg])
                    b.paddh(acc, acc, prod)
                    b.pmullh(prod, halves["b"], coef_regs[kb])
                    b.paddh(acc, acc, prod)
                    b.paddh(acc, acc, rnd)
                    if bias:
                        b.psrah(acc, acc, 8)
                        b.paddh(acc, acc, bias_reg)
                    else:
                        b.psrlh(acc, acc, 8)
                    if h == 0:
                        b.movq(lo_out, acc)
                b.packushb(packed, lo_out, acc)
                b.m_stq(packed, po[name], i)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)
        for reg in list(p.values()) + list(po.values()):
            b.free(reg)

    def ycc2rgb(self, y, cb, cr, r, g, bb, n) -> None:
        b = self.b
        p = {k: b.ireg(v) for k, v in (("y", y), ("cb", cb), ("cr", cr))}
        po = {k: b.ireg(v) for k, v in (("r", r), ("g", g), ("b", bb))}
        cnt = self.r[0]
        raw = {k: self.m[i] for i, k in enumerate(("y", "cb", "cr"))}
        h_lo = {k: self.m[3 + i] for i, k in enumerate(("y", "cb", "cr"))}
        h_hi = {k: self.k[i] for i, k in enumerate(("y", "cb", "cr"))}
        acc, prod, lo_out, packed = (self.m[6], self.m[7], self.m[8],
                                     self.m[9])
        c128, rnd64 = self.k[3], self.k[4]
        c179, c227, cm44, cm91 = self.k[5], self.k[6], self.k[7], self.k[8]
        self._load_const(c128, "h128", _broadcast_h(128))
        self._load_const(rnd64, "h64", _broadcast_h(64))
        self._load_const(c179, "c179", _broadcast_h(179))
        self._load_const(c227, "c227", _broadcast_h(227))
        self._load_const(cm44, "cm44", _broadcast_h(-44))
        self._load_const(cm91, "cm91", _broadcast_h(-91))
        self._k_tag = None
        b.li(cnt, n // 8)
        site = b.site()
        for i in range(0, n, 8):
            for k in raw:
                b.m_ldq(raw[k], p[k], i)
                b.punpcklb(h_lo[k], raw[k], self.mzero)
                b.punpckhb(h_hi[k], raw[k], self.mzero)
            for k in ("cb", "cr"):
                b.psubh(h_lo[k], h_lo[k], c128)
                b.psubh(h_hi[k], h_hi[k], c128)
            for name in ("r", "g", "b"):
                for h, halves in ((0, h_lo), (1, h_hi)):
                    if name == "r":
                        b.pmullh(acc, halves["cr"], c179)
                    elif name == "b":
                        b.pmullh(acc, halves["cb"], c227)
                    else:
                        b.pmullh(acc, halves["cb"], cm44)
                        b.pmullh(prod, halves["cr"], cm91)
                        b.paddh(acc, acc, prod)
                    b.paddh(acc, acc, rnd64)
                    b.psrah(acc, acc, 7)
                    b.paddh(acc, acc, halves["y"])
                    if h == 0:
                        b.movq(lo_out, acc)
                b.packushb(packed, lo_out, acc)    # clamps to [0, 255]
                b.m_stq(packed, po[name], i)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)
        for reg in list(p.values()) + list(po.values()):
            b.free(reg)

    # -- resampling ----------------------------------------------------------------------------------------

    def downsample2(self, src, w, h, dst) -> None:
        b = self.b
        ps, pd, cnt = self.r[:3]
        x_lo, x_hi, evens, mask = self.m[:4]
        self._load_const(mask, "evenmask", 0x00FF00FF00FF00FF)
        site = b.site()
        b.li(cnt, h // 2)
        for y in range(0, h, 2):
            b.li(ps, src + y * w)
            b.li(pd, dst + (y // 2) * (w // 2))
            for x in range(0, w, 16):
                b.m_ldq(x_lo, ps, x)
                b.m_ldq(x_hi, ps, x + 8)
                b.pand(x_lo, x_lo, mask)
                b.pand(x_hi, x_hi, mask)
                b.packushb(evens, x_lo, x_hi)
                b.m_stq(evens, pd, x // 2)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)

    def upsample2(self, src, w, h, dst) -> None:
        b = self.b
        pi, po0, po1, cnt = self.r[:4]
        x_reg, lo, hi = self.m[:3]
        ow = 2 * w
        site = b.site()
        b.li(cnt, h)
        for y in range(h):
            b.li(pi, src + y * w)
            b.li(po0, dst + (2 * y) * ow)
            b.li(po1, dst + (2 * y + 1) * ow)
            for x in range(0, w, 8):
                b.m_ldq(x_reg, pi, x)
                b.punpcklb(lo, x_reg, x_reg)
                b.punpckhb(hi, x_reg, x_reg)
                b.m_stq(lo, po0, 2 * x)
                b.m_stq(hi, po0, 2 * x + 8)
                b.m_stq(lo, po1, 2 * x)
                b.m_stq(hi, po1, 2 * x + 8)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)

    # -- dot products --------------------------------------------------------------------------------------------

    def dot16(self, a, c, n, out) -> None:
        b = self.b
        pa, pc = self.r[:2]
        mw, md, prod, acc = self.m[:4]
        b.li(pa, a)
        b.li(pc, c)
        b.pxor(acc, acc, acc)
        for w in range(0, n, 4):
            b.m_ldq(mw, pa, 2 * w)
            b.m_ldq(md, pc, 2 * w)
            b.pmaddh(prod, mw, md)
            b.paddw(acc, acc, prod)
        b.psrlq(prod, acc, 32)
        b.paddw(acc, acc, prod)
        b.movd_from(out, acc)
        b.sll(out, out, 32)
        b.sra(out, out, 32)


class MomStages(ScalarStages):
    """MOM-vectorized application stages (matrix registers + VL)."""

    isa = "mom"

    def __init__(self, b) -> None:
        super().__init__(b)
        self.m = [b.mreg() for _ in range(7)]
        self.k = [b.mreg() for _ in range(8)]
        self.mzero = b.mreg()
        b.momzero(self.mzero)
        self.acc = b.areg()
        self.acc2 = b.areg()
        self.stride_reg = b.ireg()
        self._scratch_t1 = b.mem.alloc(8 * 8 * 2)
        self._scratch_t2 = b.mem.alloc(8 * 8 * 2)
        self._const_addrs: dict[str, int] = {}

    def _stride(self, value: int):
        self.b.li(self.stride_reg, value)
        return self.stride_reg

    def _mom_consts(self, key: str, mat: np.ndarray) -> int:
        if key not in self._const_addrs:
            kmats = np.zeros((N, N, 4), dtype=np.int16)
            for x in range(N):
                for u in range(N):
                    kmats[x][u] = mat[x][u]
            self._const_addrs[key] = self.b.mem.alloc_array(
                kmats.reshape(-1, 4).view(np.uint64).reshape(-1)
            )
        return self._const_addrs[key]

    # -- motion estimation ---------------------------------------------------------

    def sad16(self, ref_addr, ref_stride, blk_addr, blk_stride, out):
        b = self.b
        pa, pb = self.r[:2]
        a_lo, a_hi, c_lo, c_hi = self.m[:4]
        b.setvli(BLOCK16)
        b.li(pa, ref_addr)
        b.li(pb, blk_addr)
        stride_a = self._stride(ref_stride)
        b.momldq(a_lo, pa, stride_a)
        b.addi(pa, pa, 8)
        b.momldq(a_hi, pa, stride_a)
        stride_b = self._stride(blk_stride)
        b.momldq(c_lo, pb, stride_b)
        b.addi(pb, pb, 8)
        b.momldq(c_hi, pb, stride_b)
        b.clracc(self.acc)
        b.mommsadb(self.acc, a_lo, c_lo)
        b.mommsadb(self.acc, a_hi, c_hi)
        b.racl(out, self.acc, _E.Q)
        return out

    def motion_search(self, candidates, ref_stride, blk_addr, blk_stride):
        """Block columns live in two matrix registers across the whole
        candidate walk -- the register-capacity advantage of 2D registers."""
        b = self.b
        pa, pb = self.r[:2]
        s, tmp, cand = self.r[7], self.r[8], self.r[9]
        a_lo, a_hi, c_lo, c_hi = self.m[:4]
        best, besti = b.ireg(1 << 30), b.ireg(0)
        b.setvli(BLOCK16)
        b.li(pb, blk_addr)
        stride_b = self._stride(blk_stride)
        b.momldq(c_lo, pb, stride_b)
        b.addi(pb, pb, 8)
        b.momldq(c_hi, pb, stride_b)
        stride_a = self._stride(ref_stride)
        for index, addr in enumerate(candidates):
            b.li(pa, addr)
            b.momldq(a_lo, pa, stride_a)
            b.addi(pa, pa, 8)
            b.momldq(a_hi, pa, stride_a)
            b.clracc(self.acc)
            b.mommsadb(self.acc, a_lo, c_lo)
            b.mommsadb(self.acc, a_hi, c_hi)
            b.racl(s, self.acc, _E.Q)
            b.li(cand, index)
            b.cmplt(tmp, s, best)
            b.cmovne(best, tmp, s)
            b.cmovne(besti, tmp, cand)
        winner = int(besti.value)
        b.free(best)
        b.free(besti)
        return winner

    # -- block movement ---------------------------------------------------------------

    def copy_block(self, src, sstride, dst, dstride, h, w) -> None:
        b = self.b
        ps, pd = self.r[:2]
        v = self.m[0]
        b.setvli(h)
        for x in range(0, w, 8):
            b.li(ps, src + x)
            b.momldq(v, ps, self._stride(sstride))
            b.li(pd, dst + x)
            b.momstq(v, pd, self._stride(dstride))

    def avg_block(self, a, astride, c, cstride, dst, dstride, h, w) -> None:
        b = self.b
        pa, pc, pd = self.r[:3]
        va, vc = self.m[:2]
        b.setvli(h)
        for x in range(0, w, 8):
            b.li(pa, a + x)
            b.momldq(va, pa, self._stride(astride))
            b.li(pc, c + x)
            b.momldq(vc, pc, self._stride(cstride))
            b.pavgb(va, va, vc)
            b.li(pd, dst + x)
            b.momstq(va, pd, self._stride(dstride))

    # -- residual / reconstruction ------------------------------------------------------

    def residual8(self, cur, cstride, pred, pstride, dst) -> None:
        b = self.b
        pc, pp, pd = self.r[:3]
        vc, vp, c_lo, c_hi, p_lo, p_hi = self.m[:6]
        b.setvli(N)
        b.li(pc, cur)
        b.momldq(vc, pc, self._stride(cstride))
        b.li(pp, pred)
        b.momldq(vp, pp, self._stride(pstride))
        b.punpcklb(c_lo, vc, self.mzero)
        b.punpckhb(c_hi, vc, self.mzero)
        b.punpcklb(p_lo, vp, self.mzero)
        b.punpckhb(p_hi, vp, self.mzero)
        b.psubh(c_lo, c_lo, p_lo)
        b.psubh(c_hi, c_hi, p_hi)
        b.li(pd, dst)
        b.momstq(c_lo, pd, self._stride(2 * N))
        b.li(pd, dst + 8)
        b.momstq(c_hi, pd, self._stride(2 * N))

    def addblock8(self, pred, pstride, resid, dst, dstride) -> None:
        b = self.b
        pp, pr, pd = self.r[:3]
        vp, p_lo, p_hi, r_lo, r_hi = self.m[:5]
        b.setvli(N)
        b.li(pp, pred)
        b.momldq(vp, pp, self._stride(pstride))
        b.punpcklb(p_lo, vp, self.mzero)
        b.punpckhb(p_hi, vp, self.mzero)
        b.li(pr, resid)
        b.momldq(r_lo, pr, self._stride(2 * N))
        b.li(pr, resid + 8)
        b.momldq(r_hi, pr, self._stride(2 * N))
        b.paddh(p_lo, p_lo, r_lo)
        b.paddh(p_hi, p_hi, r_hi)
        b.packushb(vp, p_lo, p_hi)
        b.li(pd, dst)
        b.momstq(vp, pd, self._stride(dstride))

    # -- transforms ------------------------------------------------------------------------

    def transform8(self, src: int, dst: int, mat: np.ndarray,
                   clamp: bool) -> None:
        b = self.b
        key = f"mom_{int(mat[0][0])}_{int(mat[0][1])}_{int(mat[1][0])}"
        kaddr = self._mom_consts(key, mat)
        base, tmp_int = self.r[:2]
        left, right, rac, cmin, cmax = self.m[:5]
        accs = (self.acc, self.acc2)
        b.setvli(N)
        if getattr(self, "_k_tag", None) != key:
            # Constant matrices stay resident across calls with the same
            # transform; stages that borrow k registers clear the tag.
            for x in range(N):
                b.li(base, kaddr + x * N * 8)
                b.momldq(self.k[x], base, self._stride(8))
            self._k_tag = key

        def column_pass(shift, out_base):
            """One matrix-accumulate per output row, ping-ponging both
            architectural accumulators so two row chains overlap; results
            stream to memory row-by-row through ``momstrow``."""
            for ci, half_in in enumerate((left, right)):
                for x in range(N):
                    acc = accs[x % 2]
                    b.clracc(acc)
                    b.pmaddah(acc, half_in, self.k[x])
                    b.raccsh(rac, acc, shift=shift)
                    b.li(base, out_base + x * 2 * N + ci * 8)
                    b.momstrow(rac, base, 0)

        def load_pair(addr):
            b.li(base, addr)
            b.momldq(left, base, self._stride(2 * N))
            b.li(base, addr + 8)
            b.momldq(right, base, self._stride(2 * N))

        def transpose():
            b.momtransh(left, left)
            b.momtransh(right, right)
            swap = self.r[2]
            for row in range(4):
                b.momextrow(tmp_int, left, 4 + row)
                b.momextrow(swap, right, row)
                b.mominsrow(left, swap, 4 + row)
                b.mominsrow(right, tmp_int, row)

        load_pair(src)
        column_pass(PASS1_SHIFT, self._scratch_t1)
        load_pair(self._scratch_t1)
        transpose()
        column_pass(PASS2_SHIFT, self._scratch_t2)
        load_pair(self._scratch_t2)
        transpose()
        if clamp:
            if "clamp" not in self._const_addrs:
                words = np.asarray([[OUT_MIN] * 4] * N + [[OUT_MAX] * 4] * N,
                                   dtype=np.int16)
                self._const_addrs["clamp"] = b.mem.alloc_array(
                    words.view(np.uint64).reshape(-1)
                )
            b.li(base, self._const_addrs["clamp"])
            b.momldq(cmin, base, self._stride(8))
            b.li(base, self._const_addrs["clamp"] + N * 8)
            b.momldq(cmax, base, self._stride(8))
            for reg in (left, right):
                b.pmaxsh(reg, reg, cmin)
                b.pminsh(reg, reg, cmax)
        b.li(base, dst)
        b.momstq(left, base, self._stride(2 * N))
        b.li(base, dst + 8)
        b.momstq(right, base, self._stride(2 * N))

    # -- quantization ---------------------------------------------------------------------------

    def quant8(self, addr: int) -> None:
        b = self.b
        p = self.r[0]
        x, neg, q, mask = self.m[:4]
        b.setvli(N)
        for half in (0, 8):
            b.li(p, addr + half)
            b.momldq(x, p, self._stride(2 * N))
            b.psubh(neg, self.mzero, x)
            b.pmaxsh(q, x, neg)
            b.psrlh(q, q, QUANT_SHIFT)
            b.pcmpgth(mask, self.mzero, x)
            b.pxor(q, q, mask)
            b.psubh(q, q, mask)
            b.momstq(q, p, self._stride(2 * N))

    def dequant8(self, addr: int) -> None:
        b = self.b
        p = self.r[0]
        x = self.m[0]
        b.setvli(N)
        for half in (0, 8):
            b.li(p, addr + half)
            b.momldq(x, p, self._stride(2 * N))
            b.psllh(x, x, QUANT_SHIFT)
            b.momstq(x, p, self._stride(2 * N))

    # -- colour conversion ------------------------------------------------------------------------

    def rgb2ycc(self, r, g, bb, y, cb, cr, n) -> None:
        """VL=3 colour-dimension vectorization, as the paper describes."""
        b = self.b
        if g - r != n or bb - g != n:
            raise ValueError("MOM rgb2ycc expects contiguous equal planes")
        if "rgbycc" not in self._const_addrs:
            words = []
            for _name, kr, kg, kb, _bias in RGB2YCC:
                for coef in (kr, kg, kb):
                    words.append(_broadcast_h(coef))
            words.append(_broadcast_h(128))
            self._const_addrs["rgbycc"] = b.mem.alloc_array(
                np.asarray(words, dtype=np.uint64)
            )
        caddr = self._const_addrs["rgbycc"]
        addr = self.r[0]
        cmat = {}
        self._k_tag = None
        b.setvli(3)
        for ci, (name, *_rest) in enumerate(RGB2YCC):
            b.li(addr, caddr + ci * 3 * 8)
            b.momldq(self.k[ci], addr, self._stride(8))
            cmat[name] = self.k[ci]
        bias_reg = self.k[3]
        b.setvli(1)
        b.li(addr, caddr + 9 * 8)
        b.momldq(bias_reg, addr, self._stride(8))

        rgb, lo, hi, lo_out, hi_out, packed = self.m[:6]
        po = {name: b.ireg(a) for name, a in (("y", y), ("cb", cb), ("cr", cr))}
        cnt = self.r[1]
        b.li(cnt, n // 8)
        site = b.site()
        for i in range(0, n, 8):
            b.setvli(3)
            b.li(addr, r + i)
            b.momldq(rgb, addr, self._stride(n))
            b.punpcklb(lo, rgb, self.mzero)
            b.punpckhb(hi, rgb, self.mzero)
            for name, kr, kg, kb, bias in RGB2YCC:
                for half, out_reg in ((lo, lo_out), (hi, hi_out)):
                    b.setvli(3)
                    b.clracc(self.acc)
                    b.pmaddah(self.acc, half, cmat[name])
                    if bias:
                        b.raccsh(out_reg, self.acc, shift=8)
                        b.setvli(1)
                        b.paddh(out_reg, out_reg, bias_reg)
                    else:
                        b.raccuh(out_reg, self.acc, shift=8)
                b.setvli(1)
                b.packushb(packed, lo_out, hi_out)
                b.momstrow(packed, po[name], 0, offset=i)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)
        for reg in po.values():
            b.free(reg)

    def ycc2rgb(self, y, cb, cr, r, g, bb, n) -> None:
        """Pixel-row vectorization: VL=8 rows of 8 pixels per iteration."""
        b = self.b
        keys = ("c128", "c64", "c179", "c227", "cm44", "cm91")
        values = (128, 64, 179, 227, -44, -91)
        for key, val in zip(keys, values):
            name = "ycc_" + key
            if name not in self._const_addrs:
                self._const_addrs[name] = b.mem.alloc_array(
                    np.asarray([_broadcast_h(val)] * 16, dtype=np.uint64)
                )
        addr = self.r[0]
        consts = {}
        self._k_tag = None
        b.setvli(8)
        for idx, key in enumerate(keys):
            reg = self.k[idx]
            b.li(addr, self._const_addrs["ycc_" + key])
            b.momldq(reg, addr, self._stride(8))
            consts[key] = reg
        wk = self.k[6]
        vy, vcb, vcr, hy, hc, acc_m, keep = self.m[:7]
        outp = {k: b.ireg(v) for k, v in (("r", r), ("g", g), ("b", bb))}

        for i in range(0, n, 64):
            b.setvli(8)
            b.li(addr, y + i)
            b.momldq(vy, addr, self._stride(8))
            b.li(addr, cb + i)
            b.momldq(vcb, addr, self._stride(8))
            b.li(addr, cr + i)
            b.momldq(vcr, addr, self._stride(8))
            for name in ("r", "g", "b"):
                for part in (0, 1):
                    unpack = b.punpcklb if part == 0 else b.punpckhb
                    unpack(hy, vy, self.mzero)
                    if name == "r":
                        unpack(hc, vcr, self.mzero)
                        b.psubh(hc, hc, consts["c128"])
                        b.pmullh(acc_m, hc, consts["c179"])
                    elif name == "b":
                        unpack(hc, vcb, self.mzero)
                        b.psubh(hc, hc, consts["c128"])
                        b.pmullh(acc_m, hc, consts["c227"])
                    else:
                        unpack(hc, vcb, self.mzero)
                        b.psubh(hc, hc, consts["c128"])
                        b.pmullh(acc_m, hc, consts["cm44"])
                        unpack(wk, vcr, self.mzero)
                        b.psubh(wk, wk, consts["c128"])
                        b.pmullh(wk, wk, consts["cm91"])
                        b.paddh(acc_m, acc_m, wk)
                    b.paddh(acc_m, acc_m, consts["c64"])
                    b.psrah(acc_m, acc_m, 7)
                    b.paddh(acc_m, acc_m, hy)
                    if part == 0:
                        b.mommov(keep, acc_m)
                b.packushb(acc_m, keep, acc_m)     # clamps to [0, 255]
                b.momstq(acc_m, outp[name], self._stride(8))
            for reg in outp.values():
                b.addi(reg, reg, 64)
        for reg in outp.values():
            b.free(reg)

    # -- resampling -----------------------------------------------------------------------------------

    def downsample2(self, src, w, h, dst) -> None:
        b = self.b
        ps, pd = self.r[:2]
        x_lo, x_hi, evens, mask = self.m[:4]
        if "evenmask16" not in self._const_addrs:
            self._const_addrs["evenmask16"] = b.mem.alloc_array(
                np.asarray([0x00FF00FF00FF00FF] * 16, dtype=np.uint64)
            )
        rows = min(8, h // 2)
        b.setvli(rows)
        b.li(ps, self._const_addrs["evenmask16"])
        b.momldq(mask, ps, self._stride(8))
        for y0 in range(0, h, 2 * rows):
            for x in range(0, w, 16):
                b.li(ps, src + y0 * w + x)
                b.momldq(x_lo, ps, self._stride(2 * w))
                b.li(ps, src + y0 * w + x + 8)
                b.momldq(x_hi, ps, self._stride(2 * w))
                b.pand(x_lo, x_lo, mask)
                b.pand(x_hi, x_hi, mask)
                b.packushb(evens, x_lo, x_hi)
                b.li(pd, dst + (y0 // 2) * (w // 2) + x // 2)
                b.momstq(evens, pd, self._stride(w // 2))

    def upsample2(self, src, w, h, dst) -> None:
        b = self.b
        pi, po = self.r[:2]
        x_reg, lo, hi = self.m[:3]
        ow = 2 * w
        rows = min(8, h)
        b.setvli(rows)
        for y0 in range(0, h, rows):
            for x in range(0, w, 8):
                b.li(pi, src + y0 * w + x)
                b.momldq(x_reg, pi, self._stride(w))
                b.punpcklb(lo, x_reg, x_reg)
                b.punpckhb(hi, x_reg, x_reg)
                for parity in (0, 1):
                    obase = dst + (2 * y0 + parity) * ow + 2 * x
                    b.li(po, obase)
                    b.momstq(lo, po, self._stride(2 * ow))
                    b.li(po, obase + 8)
                    b.momstq(hi, po, self._stride(2 * ow))

    # -- dot products ------------------------------------------------------------------------------------

    def dot16(self, a, c, n, out) -> None:
        b = self.b
        pa, pc = self.r[:2]
        mw, md = self.m[:2]
        b.clracc(self.acc)
        for base in range(0, n, 64):
            words = min(16, (n - base) // 4)
            b.setvli(words)
            b.li(pa, a + 2 * base)
            b.momldq(mw, pa, self._stride(8))
            b.li(pc, c + 2 * base)
            b.momldq(md, pc, self._stride(8))
            b.mommvmh(self.acc, mw, md)
        b.racl(out, self.acc, _E.Q)
