"""Packed 192-bit accumulators shared by the MDMX and MOM models.

A packed accumulator (Figure 4 of the paper) is a 192-bit register that is
viewed through the element type of the accumulating instruction:

======== ============ ================
elem      lanes        bits per lane
======== ============ ================
bytes     8            24
halves    4            48
words     2            96
======== ============ ================

Products and sums accumulate at full precision inside the wide lanes, so no
data promotion (pack/unpack) is ever needed; results are *truncated, rounded
and clipped* into an ordinary media register only when read out.

The crucial architectural point the paper makes: an MDMX accumulator
instruction both reads and writes the accumulator, creating a recurrence
that serializes dependent accumulations at the functional-unit latency.  A
MOM matrix instruction amortizes that recurrence over up to 16 rows of work
-- the implementation keeps ``latency`` partial accumulators in flight and
folds them at the end, like classic vector machines.
:class:`PipelinedAccumulation` models exactly that timing argument and is
used by the examples and ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from ..isa.model import ElemType
from . import packed
from .mom_isa import ACC_BITS

_ACC_MASK = (1 << ACC_BITS) - 1


def _lane_width(elem: ElemType) -> int:
    return ACC_BITS // elem.lanes


def _wrap_signed(value: int, bits: int) -> int:
    """Truncate ``value`` to ``bits`` and reinterpret as two's complement."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


class PackedAccumulator:
    """Value of one 192-bit packed accumulator.

    The raw 192-bit image is the canonical state; lane views are decoded on
    demand from the element type of each operation, which is exactly how the
    hardware reinterprets the same flip-flops.
    """

    __slots__ = ("bits",)

    def __init__(self, bits: int = 0) -> None:
        self.bits = bits & _ACC_MASK

    # --- lane views ----------------------------------------------------------

    def lanes(self, elem: ElemType) -> list[int]:
        """Decode the accumulator into signed lanes for an element type."""
        width = _lane_width(elem)
        return [
            _wrap_signed((self.bits >> (i * width)) & ((1 << width) - 1), width)
            for i in range(elem.lanes)
        ]

    def _store_lanes(self, values: list[int], elem: ElemType) -> None:
        width = _lane_width(elem)
        mask = (1 << width) - 1
        bits = 0
        for i, v in enumerate(values):
            bits |= (v & mask) << (i * width)
        self.bits = bits & _ACC_MASK

    # --- accumulate operations ----------------------------------------------

    def clear(self) -> None:
        self.bits = 0

    def _accumulate(self, deltas: np.ndarray, elem: ElemType) -> None:
        width = _lane_width(elem)
        lanes = self.lanes(elem)
        updated = [
            _wrap_signed(lane + int(delta), width)
            for lane, delta in zip(lanes, deltas)
        ]
        self._store_lanes(updated, elem)

    def madd(self, a, b, elem: ElemType, signed: bool = True,
             subtract: bool = False) -> None:
        """``acc +/-= a * b`` per lane, full-precision products."""
        la = packed.to_lanes(a, elem, signed=signed).astype(np.int64).reshape(-1)
        lb = packed.to_lanes(b, elem, signed=signed).astype(np.int64).reshape(-1)
        prod = la * lb
        self._accumulate(-prod if subtract else prod, elem)

    def acc_add(self, a, b, elem: ElemType, subtract: bool = False) -> None:
        """``acc += a + b`` (or ``a - b``) per unsigned lane."""
        la = packed.to_lanes(a, elem, signed=False).astype(np.int64).reshape(-1)
        lb = packed.to_lanes(b, elem, signed=False).astype(np.int64).reshape(-1)
        self._accumulate(la - lb if subtract else la + lb, elem)

    def acc_sad(self, a, b, elem: ElemType) -> None:
        """``acc += |a - b|`` per unsigned lane (motion1's primitive)."""
        la = packed.to_lanes(a, elem, signed=False).astype(np.int64).reshape(-1)
        lb = packed.to_lanes(b, elem, signed=False).astype(np.int64).reshape(-1)
        self._accumulate(np.abs(la - lb), elem)

    def acc_sqd(self, a, b, elem: ElemType) -> None:
        """``acc += (a - b)^2`` per unsigned lane (motion2's primitive)."""
        la = packed.to_lanes(a, elem, signed=False).astype(np.int64).reshape(-1)
        lb = packed.to_lanes(b, elem, signed=False).astype(np.int64).reshape(-1)
        diff = la - lb
        self._accumulate(diff * diff, elem)

    def scalar_add(self, delta: int) -> None:
        """Accumulate into the register viewed as one 192-bit scalar.

        The fully-reducing matrix instructions (``mommsad``, ``mommsqd``,
        ``mommpv``, ``mommvm``) collapse both the row and the lane dimension
        in hardware (an adder tree behind the lanes) and accumulate a single
        wide total -- that is what makes them "very powerful" (Section 2.2):
        the software read-out is a single ``racl`` of the low 64 bits.
        """
        self.bits = (self.bits + delta) & _ACC_MASK

    def scalar_total(self, signed: bool = False) -> int:
        """The accumulator as one wide integer (two's complement option)."""
        if signed and self.bits >= 1 << (ACC_BITS - 1):
            return self.bits - (1 << ACC_BITS)
        return self.bits

    # --- read-out / restore ------------------------------------------------------

    def read_third(self, which: str) -> int:
        """Read the low/middle/high 64-bit third of the raw 192-bit image."""
        shift = {"low": 0, "mid": 64, "high": 128}[which]
        return (self.bits >> shift) & 0xFFFF_FFFF_FFFF_FFFF

    def read_slice(self, which: str, elem: ElemType) -> int:
        """Read one third of *every lane*, packed into a 64-bit word.

        This is the MIPS-style ``rac{l,m,h}.fmt`` semantics: for byte-format
        accumulation (8 x 24-bit lanes), ``racl`` returns the low 8 bits of
        each lane as a packed byte word, ``racm`` the middle 8 bits and
        ``rach`` the high 8 bits; halfword format slices 16-bit chunks of
        the 4 x 48-bit lanes.  Software then reassembles wide values with
        ordinary ``punpck`` instructions -- no special datapath needed.
        """
        width = _lane_width(elem)
        third = width // 3
        offset = {"low": 0, "mid": third, "high": 2 * third}[which]
        mask = (1 << third) - 1
        out = 0
        for i in range(elem.lanes):
            lane_bits = (self.bits >> (i * width)) & ((1 << width) - 1)
            out |= ((lane_bits >> offset) & mask) << (i * third)
        return out & 0xFFFF_FFFF_FFFF_FFFF

    def write_third(self, which: str, value: int) -> None:
        """Restore one 64-bit third (``wacl``/``wach``)."""
        shift = {"low": 0, "mid": 64, "high": 128}[which]
        mask = 0xFFFF_FFFF_FFFF_FFFF << shift
        self.bits = (self.bits & ~mask | (value & 0xFFFF_FFFF_FFFF_FFFF) << shift) & _ACC_MASK

    def read_saturated(self, elem: ElemType, signed: bool, shift: int = 0) -> int:
        """Round, shift and clip lanes into a packed 64-bit word.

        This is the ``racc{s,u}{b,h}`` read-out: each wide lane is rounded to
        nearest (adding half an LSB before an arithmetic right shift by
        ``shift``), then saturated to the target signed/unsigned range.
        """
        if shift < 0:
            raise ValueError("shift must be non-negative")
        out = []
        for lane in self.lanes(elem):
            if shift:
                lane = (lane + (1 << (shift - 1))) >> shift
            out.append(lane)
        clipped = packed.saturate(np.asarray(out, dtype=np.int64), elem, signed)
        return int(packed.from_lanes(clipped))

    def total(self, elem: ElemType) -> int:
        """Sum of all lanes -- convenient for reduction read-out in kernels."""
        return sum(self.lanes(elem))

    def copy(self) -> "PackedAccumulator":
        return PackedAccumulator(self.bits)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedAccumulator):
            return NotImplemented
        return self.bits == other.bits

    def __repr__(self) -> str:
        return f"PackedAccumulator({self.bits:#050x})"


class PipelinedAccumulation:
    """Timing model of the accumulator recurrence (Section 2.1).

    Models a functional unit of latency ``L`` fed a chain of ``n`` dependent
    accumulation operations:

    * **MDMX style** -- every operation needs the previous accumulator value,
      so operation *i* cannot start before *i-1* finishes: ``n * L`` cycles.
    * **MOM style** -- one matrix instruction carries VL independent row
      operations; the unit keeps ``L`` partial accumulators in flight and
      retires one row per cycle per lane, folding partials at the end:
      ``VL / lanes + L`` cycles per instruction.

    This little analytical model backs the ``accumulator_pipelining`` example
    and the ablation benchmark; the full cycle simulator reproduces the same
    effect mechanically through its dependence tracking.
    """

    def __init__(self, latency: int, lanes: int = 1) -> None:
        if latency < 1 or lanes < 1:
            raise ValueError("latency and lanes must be >= 1")
        self.latency = latency
        self.lanes = lanes

    def mdmx_cycles(self, operations: int) -> int:
        """Cycles for ``operations`` chained accumulations, MDMX style."""
        if operations < 0:
            raise ValueError("operation count must be non-negative")
        return operations * self.latency

    def mom_cycles(self, rows: int, instructions: int = 1) -> int:
        """Cycles for ``instructions`` matrix accumulations of ``rows`` rows.

        Rows stream through the pipeline at ``lanes`` per cycle; the final
        fold of the ``latency`` partial accumulators costs one drain.
        Consecutive matrix instructions can be chained back-to-back because
        partial accumulators carry across instructions; the drain is paid
        once.
        """
        if rows < 0 or instructions < 0:
            raise ValueError("counts must be non-negative")
        if instructions == 0 or rows == 0:
            return 0
        streaming = instructions * -(-rows // self.lanes)  # ceil division
        return streaming + self.latency
