"""MOM: the Matrix Oriented Multimedia instruction set (121 opcodes).

This is the paper's central contribution (Section 2.2).  MOM is a load/store
matrix ISA whose register file holds **16 logical matrix registers**, each a
16-row matrix of 64-bit packed words, plus **2 logical 192-bit packed
accumulators** and a **vector length (VL) register** (renamed through the
integer pool).  Every MOM computation instruction is "a vector version of an
MDMX instruction": it applies the packed MDMX operation to the first VL rows
of its matrix operands.  Memory instructions walk memory with an arbitrary
byte stride between consecutive rows -- the key difference from simply
enlarging an MMX register, since matrix rows are not adjacent in memory.

The four paper categories map to the table below:

* *packed arithmetic and logical operations* -- matrix translations of the
  MDMX packed-arithmetic subset (54 opcodes, same mnemonics);
* *memory instructions* -- strided loads/stores plus row-granularity and
  broadcast variants (8);
* *matrix operations* -- accumulator forms (25, as MDMX) plus the "very
  powerful" matrix instructions: matrix-per-vector products, the MPEG-2
  matrix sum of quadratic differences, matrix SAD and register transpose
  (11);
* *auxiliary operations* -- VL management, row reductions and shifts,
  vector-scalar broadcast forms, and register clears (23).

Total: exactly 121 opcodes, the count the paper reports for its MOM
emulation library.
"""

from __future__ import annotations

import dataclasses

from ..isa.mdmx import MDMX
from ..isa.mmx import MED_MUL_LATENCY
from ..isa.model import ElemType, InstrClass, IsaTable, Opcode

#: Rows in a MOM matrix register; also the maximum vector length.
MATRIX_ROWS = 16

#: Width of one matrix row in bits (one MMX-style packed word).
ROW_BITS = 64

#: Width of a MOM/MDMX packed accumulator in bits (three 64-bit words,
#: giving 8 x 24-bit lanes for byte operations or 4 x 48-bit lanes for
#: halfword operations -- see Figure 4 of the paper).
ACC_BITS = 192

MOM = IsaTable("mom")

#: MDMX opcodes *not* vectorized into MOM: the scalar memory and data
#: movement group is replaced by matrix-specific equivalents below.
_NOT_VECTORIZED = {
    "mdmx_ldq", "mdmx_stq", "mdmx_ldq_u",
    "movq", "movd_to", "movd_from", "pshufh",
    "pextrh", "pinsrh",
}

for _shared in MDMX:
    if _shared.name in _NOT_VECTORIZED:
        continue
    MOM.add(dataclasses.replace(_shared, isa="mom"))


def _op(
    name: str,
    iclass: InstrClass,
    elem: ElemType,
    latency: int = 1,
    category: str = "arith",
    description: str = "",
    reads_acc: bool = False,
    writes_acc: bool = False,
) -> Opcode:
    return MOM.add(
        Opcode(
            name=name,
            isa="mom",
            iclass=iclass,
            latency=latency,
            elem=elem,
            category=category,
            description=description,
            reads_acc=reads_acc,
            writes_acc=writes_acc,
        )
    )


_E = ElemType
_MUL = MED_MUL_LATENCY

# --- memory (8): strided matrix loads/stores ---------------------------------
_op("momldq", InstrClass.MED_LOAD, _E.Q, 1, "memory",
    "load VL 64-bit rows; row i from base + i*stride")
_op("momstq", InstrClass.MED_STORE, _E.Q, 1, "memory",
    "store VL 64-bit rows; row i to base + i*stride")
_op("momldq_u", InstrClass.MED_LOAD, _E.Q, 1, "memory",
    "strided matrix load tolerating unaligned row addresses")
_op("momstq_u", InstrClass.MED_STORE, _E.Q, 1, "memory",
    "strided matrix store tolerating unaligned row addresses")
_op("momldrow", InstrClass.MED_LOAD, _E.Q, 1, "memory",
    "load one 64-bit word into a selected matrix row")
_op("momstrow", InstrClass.MED_STORE, _E.Q, 1, "memory",
    "store one selected matrix row to memory")
_op("momldbcast", InstrClass.MED_LOAD, _E.Q, 1, "memory",
    "load one 64-bit word, broadcast into all VL rows")
_op("momprefetch", InstrClass.MED_LOAD, _E.Q, 1, "memory",
    "software prefetch of a strided row sequence (no register write)")

# --- data movement (4) ---------------------------------------------------------
_op("mommov", InstrClass.MED_SIMPLE, _E.Q, 1, "move", "matrix register copy")
_op("momextrow", InstrClass.MED_SIMPLE, _E.Q, 1, "move",
    "extract one matrix row into an integer register")
_op("mominsrow", InstrClass.MED_SIMPLE, _E.Q, 1, "move",
    "insert an integer register into one matrix row")
_op("mombcastrow", InstrClass.MED_SIMPLE, _E.Q, 1, "move",
    "broadcast row 0 into all VL rows")

# --- matrix operations (11): the heavy lifters of Section 2.2 ------------------
_op("mommpvb", InstrClass.MED_COMPLEX, _E.B, _MUL, "matrix",
    "matrix-per-vector: acc_lane += sum_rows(M[r] * v) per byte lane",
    reads_acc=True, writes_acc=True)
_op("mommpvh", InstrClass.MED_COMPLEX, _E.H, _MUL, "matrix",
    "matrix-per-vector: acc_lane += sum_rows(M[r] * v) per halfword lane",
    reads_acc=True, writes_acc=True)
_op("mommvmb", InstrClass.MED_COMPLEX, _E.B, _MUL, "matrix",
    "vector-per-matrix product, byte lanes", reads_acc=True, writes_acc=True)
_op("mommvmh", InstrClass.MED_COMPLEX, _E.H, _MUL, "matrix",
    "vector-per-matrix product, halfword lanes", reads_acc=True, writes_acc=True)
_op("mommsadb", InstrClass.MED_COMPLEX, _E.B, _MUL, "matrix",
    "matrix sum of absolute differences into accumulator, byte lanes",
    reads_acc=True, writes_acc=True)
_op("mommsadh", InstrClass.MED_COMPLEX, _E.H, _MUL, "matrix",
    "matrix sum of absolute differences into accumulator, halfword lanes",
    reads_acc=True, writes_acc=True)
_op("mommsqdb", InstrClass.MED_COMPLEX, _E.B, _MUL, "matrix",
    "MPEG-2 matrix sum of quadratic differences, byte lanes",
    reads_acc=True, writes_acc=True)
_op("mommsqdh", InstrClass.MED_COMPLEX, _E.H, _MUL, "matrix",
    "MPEG-2 matrix sum of quadratic differences, halfword lanes",
    reads_acc=True, writes_acc=True)
_op("momtransb", InstrClass.MED_SIMPLE, _E.B, 2, "matrix",
    "transpose the 8x8 byte blocks of a matrix register")
_op("momtransh", InstrClass.MED_SIMPLE, _E.H, 2, "matrix",
    "transpose the 4x4 halfword blocks of a matrix register")
_op("momtransw", InstrClass.MED_SIMPLE, _E.W, 2, "matrix",
    "transpose the 2x2 word blocks of a matrix register")

# --- vector length management (3) ------------------------------------------------
_op("setvl", InstrClass.INT_SIMPLE, _E.NONE, 1, "aux",
    "VL <- min(rs, 16); renamed through the integer pool")
_op("setvli", InstrClass.INT_SIMPLE, _E.NONE, 1, "aux",
    "VL <- immediate")
_op("readvl", InstrClass.INT_SIMPLE, _E.NONE, 1, "aux",
    "rd <- VL")

# --- row reductions (3) -------------------------------------------------------------
_op("momvsumb", InstrClass.MED_COMPLEX, _E.B, _MUL, "reduction",
    "sum the VL rows lane-wise into row 0, saturating bytes")
_op("momvsumh", InstrClass.MED_COMPLEX, _E.H, _MUL, "reduction",
    "sum the VL rows lane-wise into row 0, saturating halves")
_op("momvsumw", InstrClass.MED_COMPLEX, _E.W, _MUL, "reduction",
    "sum the VL rows lane-wise into row 0, wraparound words")

# --- row shifts (2) ------------------------------------------------------------------
_op("momrowshl", InstrClass.MED_SIMPLE, _E.Q, 1, "aux",
    "shift matrix rows towards row 0 (row i <- row i+1)")
_op("momrowshr", InstrClass.MED_SIMPLE, _E.Q, 1, "aux",
    "shift matrix rows away from row 0 (row i+1 <- row i)")

# --- vector-scalar broadcast forms (8): matrix OP row0-of-second-operand -------------
_op("vsaddb", InstrClass.MED_SIMPLE, _E.B, 1, "vector_scalar",
    "add row 0 of rb to every row of ra, unsigned-saturating bytes")
_op("vsaddh", InstrClass.MED_SIMPLE, _E.H, 1, "vector_scalar",
    "add row 0 of rb to every row of ra, signed-saturating halves")
_op("vssubb", InstrClass.MED_SIMPLE, _E.B, 1, "vector_scalar",
    "subtract row 0 of rb from every row of ra, unsigned-saturating bytes")
_op("vssubh", InstrClass.MED_SIMPLE, _E.H, 1, "vector_scalar",
    "subtract row 0 of rb from every row of ra, signed-saturating halves")
_op("vsmullh", InstrClass.MED_COMPLEX, _E.H, _MUL, "vector_scalar",
    "multiply every row of ra by row 0 of rb, low halves")
_op("vsmulhh", InstrClass.MED_COMPLEX, _E.H, _MUL, "vector_scalar",
    "multiply every row of ra by row 0 of rb, high halves")
_op("vsandq", InstrClass.MED_SIMPLE, _E.Q, 1, "vector_scalar",
    "and row 0 of rb into every row of ra")
_op("vsorq", InstrClass.MED_SIMPLE, _E.Q, 1, "vector_scalar",
    "or row 0 of rb into every row of ra")

# --- misc (3) ---------------------------------------------------------------------------
_op("momzero", InstrClass.MED_SIMPLE, _E.Q, 1, "aux", "zero all rows of rd")
_op("momabsb", InstrClass.MED_SIMPLE, _E.B, 1, "arith",
    "packed absolute value of signed bytes, all VL rows")
_op("momabsh", InstrClass.MED_SIMPLE, _E.H, 1, "arith",
    "packed absolute value of signed halves, all VL rows")

#: The paper reports exactly 121 instructions in its MOM emulation library.
EXPECTED_OPCODE_COUNT = 121

assert len(MOM) == EXPECTED_OPCODE_COUNT, f"MOM table has {len(MOM)} opcodes"
