"""2D vectorization analysis: the quantitative argument of Section 2.

Figure 3 of the paper contrasts how three ISA paradigms cover the same
nested loop (the 16x16 SAD of ``dist1``):

* a **conventional vector** ISA vectorizes the inner loop only, loading one
  8-bit pixel per 64-bit vector element -- 8x waste;
* an **MMX-like** ISA packs 8 pixels per 64-bit register but is confined to
  one row (consecutive addresses);
* **MOM** vectorizes both loops at once: up to 16 rows x 8 pixels = 128
  elements per instruction, with an arbitrary stride between rows.

This module expresses that comparison as an analyzable model: a
:class:`LoopNest` describes the two parallel levels, and each paradigm's
coverage, register utilization and instruction count fall out.  The
``vectorization_comparison`` example and several tests are built on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mom_isa import MATRIX_ROWS, ROW_BITS


@dataclass(frozen=True)
class LoopNest:
    """Two nested data-parallel loops over packed sub-word data.

    Attributes:
        inner_trip: iterations of the inner (contiguous) loop.
        outer_trip: iterations of the outer (strided) loop.
        elem_bits: data size of one element (8 for pixels).
        stride_bytes: byte distance between consecutive outer iterations;
            anything other than the inner extent makes the rows
            non-contiguous, which is what defeats "just use a wider
            register" (the paper's Altivec argument).
    """

    inner_trip: int
    outer_trip: int
    elem_bits: int = 8
    stride_bytes: int = 0

    def __post_init__(self) -> None:
        if self.inner_trip < 1 or self.outer_trip < 1:
            raise ValueError("loop trip counts must be positive")
        if self.elem_bits not in (8, 16, 32, 64):
            raise ValueError("element size must be 8/16/32/64 bits")

    @property
    def total_elements(self) -> int:
        return self.inner_trip * self.outer_trip

    @property
    def rows_contiguous(self) -> bool:
        """True when outer iterations touch consecutive memory."""
        inner_bytes = self.inner_trip * self.elem_bits // 8
        return self.stride_bytes in (0, inner_bytes)


@dataclass(frozen=True)
class Coverage:
    """How one ISA paradigm covers a loop nest with one instruction."""

    paradigm: str
    elements_per_instruction: int
    useful_register_bits: int
    register_bits: int

    @property
    def utilization(self) -> float:
        """Fraction of register storage holding useful data (Figure 3a's
        waste: a conventional vector register holds 8 bits per 64)."""
        return self.useful_register_bits / self.register_bits

    def instructions_for(self, nest: LoopNest) -> int:
        """Instructions needed to cover the whole nest at this width."""
        return -(-nest.total_elements // self.elements_per_instruction)


def conventional_vector(nest: LoopNest, vector_length: int = 16) -> Coverage:
    """Classic vector ISA: inner loop only, one element per 64-bit slot."""
    elements = min(nest.inner_trip, vector_length)
    return Coverage(
        paradigm="vector",
        elements_per_instruction=elements,
        useful_register_bits=elements * nest.elem_bits,
        register_bits=vector_length * 64,
    )


def mmx_like(nest: LoopNest, register_bits: int = 64) -> Coverage:
    """Sub-word SIMD: packs the inner loop into one register, one row only.

    Widening the register (a la Altivec) helps only while the data is
    contiguous: coverage is capped at one row when rows are strided.
    """
    lanes = register_bits // nest.elem_bits
    if nest.rows_contiguous:
        elements = min(nest.total_elements, lanes)
    else:
        elements = min(nest.inner_trip, lanes)
    return Coverage(
        paradigm="mmx",
        elements_per_instruction=elements,
        useful_register_bits=elements * nest.elem_bits,
        register_bits=register_bits,
    )


def mom_matrix(nest: LoopNest) -> Coverage:
    """MOM: inner loop packs a row, outer loop fills up to 16 rows."""
    lanes = ROW_BITS // nest.elem_bits
    inner = min(nest.inner_trip, lanes)
    rows = min(nest.outer_trip, MATRIX_ROWS)
    return Coverage(
        paradigm="mom",
        elements_per_instruction=inner * rows,
        useful_register_bits=inner * rows * nest.elem_bits,
        register_bits=MATRIX_ROWS * ROW_BITS,
    )


def compare(nest: LoopNest) -> dict[str, Coverage]:
    """All three paradigms over one loop nest (the Figure 3 table)."""
    return {
        "vector": conventional_vector(nest),
        "mmx": mmx_like(nest),
        "mom": mom_matrix(nest),
    }


def scalar_baseline(nest: LoopNest) -> Coverage:
    """The plain-superscalar baseline: one element per instruction."""
    return Coverage(
        paradigm="scalar",
        elements_per_instruction=1,
        useful_register_bits=nest.elem_bits,
        register_bits=64,
    )


def coverage_for_isa(nest: LoopNest, isa: str) -> Coverage:
    """Coverage oracle of the vectorizing compiler (:mod:`repro.vc`).

    Maps the four simulated ISAs onto the Section 2 paradigms: this is
    what ``repro kernels`` reports per compiled kernel, and what makes
    the analytical model *executable* -- the lowering passes realize the
    tiling this oracle predicts (MDMX shares MMX's one-row coverage; its
    accumulators change the reduction cost, not the loop coverage).
    """
    import dataclasses

    if isa == "alpha":
        return scalar_baseline(nest)
    if isa in ("mmx", "mdmx"):
        return dataclasses.replace(mmx_like(nest), paradigm=isa)
    if isa == "mom":
        return mom_matrix(nest)
    raise KeyError(f"unknown ISA {isa!r}")


def dist1_nest(length: int = 352) -> LoopNest:
    """The paper's running example: a 16x16 SAD inside a ``length``-wide
    frame (rows are 16 bytes apart only if length == 16)."""
    return LoopNest(inner_trip=16, outer_trip=16, elem_bits=8,
                    stride_bytes=length)
