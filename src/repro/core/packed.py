"""Packed (sub-word) fixed-point arithmetic on 64-bit words.

This module supplies the functional semantics shared by the MMX, MDMX and
MOM emulation libraries: every media instruction ultimately reduces to one of
these operations applied to one 64-bit word (MMX/MDMX) or to each of the VL
rows of a matrix register (MOM).

Representation
--------------
A packed word is a ``numpy.uint64``.  Arrays of packed words (a MOM matrix
register is an array of 16) work transparently: every function accepts
``numpy`` arrays of any shape with ``dtype=uint64`` and returns an array of
the same shape.  Lane access uses little-endian ``view`` reinterpretation,
i.e. byte lane 0 is the least significant byte, matching how the kernels lay
data out in the byte-addressable :class:`repro.emulib.memory.Memory`.

Element types
-------------
Operations are parameterized by :class:`repro.isa.model.ElemType`:
``B`` = 8x8-bit, ``H`` = 4x16-bit, ``W`` = 2x32-bit, ``Q`` = 1x64-bit.

All arithmetic matches the saturating fixed-point behaviour of the modeled
ISAs; intermediate products are computed at full precision before any
truncation, exactly as hardware would.
"""

from __future__ import annotations

import numpy as np

from ..isa.model import ElemType

#: numpy dtypes used to reinterpret a packed uint64 word, per element type.
_UNSIGNED_DTYPE = {
    ElemType.B: np.uint8,
    ElemType.H: np.uint16,
    ElemType.W: np.uint32,
    ElemType.Q: np.uint64,
}
_SIGNED_DTYPE = {
    ElemType.B: np.int8,
    ElemType.H: np.int16,
    ElemType.W: np.int32,
    ElemType.Q: np.int64,
}

#: Saturation bounds per element type: (signed_min, signed_max, unsigned_max).
_BOUNDS = {
    ElemType.B: (-(1 << 7), (1 << 7) - 1, (1 << 8) - 1),
    ElemType.H: (-(1 << 15), (1 << 15) - 1, (1 << 16) - 1),
    ElemType.W: (-(1 << 31), (1 << 31) - 1, (1 << 32) - 1),
    ElemType.Q: (-(1 << 63), (1 << 63) - 1, (1 << 64) - 1),
}


def _as_words(a) -> np.ndarray:
    """Coerce ``a`` (int or array-like) to a contiguous uint64 array.

    0-d inputs stay 0-d so scalar operations round-trip through ``int()``.
    """
    arr = np.asarray(a, dtype=np.uint64)
    if arr.ndim and not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    return arr


def to_lanes(a, elem: ElemType, signed: bool = False) -> np.ndarray:
    """Unpack 64-bit words into sub-word lanes.

    Args:
        a: scalar or array of packed uint64 words, any shape ``S``.
        elem: lane width selector.
        signed: reinterpret lanes as two's-complement signed values.

    Returns:
        Array of shape ``S + (lanes,)`` with the lane dtype.
    """
    words = _as_words(a)
    dtype = _SIGNED_DTYPE[elem] if signed else _UNSIGNED_DTYPE[elem]
    return words.reshape(words.shape + (1,)).view(dtype)


def from_lanes(lanes: np.ndarray) -> np.ndarray:
    """Repack a lane array (as produced by :func:`to_lanes`) into uint64 words.

    The trailing axis is collapsed; lane values are masked to their width so
    callers may pass wider intermediate dtypes -- including object arrays of
    Python ints, which the 64-bit ``Q`` operations use for full precision.
    """
    lanes = np.asarray(lanes)
    lane_bits = 64 // lanes.shape[-1]
    if lanes.dtype == object:
        # Mask with Python ints first: negative values must wrap to their
        # two's-complement image before the uint64 cast.
        unsigned = (lanes & ((1 << lane_bits) - 1)).astype(np.uint64)
    else:
        mask = np.uint64((1 << lane_bits) - 1)
        unsigned = lanes.astype(np.uint64) & mask
    shifts = np.arange(lanes.shape[-1], dtype=np.uint64) * np.uint64(lane_bits)
    return (unsigned << shifts).sum(axis=-1, dtype=np.uint64)


def saturate(values: np.ndarray, elem: ElemType, signed: bool) -> np.ndarray:
    """Clamp ``values`` (a wide-dtype lane array) to the lane's numeric range."""
    smin, smax, umax = _BOUNDS[elem]
    if signed:
        return np.clip(values, smin, smax)
    return np.clip(values, 0, umax)


def _wide(lanes: np.ndarray, elem: ElemType) -> np.ndarray:
    """Widen lanes so sums/products cannot overflow.

    Sub-64-bit lanes fit int64; full-width ``Q`` lanes go through object
    arrays of Python ints (int64 would wrap unsigned values above 2^63 and
    overflow at the arithmetic itself).
    """
    if elem is ElemType.Q:
        return lanes.astype(object)
    return lanes.astype(np.int64)


def _binary_wide(a, b, elem: ElemType, signed: bool):
    """Unpack both operands into wide lanes for overflow-free arithmetic."""
    la = _wide(to_lanes(a, elem, signed=signed), elem)
    lb = _wide(to_lanes(b, elem, signed=signed), elem)
    return la, lb


# --- add / subtract ----------------------------------------------------------

def add_wrap(a, b, elem: ElemType) -> np.ndarray:
    """Packed modular (wraparound) addition."""
    la, lb = _binary_wide(a, b, elem, signed=False)
    return from_lanes(la + lb)


def add_sat(a, b, elem: ElemType, signed: bool) -> np.ndarray:
    """Packed saturating addition (signed or unsigned)."""
    la, lb = _binary_wide(a, b, elem, signed=signed)
    return from_lanes(saturate(la + lb, elem, signed))


def sub_wrap(a, b, elem: ElemType) -> np.ndarray:
    """Packed modular (wraparound) subtraction."""
    la, lb = _binary_wide(a, b, elem, signed=False)
    return from_lanes(la - lb)


def sub_sat(a, b, elem: ElemType, signed: bool) -> np.ndarray:
    """Packed saturating subtraction (signed or unsigned)."""
    la, lb = _binary_wide(a, b, elem, signed=signed)
    return from_lanes(saturate(la - lb, elem, signed))


# --- multiply ----------------------------------------------------------------

def mul_low(a, b, elem: ElemType) -> np.ndarray:
    """Packed multiply keeping the low half of each signed product."""
    la, lb = _binary_wide(a, b, elem, signed=True)
    return from_lanes(la * lb)


def mul_high(a, b, elem: ElemType, signed: bool = True) -> np.ndarray:
    """Packed multiply keeping the high half of each product."""
    la, lb = _binary_wide(a, b, elem, signed=signed)
    bits = elem.bits
    return from_lanes((la * lb) >> bits)


def mul_add_pairs(a, b) -> np.ndarray:
    """MMX ``pmaddh``: multiply 16-bit lanes, sum adjacent pairs into 32-bit.

    ``result.w[i] = a.h[2i]*b.h[2i] + a.h[2i+1]*b.h[2i+1]`` (signed, full
    precision -- the 33-bit worst case wraps into the 32-bit lane as on x86).
    """
    la, lb = _binary_wide(a, b, ElemType.H, signed=True)
    prod = la * lb
    pairs = prod[..., 0::2] + prod[..., 1::2]
    return from_lanes(pairs)


# --- average / absolute difference --------------------------------------------

def avg_round(a, b, elem: ElemType) -> np.ndarray:
    """Packed rounded average of unsigned lanes: ``(a + b + 1) >> 1``."""
    la, lb = _binary_wide(a, b, elem, signed=False)
    return from_lanes((la + lb + 1) >> 1)


def absdiff(a, b, elem: ElemType) -> np.ndarray:
    """Packed absolute difference of unsigned lanes."""
    la, lb = _binary_wide(a, b, elem, signed=False)
    return from_lanes(np.abs(la - lb))


def sad(a, b, elem: ElemType = ElemType.B) -> np.ndarray:
    """Sum of absolute differences, reduced into lane 0 of the result word."""
    la, lb = _binary_wide(a, b, elem, signed=False)
    total = np.abs(la - lb).sum(axis=-1)
    return total.astype(np.uint64)


def abs_packed(a, elem: ElemType) -> np.ndarray:
    """Packed absolute value of signed lanes (saturating ``abs(min)``)."""
    la = _wide(to_lanes(a, elem, signed=True), elem)
    return from_lanes(saturate(np.abs(la), elem, signed=True))


# --- min / max ------------------------------------------------------------------

def minmax(a, b, elem: ElemType, signed: bool, take_max: bool) -> np.ndarray:
    """Packed lane-wise minimum or maximum."""
    la, lb = _binary_wide(a, b, elem, signed=signed)
    return from_lanes(np.maximum(la, lb) if take_max else np.minimum(la, lb))


# --- compares / select ------------------------------------------------------------

def cmp_mask(a, b, elem: ElemType, op: str) -> np.ndarray:
    """Packed compare producing an all-ones / all-zeros lane mask.

    Args:
        op: ``"eq"`` for equality or ``"gt"`` for signed greater-than.
    """
    signed = op == "gt"
    la, lb = _binary_wide(a, b, elem, signed=signed)
    if op == "eq":
        hit = la == lb
    elif op == "gt":
        hit = la > lb
    else:
        raise ValueError(f"unknown compare op {op!r}")
    umax = _BOUNDS[elem][2]
    return from_lanes(np.where(hit, umax, 0))


def select(mask, a, b) -> np.ndarray:
    """Bitwise select: ``(mask & a) | (~mask & b)`` (the ``pcmov`` primitive)."""
    m = _as_words(mask)
    wa = _as_words(a)
    wb = _as_words(b)
    return (m & wa) | (~m & wb)


# --- shifts --------------------------------------------------------------------------

def shift(a, count: int, elem: ElemType, kind: str) -> np.ndarray:
    """Packed shift of every lane by an immediate count.

    Args:
        kind: ``"sll"`` (left logical), ``"srl"`` (right logical) or
            ``"sra"`` (right arithmetic).  Counts >= lane width produce 0
            (or the sign fill for ``sra``), as on real hardware.
    """
    if count < 0:
        raise ValueError("shift count must be non-negative")
    bits = elem.bits
    if kind == "sra":
        la = to_lanes(a, elem, signed=True).astype(np.int64)
        eff = min(count, bits - 1)
        return from_lanes(la >> eff)
    la = to_lanes(a, elem, signed=False).astype(np.uint64)
    if count >= bits:
        return from_lanes(np.zeros_like(la))
    if kind == "sll":
        return from_lanes(la << np.uint64(count))
    if kind == "srl":
        return from_lanes(la >> np.uint64(count))
    raise ValueError(f"unknown shift kind {kind!r}")


# --- pack / unpack ----------------------------------------------------------------------

_NARROW = {ElemType.H: ElemType.B, ElemType.W: ElemType.H}


def pack_sat(a, b, elem: ElemType, signed: bool) -> np.ndarray:
    """Narrow two words into one with saturation (``packsshb`` family).

    Lanes of ``a`` fill the low half of the result, lanes of ``b`` the high
    half, each saturated to the next-narrower element type.
    """
    narrow = _NARROW[elem]
    la = to_lanes(a, elem, signed=True).astype(np.int64)
    lb = to_lanes(b, elem, signed=True).astype(np.int64)
    merged = np.concatenate([la, lb], axis=-1)
    return from_lanes(saturate(merged, narrow, signed))


def unpack_interleave(a, b, elem: ElemType, high: bool) -> np.ndarray:
    """Interleave low (or high) lanes of two words (``punpckl*``/``punpckh*``).

    ``result`` alternates lanes ``a[i], b[i]`` starting from the low (or
    high) half of the sources; the result has the same lane width, so half
    the source lanes of each word survive.
    """
    la = to_lanes(a, elem, signed=False)
    lb = to_lanes(b, elem, signed=False)
    lanes = elem.lanes
    half = lanes // 2
    sel = slice(half, lanes) if high else slice(0, half)
    out = np.empty(la.shape[:-1] + (lanes,), dtype=la.dtype)
    out[..., 0::2] = la[..., sel]
    out[..., 1::2] = lb[..., sel]
    return from_lanes(out)


def shuffle_halves(a, order: tuple[int, int, int, int]) -> np.ndarray:
    """Rearrange the four 16-bit lanes of each word (``pshufh``)."""
    if len(order) != 4:
        raise ValueError("order must have four entries")
    if any(not 0 <= i < 4 for i in order):
        raise ValueError("shuffle indices must be in range(4)")
    la = to_lanes(a, ElemType.H, signed=False)
    return from_lanes(la[..., list(order)])


# --- horizontal reductions ---------------------------------------------------------------

def horizontal_sum(a, elem: ElemType) -> np.ndarray:
    """Sum all lanes of each word into a 64-bit scalar (``psum*`` family)."""
    la = to_lanes(a, elem, signed=False).astype(np.uint64)
    return la.sum(axis=-1, dtype=np.uint64)


# --- scalar <-> lane helpers used by the builders -------------------------------------------

def word_from_bytes(data: bytes) -> int:
    """Build a packed word from up to 8 little-endian bytes."""
    if len(data) > 8:
        raise ValueError("at most 8 bytes fit a packed word")
    return int.from_bytes(data.ljust(8, b"\0"), "little")


def word_to_bytes(word: int) -> bytes:
    """Little-endian byte image of a packed word."""
    return int(word).to_bytes(8, "little")


def lane_count(elem: ElemType) -> int:
    """Lanes per 64-bit word for an element type."""
    return elem.lanes
