"""The MOM matrix register: a 16-row matrix of 64-bit packed words.

A MOM register (Section 2.2 of the paper) holds two dimensions of data-level
parallelism at once:

* the *intra-word* dimension -- each 64-bit row is an MMX-style packed word
  of 8/4/2 sub-word lanes, and
* the *inter-word* dimension -- up to 16 rows, selected by the vector length
  (VL) register, loaded from memory with an arbitrary byte stride between
  consecutive rows.

This module gives the matrix register a convenient numpy-backed value type
used by the functional emulation library, the MOM builder and the tests.
The timing simulator never touches values; it only sees instruction records.
"""

from __future__ import annotations

import numpy as np

from ..isa.model import ElemType
from . import packed
from .mom_isa import MATRIX_ROWS


class MomRegister:
    """Value of one MOM matrix register: 16 rows x 64 bits.

    The register is mutable (the emulation library updates rows in place) and
    always stores all 16 rows; instructions shorter than the full register
    simply leave rows at and beyond VL untouched, as the hardware would.
    """

    __slots__ = ("rows",)

    def __init__(self, rows=None) -> None:
        if rows is None:
            self.rows = np.zeros(MATRIX_ROWS, dtype=np.uint64)
        else:
            arr = np.asarray(rows, dtype=np.uint64)
            if arr.shape != (MATRIX_ROWS,):
                raise ValueError(
                    f"a MOM register has exactly {MATRIX_ROWS} rows, got {arr.shape}"
                )
            self.rows = arr.copy()

    # --- construction helpers --------------------------------------------

    @classmethod
    def from_lane_matrix(cls, lanes: np.ndarray, elem: ElemType) -> "MomRegister":
        """Build a register from a ``(rows, lanes)`` matrix of lane values.

        Rows beyond the supplied matrix are zero.  Lane values are truncated
        to the lane width (two's complement).
        """
        lanes = np.asarray(lanes)
        if lanes.ndim != 2 or lanes.shape[1] != elem.lanes:
            raise ValueError(
                f"expected (rows, {elem.lanes}) lane matrix, got {lanes.shape}"
            )
        if lanes.shape[0] > MATRIX_ROWS:
            raise ValueError(f"at most {MATRIX_ROWS} rows fit a MOM register")
        reg = cls()
        reg.rows[: lanes.shape[0]] = packed.from_lanes(lanes)
        return reg

    def to_lane_matrix(self, elem: ElemType, signed: bool = False) -> np.ndarray:
        """View the register as a ``(16, lanes)`` matrix of lane values."""
        return packed.to_lanes(self.rows, elem, signed=signed)

    def copy(self) -> "MomRegister":
        return MomRegister(self.rows)

    # --- row access ---------------------------------------------------------

    def get_row(self, index: int) -> int:
        """Read one 64-bit row as a Python int."""
        return int(self.rows[index])

    def set_row(self, index: int, value: int) -> None:
        """Write one 64-bit row."""
        self.rows[index] = np.uint64(value & 0xFFFF_FFFF_FFFF_FFFF)

    # --- matrix-level transforms ----------------------------------------------

    def transpose_blocks(self, elem: ElemType) -> "MomRegister":
        """Transpose square lane blocks in place down the register.

        This is the ``momtrans{b,h,w}`` primitive the paper highlights for
        "switching vector dimensions without pack/unpack operations".  The
        register is treated as consecutive square blocks of ``lanes x lanes``
        elements (8x8 bytes, 4x4 halfwords or 2x2 words); each block is
        transposed independently.  16 rows always divide evenly into blocks.
        """
        lanes = elem.lanes
        if lanes == 1:
            return self.copy()
        mat = self.to_lane_matrix(elem)
        out = np.empty_like(mat)
        for base in range(0, MATRIX_ROWS, lanes):
            block = mat[base : base + lanes]
            out[base : base + lanes] = block.T
        return MomRegister(packed.from_lanes(out))

    def row_shift(self, towards_zero: bool) -> "MomRegister":
        """Shift rows by one position, filling the vacated row with zero.

        ``towards_zero=True`` implements ``momrowshl`` (row i <- row i+1),
        ``False`` implements ``momrowshr`` (row i+1 <- row i).
        """
        out = np.zeros_like(self.rows)
        if towards_zero:
            out[:-1] = self.rows[1:]
        else:
            out[1:] = self.rows[:-1]
        return MomRegister(out)

    # --- comparisons -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MomRegister):
            return NotImplemented
        return bool(np.array_equal(self.rows, other.rows))

    def __hash__(self) -> int:  # registers are mutable; hash by identity
        return id(self)

    def __repr__(self) -> str:
        head = ", ".join(f"{int(r):#x}" for r in self.rows[:3])
        return f"MomRegister([{head}, ...])"
