"""The paper's contribution: the MOM matrix-oriented multimedia ISA."""

from .mom_isa import ACC_BITS, MATRIX_ROWS, MOM, ROW_BITS
from .matrix import MomRegister
from .accumulator import PackedAccumulator, PipelinedAccumulation

__all__ = [
    "ACC_BITS", "MATRIX_ROWS", "MOM", "ROW_BITS",
    "MomRegister", "PackedAccumulator", "PipelinedAccumulation",
]
