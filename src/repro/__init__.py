"""repro: reproduction of "Exploiting a New Level of DLP in Multimedia
Applications" (MICRO 1999) -- the MOM matrix-oriented multimedia ISA.

Public API highlights:

* :mod:`repro.core` -- the MOM ISA, matrix registers and accumulators.
* :mod:`repro.emulib` -- per-ISA emulation libraries (functional execution
  plus dynamic-trace capture).
* :mod:`repro.cpu` -- the trace-driven out-of-order superscalar model.
* :mod:`repro.memsys` -- cache hierarchy models including the vector and
  collapsing-buffer caches.
* :mod:`repro.kernels` -- the eight multimedia kernels in all four ISAs.
* :mod:`repro.apps` -- Mediabench-like applications.
* :mod:`repro.eval` -- drivers regenerating every table and figure.
"""

__version__ = "1.8.0"

from .core.matrix import MomRegister
from .core.accumulator import PackedAccumulator, PipelinedAccumulation
from .emulib.memory import Memory
from .emulib.trace import DynInstr, Trace
from .emulib.alpha_builder import AlphaBuilder
from .emulib.mmx_builder import MmxBuilder
from .emulib.mdmx_builder import MdmxBuilder
from .emulib.mom_builder import MomBuilder

__all__ = [
    "MomRegister",
    "PackedAccumulator",
    "PipelinedAccumulation",
    "Memory",
    "DynInstr",
    "Trace",
    "AlphaBuilder",
    "MmxBuilder",
    "MdmxBuilder",
    "MomBuilder",
    "__version__",
]
