"""Compiled mirrors of the hand-written kernels (the parity proof).

Re-expresses ``addblock``, ``motion1`` and ``motion2`` as IR programs
and binds them to the exact workloads of the hand builders.  The parity
tests (and the CI compile-parity job) build both versions and require
the compiled traces to be instruction-for-instruction equivalent -- same
opcodes, effective addresses, vector lengths, branch outcomes and
dependence structure -- which pins the lowering strategies to the
Section 2/3.1 codegen the hand kernels embody and makes the compiled
``SimResult`` digests bit-identical on the golden mini-grid.

The registry keeps serving the hand builders; these mirrors exist so
every lowering change is diffed against a known-good stream.
"""

from __future__ import annotations

from . import register_compiled
from .ir import (AbsDiff, Add, Binding, Buffer, BufferBinding, I16, Load,
                 LoopKernel, SatU8, Square, Sub)

#: addblock block edge / motion block edge (restated from the kernel
#: modules; the workloads themselves come in through the bindings).
ADDBLOCK_N = 8
MOTION_BLOCK = 16


# --- addblock ----------------------------------------------------------------

ADDBLOCK_IR = LoopKernel(
    name="addblock",
    rows=ADDBLOCK_N,
    cols=ADDBLOCK_N,
    buffers=(
        Buffer("pred"),
        Buffer("resid", elem=I16),
        Buffer("out", out=True),
    ),
    expr=SatU8(Add(Load("pred"), Load("resid"))),
)


def bind_addblock(workload) -> Binding:
    """Binding for :class:`repro.kernels.addblock.AddblockWorkload`."""
    n = ADDBLOCK_N
    count = len(workload.positions)
    return Binding(buffers={
        "pred": BufferBinding(
            array=workload.frame,
            row_stride=workload.width,
            offsets=[y * workload.width + x for y, x in workload.positions]),
        "resid": BufferBinding(
            array=workload.residuals,
            row_stride=2 * n,
            offsets=[i * n * n * 2 for i in range(count)]),
        "out": BufferBinding(
            array=None,
            row_stride=n,
            offsets=[i * n * n for i in range(count)]),
    })


# --- motion1 / motion2 -------------------------------------------------------

def _motion_ir(name: str, squared: bool) -> LoopKernel:
    ref, blk = Load("ref"), Load("blk")
    return LoopKernel(
        name=name,
        rows=MOTION_BLOCK,
        cols=MOTION_BLOCK,
        buffers=(Buffer("ref"), Buffer("blk")),
        expr=Square(Sub(ref, blk)) if squared else AbsDiff(ref, blk),
        reduce=True,
        argmin=True,
    )


MOTION1_IR = _motion_ir("motion1", squared=False)
MOTION2_IR = _motion_ir("motion2", squared=True)


def bind_motion(workload) -> Binding:
    """Binding for :class:`repro.kernels.motion.MotionWorkload`."""
    return Binding(buffers={
        "ref": BufferBinding(
            array=workload.ref,
            row_stride=workload.width,
            offsets=[y * workload.width + x
                     for y, x in workload.candidates]),
        "blk": BufferBinding(
            array=workload.blk,
            row_stride=MOTION_BLOCK,
            offsets=[0] * len(workload.candidates)),
    })


#: (kernel name, IR, binding) of every mirrored kernel.
MIRRORS = {
    "addblock": (ADDBLOCK_IR, bind_addblock, "blocks"),
    "motion1": (MOTION1_IR, bind_motion, "distances"),
    "motion2": (MOTION2_IR, bind_motion, "distances"),
}

for _name, (_ir, _bind, _key) in MIRRORS.items():
    register_compiled(_name, _ir, _bind, output_key=_key, mirror=True)
