"""Shared machinery of the four lowering passes.

Every pass goes through the same phases -- allocate buffers in
declaration order, emit a preamble, walk the instances, read the outputs
back -- and the phases are kept here so the per-ISA modules contain only
the strategy that actually differs (Section 2's scalar strip-mining, MMX
row packing, MDMX accumulator recurrence, MOM 2D tiling).

Emission-order discipline matters more than usual in this package: the
parity tests pin compiled traces digest-for-digest against the
hand-written builders, so helpers here preserve the hand codegen's
register-allocation and instruction order exactly (see
``tests/test_vc_parity.py``).
"""

from __future__ import annotations

import numpy as np

from .ir import ELEM_BYTES, TABLE_BIAS, TABLE_SIZE, Binding, LoopKernel

#: Row-loop unroll factor of the packed passes (the hand builders unroll
#: the MMX/MDMX row loops by four, Section 3.1).
PACKED_UNROLL = 4


def unroll_for(rows: int) -> int:
    """Unroll factor of the packed row loop for a ``rows``-deep nest."""
    return PACKED_UNROLL if rows % PACKED_UNROLL == 0 else 1


def alloc_buffers(builder, ir: LoopKernel, binding: Binding) -> dict[str, int]:
    """Allocate every buffer in declaration order; returns name -> base.

    Inputs are copied into simulated memory; the out buffer is
    zero-allocated (instances * rows * cols bytes).  Declaration order
    matches the hand builders' allocation order, which keeps every
    effective address in the trace identical.
    """
    bases: dict[str, int] = {}
    for buf in ir.buffers:
        bound = binding.buffers[buf.name]
        if buf.out:
            nbytes = binding.instances * ir.rows * ir.cols
            bases[buf.name] = builder.mem.alloc(nbytes)
        else:
            bases[buf.name] = builder.mem.alloc_array(
                np.ascontiguousarray(bound.array))
    return bases


def note_lowering(builder, ir: LoopKernel, binding: Binding,
                  bases: dict[str, int]) -> None:
    """Attach lowering provenance to the builder for the analysis layer.

    Pure attribute assignment -- no instructions are emitted, no memory is
    touched -- so digest-pinned traces are unaffected.  The static
    verifier (:mod:`repro.analysis`) reads these to check the lowered
    stream against the IR it came from (buffer bounds, reduction shape,
    saturation ranges) without re-running the compiler.
    """
    builder.vc_lowering = {
        "ir": ir,
        "binding": binding,
        "bases": dict(bases),
        "isa": builder.isa_name,
    }


def alloc_sat_table(builder) -> int:
    """Place the scalar saturation lookup table; returns its base.

    Content and domain are exactly mpeg2play's ``Add_Block`` clamp table
    (the memory-bound idiom the media ISAs replace with ``packushb``).
    """
    clamp = np.clip(np.arange(TABLE_SIZE) - TABLE_BIAS, 0, 255)
    return builder.mem.alloc_array(clamp.astype(np.uint8))


def make_const_word(value: int, halves: bool) -> int:
    """Broadcast a lane constant across one 64-bit packed word."""
    if halves:
        return sum((value & 0xFFFF) << (16 * i) for i in range(4))
    return sum((value & 0xFF) << (8 * i) for i in range(8))


def alloc_const_pool(builder, words: list[int]) -> int:
    """Place the packed constant pool in memory; returns its base."""
    return builder.mem.alloc_array(np.asarray(words, dtype=np.uint64))


class ArgminTracker:
    """Strictly-less running minimum over per-instance scalars.

    Emits the hand builders' compare + conditional-move triple per
    instance (``_track_min``) and remembers the functional values so the
    outputs can be read back without re-walking registers.
    """

    def __init__(self, builder) -> None:
        self.b = builder
        self.best = builder.ireg(1 << 30)
        self.besti = builder.ireg(0)
        self.tmp = builder.ireg()
        self.cand = builder.ireg()

    def track(self, dist, index: int) -> None:
        b = self.b
        b.li(self.cand, index)
        b.cmplt(self.tmp, dist, self.best)
        b.cmovne(self.best, self.tmp, dist)
        b.cmovne(self.besti, self.tmp, self.cand)

    @property
    def best_index(self) -> int:
        return self.besti.value


def read_map_output(builder, ir: LoopKernel, binding: Binding,
                    out_base: int, key: str) -> dict[str, np.ndarray]:
    """Read the out buffer back as ``(instances, rows, cols)`` u8."""
    count = binding.instances * ir.rows * ir.cols
    flat = builder.mem.load_array(out_base, np.uint8, count)
    return {key: flat.reshape(binding.instances, ir.rows, ir.cols)}


def reduce_outputs(distances: list[int],
                   tracker: ArgminTracker | None) -> dict[str, np.ndarray]:
    """Package per-instance scalars (and the argmin, when tracked)."""
    out = {"distances": np.asarray(distances, dtype=np.int64)}
    if tracker is not None:
        out["best"] = np.asarray([tracker.best_index])
    return out


def load_offset(buf_elem: str, tile: int, half: int = 0) -> int:
    """Byte offset of a tile (and 8-byte half for i16 tiles) in a row."""
    return tile * 8 * ELEM_BYTES[buf_elem] + half * 8


# --- packed map evaluation ---------------------------------------------------

def plan_packed(ir: LoopKernel) -> tuple[bool, list[tuple[int, str]]]:
    """Static facts the packed preamble needs, in evaluation order.

    Returns ``(zero_needed, const_keys)``: whether a zero register must be
    materialized (byte promotion or the unsigned-compare idiom), and the
    distinct ``(value, domain)`` constants in first-use order.  The walk
    mirrors :meth:`PackedEval.eval` exactly so preamble materialization
    order matches the evaluator's expectations.
    """
    from .ir import (Add, AbsDiff, BYTE, Const, GtU, HALF, I16, Load, Mul,
                     Select, SatU8, Shr, Sub)

    zero_needed = False
    const_keys: list[tuple[int, str]] = []

    def walk(node, want: str) -> None:
        nonlocal zero_needed
        if isinstance(node, Load):
            if ir.buffer(node.buf).elem != I16 and want == HALF:
                zero_needed = True
            return
        if isinstance(node, Const):
            key = (node.value, want)
            if key not in const_keys:
                const_keys.append(key)
            return
        if isinstance(node, (Add, Sub, Mul)):
            walk(node.a, HALF)
            walk(node.b, HALF)
        elif isinstance(node, Shr):
            walk(node.a, HALF)
        elif isinstance(node, AbsDiff):
            walk(node.a, BYTE)
            walk(node.b, BYTE)
        elif isinstance(node, Select):
            mask: GtU = node.mask
            walk(mask.a, BYTE)
            walk(mask.b, BYTE)
            zero_needed = True      # pcmpeqb against zero
            walk(node.a, BYTE)
            walk(node.b, BYTE)
        elif isinstance(node, SatU8):
            walk(node.a, HALF)
        else:
            raise NotImplementedError(
                f"packed lowering of {type(node).__name__}")

    walk(ir.expr, "byte")
    return zero_needed, const_keys


class PackedVal:
    """An evaluated packed value: a byte register or a half pair."""

    __slots__ = ("form", "regs", "writable")

    def __init__(self, form: str, regs: tuple, writable: bool) -> None:
        self.form = form
        self.regs = regs
        self.writable = writable

    @property
    def byte(self):
        assert self.form == "byte"
        return self.regs[0]


class PackedEval:
    """Row-tile expression evaluator for the packed (SIMD/matrix) passes.

    Subclasses supply the memory hooks (MMX offsets a base pointer, MOM
    walks a strided matrix access); everything else -- byte/half domain
    propagation, u8 promotion through ``punpck``, in-place destination
    policy, the unsigned-compare Select idiom, ``packushb`` saturation --
    is identical across the three media ISAs, which is the point: the
    paradigms differ in *coverage*, not in packed-operator vocabulary.

    Registers are allocated lazily per role and cached, so every row and
    instance reuses the same handles (the WAW pressure register renaming
    exists to remove, just like the hand builders).
    """

    def __init__(self, b, ir: LoopKernel) -> None:
        from .ir import BYTE  # local to avoid a circular top-level import
        self.b = b
        self.ir = ir
        self.use_counts = ir.use_counts()
        self.zero = None                 # set by the pass when planned
        self.consts: dict[tuple[int, str], object] = {}
        self.pointers: dict[str, object] = {}
        self._regs: dict[object, object] = {}
        self._memo: dict[tuple, PackedVal] = {}
        self._first_u8_byte = None
        self._scratch_n = 0
        self._byte = BYTE

    # --- hooks ---------------------------------------------------------------

    def emit_load_u8(self, reg, buf: str, tile: int) -> None:
        raise NotImplementedError

    def emit_load_i16(self, lo, hi, buf: str, tile: int) -> None:
        raise NotImplementedError

    # --- register roles ------------------------------------------------------

    def reg(self, key):
        if key not in self._regs:
            self._regs[key] = self.b.mreg()
        return self._regs[key]

    def _scratch(self, kind: str):
        name = (f"scratch:{kind}:{self._scratch_n}")
        self._scratch_n += 1
        return self.reg(name)

    # --- evaluation ----------------------------------------------------------

    def eval_tile(self, expr, tile: int) -> PackedVal:
        """Evaluate the expression for one 8-byte column tile."""
        self._memo = {}
        self._first_u8_byte = None
        self._scratch_n = 0
        val = self.eval(expr, tile, dict(self.use_counts), self._byte)
        if val.form != "byte":
            raise ValueError(f"{self.ir.name}: map result must be saturated "
                             f"to bytes (wrap the root in SatU8)")
        return val

    def eval(self, node, tile: int, remaining: dict, want: str) -> PackedVal:
        from .ir import (Add, AbsDiff, Const, GtU, HALF, I16, Load, Mul,
                         Select, SatU8, Shr, Sub)
        b = self.b
        memo_key = (node, want)
        if isinstance(node, Load) and memo_key in self._memo:
            return self._memo[memo_key]

        if isinstance(node, Load):
            elem = self.ir.buffer(node.buf).elem
            if elem == I16:
                lo = self.reg((node, "lo"))
                hi = self.reg((node, "hi"))
                self.emit_load_i16(lo, hi, node.buf, tile)
                val = PackedVal("half", (lo, hi), True)
            else:
                breg = self.reg((node, "byte"))
                self.emit_load_u8(breg, node.buf, tile)
                if self._first_u8_byte is None:
                    self._first_u8_byte = breg
                if want == HALF:
                    lo = self.reg((node, "lo"))
                    hi = self.reg((node, "hi"))
                    b.punpcklb(lo, breg, self.zero)
                    b.punpckhb(hi, breg, self.zero)
                    val = PackedVal("half", (lo, hi), True)
                else:
                    val = PackedVal("byte", (breg,), True)
            self._memo[memo_key] = val
            return val

        if isinstance(node, Const):
            creg = self.consts[(node.value, want)]
            if want == HALF:
                return PackedVal("half", (creg, creg), False)
            return PackedVal("byte", (creg,), False)

        if isinstance(node, (Add, Sub, Mul)):
            op = {Add: b.paddh, Sub: b.psubh, Mul: b.pmullh}[type(node)]
            va = self.eval(node.a, tile, remaining, "half")
            vb = self.eval(node.b, tile, remaining, "half")
            dst = self._pair_dst(va, node.a, vb, node.b, remaining)
            op(dst.regs[0], va.regs[0], vb.regs[0])
            op(dst.regs[1], va.regs[1], vb.regs[1])
            return dst

        if isinstance(node, Shr):
            va = self.eval(node.a, tile, remaining, "half")
            dst = self._pair_dst(va, node.a, None, None, remaining)
            b.psrlh(dst.regs[0], va.regs[0], node.count)
            b.psrlh(dst.regs[1], va.regs[1], node.count)
            return dst

        if isinstance(node, AbsDiff):
            va = self.eval(node.a, tile, remaining, "byte")
            vb = self.eval(node.b, tile, remaining, "byte")
            dst = self._byte_dst(va, node.a, vb, node.b, remaining)
            b.pabsdiffb(dst.byte, va.byte, vb.byte)
            return dst

        if isinstance(node, Select):
            mask: GtU = node.mask
            vx = self.eval(mask.a, tile, remaining, "byte")
            vbound = self.eval(mask.b, tile, remaining, "byte")
            m = self._byte_dst(vx, mask.a, None, None, remaining)
            self._consume(mask.b, remaining)
            # Unsigned a > bound via saturating subtract: the result is
            # non-zero exactly where a exceeds bound, so comparing the
            # difference against zero yields the *inverted* mask and the
            # select operands swap.
            b.psubusb(m.byte, vx.byte, vbound.byte)
            b.pcmpeqb(m.byte, m.byte, self.zero)
            va = self.eval(node.a, tile, remaining, "byte")
            vb = self.eval(node.b, tile, remaining, "byte")
            self._consume(node.a, remaining)
            self._consume(node.b, remaining)
            b.pcmov(m.byte, m.byte, vb.byte, va.byte)
            return PackedVal("byte", (m.byte,), True)

        if isinstance(node, SatU8):
            va = self.eval(node.a, tile, remaining, "half")
            self._consume(node.a, remaining)
            dst = self._first_u8_byte
            if dst is None:
                dst = self._scratch("pack")
            b.packushb(dst, va.regs[0], va.regs[1])
            return PackedVal("byte", (dst,), True)

        raise NotImplementedError(f"packed lowering of {type(node).__name__}")

    # --- destination policy --------------------------------------------------

    def _consume(self, node, remaining: dict) -> None:
        remaining[node] = remaining.get(node, 1) - 1

    def _dead(self, node, remaining) -> bool:
        return remaining.get(node, 0) == 0

    def _pair_dst(self, va, na, vb, nb, remaining) -> PackedVal:
        self._consume(na, remaining)
        if nb is not None:
            self._consume(nb, remaining)
        if va.writable and self._dead(na, remaining):
            return PackedVal("half", va.regs, True)
        if vb is not None and vb.writable and self._dead(nb, remaining):
            return PackedVal("half", vb.regs, True)
        return PackedVal("half",
                         (self._scratch("lo"), self._scratch("hi")), True)

    def _byte_dst(self, va, na, vb, nb, remaining) -> PackedVal:
        self._consume(na, remaining)
        if nb is not None:
            self._consume(nb, remaining)
        if va.writable and self._dead(na, remaining):
            return PackedVal("byte", va.regs, True)
        if vb is not None and vb.writable and self._dead(nb, remaining):
            return PackedVal("byte", vb.regs, True)
        return PackedVal("byte", (self._scratch("b"),), True)
