"""Scalar lowering: strip-mined Alpha code, one element at a time.

The strategy of Section 2's baseline: no data-level parallelism is
exploited at all.  The inner loop is fully unrolled over the ``cols``
elements of a row (what a late-90s compiler achieves with unrolling),
each element moves through byte/halfword loads and 64-bit ALU ops, and
saturation is performed through the mpeg2play memory lookup table --
making map kernels memory-bound, which is why the paper sees plain Alpha
*gaining* relative performance on wider machines for ``addblock``.

Codegen conventions (digest-pinned against the hand builders):

* integer registers allocate as pointers -> [table] -> [accumulator] ->
  load registers -> scratch -> row counter -> argmin block;
* map arithmetic folds in place into its left operand's register;
  reductions compute into a dedicated ``d`` register and fold into the
  accumulator with ``addq``;
* the row loop emits a decrement-and-branch pair per row (no unrolling).
"""

from __future__ import annotations

from ..emulib.alpha_builder import AlphaBuilder, emit_abs_diff
from .base import (ArgminTracker, TABLE_BIAS, alloc_buffers, alloc_sat_table,
                   note_lowering, read_map_output, reduce_outputs)
from .ir import (Add, AbsDiff, Binding, Const, GtU, I16, Load, LoopKernel,
                 Mul, Select, SatU8, Shr, Square, Sub)


def lower(ir: LoopKernel, binding: Binding, output_key: str = "out"):
    """Compile ``ir`` for the scalar baseline; returns (builder, outputs)."""
    b = AlphaBuilder()
    bases = alloc_buffers(b, ir, binding)
    note_lowering(b, ir, binding, bases)
    if ir.reduce:
        return b, _lower_reduce(b, ir, binding, bases)
    return b, _lower_map(b, ir, binding, bases, output_key)


# --- reduce kernels ----------------------------------------------------------

def _lower_reduce(b: AlphaBuilder, ir: LoopKernel, binding: Binding,
                  bases: dict[str, int]):
    expr = ir.expr
    squared = isinstance(expr, Square)
    la, lb = (expr.a.a, expr.a.b) if squared else (expr.a, expr.b)
    stride_a = binding.buffers[la.buf].row_stride
    stride_b = binding.buffers[lb.buf].row_stride

    pa, pb = b.ireg(), b.ireg(bases[lb.buf])
    s, va, vb, d, scr = b.ireg(), b.ireg(), b.ireg(), b.ireg(), b.ireg()
    b.mark_live_out(s)
    rows = b.ireg()
    tracker = ArgminTracker(b) if ir.argmin else None
    row_site = b.site()

    distances: list[int] = []
    offs_a = binding.buffers[la.buf].offsets
    offs_b = binding.buffers[lb.buf].offsets
    for index in range(binding.instances):
        b.li(pa, bases[la.buf] + offs_a[index])
        b.li(pb, bases[lb.buf] + offs_b[index])
        b.li(s, 0)
        b.li(rows, ir.rows)
        for _row in range(ir.rows):
            for i in range(ir.cols):
                b.ldbu(va, pa, i)
                b.ldbu(vb, pb, i)
                if squared:
                    b.subq(d, va, vb)
                    b.mulq(d, d, d)
                else:
                    emit_abs_diff(b, d, va, vb, scr)
                b.addq(s, s, d)
            b.addi(pa, pa, stride_a)
            b.addi(pb, pb, stride_b)
            b.subi(rows, rows, 1)
            b.bne(rows, row_site)
        distances.append(s.value)
        if tracker is not None:
            tracker.track(s, index)
    return reduce_outputs(distances, tracker)


# --- map kernels -------------------------------------------------------------

class _ScalarEval:
    """Per-element evaluator with hand-builder register discipline.

    Registers are allocated lazily on first need and cached, so the
    first element's walk fixes the allocation order and every later
    element reuses the same handles (exactly how the hand kernels hoist
    their ``ireg()`` calls out of the loops).
    """

    def __init__(self, b: AlphaBuilder, ir: LoopKernel, tab) -> None:
        self.b = b
        self.ir = ir
        self.tab = tab
        self.use_counts = ir.use_counts()
        self.load_regs: dict[Load, object] = {}
        self.scratch: dict[str, object] = {}
        self.pointers: dict[str, object] = {}
        self._memo: dict[Load, object] = {}

    def reg(self, key: str):
        if key not in self.scratch:
            self.scratch[key] = self.b.ireg()
        return self.scratch[key]

    def eval_element(self, node, col: int):
        """Evaluate the whole expression for one element."""
        self._memo = {}
        return self.eval(node, col, dict(self.use_counts))

    def eval(self, node, col: int, remaining: dict):
        """Evaluate one node for element ``col``; returns its register.

        ``remaining`` counts outstanding uses per unique node this
        element; a register may be folded into in place only when its
        producing node has no further consumers.
        """
        b = self.b
        if isinstance(node, Load):
            if node in self._memo:      # DAG-shared load: one fetch per element
                return self._memo[node]
            if node not in self.load_regs:
                self.load_regs[node] = b.ireg()
            reg = self.load_regs[node]
            buf = self.ir.buffer(node.buf)
            if buf.elem == I16:
                b.ldwu(reg, self.pointers[node.buf], 2 * col)
                b.sextw(reg, reg)
            else:
                b.ldbu(reg, self.pointers[node.buf], col)
            self._memo[node] = reg
            return reg
        if isinstance(node, Const):
            raise AssertionError("Const is folded into its consumer")
        if isinstance(node, Add):
            return self._additive(node, col, remaining, b.addq, b.addi)
        if isinstance(node, Sub):
            return self._additive(node, col, remaining, b.subq, b.subi)
        if isinstance(node, Mul):
            return self._additive(node, col, remaining, b.mulq, b.muli)
        if isinstance(node, Shr):
            reg = self._owned(self.eval(node.a, col, remaining),
                              node.a, remaining, "shr")
            b.srl(reg, reg, node.count)
            return reg
        if isinstance(node, AbsDiff):
            ra = self.eval(node.a, col, remaining)
            rb = self.eval(node.b, col, remaining)
            self._consume(node.a, remaining)
            self._consume(node.b, remaining)
            d = self.reg("d")
            emit_abs_diff(b, d, ra, rb, self.reg("scr"))
            return d
        if isinstance(node, SatU8):
            reg = self.eval(node.a, col, remaining)
            self._consume(node.a, remaining)
            idx = self.reg("idx")
            b.addq(idx, self.tab, reg)
            b.ldbu(reg, idx, 0)
            return reg
        if isinstance(node, Select):
            mask: GtU = node.mask
            rx = self.eval(mask.a, col, remaining)
            self._consume(mask.a, remaining)
            if not isinstance(mask.b, Const):
                raise NotImplementedError("scalar GtU needs a Const bound")
            m = self.reg("m")
            b.cmplti(m, rx, mask.b.value + 1)   # m = (x <= bound)
            ra = self.eval(node.a, col, remaining)
            rb = self.eval(node.b, col, remaining)
            self._consume(node.a, remaining)
            self._consume(node.b, remaining)
            r = self.reg("r")
            b.mov(r, ra)
            b.cmovne(r, m, rb)
            return r
        raise NotImplementedError(f"scalar lowering of {type(node).__name__}")

    def _additive(self, node, col: int, remaining: dict, op, op_imm):
        """Add/Sub/Mul with the immediate form when one side is Const."""
        if isinstance(node.b, Const):
            reg = self._owned(self.eval(node.a, col, remaining),
                              node.a, remaining, "acc")
            op_imm(reg, reg, node.b.value)
            return reg
        ra = self.eval(node.a, col, remaining)
        rb = self.eval(node.b, col, remaining)
        self._consume(node.b, remaining)
        reg = self._owned(ra, node.a, remaining, "acc")
        op(reg, reg, rb)
        return reg

    def _owned(self, reg, node, remaining: dict, scratch_key: str):
        """The register to fold into: in place when ``node`` is dead."""
        self._consume(node, remaining)
        if remaining.get(node, 0) == 0:
            return reg
        fresh = self.reg(scratch_key)
        self.b.mov(fresh, reg)
        return fresh

    def _consume(self, node, remaining: dict) -> None:
        remaining[node] = remaining.get(node, 1) - 1


def _lower_map(b: AlphaBuilder, ir: LoopKernel, binding: Binding,
               bases: dict[str, int], output_key: str):
    needs_table = any(isinstance(n, SatU8) for n in _walk(ir.expr))
    pointers = {buf.name: b.ireg() for buf in ir.buffers}
    tab = None
    if needs_table:
        table_addr = alloc_sat_table(b)
        b.vc_lowering["sat_table"] = table_addr
        tab = b.ireg(table_addr + TABLE_BIAS)
    ev = _ScalarEval(b, ir, tab)
    ev.pointers = pointers

    # Planning dry run: evaluate one element, then discard the emitted
    # instructions.  This fixes the register-allocation order (pointers,
    # table, loads, scratch) *before* the row counter allocates -- the
    # hand builders declare their registers in exactly this order -- while
    # keeping the real emission below uniform across all elements.
    for buf in ir.buffers:
        pointers[buf.name].value = (bases[buf.name]
                                    + binding.buffers[buf.name].offsets[0])
    mark = len(b.trace)
    ev.eval_element(ir.expr, 0)
    b.trace.truncate(mark)

    rows = b.ireg()
    site = b.site()
    out = ir.out_buffer
    for index in range(binding.instances):
        for buf in ir.buffers:
            bound = binding.buffers[buf.name]
            b.li(pointers[buf.name], bases[buf.name] + bound.offsets[index])
        b.li(rows, ir.rows)
        for _row in range(ir.rows):
            for col in range(ir.cols):
                reg = ev.eval_element(ir.expr, col)
                b.stb(reg, pointers[out.name], col)
            for buf in ir.buffers:
                b.addi(pointers[buf.name], pointers[buf.name],
                       binding.buffers[buf.name].row_stride)
            b.subi(rows, rows, 1)
            b.bne(rows, site)
    return read_map_output(b, ir, binding, bases[out.name], output_key)


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
