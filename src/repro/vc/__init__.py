"""``repro.vc`` -- the retargetable DLP vectorizing compiler.

One declarative kernel description (:mod:`repro.vc.ir`), four lowering
passes (:mod:`~repro.vc.lower_alpha`, :mod:`~repro.vc.lower_mmx`,
:mod:`~repro.vc.lower_mdmx`, :mod:`~repro.vc.lower_mom`) that each apply
their ISA's Section 2 strategy, emitting through the existing emulation
libraries -- so compiled traces flow unchanged into ``build_and_check``,
the timing core, the experiment engine and the serving layer.

Two consumer surfaces:

* :func:`make_builders` turns an IR program plus a workload-binding
  function into the per-ISA builder dict a
  :class:`~repro.kernels.common.KernelSpec` wants -- "adding a kernel in
  ~30 lines" (see the README walkthrough and the ``blend`` /
  ``chromakey`` / ``ssd`` kernels).
* :data:`COMPILED` records every registered compiler-backed kernel
  (including the digest-pinned mirrors of the hand-written kernels in
  :mod:`repro.vc.mirrors`) for the ``repro kernels`` coverage listing
  and the parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from . import lower_alpha, lower_mdmx, lower_mmx, lower_mom
from .ir import (AbsDiff, Add, Binding, Buffer, BufferBinding, Const, GtU,
                 I16, Load, LoopKernel, Mul, SatU8, Select, Shr, Square, Sub,
                 U8)

#: Lowering pass per ISA.
LOWERERS = {
    "alpha": lower_alpha.lower,
    "mmx": lower_mmx.lower,
    "mdmx": lower_mdmx.lower,
    "mom": lower_mom.lower,
}


@dataclass
class CompiledKernel:
    """Registry record of one compiler-backed kernel."""

    ir: LoopKernel
    bind: Callable[[object], Binding]
    output_key: str = "out"
    #: ``True`` when a hand-written builder also exists (digest-pinned
    #: mirror); ``False`` for compiler-only kernels.
    mirror: bool = False


#: name -> record of every kernel the compiler knows how to build.
COMPILED: dict[str, CompiledKernel] = {}


def register_compiled(name: str, ir: LoopKernel, bind, *,
                      output_key: str = "out", mirror: bool = False
                      ) -> CompiledKernel:
    """Record one compiler-backed kernel (idempotent per name)."""
    record = CompiledKernel(ir=ir, bind=bind, output_key=output_key,
                            mirror=mirror)
    COMPILED[name] = record
    return record


def compile_kernel(ir: LoopKernel, isa: str, binding: Binding,
                   output_key: str = "out"):
    """Lower one IR program for one ISA against a concrete binding.

    Returns a verified-buildable :class:`~repro.kernels.common.BuiltKernel`
    (functional outputs attached; callers validate via
    ``build_and_check``).
    """
    from ..kernels.common import BuiltKernel  # deferred: registry imports us

    if isa not in LOWERERS:
        raise KeyError(f"no lowering pass for ISA {isa!r}; "
                       f"have {sorted(LOWERERS)}")
    builder, outputs = LOWERERS[isa](ir, binding, output_key)
    return BuiltKernel(builder=builder, outputs=outputs)


def make_builders(ir: LoopKernel, bind, *, output_key: str = "out",
                  name: str | None = None, mirror: bool = False
                  ) -> dict[str, Callable]:
    """Per-ISA builder functions for a :class:`KernelSpec`.

    Each returned callable maps a workload to a ``BuiltKernel`` by
    binding the workload and running the ISA's lowering pass; the
    callables carry ``vc_ir`` / ``vc_isa`` / ``compiled`` attributes so
    the ``repro kernels`` listing can tell compiled builders from hand
    ones.  Passing ``name`` also records the kernel in :data:`COMPILED`.
    """
    if name is not None:
        register_compiled(name, ir, bind, output_key=output_key,
                          mirror=mirror)

    def make(isa: str) -> Callable:
        def build(workload):
            return compile_kernel(ir, isa, bind(workload), output_key)
        build.vc_ir = ir
        build.vc_isa = isa
        build.compiled = True
        build.__name__ = f"vc_{ir.name}_{isa}"
        return build

    return {isa: make(isa) for isa in LOWERERS}


from . import mirrors  # noqa: E402,F401  (registers the digest-pinned mirrors)

__all__ = [
    "AbsDiff", "Add", "Binding", "Buffer", "BufferBinding", "COMPILED",
    "CompiledKernel", "Const", "GtU", "I16", "LOWERERS", "Load",
    "LoopKernel", "Mul", "SatU8", "Select", "Shr", "Square", "Sub", "U8",
    "compile_kernel", "make_builders", "register_compiled",
]
