"""Loop-nest IR of the vectorizing compiler.

A :class:`LoopKernel` is a declarative description of one multimedia hot
loop: a two-level data-parallel nest (``rows`` x ``cols`` sub-word
elements, exactly the :class:`~repro.core.vectorize.LoopNest` shape the
Section 2 analysis reasons about) whose body is a small dataflow
expression over packed loads, constants and sub-word arithmetic.  The
same IR program is lowered once per ISA by the passes in
``vc/lower_*.py``; the analytical model in :mod:`repro.core.vectorize`
is the *coverage oracle* that predicts how much of the nest each
paradigm captures per instruction, and the lowering passes are the
constructive proof.

Two kernel shapes are expressible:

* **map** kernels store one byte-result per element (``addblock``,
  alpha blending, chroma keying): the expression tree evaluates in a
  *byte* domain (u8 lanes) or a *half* domain (widened 16-bit lanes,
  entered by any multiply, shift or 16-bit load) and the root saturates
  back to u8 with :class:`SatU8`.
* **reduce** kernels fold the whole nest into one scalar per instance
  (SAD / SQD distances).  Reductions are restricted to the two idioms
  the media ISAs accelerate -- ``AbsDiff(Load, Load)`` and
  ``Square(Sub(Load, Load))`` -- so every lowering pass can select the
  architecturally honest instruction (``psadb``, ``paccsadb``,
  ``mommsadb``, ...) instead of emulating a generic fold.

The IR is deliberately small: it has to be *just* expressive enough to
cover the paper's compression/filtering hot loops while keeping each
lowering pass auditable against the hand-written builders it replaces
(the parity tests pin compiled traces digest-for-digest against them).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.vectorize import LoopNest

#: Element kinds a buffer can hold.
U8 = "u8"
I16 = "i16"

#: Bytes of one element per kind.
ELEM_BYTES = {U8: 1, I16: 2}

#: Evaluation domains of expression nodes (packed lowering).
BYTE = "byte"    #: 8 x u8 lanes per 64-bit word
HALF = "half"    #: 4 x 16-bit lanes per 64-bit word (widened)


@dataclass(frozen=True)
class Buffer:
    """One memory operand of the kernel.

    ``out`` buffers receive the map result; reduce kernels have none.
    """

    name: str
    elem: str = U8
    out: bool = False

    def __post_init__(self) -> None:
        if self.elem not in ELEM_BYTES:
            raise ValueError(f"buffer {self.name!r}: unknown elem {self.elem!r}")
        if self.out and self.elem != U8:
            raise ValueError(f"buffer {self.name!r}: outputs must be u8")


# --- expression nodes --------------------------------------------------------
#
# Nodes are frozen dataclasses so structurally equal subtrees compare (and
# hash) equal: ``Load("a")`` written twice is *one* DAG node, which is how
# the lowering passes know a loaded register is still live and must not be
# clobbered in place.

@dataclass(frozen=True)
class Expr:
    """Base class of all IR expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return tuple(v for v in self.__dict__.values() if isinstance(v, Expr))


@dataclass(frozen=True)
class Load(Expr):
    """Packed load of the current row of ``buf`` (row stride per buffer)."""

    buf: str


@dataclass(frozen=True)
class Const(Expr):
    """Per-lane constant, broadcast across the packed word."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFF:
            raise ValueError(f"Const {self.value} outside [0, 65535]")


@dataclass(frozen=True)
class Add(Expr):
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Sub(Expr):
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Mul(Expr):
    """Widening multiply (evaluates in the half domain)."""

    a: Expr
    b: Expr


@dataclass(frozen=True)
class Shr(Expr):
    """Logical right shift by an immediate (half domain)."""

    a: Expr
    count: int


@dataclass(frozen=True)
class AbsDiff(Expr):
    """``|a - b|`` on u8 lanes (byte domain)."""

    a: Expr
    b: Expr


@dataclass(frozen=True)
class Square(Expr):
    """``a * a`` -- only valid as a reduction body (SQD idiom)."""

    a: Expr


@dataclass(frozen=True)
class GtU(Expr):
    """Unsigned ``a > b`` lane mask; only valid as a :class:`Select` mask.

    Packed lowering uses the classic unsigned-compare idiom
    (``psubusb`` + ``pcmpeqb`` against zero) since the byte compares of
    the modelled ISAs are signed.
    """

    a: Expr
    b: Expr


@dataclass(frozen=True)
class Select(Expr):
    """``mask ? a : b`` per lane (byte domain, ``pcmov`` / ``cmov``)."""

    mask: Expr
    a: Expr
    b: Expr


@dataclass(frozen=True)
class SatU8(Expr):
    """Saturate the (half-domain) operand into u8 lanes.

    The scalar lowering implements this with the mpeg2play-style memory
    lookup table (an extra dependent load per element); the packed
    lowerings use ``packushb`` -- exactly the contrast Section 4.1 draws.
    """

    a: Expr


# --- the kernel program ------------------------------------------------------

#: Saturation-table domain of the scalar lowering: inputs to SatU8 must lie
#: in [-TABLE_BIAS, TABLE_SIZE - TABLE_BIAS - 1] (pred + resid of addblock).
TABLE_BIAS = 256
TABLE_SIZE = 256 + 511


@dataclass(frozen=True)
class LoopKernel:
    """One compilable loop nest.

    Attributes:
        name: kernel name (diagnostics only; the registry key is chosen
            at registration time).
        rows: outer (strided) trip count per instance.
        cols: inner (contiguous) trip count per instance, in elements.
        buffers: memory operands in allocation order (inputs then output).
        expr: the body -- a map expression storing to the out buffer, or
            a reduction idiom folding the nest into a scalar.
        reduce: ``True`` for reduce kernels.
        argmin: track the argmin of the per-instance scalars (reduce only).
    """

    name: str
    rows: int
    cols: int
    buffers: tuple[Buffer, ...]
    expr: Expr
    reduce: bool = False
    argmin: bool = False

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"{self.name}: trip counts must be positive")
        if self.cols % 8:
            raise ValueError(f"{self.name}: cols must be a multiple of 8 "
                             f"(packed row tiles), got {self.cols}")
        if self.cols // 8 > 2:
            raise ValueError(f"{self.name}: at most two 8-byte column tiles "
                             f"are supported, got cols={self.cols}")
        names = [b.name for b in self.buffers]
        if len(set(names)) != len(names):
            raise ValueError(f"{self.name}: duplicate buffer names")
        outs = [b for b in self.buffers if b.out]
        if self.reduce:
            if outs:
                raise ValueError(f"{self.name}: reduce kernels take no "
                                 f"out buffer")
            self._validate_reduction()
        else:
            if len(outs) != 1:
                raise ValueError(f"{self.name}: map kernels need exactly "
                                 f"one out buffer")
            if self.argmin:
                raise ValueError(f"{self.name}: argmin is reduce-only")
            self._validate_map(self.expr)
        for load in self.loads(self.expr):
            if load.buf not in names:
                raise ValueError(f"{self.name}: load of unknown buffer "
                                 f"{load.buf!r}")

    # --- structure helpers ---------------------------------------------------

    @property
    def tiles(self) -> int:
        """8-byte column tiles per row."""
        return self.cols // 8

    @property
    def out_buffer(self) -> Buffer:
        return next(b for b in self.buffers if b.out)

    def buffer(self, name: str) -> Buffer:
        return next(b for b in self.buffers if b.name == name)

    def loads(self, expr: Expr | None = None) -> list[Load]:
        """Unique loads in first-evaluation order."""
        seen: list[Load] = []

        def walk(node: Expr) -> None:
            if isinstance(node, Load):
                if node not in seen:
                    seen.append(node)
                return
            for child in node.children():
                walk(child)

        walk(self.expr if expr is None else expr)
        return seen

    def consts(self) -> list[Const]:
        """Unique constants in first-evaluation order."""
        seen: list[Const] = []

        def walk(node: Expr) -> None:
            if isinstance(node, Const) and node not in seen:
                seen.append(node)
            for child in node.children():
                walk(child)

        walk(self.expr)
        return seen

    def use_counts(self) -> dict[Expr, int]:
        """Occurrences of each unique node (DAG sharing via equality)."""
        counts: dict[Expr, int] = {}

        def walk(node: Expr) -> None:
            counts[node] = counts.get(node, 0) + 1
            for child in node.children():
                walk(child)

        walk(self.expr)
        return counts

    # --- validation ----------------------------------------------------------

    def _validate_reduction(self) -> None:
        expr = self.expr
        if isinstance(expr, AbsDiff):
            a, b = expr.a, expr.b
        elif isinstance(expr, Square) and isinstance(expr.a, Sub):
            a, b = expr.a.a, expr.a.b
        else:
            raise ValueError(
                f"{self.name}: reductions must be AbsDiff(Load, Load) or "
                f"Square(Sub(Load, Load)), got {type(expr).__name__}")
        for side in (a, b):
            if not isinstance(side, Load):
                raise ValueError(f"{self.name}: reduction operands must be "
                                 f"loads, got {type(side).__name__}")
            if self.buffer(side.buf).elem != U8:
                raise ValueError(f"{self.name}: reductions operate on u8 "
                                 f"buffers")
        if a == b:
            raise ValueError(f"{self.name}: reduction operands must differ")

    def _validate_map(self, node: Expr, under_select_mask: bool = False) -> None:
        if isinstance(node, Square):
            raise ValueError(f"{self.name}: Square is reduce-only")
        if isinstance(node, GtU) and not under_select_mask:
            raise ValueError(f"{self.name}: GtU is only valid as a Select "
                             f"mask")
        if isinstance(node, Select):
            if not isinstance(node.mask, GtU):
                raise ValueError(f"{self.name}: Select mask must be GtU")
            self._validate_map(node.mask, under_select_mask=True)
            self._validate_map(node.a)
            self._validate_map(node.b)
            return
        for child in node.children():
            self._validate_map(child)

    # --- analysis bridges ----------------------------------------------------

    def nest(self, row_stride_bytes: int = 0) -> LoopNest:
        """This kernel's nest as the Section 2 analytical model sees it.

        ``row_stride_bytes`` is the byte distance between consecutive
        rows of the primary input (a binding supplies the real value);
        it decides whether the rows are contiguous, which is what caps
        MMX-style coverage at one row.
        """
        return LoopNest(inner_trip=self.cols, outer_trip=self.rows,
                        elem_bits=8, stride_bytes=row_stride_bytes)


# --- runtime bindings --------------------------------------------------------

@dataclass
class BufferBinding:
    """Concrete storage of one buffer for one workload.

    Attributes:
        array: input payload copied into simulated memory (``None`` for
            outputs, which are zero-allocated).
        row_stride: bytes between consecutive rows within one instance.
        offsets: per-instance byte offset of the first element from the
            buffer base; length defines the instance count and must agree
            across buffers.
    """

    array: object
    row_stride: int
    offsets: list[int]


@dataclass
class Binding:
    """Per-workload facts the lowering passes need: where every buffer
    lives, how its rows stride, and the per-instance base offsets."""

    buffers: dict[str, BufferBinding]

    def __post_init__(self) -> None:
        counts = {len(b.offsets) for b in self.buffers.values()}
        if len(counts) != 1:
            raise ValueError(f"inconsistent instance counts: {counts}")

    @property
    def instances(self) -> int:
        return len(next(iter(self.buffers.values())).offsets)

    def invariant(self, name: str) -> bool:
        """True when every instance addresses the same base (hoistable)."""
        offsets = self.buffers[name].offsets
        return all(off == offsets[0] for off in offsets)
