"""MOM lowering: 2D row x lane tiling over matrix registers.

The Section 2.2 strategy: set VL to the outer trip count, load each
8-byte column tile of the nest with one strided ``momldq`` (the row
stride is the *image* stride, which is what defeats "just use a wider
register"), apply packed operations to all rows at once, and reduce both
dimensions with a single matrix instruction (``mommsadb`` /
``mommsqdb``) whose scalar total reads out through one ``racl``.

Loop-invariant operand hoisting falls out of the instance offsets: a
buffer whose instances all address the same base (the current block of
motion estimation) is loaded once, before the instance loop -- 2D
vectorization plus classic invariant code motion.
"""

from __future__ import annotations

from ..core.mom_isa import MATRIX_ROWS
from ..emulib.mom_builder import MomBuilder
from ..isa.model import ElemType
from .base import (ArgminTracker, PackedEval, alloc_buffers, alloc_const_pool,
                   make_const_word, note_lowering, plan_packed,
                   read_map_output, reduce_outputs)
from .ir import HALF, Binding, LoopKernel, Square


def lower(ir: LoopKernel, binding: Binding, output_key: str = "out"):
    """Compile ``ir`` for the MOM ISA; returns (builder, outputs)."""
    if ir.rows > MATRIX_ROWS:
        raise ValueError(f"{ir.name}: MOM lowering covers at most "
                         f"{MATRIX_ROWS} rows per instance, got {ir.rows}")
    b = MomBuilder()
    bases = alloc_buffers(b, ir, binding)
    note_lowering(b, ir, binding, bases)
    if ir.reduce:
        return b, _lower_reduce(b, ir, binding, bases)
    return b, _lower_map(b, ir, binding, bases, output_key)


# --- map kernels -------------------------------------------------------------

class _MomEval(PackedEval):
    """Tile evaluator walking strided matrix accesses.

    ``momldq`` takes no offset operand, so moving between column tiles
    bumps the buffer pointer by 8 (the pointers are re-initialized per
    instance); ``_cursors`` tracks each pointer's current 8-byte column.
    """

    def __init__(self, b, ir) -> None:
        super().__init__(b, ir)
        self.strides: dict[str, object] = {}
        self._cursors: dict[str, int] = {}

    def reset_cursors(self) -> None:
        self._cursors = {}

    def seek(self, buf: str, column: int) -> None:
        cursor = self._cursors.get(buf, 0)
        if column != cursor:
            self.b.addi(self.pointers[buf], self.pointers[buf],
                        8 * (column - cursor))
            self._cursors[buf] = column

    def emit_load_u8(self, reg, buf: str, tile: int) -> None:
        self.seek(buf, tile)
        self.b.momldq(reg, self.pointers[buf], self.strides[buf])

    def emit_load_i16(self, lo, hi, buf: str, tile: int) -> None:
        self.seek(buf, 2 * tile)
        self.b.momldq(lo, self.pointers[buf], self.strides[buf])
        self.seek(buf, 2 * tile + 1)
        self.b.momldq(hi, self.pointers[buf], self.strides[buf])

    def emit_store(self, reg, buf: str, tile: int) -> None:
        self.seek(buf, tile)
        self.b.momstq(reg, self.pointers[buf], self.strides[buf])


def _lower_map(b: MomBuilder, ir: LoopKernel, binding: Binding,
               bases: dict[str, int], output_key: str):
    zero_needed, const_keys = plan_packed(ir)
    const_pool = None
    if const_keys:
        const_pool = alloc_const_pool(b, [
            make_const_word(value, domain == HALF)
            for value, domain in const_keys])
        b.vc_lowering["const_pool"] = (const_pool, 8 * len(const_keys))

    pointers = {buf.name: b.ireg() for buf in ir.buffers}
    strides = {buf.name: b.ireg(binding.buffers[buf.name].row_stride)
               for buf in ir.buffers}
    cp = b.ireg(const_pool) if const_keys else None

    ev = _MomEval(b, ir)
    ev.pointers = pointers
    ev.strides = strides
    b.setvli(ir.rows)
    if zero_needed:
        ev.zero = b.mreg()
        b.momzero(ev.zero)
    for i, key in enumerate(const_keys):
        creg = b.mreg()
        b.momldbcast(creg, cp, 8 * i)
        ev.consts[key] = creg

    out = ir.out_buffer
    for index in range(binding.instances):
        for buf in ir.buffers:
            bound = binding.buffers[buf.name]
            b.li(pointers[buf.name], bases[buf.name] + bound.offsets[index])
        ev.reset_cursors()
        for tile in range(ir.tiles):
            val = ev.eval_tile(ir.expr, tile)
            ev.emit_store(val.byte, out.name, tile)
    return read_map_output(b, ir, binding, bases[out.name], output_key)


# --- reduce kernels ----------------------------------------------------------

def _lower_reduce(b: MomBuilder, ir: LoopKernel, binding: Binding,
                  bases: dict[str, int]):
    expr = ir.expr
    squared = isinstance(expr, Square)
    la, lb = (expr.a.a, expr.a.b) if squared else (expr.a, expr.b)
    tiles = ir.tiles

    pa, pb = b.ireg(), b.ireg()
    stride_a = b.ireg(binding.buffers[la.buf].row_stride)
    stride_b = b.ireg(binding.buffers[lb.buf].row_stride)
    s = b.ireg()
    b.mark_live_out(s)
    tracker = ArgminTracker(b) if ir.argmin else None
    a_tiles = [b.mreg() for _ in range(tiles)]
    b_tiles = [b.mreg() for _ in range(tiles)]
    acc = b.areg()
    acc_op = b.mommsqdb if squared else b.mommsadb

    pointers = {la.buf: pa, lb.buf: pb}
    strides = {la.buf: stride_a, lb.buf: stride_b}
    regs = {la.buf: a_tiles, lb.buf: b_tiles}
    offs = {name: binding.buffers[name].offsets for name in (la.buf, lb.buf)}

    def load_tiles(buf: str) -> None:
        ptr, srd = pointers[buf], strides[buf]
        for tile, reg in enumerate(regs[buf]):
            if tile:
                b.addi(ptr, ptr, 8)
            b.momldq(reg, ptr, srd)

    # Hoist the loads of an instance-invariant operand out of the
    # candidate walk entirely -- 2D vectorization at work.
    b.setvli(ir.rows)
    hoisted = {name for name in (la.buf, lb.buf) if binding.invariant(name)}
    for buf in (la.buf, lb.buf):
        if buf in hoisted:
            b.li(pointers[buf], bases[buf] + offs[buf][0])
            load_tiles(buf)

    distances: list[int] = []
    for index in range(binding.instances):
        b.setvli(ir.rows)
        for buf in (la.buf, lb.buf):
            if buf not in hoisted:
                b.li(pointers[buf], bases[buf] + offs[buf][index])
        b.clracc(acc)
        for buf in (la.buf, lb.buf):
            if buf not in hoisted:
                load_tiles(buf)
        for tile in range(tiles):
            acc_op(acc, a_tiles[tile], b_tiles[tile])
        # The matrix instruction reduced both dimensions: one racl reads
        # the scalar total.
        b.racl(s, acc, ElemType.Q)
        distances.append(s.value)
        if tracker is not None:
            tracker.track(s, index)
    return reduce_outputs(distances, tracker)