"""MMX lowering: row packing with unrolling and software pipelining.

The Section 2 strategy for sub-word SIMD: the inner loop packs into
8-byte row tiles, the row loop is unrolled by four to amortize the
decrement-and-branch pair, and reductions go through the "enhanced
reduction operations" (``psadb``) or, for squared differences, the
pack/unpack data-promotion sequence (``punpck`` + ``psubh`` +
``pmaddh``) whose overhead Section 2.1 blames on MMX -- followed by a
horizontal fold and a ``movd`` back to the integer file.

The emitted instruction streams are pinned against the hand-written
``addblock`` / ``motion1`` / ``motion2`` builders by the parity tests.
"""

from __future__ import annotations

from ..emulib.mmx_builder import MmxBuilder
from .base import (ArgminTracker, PackedEval, alloc_buffers, alloc_const_pool,
                   load_offset, make_const_word, note_lowering, plan_packed,
                   read_map_output, reduce_outputs, unroll_for)
from .ir import HALF, I16, Binding, LoopKernel, Square


def lower(ir: LoopKernel, binding: Binding, output_key: str = "out"):
    """Compile ``ir`` for the MMX-like ISA; returns (builder, outputs)."""
    return lower_with(MmxBuilder, ir, binding, output_key)


def lower_with(builder_cls, ir: LoopKernel, binding: Binding,
               output_key: str):
    """Shared MMX/MDMX entry point (the map strategy is identical; the
    hand ``addblock`` uses one builder function for both ISAs too)."""
    b = builder_cls()
    bases = alloc_buffers(b, ir, binding)
    note_lowering(b, ir, binding, bases)
    if ir.reduce:
        return b, _lower_reduce(b, ir, binding, bases)
    return b, _lower_map(b, ir, binding, bases, output_key)


# --- map kernels -------------------------------------------------------------

class _MmxEval(PackedEval):
    """Tile evaluator addressing rows through per-buffer base pointers."""

    def emit_load_u8(self, reg, buf: str, tile: int) -> None:
        self.b.m_ldq(reg, self.pointers[buf], load_offset("u8", tile))

    def emit_load_i16(self, lo, hi, buf: str, tile: int) -> None:
        self.b.m_ldq(lo, self.pointers[buf], load_offset(I16, tile, 0))
        self.b.m_ldq(hi, self.pointers[buf], load_offset(I16, tile, 1))


def _lower_map(b, ir: LoopKernel, binding: Binding, bases: dict[str, int],
               output_key: str):
    zero_needed, const_keys = plan_packed(ir)
    const_pool = None
    if const_keys:
        const_pool = alloc_const_pool(b, [
            make_const_word(value, domain == HALF)
            for value, domain in const_keys])
        b.vc_lowering["const_pool"] = (const_pool, 8 * len(const_keys))

    pointers = {buf.name: b.ireg() for buf in ir.buffers}
    rows = b.ireg()
    cp = b.ireg(const_pool) if const_keys else None

    ev = _MmxEval(b, ir)
    ev.pointers = pointers
    if zero_needed:
        ev.zero = b.mreg()
        b.pxor(ev.zero, ev.zero, ev.zero)
    for i, key in enumerate(const_keys):
        creg = b.mreg()
        b.m_ldq(creg, cp, 8 * i)
        ev.consts[key] = creg
    site = b.site()

    unroll = unroll_for(ir.rows)
    out = ir.out_buffer
    for index in range(binding.instances):
        for buf in ir.buffers:
            bound = binding.buffers[buf.name]
            b.li(pointers[buf.name], bases[buf.name] + bound.offsets[index])
        b.li(rows, ir.rows // unroll)
        for row in range(ir.rows):
            for tile in range(ir.tiles):
                val = ev.eval_tile(ir.expr, tile)
                b.m_stq(val.byte, pointers[out.name], 8 * tile)
            for buf in ir.buffers:
                b.addi(pointers[buf.name], pointers[buf.name],
                       binding.buffers[buf.name].row_stride)
            if row % unroll == unroll - 1:
                b.subi(rows, rows, 1)
                b.bne(rows, site)
    return read_map_output(b, ir, binding, bases[out.name], output_key)


# --- reduce kernels ----------------------------------------------------------

def _lower_reduce(b, ir: LoopKernel, binding: Binding, bases: dict[str, int]):
    expr = ir.expr
    squared = isinstance(expr, Square)
    la, lb = (expr.a.a, expr.a.b) if squared else (expr.a, expr.b)
    tiles = ir.tiles

    pa, pb = b.ireg(), b.ireg()
    s = b.ireg()
    b.mark_live_out(s)
    tracker = ArgminTracker(b) if ir.argmin else None
    rows = b.ireg()
    a_tiles = [b.mreg() for _ in range(tiles)]
    b_tiles = [b.mreg() for _ in range(tiles)]
    acc, d1, d2 = b.mreg(), b.mreg(), b.mreg()
    zero = b.mreg()
    if squared:
        ta0, ta1, tb0, tb1 = (b.mreg() for _ in range(4))
    b.pxor(zero, zero, zero)
    row_site = b.site()

    unroll = unroll_for(ir.rows)
    stride_a = binding.buffers[la.buf].row_stride
    stride_b = binding.buffers[lb.buf].row_stride
    offs_a = binding.buffers[la.buf].offsets
    offs_b = binding.buffers[lb.buf].offsets
    d_regs = (d1, d2)

    distances: list[int] = []
    for index in range(binding.instances):
        b.li(pa, bases[la.buf] + offs_a[index])
        b.li(pb, bases[lb.buf] + offs_b[index])
        b.pxor(acc, acc, acc)
        b.li(rows, ir.rows // unroll)
        for row in range(ir.rows):
            for tile in range(tiles):
                b.m_ldq(a_tiles[tile], pa, 8 * tile)
            for tile in range(tiles):
                b.m_ldq(b_tiles[tile], pb, 8 * tile)
            if squared:
                for src_a, src_b in zip(a_tiles, b_tiles):
                    # Data promotion: unpack bytes to halves, subtract,
                    # square-and-sum pairs with pmaddh -- the pack/unpack
                    # overhead Section 2.1 blames on MMX reductions.
                    b.punpcklb(ta0, src_a, zero)
                    b.punpckhb(ta1, src_a, zero)
                    b.punpcklb(tb0, src_b, zero)
                    b.punpckhb(tb1, src_b, zero)
                    b.psubh(ta0, ta0, tb0)
                    b.psubh(ta1, ta1, tb1)
                    b.pmaddh(d1, ta0, ta0)
                    b.pmaddh(d2, ta1, ta1)
                    b.paddw(acc, acc, d1)
                    b.paddw(acc, acc, d2)
            else:
                for tile in range(tiles):
                    b.psadb(d_regs[tile % 2], a_tiles[tile], b_tiles[tile])
                for tile in range(tiles):
                    b.paddw(acc, acc, d_regs[tile % 2])
            b.addi(pa, pa, stride_a)
            b.addi(pb, pb, stride_b)
            if row % unroll == unroll - 1:
                b.subi(rows, rows, 1)
                b.bne(rows, row_site)
        if squared:
            b.psrlq(d1, acc, 32)
            b.paddw(acc, acc, d1)
        b.movd_from(s, acc)
        b.andi(s, s, 0xFFFF_FFFF)
        distances.append(s.value)
        if tracker is not None:
            tracker.track(s, index)
    return reduce_outputs(distances, tracker)