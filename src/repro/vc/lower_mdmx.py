"""MDMX lowering: packed-accumulator recurrence, software-pipelined.

Element-wise (map) code is identical to the MMX strategy -- MDMX shares
the packed-arithmetic subset -- so the map path delegates to
:func:`repro.vc.lower_mmx.lower_with` with the MDMX builder, exactly as
the hand ``addblock`` shares one builder function between the two ISAs.

Reductions are where MDMX diverges: ``paccsadb`` / ``paccsqdb``
accumulate into the 192-bit packed accumulators, and because every
accumulator instruction reads the accumulator it writes (the Section 2.1
recurrence), the row loop is *software pipelined over all four logical
accumulators*.  The final read-out is the rac/punpck reduction tree from
:mod:`repro.kernels.reduce`, paid at its real instruction cost.
"""

from __future__ import annotations

from ..emulib.mdmx_builder import MdmxBuilder
from .base import (ArgminTracker, alloc_buffers, note_lowering,
                   reduce_outputs, unroll_for)
from .ir import Binding, LoopKernel, Square
from .lower_mmx import lower_with


def lower(ir: LoopKernel, binding: Binding, output_key: str = "out"):
    """Compile ``ir`` for the MDMX-like ISA; returns (builder, outputs)."""
    if not ir.reduce:
        return lower_with(MdmxBuilder, ir, binding, output_key)
    b = MdmxBuilder()
    bases = alloc_buffers(b, ir, binding)
    note_lowering(b, ir, binding, bases)
    return b, _lower_reduce(b, ir, binding, bases)


#: Logical accumulators to pipeline the recurrence across.
ACCUMULATORS = 4


def _lower_reduce(b: MdmxBuilder, ir: LoopKernel, binding: Binding,
                  bases: dict[str, int]):
    # Deferred: repro.kernels.reduce is a leaf module, but importing it
    # at module scope would run the kernels package __init__ while the
    # kernel registry may itself be importing the compiler.
    from ..kernels.reduce import mdmx_sad_total, mdmx_sqd_total

    expr = ir.expr
    squared = isinstance(expr, Square)
    la, lb = (expr.a.a, expr.a.b) if squared else (expr.a, expr.b)
    tiles = ir.tiles

    pa, pb = b.ireg(), b.ireg()
    s, s2 = b.ireg(), b.ireg()
    b.mark_live_out(s)
    tracker = ArgminTracker(b) if ir.argmin else None
    rows = b.ireg()
    a_tiles = [b.mreg() for _ in range(tiles)]
    b_tiles = [b.mreg() for _ in range(tiles)]
    zero = b.mreg()
    scratch = [b.mreg() for _ in range(7)]
    accs = [b.areg() for _ in range(ACCUMULATORS)]
    b.pxor(zero, zero, zero)
    row_site = b.site()

    acc_op = b.paccsqdb if squared else b.paccsadb
    total = ((lambda acc, out: mdmx_sqd_total(b, acc, scratch, zero, out))
             if squared else
             (lambda acc, out: mdmx_sad_total(b, acc, scratch, out)))

    unroll = unroll_for(ir.rows)
    stride_a = binding.buffers[la.buf].row_stride
    stride_b = binding.buffers[lb.buf].row_stride
    offs_a = binding.buffers[la.buf].offsets
    offs_b = binding.buffers[lb.buf].offsets

    distances: list[int] = []
    for index in range(binding.instances):
        b.li(pa, bases[la.buf] + offs_a[index])
        b.li(pb, bases[lb.buf] + offs_b[index])
        for acc in accs:
            b.clracc(acc)
        b.li(rows, ir.rows // unroll)
        for row in range(ir.rows):
            for tile in range(tiles):
                b.m_ldq(a_tiles[tile], pa, 8 * tile)
            for tile in range(tiles):
                b.m_ldq(b_tiles[tile], pb, 8 * tile)
            # Rotate accumulators to break the recurrence (Section 2.1).
            for tile in range(tiles):
                acc_op(accs[(tiles * row + tile) % ACCUMULATORS],
                       a_tiles[tile], b_tiles[tile])
            b.addi(pa, pa, stride_a)
            b.addi(pb, pb, stride_b)
            if row % unroll == unroll - 1:
                b.subi(rows, rows, 1)
                b.bne(rows, row_site)
        total(accs[0], s)
        for extra in accs[1:]:
            total(extra, s2)
            b.addq(s, s, s2)
        distances.append(s.value)
        if tracker is not None:
            tracker.track(s, index)
    return reduce_outputs(distances, tracker)