"""ssd: 8-bit block sum of squared differences (compiler-built).

Per-block SSD between two frames -- the texture/rate-distortion metric
of encoders, and the reduction shape of ``motion2`` *without* the
invariant current block: both operands vary per instance, so the MOM
lowering cannot hoist anything and loads two strided matrix operands per
block, while MDMX software-pipelines its ``paccsqdb`` recurrence over
all four accumulators and MMX pays the full unpack/``pmaddh`` promotion
tax.

All four builders come from the vectorizing compiler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vc import (Binding, Buffer, BufferBinding, Load, LoopKernel, Square,
                  Sub, make_builders)
from .common import KernelSpec, register, rng_for

BLOCK = 16


@dataclass
class SsdWorkload:
    """Aligned 16x16 block pairs from two deterministic frames."""

    a: np.ndarray           # (count, 16, 16) uint8
    b: np.ndarray           # (count, 16, 16) uint8


def make_workload(scale: int = 1) -> SsdWorkload:
    rng = rng_for("ssd", scale)
    count = 4 * max(1, scale)
    a = rng.integers(0, 256, (count, BLOCK, BLOCK), dtype=np.uint8)
    drift = rng.integers(-16, 17, (count, BLOCK, BLOCK))
    b = (a.astype(np.int64) + drift).clip(0, 255).astype(np.uint8)
    return SsdWorkload(a=a, b=b)


def golden(workload: SsdWorkload) -> dict[str, np.ndarray]:
    diff = workload.a.astype(np.int64) - workload.b.astype(np.int64)
    return {"distances": np.square(diff).sum(axis=(1, 2))}


IR = LoopKernel(
    name="ssd",
    rows=BLOCK,
    cols=BLOCK,
    buffers=(Buffer("a"), Buffer("b")),
    expr=Square(Sub(Load("a"), Load("b"))),
    reduce=True,
)


def bind(workload: SsdWorkload) -> Binding:
    count = len(workload.a)
    offsets = [i * BLOCK * BLOCK for i in range(count)]
    return Binding(buffers={
        "a": BufferBinding(workload.a, row_stride=BLOCK,
                           offsets=list(offsets)),
        "b": BufferBinding(workload.b, row_stride=BLOCK,
                           offsets=list(offsets)),
    })


register(KernelSpec(
    name="ssd",
    description="8-bit block SSD (compiler-built, squared reduction)",
    make_workload=make_workload,
    golden=golden,
    builders=make_builders(IR, bind, output_key="distances", name="ssd"),
))
