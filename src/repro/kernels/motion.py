"""motion1 / motion2: MPEG-2 motion-estimation kernels (Figures 1 and 2).

``motion1`` is the sum-of-absolute-differences pixel distance (the paper's
``dist1``), driven over the spiral candidate walk of ``fullsearch``;
``motion2`` is the sum-of-quadratic-differences variant.  These are the
motivating example of Section 2: three nested levels of DLP of which the
scalar code exploits none, MMX one (the 16-pixel row) and MOM two (the whole
16x16 block as one matrix access with the image width as row stride).

Implementation notes per ISA:

* **alpha** -- the branch-free sub/sub/cmovlt absolute-difference idiom,
  inner loop fully unrolled over the 16 pixels of a row (what a late-90s
  compiler achieves with unrolling).
* **mmx** -- two 64-bit loads per image row per block, ``psadb`` reductions
  (the "enhanced reduction operations" of Section 3.1), rows unrolled by 4.
* **mdmx** -- ``paccsadb``/``paccsqdb`` packed accumulators, *software
  pipelined over all four logical accumulators* to hide the accumulator
  recurrence, then the rac/punpck reduction tree.
* **mom** -- one ``momldq`` per 8-pixel column of the block (VL = 16 rows)
  and one ``mommsadb``/``mommsqdb`` matrix operation each; 2D DLP in
  earnest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder, emit_abs_diff
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from ..isa.model import ElemType
from .common import BuiltKernel, KernelSpec, register, rng_for
from .reduce import mdmx_sad_total, mdmx_sqd_total

BLOCK = 16


@dataclass
class MotionWorkload:
    """A reference frame, one current block, and a spiral candidate walk."""

    ref: np.ndarray                 # (height, width) uint8
    blk: np.ndarray                 # (16, 16) uint8
    width: int                      # row stride of the reference frame
    candidates: list[tuple[int, int]]   # (y, x) block positions in ref


def spiral_candidates(center_y: int, center_x: int, win: int) -> list[tuple[int, int]]:
    """The candidate walk of the paper's ``fullsearch`` (Figure 2)."""
    out = [(center_y, center_x)]
    for radius in range(1, win + 1):
        y, x = center_y - radius, center_x - radius
        for k in range(8 * radius):
            out.append((y, x))
            if k < 2 * radius:
                x += 1
            elif k < 4 * radius:
                y += 1
            elif k < 6 * radius:
                x -= 1
            else:
                y -= 1
    return out


def make_workload(scale: int = 1) -> MotionWorkload:
    """Synthesize a frame with a shifted copy of the block inside it.

    ``scale`` is the spiral window size: candidates = 1 + 4*scale*(scale+1).
    """
    win = max(1, scale)
    width = 64
    height = BLOCK + 2 * win + 8
    rng = rng_for("motion", scale)
    ref = rng.integers(0, 256, (height, width), dtype=np.uint8)
    blk = ref[win + 1 : win + 1 + BLOCK, win + 2 : win + 2 + BLOCK].copy()
    blk = (blk.astype(np.int16) + rng.integers(-3, 4, blk.shape)).clip(0, 255)
    blk = blk.astype(np.uint8)
    candidates = spiral_candidates(win, win, win)
    return MotionWorkload(ref=ref, blk=blk, width=width, candidates=candidates)


def _distances(workload: MotionWorkload, squared: bool) -> np.ndarray:
    ref = workload.ref.astype(np.int64)
    blk = workload.blk.astype(np.int64)
    out = []
    for y, x in workload.candidates:
        window = ref[y : y + BLOCK, x : x + BLOCK]
        diff = window - blk
        out.append(np.square(diff).sum() if squared else np.abs(diff).sum())
    return np.asarray(out, dtype=np.int64)


def golden_motion1(workload: MotionWorkload) -> dict[str, np.ndarray]:
    sads = _distances(workload, squared=False)
    return {"distances": sads, "best": np.asarray([int(np.argmin(sads))])}


def golden_motion2(workload: MotionWorkload) -> dict[str, np.ndarray]:
    sqds = _distances(workload, squared=True)
    return {"distances": sqds, "best": np.asarray([int(np.argmin(sqds))])}


def _outputs(distances: list[int], best: int) -> dict[str, np.ndarray]:
    return {
        "distances": np.asarray(distances, dtype=np.int64),
        "best": np.asarray([best]),
    }


def _track_min(b, dist, best, besti, tmp, cand_reg, index: int) -> None:
    """Strictly-less minimum tracking with compare + conditional moves."""
    b.li(cand_reg, index)
    b.cmplt(tmp, dist, best)
    b.cmovne(best, tmp, dist)
    b.cmovne(besti, tmp, cand_reg)


# --- Alpha -----------------------------------------------------------------------

def _build_alpha(workload: MotionWorkload, squared: bool) -> BuiltKernel:
    b = AlphaBuilder()
    ref_addr = b.mem.alloc_array(workload.ref)
    blk_addr = b.mem.alloc_array(workload.blk)
    width = workload.width

    pa, pb = b.ireg(), b.ireg(blk_addr)
    s, va, vb, d, scr = b.ireg(), b.ireg(), b.ireg(), b.ireg(), b.ireg()
    rows = b.ireg()
    best, besti, tmp, cand = b.ireg(1 << 30), b.ireg(0), b.ireg(), b.ireg()
    row_site = b.site()

    distances = []
    for index, (y, x) in enumerate(workload.candidates):
        b.li(pa, ref_addr + y * width + x)
        b.li(pb, blk_addr)
        b.li(s, 0)
        b.li(rows, BLOCK)
        for _row in range(BLOCK):
            for i in range(BLOCK):
                b.ldbu(va, pa, i)
                b.ldbu(vb, pb, i)
                if squared:
                    b.subq(d, va, vb)
                    b.mulq(d, d, d)
                else:
                    emit_abs_diff(b, d, va, vb, scr)
                b.addq(s, s, d)
            b.addi(pa, pa, width)
            b.addi(pb, pb, BLOCK)
            b.subi(rows, rows, 1)
            b.bne(rows, row_site)
        distances.append(s.value)
        _track_min(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(distances, besti.value))


# --- MMX -------------------------------------------------------------------------

def _build_mmx(workload: MotionWorkload, squared: bool) -> BuiltKernel:
    b = MmxBuilder()
    ref_addr = b.mem.alloc_array(workload.ref)
    blk_addr = b.mem.alloc_array(workload.blk)
    width = workload.width

    pa, pb = b.ireg(), b.ireg()
    s, best, besti, tmp, cand = b.ireg(), b.ireg(1 << 30), b.ireg(0), b.ireg(), b.ireg()
    rows = b.ireg()
    a_lo, a_hi, b_lo, b_hi = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    acc, d1, d2 = b.mreg(), b.mreg(), b.mreg()
    zero = b.mreg()
    if squared:
        ta0, ta1, tb0, tb1 = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    b.pxor(zero, zero, zero)
    row_site = b.site()

    distances = []
    for index, (y, x) in enumerate(workload.candidates):
        b.li(pa, ref_addr + y * width + x)
        b.li(pb, blk_addr)
        b.pxor(acc, acc, acc)
        b.li(rows, BLOCK // 4)
        for row in range(BLOCK):
            b.m_ldq(a_lo, pa, 0)
            b.m_ldq(a_hi, pa, 8)
            b.m_ldq(b_lo, pb, 0)
            b.m_ldq(b_hi, pb, 8)
            if squared:
                for src_a, src_b in ((a_lo, b_lo), (a_hi, b_hi)):
                    # Data promotion: unpack bytes to halves, subtract,
                    # square-and-sum pairs with pmaddh -- the pack/unpack
                    # overhead Section 2.1 blames on MMX reductions.
                    b.punpcklb(ta0, src_a, zero)
                    b.punpckhb(ta1, src_a, zero)
                    b.punpcklb(tb0, src_b, zero)
                    b.punpckhb(tb1, src_b, zero)
                    b.psubh(ta0, ta0, tb0)
                    b.psubh(ta1, ta1, tb1)
                    b.pmaddh(d1, ta0, ta0)
                    b.pmaddh(d2, ta1, ta1)
                    b.paddw(acc, acc, d1)
                    b.paddw(acc, acc, d2)
            else:
                b.psadb(d1, a_lo, b_lo)
                b.psadb(d2, a_hi, b_hi)
                b.paddw(acc, acc, d1)
                b.paddw(acc, acc, d2)
            b.addi(pa, pa, width)
            b.addi(pb, pb, BLOCK)
            if row % 4 == 3:      # rows unrolled by four
                b.subi(rows, rows, 1)
                b.bne(rows, row_site)
        if squared:
            b.psrlq(d1, acc, 32)
            b.paddw(acc, acc, d1)
        b.movd_from(s, acc)
        b.andi(s, s, 0xFFFF_FFFF)
        distances.append(s.value)
        _track_min(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(distances, besti.value))


# --- MDMX ------------------------------------------------------------------------

def _build_mdmx(workload: MotionWorkload, squared: bool) -> BuiltKernel:
    b = MdmxBuilder()
    ref_addr = b.mem.alloc_array(workload.ref)
    blk_addr = b.mem.alloc_array(workload.blk)
    width = workload.width

    pa, pb = b.ireg(), b.ireg()
    s, s2 = b.ireg(), b.ireg()
    best, besti, tmp, cand = b.ireg(1 << 30), b.ireg(0), b.ireg(), b.ireg()
    rows = b.ireg()
    a_lo, a_hi, b_lo, b_hi = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    zero = b.mreg()
    scratch = [b.mreg() for _ in range(7)]
    accs = [b.areg() for _ in range(4)]     # software-pipelined accumulators
    b.pxor(zero, zero, zero)
    row_site = b.site()
    acc_op = b.paccsqdb if squared else b.paccsadb
    total = (lambda acc, out: mdmx_sqd_total(b, acc, scratch, zero, out)) \
        if squared else (lambda acc, out: mdmx_sad_total(b, acc, scratch, out))

    distances = []
    for index, (y, x) in enumerate(workload.candidates):
        b.li(pa, ref_addr + y * width + x)
        b.li(pb, blk_addr)
        for acc in accs:
            b.clracc(acc)
        b.li(rows, BLOCK // 4)
        for row in range(BLOCK):
            b.m_ldq(a_lo, pa, 0)
            b.m_ldq(a_hi, pa, 8)
            b.m_ldq(b_lo, pb, 0)
            b.m_ldq(b_hi, pb, 8)
            # Alternate accumulators to break the recurrence (Section 2.1).
            acc_op(accs[(2 * row) % 4], a_lo, b_lo)
            acc_op(accs[(2 * row + 1) % 4], a_hi, b_hi)
            b.addi(pa, pa, width)
            b.addi(pb, pb, BLOCK)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, row_site)
        total(accs[0], s)
        for extra in accs[1:]:
            total(extra, s2)
            b.addq(s, s, s2)
        distances.append(s.value)
        _track_min(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(distances, besti.value))


# --- MOM -------------------------------------------------------------------------

def _build_mom(workload: MotionWorkload, squared: bool) -> BuiltKernel:
    b = MomBuilder()
    ref_addr = b.mem.alloc_array(workload.ref)
    blk_addr = b.mem.alloc_array(workload.blk)
    width = workload.width

    pa, pb = b.ireg(), b.ireg()
    ref_stride, blk_stride = b.ireg(width), b.ireg(BLOCK)
    s = b.ireg()
    best, besti, tmp, cand = b.ireg(1 << 30), b.ireg(0), b.ireg(), b.ireg()
    a_lo, a_hi, c_lo, c_hi = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    acc = b.areg()
    acc_op = b.mommsqdb if squared else b.mommsadb

    # The current block never changes: hoist its two column loads out of
    # the candidate loop entirely -- 2D vectorization at work.
    b.setvli(BLOCK)
    b.li(pb, blk_addr)
    b.momldq(c_lo, pb, blk_stride)
    b.addi(pb, pb, 8)
    b.momldq(c_hi, pb, blk_stride)

    distances = []
    for index, (y, x) in enumerate(workload.candidates):
        b.setvli(BLOCK)
        b.li(pa, ref_addr + y * width + x)
        b.clracc(acc)
        b.momldq(a_lo, pa, ref_stride)
        b.addi(pa, pa, 8)
        b.momldq(a_hi, pa, ref_stride)
        acc_op(acc, a_lo, c_lo)
        acc_op(acc, a_hi, c_hi)
        # The matrix instruction reduced both dimensions: one racl reads
        # the scalar total.
        b.racl(s, acc, ElemType.Q)
        distances.append(s.value)
        _track_min(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(distances, besti.value))


register(KernelSpec(
    name="motion1",
    description="MPEG-2 motion estimation, sum of absolute differences",
    make_workload=make_workload,
    golden=golden_motion1,
    builders={
        "alpha": lambda w: _build_alpha(w, squared=False),
        "mmx": lambda w: _build_mmx(w, squared=False),
        "mdmx": lambda w: _build_mdmx(w, squared=False),
        "mom": lambda w: _build_mom(w, squared=False),
    },
))

register(KernelSpec(
    name="motion2",
    description="MPEG-2 motion estimation, sum of quadratic differences",
    make_workload=make_workload,
    golden=golden_motion2,
    builders={
        "alpha": lambda w: _build_alpha(w, squared=True),
        "mmx": lambda w: _build_mmx(w, squared=True),
        "mdmx": lambda w: _build_mdmx(w, squared=True),
        "mom": lambda w: _build_mom(w, squared=True),
    },
))
