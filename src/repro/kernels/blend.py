"""blend: constant-alpha compositing of two images (compiler-built).

``out = (A*src0 + (255-A)*src1 + 128) >> 8`` per pixel -- the video
cross-fade / graphics compositing hot loop from the wider MPSoC workload
space (Wolf's survey).  The expression exercises the IR's widening
multiply, constant broadcast and shift: the packed lowerings promote the
u8 pixels to halfword lanes, multiply against broadcast constants and
pack back with ``packushb``; the scalar lowering pays the memory-table
saturation like mpeg2play.

All four builders come from the vectorizing compiler -- no hand
assembly exists for this kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vc import (Add, Binding, Buffer, BufferBinding, Const, Load,
                  LoopKernel, Mul, SatU8, Shr, make_builders)
from .common import KernelSpec, register, rng_for

N = 8
#: Fixed blend weight (alpha of src0, out of 255).
ALPHA = 170
BETA = 255 - ALPHA
ROUND = 128


@dataclass
class BlendWorkload:
    """Paired 8x8 tiles from two deterministic synthetic images."""

    src0: np.ndarray        # (count, 8, 8) uint8
    src1: np.ndarray        # (count, 8, 8) uint8


def make_workload(scale: int = 1) -> BlendWorkload:
    rng = rng_for("blend", scale)
    count = 8 * max(1, scale)
    return BlendWorkload(
        src0=rng.integers(0, 256, (count, N, N), dtype=np.uint8),
        src1=rng.integers(0, 256, (count, N, N), dtype=np.uint8),
    )


def golden(workload: BlendWorkload) -> dict[str, np.ndarray]:
    a = workload.src0.astype(np.int64)
    b = workload.src1.astype(np.int64)
    out = (ALPHA * a + BETA * b + ROUND) >> 8
    return {"blocks": out.astype(np.uint8)}


IR = LoopKernel(
    name="blend",
    rows=N,
    cols=N,
    buffers=(Buffer("src0"), Buffer("src1"), Buffer("out", out=True)),
    expr=SatU8(Shr(Add(Add(Mul(Load("src0"), Const(ALPHA)),
                           Mul(Load("src1"), Const(BETA))),
                       Const(ROUND)), 8)),
)


def bind(workload: BlendWorkload) -> Binding:
    count = len(workload.src0)
    offsets = [i * N * N for i in range(count)]
    return Binding(buffers={
        "src0": BufferBinding(workload.src0, row_stride=N,
                              offsets=list(offsets)),
        "src1": BufferBinding(workload.src1, row_stride=N,
                              offsets=list(offsets)),
        "out": BufferBinding(None, row_stride=N, offsets=list(offsets)),
    })


register(KernelSpec(
    name="blend",
    description="constant-alpha compositing (compiler-built, widening MAC)",
    make_workload=make_workload,
    golden=golden,
    builders=make_builders(IR, bind, output_key="blocks", name="blend"),
))
