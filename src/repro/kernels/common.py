"""Kernel framework: one kernel, four ISAs, one golden reference.

Every kernel module registers a :class:`KernelSpec` carrying

* a *workload factory* -- deterministic synthetic inputs at a chosen scale,
* a numpy *golden* function -- the bit-exact expected outputs, and
* one *builder function per ISA* -- hand-vectorized implementations written
  against the emulation libraries, mirroring how the paper "identified those
  functions with potential DLP and manually rewrote them using stylized
  subroutine calls" (Section 3.1), including the loop unrolling and software
  pipelining they applied to MMX/MDMX.

``build_and_check`` runs a builder and asserts its outputs equal the golden
reference, so every simulated trace is backed by a verified computation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..emulib.base_builder import BaseBuilder

#: ISAs every kernel must implement.
ISAS = ("alpha", "mmx", "mdmx", "mom")


@dataclass
class BuiltKernel:
    """A functionally-executed kernel ready for timing simulation."""

    builder: BaseBuilder
    #: named output arrays, to compare against the golden reference.
    outputs: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def trace(self):
        return self.builder.trace


@dataclass(frozen=True)
class KernelSpec:
    """Registry entry for one kernel."""

    name: str
    description: str
    make_workload: Callable[[int], object]
    golden: Callable[[object], dict[str, np.ndarray]]
    builders: dict[str, Callable[[object], BuiltKernel]]

    def build(self, isa: str, workload) -> BuiltKernel:
        if isa not in self.builders:
            raise KeyError(f"kernel {self.name!r} has no {isa!r} version")
        return self.builders[isa](workload)


#: Global kernel registry, populated by the kernel modules at import time.
KERNELS: dict[str, KernelSpec] = {}


def register(spec: KernelSpec) -> KernelSpec:
    if spec.name in KERNELS:
        raise ValueError(f"kernel {spec.name!r} registered twice")
    missing = [isa for isa in ISAS if isa not in spec.builders]
    if missing:
        raise ValueError(f"kernel {spec.name!r} missing ISAs: {missing}")
    KERNELS[spec.name] = spec
    return spec


def build_and_check(spec: KernelSpec, isa: str, workload) -> BuiltKernel:
    """Build a kernel and verify its outputs against the golden reference.

    Raises ``AssertionError`` with a helpful message on any mismatch; the
    verified :class:`BuiltKernel` is returned otherwise.
    """
    golden = spec.golden(workload)
    built = spec.build(isa, workload)
    for name, expected in golden.items():
        if name not in built.outputs:
            raise AssertionError(
                f"{spec.name}/{isa}: output {name!r} missing "
                f"(has {sorted(built.outputs)})"
            )
        actual = built.outputs[name]
        if not np.array_equal(np.asarray(actual), np.asarray(expected)):
            diff = np.flatnonzero(
                np.asarray(actual).ravel() != np.asarray(expected).ravel()
            )
            raise AssertionError(
                f"{spec.name}/{isa}: output {name!r} mismatches golden at "
                f"{diff.size} positions (first: {diff[:8]})"
            )
    return built


def rng_for(kernel: str, scale: int) -> np.random.Generator:
    """Deterministic per-kernel random source (stable across runs)."""
    seed = zlib.crc32(f"{kernel}:{scale}".encode())
    return np.random.default_rng(seed)
