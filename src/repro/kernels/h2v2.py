"""h2v2upsample: JPEG 2x2 chroma upsampling (the paper's "image zoom").

Each input pixel is replicated into a 2x2 output block.  The media versions
exploit that ``punpcklb(x, x)`` / ``punpckhb(x, x)`` duplicate bytes in
place; each doubled row is stored twice.  Throughput is store-bound, which
caps the attainable speedup (the most modest bars of Figure 5).

MOM processes 8 input rows per iteration: one strided matrix load, two
unpacks, four strided matrix stores (even/odd output rows x low/high output
columns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from .common import BuiltKernel, KernelSpec, register, rng_for


@dataclass
class UpsampleWorkload:
    image: np.ndarray      # (height, width) uint8; height % 8 == 0, width % 8 == 0


def make_workload(scale: int = 1) -> UpsampleWorkload:
    rng = rng_for("h2v2", scale)
    height = 8 * max(1, scale)
    width = 32
    return UpsampleWorkload(
        image=rng.integers(0, 256, (height, width), dtype=np.uint8)
    )


def golden(workload: UpsampleWorkload) -> dict[str, np.ndarray]:
    doubled = np.repeat(np.repeat(workload.image, 2, axis=0), 2, axis=1)
    return {"image": doubled}


def _read_image(b, out_addr: int, height: int, width: int) -> dict[str, np.ndarray]:
    flat = b.mem.load_array(out_addr, np.uint8, 4 * height * width)
    return {"image": flat.reshape(2 * height, 2 * width)}


def _build_alpha(workload: UpsampleWorkload) -> BuiltKernel:
    b = AlphaBuilder()
    h, w = workload.image.shape
    in_addr = b.mem.alloc_array(workload.image)
    out_addr = b.mem.alloc(4 * h * w)
    ow = 2 * w

    pi, po0, po1, v = b.ireg(), b.ireg(), b.ireg(), b.ireg()
    cnt = b.ireg()
    site = b.site()

    for y in range(h):
        b.li(pi, in_addr + y * w)
        b.li(po0, out_addr + (2 * y) * ow)
        b.li(po1, out_addr + (2 * y + 1) * ow)
        b.li(cnt, w // 4)
        for x in range(w):
            b.ldbu(v, pi, x)
            b.stb(v, po0, 2 * x)
            b.stb(v, po0, 2 * x + 1)
            b.stb(v, po1, 2 * x)
            b.stb(v, po1, 2 * x + 1)
            if x % 4 == 3:
                b.subi(cnt, cnt, 1)
                b.bne(cnt, site)
    return BuiltKernel(builder=b, outputs=_read_image(b, out_addr, h, w))


def _build_packed(workload: UpsampleWorkload, builder_cls) -> BuiltKernel:
    b = builder_cls()
    h, w = workload.image.shape
    in_addr = b.mem.alloc_array(workload.image)
    out_addr = b.mem.alloc(4 * h * w)
    ow = 2 * w

    pi, po0, po1 = b.ireg(), b.ireg(), b.ireg()
    x_reg, lo, hi = b.mreg(), b.mreg(), b.mreg()
    cnt = b.ireg()
    site = b.site()

    for y in range(h):
        b.li(pi, in_addr + y * w)
        b.li(po0, out_addr + (2 * y) * ow)
        b.li(po1, out_addr + (2 * y + 1) * ow)
        b.li(cnt, w // 8)
        for x in range(0, w, 8):
            b.m_ldq(x_reg, pi, x)
            b.punpcklb(lo, x_reg, x_reg)
            b.punpckhb(hi, x_reg, x_reg)
            b.m_stq(lo, po0, 2 * x)
            b.m_stq(hi, po0, 2 * x + 8)
            b.m_stq(lo, po1, 2 * x)
            b.m_stq(hi, po1, 2 * x + 8)
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)
    return BuiltKernel(builder=b, outputs=_read_image(b, out_addr, h, w))


def _build_mom(workload: UpsampleWorkload) -> BuiltKernel:
    b = MomBuilder()
    h, w = workload.image.shape
    in_addr = b.mem.alloc_array(workload.image)
    out_addr = b.mem.alloc(4 * h * w)
    ow = 2 * w

    pi, po = b.ireg(), b.ireg()
    in_stride, out_stride = b.ireg(w), b.ireg(2 * ow)
    x_reg, lo, hi = b.mreg(), b.mreg(), b.mreg()
    rows = 8
    b.setvli(rows)

    for y0 in range(0, h, rows):
        for x in range(0, w, 8):
            b.li(pi, in_addr + y0 * w + x)
            b.momldq(x_reg, pi, in_stride)
            b.punpcklb(lo, x_reg, x_reg)
            b.punpckhb(hi, x_reg, x_reg)
            for row_parity in (0, 1):
                obase = out_addr + (2 * y0 + row_parity) * ow + 2 * x
                b.li(po, obase)
                b.momstq(lo, po, out_stride)
                b.li(po, obase + 8)
                b.momstq(hi, po, out_stride)
    return BuiltKernel(builder=b, outputs=_read_image(b, out_addr, h, w))


register(KernelSpec(
    name="h2v2upsample",
    description="JPEG 2x2 chroma upsampling (image zoom)",
    make_workload=make_workload,
    golden=golden,
    builders={
        "alpha": _build_alpha,
        "mmx": lambda w: _build_packed(w, MmxBuilder),
        "mdmx": lambda w: _build_packed(w, MdmxBuilder),
        "mom": _build_mom,
    },
))
