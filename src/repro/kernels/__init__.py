"""The eight multimedia kernels of Section 4.1, in all four ISAs.

Importing this package registers every kernel in
:data:`repro.kernels.common.KERNELS`:

``idct``, ``motion1``, ``motion2``, ``rgb2ycc``, ``compensation``,
``addblock``, ``ltpparameters`` and ``h2v2upsample``.
"""

from .common import ISAS, KERNELS, BuiltKernel, KernelSpec, build_and_check
from . import addblock      # noqa: F401  (registration side effect)
from . import compensation  # noqa: F401
from . import h2v2          # noqa: F401
from . import idct          # noqa: F401
from . import ltp           # noqa: F401
from . import motion        # noqa: F401
from . import rgb2ycc       # noqa: F401

#: Kernel presentation order used by Figure 5.
KERNEL_ORDER = (
    "idct", "motion2", "rgb2ycc", "ltpparameters",
    "addblock", "compensation", "h2v2upsample", "motion1",
)

__all__ = [
    "ISAS", "KERNELS", "KERNEL_ORDER", "BuiltKernel", "KernelSpec",
    "build_and_check",
]
