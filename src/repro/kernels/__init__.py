"""The eight multimedia kernels of Section 4.1, plus compiler-built ones.

Importing this package registers every kernel in
:data:`repro.kernels.common.KERNELS`:

* hand-vectorized (the paper's Section 4.1 set): ``idct``, ``motion1``,
  ``motion2``, ``rgb2ycc``, ``compensation``, ``addblock``,
  ``ltpparameters`` and ``h2v2upsample``;
* built entirely by the vectorizing compiler (:mod:`repro.vc`):
  ``blend``, ``chromakey`` and ``ssd``.
"""

from .common import ISAS, KERNELS, BuiltKernel, KernelSpec, build_and_check
from . import addblock      # noqa: F401  (registration side effect)
from . import compensation  # noqa: F401
from . import h2v2          # noqa: F401
from . import idct          # noqa: F401
from . import ltp           # noqa: F401
from . import motion        # noqa: F401
from . import rgb2ycc       # noqa: F401
# Compiler-built kernels import repro.vc, which also registers the
# digest-pinned mirrors of addblock/motion1/motion2 -- keep these after
# the hand kernels above.
from . import blend         # noqa: F401
from . import chromakey     # noqa: F401
from . import ssd           # noqa: F401

#: Kernel presentation order used by Figure 5 (the paper's grid).
KERNEL_ORDER = (
    "idct", "motion2", "rgb2ycc", "ltpparameters",
    "addblock", "compensation", "h2v2upsample", "motion1",
)

#: Compiler-built kernels (no hand assembly exists for these).
VC_KERNEL_ORDER = ("blend", "chromakey", "ssd")

__all__ = [
    "ISAS", "KERNELS", "KERNEL_ORDER", "VC_KERNEL_ORDER", "BuiltKernel",
    "KernelSpec", "build_and_check",
]
