"""compensation: MPEG-2 bidirectional motion compensation.

Averages a forward and a backward 16x16 reference block with rounding:
``pred[i] = (fwd[i] + bwd[i] + 1) >> 1``.  The reference blocks sit at
arbitrary (usually unaligned) positions inside the frame, so the media
versions exercise the unaligned-load path; the scalar version does the add,
round and shift per pixel.

This is the ideal vector-average workload: MMX/MDMX retire 8 pixels per
``pavgb``, MOM retires 128 pixels per ``pavgb`` at VL=16.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from .common import BuiltKernel, KernelSpec, register, rng_for

BLOCK = 16


@dataclass
class CompensationWorkload:
    """Frame plus (fwd, bwd, dst) block positions to compensate."""

    frame: np.ndarray                       # (height, width) uint8
    width: int
    blocks: list[tuple[tuple[int, int], tuple[int, int]]]   # (fwd_yx, bwd_yx)


def make_workload(scale: int = 1) -> CompensationWorkload:
    rng = rng_for("compensation", scale)
    width = 64
    count = 4 * max(1, scale)
    height = BLOCK + count + 4
    frame = rng.integers(0, 256, (height, width), dtype=np.uint8)
    blocks = []
    for i in range(count):
        fwd = (int(rng.integers(0, height - BLOCK)),
               int(rng.integers(0, width - BLOCK)))
        bwd = (int(rng.integers(0, height - BLOCK)),
               int(rng.integers(0, width - BLOCK)))
        blocks.append((fwd, bwd))
    return CompensationWorkload(frame=frame, width=width, blocks=blocks)


def golden(workload: CompensationWorkload) -> dict[str, np.ndarray]:
    frame = workload.frame.astype(np.int64)
    preds = []
    for (fy, fx), (by, bx) in workload.blocks:
        f = frame[fy : fy + BLOCK, fx : fx + BLOCK]
        w = frame[by : by + BLOCK, bx : bx + BLOCK]
        preds.append(((f + w + 1) >> 1).astype(np.uint8))
    return {"pred": np.stack(preds)}


def _read_preds(b, out_addr: int, count: int) -> dict[str, np.ndarray]:
    flat = b.mem.load_array(out_addr, np.uint8, count * BLOCK * BLOCK)
    return {"pred": flat.reshape(count, BLOCK, BLOCK)}


def _build_alpha(workload: CompensationWorkload) -> BuiltKernel:
    b = AlphaBuilder()
    frame_addr = b.mem.alloc_array(workload.frame)
    out_addr = b.mem.alloc(len(workload.blocks) * BLOCK * BLOCK)
    width = workload.width

    pf, pw, po = b.ireg(), b.ireg(), b.ireg()
    vf, vw = b.ireg(), b.ireg()
    rows = b.ireg()
    site = b.site()

    for n, ((fy, fx), (by, bx)) in enumerate(workload.blocks):
        b.li(pf, frame_addr + fy * width + fx)
        b.li(pw, frame_addr + by * width + bx)
        b.li(po, out_addr + n * BLOCK * BLOCK)
        b.li(rows, BLOCK)
        for _row in range(BLOCK):
            for i in range(BLOCK):
                b.ldbu(vf, pf, i)
                b.ldbu(vw, pw, i)
                b.addq(vf, vf, vw)
                b.addi(vf, vf, 1)
                b.srl(vf, vf, 1)
                b.stb(vf, po, i)
            b.addi(pf, pf, width)
            b.addi(pw, pw, width)
            b.addi(po, po, BLOCK)
            b.subi(rows, rows, 1)
            b.bne(rows, site)
    return BuiltKernel(
        builder=b, outputs=_read_preds(b, out_addr, len(workload.blocks))
    )


def _build_packed(workload: CompensationWorkload, builder_cls) -> BuiltKernel:
    """Shared MMX / MDMX implementation (pavgb is in the common subset)."""
    b = builder_cls()
    frame_addr = b.mem.alloc_array(workload.frame)
    out_addr = b.mem.alloc(len(workload.blocks) * BLOCK * BLOCK)
    width = workload.width

    pf, pw, po = b.ireg(), b.ireg(), b.ireg()
    rows = b.ireg()
    f_lo, f_hi, w_lo, w_hi = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    site = b.site()

    for n, ((fy, fx), (by, bx)) in enumerate(workload.blocks):
        b.li(pf, frame_addr + fy * width + fx)
        b.li(pw, frame_addr + by * width + bx)
        b.li(po, out_addr + n * BLOCK * BLOCK)
        b.li(rows, BLOCK // 4)
        for row in range(BLOCK):
            b.m_ldq(f_lo, pf, 0)
            b.m_ldq(f_hi, pf, 8)
            b.m_ldq(w_lo, pw, 0)
            b.m_ldq(w_hi, pw, 8)
            b.pavgb(f_lo, f_lo, w_lo)
            b.pavgb(f_hi, f_hi, w_hi)
            b.m_stq(f_lo, po, 0)
            b.m_stq(f_hi, po, 8)
            b.addi(pf, pf, width)
            b.addi(pw, pw, width)
            b.addi(po, po, BLOCK)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, site)
    return BuiltKernel(
        builder=b, outputs=_read_preds(b, out_addr, len(workload.blocks))
    )


def _build_mom(workload: CompensationWorkload) -> BuiltKernel:
    b = MomBuilder()
    frame_addr = b.mem.alloc_array(workload.frame)
    out_addr = b.mem.alloc(len(workload.blocks) * BLOCK * BLOCK)
    width = workload.width

    pf, pw, po = b.ireg(), b.ireg(), b.ireg()
    frame_stride, out_stride = b.ireg(width), b.ireg(BLOCK)
    f, w = b.mreg(), b.mreg()
    b.setvli(BLOCK)

    for n, ((fy, fx), (by, bx)) in enumerate(workload.blocks):
        for half in (0, 8):
            b.li(pf, frame_addr + fy * width + fx + half)
            b.li(pw, frame_addr + by * width + bx + half)
            b.li(po, out_addr + n * BLOCK * BLOCK + half)
            b.momldq(f, pf, frame_stride)
            b.momldq(w, pw, frame_stride)
            b.pavgb(f, f, w)
            b.momstq(f, po, out_stride)
    return BuiltKernel(
        builder=b, outputs=_read_preds(b, out_addr, len(workload.blocks))
    )


register(KernelSpec(
    name="compensation",
    description="MPEG-2 bidirectional motion compensation (rounded average)",
    make_workload=make_workload,
    golden=golden,
    builders={
        "alpha": _build_alpha,
        "mmx": lambda w: _build_packed(w, MmxBuilder),
        "mdmx": lambda w: _build_packed(w, MdmxBuilder),
        "mom": _build_mom,
    },
))
