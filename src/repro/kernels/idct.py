"""idct: 8x8 inverse discrete cosine transform (MPEG-2 / JPEG style).

Fixed-point separable IDCT, bit-exact across all four ISA versions:

* constants ``M[x][u] = round(2^14 * c_u/2 * cos((2x+1)u*pi/16))``,
* column pass: ``t = clip_i16((M . X + 1024) >> 11)``,
* row pass:    ``y = clip(-256, 255, clip_i16((t . M^T + 65536) >> 17))``.

ISA notes:

* **alpha** -- straight triple loop with constants materialized by ``lda``;
  this is what late-90s compilers produced for the reference C code.
* **mmx / mdmx** -- the AP-922 style approach: both passes become *row*
  transforms with ``pmaddh`` on pair-interleaved constants, connected by
  8x8 halfword transposes built from ``punpck`` -- the pack/unpack overhead
  Section 2 blames on 1D SIMD ISAs.  MDMX shares the MMX code path (its
  accumulators do not help a transform whose reductions are pair-wise).
* **mom** -- the column pass falls out of the matrix register naturally:
  one ``pmaddah`` (VL=8) per output row against a broadcast-constant
  matrix, read out by ``raccsh`` with built-in round/shift/saturate; the
  transpose between passes uses ``momtransh`` plus quadrant swaps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from .common import BuiltKernel, KernelSpec, register, rng_for

N = 8
PASS1_ROUND, PASS1_SHIFT = 1 << 10, 11
PASS2_ROUND, PASS2_SHIFT = 1 << 16, 17
OUT_MIN, OUT_MAX = -256, 255


def idct_matrix() -> np.ndarray:
    """The 14-bit fixed-point IDCT constant matrix ``M[x][u]``."""
    x = np.arange(N).reshape(-1, 1)
    u = np.arange(N).reshape(1, -1)
    cu = np.where(u == 0, 1.0 / np.sqrt(2.0), 1.0)
    basis = 0.5 * cu * np.cos((2 * x + 1) * u * np.pi / (2 * N))
    return np.round(basis * (1 << 14)).astype(np.int64)


_M = idct_matrix()


def _clip_i16(v: np.ndarray) -> np.ndarray:
    return np.clip(v, -32768, 32767)


def golden_block(coef: np.ndarray) -> np.ndarray:
    """Bit-exact reference for one 8x8 block of int16 coefficients."""
    x = coef.astype(np.int64)
    tmp = _clip_i16((_M @ x + PASS1_ROUND) >> PASS1_SHIFT)
    out = _clip_i16((tmp @ _M.T + PASS2_ROUND) >> PASS2_SHIFT)
    return np.clip(out, OUT_MIN, OUT_MAX).astype(np.int16)


@dataclass
class IdctWorkload:
    """A batch of 8x8 coefficient blocks (int16, realistic DCT range)."""

    blocks: np.ndarray    # (n, 8, 8) int16


def make_workload(scale: int = 1) -> IdctWorkload:
    """Coefficient blocks produced by a real forward DCT of random pixels.

    Running a genuine FDCT keeps intermediate magnitudes in the ranges a
    video codec produces, which the fixed-point pipeline (and the paper's
    "no visually perceptible losses" criterion) assumes.
    """
    rng = rng_for("idct", scale)
    count = max(1, 2 * scale)
    pixels = rng.integers(-128, 128, (count, N, N)).astype(np.float64)
    x = np.arange(N).reshape(-1, 1)
    u = np.arange(N).reshape(1, -1)
    cu = np.where(x.T == 0, 1.0 / np.sqrt(2.0), 1.0).reshape(-1, 1)
    fwd = 0.5 * cu * np.cos((2 * u.T + 1) * x.T * np.pi / (2 * N))
    blocks = []
    for p in pixels:
        coef = fwd.T @ p @ fwd
        blocks.append(np.round(coef).clip(-2048, 2047))
    return IdctWorkload(blocks=np.asarray(blocks, dtype=np.int16))


def golden(workload: IdctWorkload) -> dict[str, np.ndarray]:
    return {"pixels": np.stack([golden_block(blk) for blk in workload.blocks])}


# --- Alpha ---------------------------------------------------------------------------

def _build_alpha(workload: IdctWorkload) -> BuiltKernel:
    b = AlphaBuilder()
    blocks = workload.blocks
    in_addr = b.mem.alloc_array(blocks)
    tmp_addr = b.mem.alloc(N * N * 2)
    out_addr = b.mem.alloc(blocks.shape[0] * N * N * 2)

    v, c, prod, s = b.ireg(), b.ireg(), b.ireg(), b.ireg()
    src, dst = b.ireg(), b.ireg()
    lo, hi = b.ireg(OUT_MIN), b.ireg(OUT_MAX)
    t = b.ireg()
    loop_site = b.site()

    def pass_(src_base: int, dst_base: int, rnd: int, shift: int,
              column: bool, clamp: bool) -> None:
        cnt = 0
        for xo in range(N):
            for yo in range(N):
                b.li(s, rnd)
                for u in range(N):
                    off = (u * N + yo) if column else (yo * N + u)
                    b.li(src, src_base + 2 * off)
                    b.ldwu(v, src, 0)
                    b.sextw(v, v)
                    b.li(c, int(_M[xo][u]))
                    b.mulq(prod, v, c)
                    b.addq(s, s, prod)
                b.sra(s, s, shift)
                if clamp:
                    b.cmplt(t, s, lo)
                    b.cmovne(s, t, lo)
                    b.cmplt(t, hi, s)
                    b.cmovne(s, t, hi)
                off = (xo * N + yo) if column else (yo * N + xo)
                b.li(dst, dst_base + 2 * off)
                b.stw(s, dst, 0)
                cnt += 1
                if cnt % 8 == 0:
                    b.li(t, 1 if cnt == 64 else 0)
                    b.beq(t, loop_site)

    for n in range(blocks.shape[0]):
        base = in_addr + n * N * N * 2
        obase = out_addr + n * N * N * 2
        pass_(base, tmp_addr, PASS1_ROUND, PASS1_SHIFT, column=True, clamp=False)
        pass_(tmp_addr, obase, PASS2_ROUND, PASS2_SHIFT, column=False, clamp=True)

    pixels = b.mem.load_array(out_addr, np.int16, blocks.shape[0] * N * N)
    return BuiltKernel(
        builder=b,
        outputs={"pixels": pixels.reshape(blocks.shape[0], N, N)},
    )


# --- MMX / MDMX ---------------------------------------------------------------------

def _interleaved_constants() -> np.ndarray:
    """Pair-interleaved pmaddh constant words ``K[group][pair]``.

    ``K[g][p]`` packs ``[M[2g][2p], M[2g][2p+1], M[2g+1][2p], M[2g+1][2p+1]]``
    so ``pmaddh(x_pair, K)`` yields 32-bit partials of outputs 2g and 2g+1.
    """
    k = np.zeros((4, 4, 4), dtype=np.int16)
    for g in range(4):
        for p in range(4):
            k[g][p] = [_M[2 * g][2 * p], _M[2 * g][2 * p + 1],
                       _M[2 * g + 1][2 * p], _M[2 * g + 1][2 * p + 1]]
    return k


def _emit_mmx_transpose(b, src_base: int, dst_base: int, regs) -> None:
    """8x8 halfword transpose through memory, one 4x4 quadrant at a time."""
    a0, a1, a2, a3, t0, t1, t2, t3 = regs
    addr = b.ireg()
    for qr in range(2):
        for qc in range(2):
            for i, reg in enumerate((a0, a1, a2, a3)):
                b.li(addr, src_base + ((4 * qr + i) * N + 4 * qc) * 2)
                b.m_ldq(reg, addr, 0)
            b.punpcklh(t0, a0, a1)
            b.punpckhh(t1, a0, a1)
            b.punpcklh(t2, a2, a3)
            b.punpckhh(t3, a2, a3)
            b.punpcklw(a0, t0, t2)
            b.punpckhw(a1, t0, t2)
            b.punpcklw(a2, t1, t3)
            b.punpckhw(a3, t1, t3)
            for i, reg in enumerate((a0, a1, a2, a3)):
                b.li(addr, dst_base + ((4 * qc + i) * N + 4 * qr) * 2)
                b.m_stq(reg, addr, 0)
    b.free(addr)


def _build_packed(workload: IdctWorkload, builder_cls) -> BuiltKernel:
    b = builder_cls()
    blocks = workload.blocks
    in_addr = b.mem.alloc_array(blocks)
    t_addr = b.mem.alloc(N * N * 2)     # transposed input / intermediate
    r_addr = b.mem.alloc(N * N * 2)     # row-pass result
    out_addr = b.mem.alloc(blocks.shape[0] * N * N * 2)

    kvals = _interleaved_constants()
    const_words = np.concatenate([
        kvals.reshape(-1, 4).view(np.uint64).reshape(-1),
        np.asarray([PASS1_ROUND, PASS1_ROUND], dtype=np.int32).view(np.uint64),
        np.asarray([PASS2_ROUND, PASS2_ROUND], dtype=np.int32).view(np.uint64),
        np.asarray([OUT_MIN] * 4, dtype=np.int16).view(np.uint64),
        np.asarray([OUT_MAX] * 4, dtype=np.int16).view(np.uint64),
    ])
    const_addr = b.mem.alloc_array(const_words)

    addr = b.ireg()
    kregs = [[b.mreg() for _ in range(4)] for _ in range(4)]
    rnd1, rnd2, cmin, cmax = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    flat = [r for group in kregs for r in group] + [rnd1, rnd2, cmin, cmax]
    for i, reg in enumerate(flat):
        b.li(addr, const_addr + 8 * i)
        b.m_ldq(reg, addr, 0)

    x_lo, x_hi = b.mreg(), b.mreg()
    p01, p23, p45, p67 = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    accs = [b.mreg() for _ in range(4)]
    t = b.mreg()
    trans_regs = (x_lo, x_hi, p01, p23, p45, p67, accs[0], accs[1])
    site = b.site()
    ctr = b.ireg()

    def row_pass(src_base: int, dst_base: int, rnd_reg, shift: int,
                 clamp: bool) -> None:
        for r in range(N):
            b.li(addr, src_base + r * N * 2)
            b.m_ldq(x_lo, addr, 0)
            b.m_ldq(x_hi, addr, 8)
            b.pshufh(p01, x_lo, (0, 1, 0, 1))
            b.pshufh(p23, x_lo, (2, 3, 2, 3))
            b.pshufh(p45, x_hi, (0, 1, 0, 1))
            b.pshufh(p67, x_hi, (2, 3, 2, 3))
            for g in range(4):
                b.pmaddh(accs[g], p01, kregs[g][0])
                b.pmaddh(t, p23, kregs[g][1])
                b.paddw(accs[g], accs[g], t)
                b.pmaddh(t, p45, kregs[g][2])
                b.paddw(accs[g], accs[g], t)
                b.pmaddh(t, p67, kregs[g][3])
                b.paddw(accs[g], accs[g], t)
                b.paddw(accs[g], accs[g], rnd_reg)
                b.psraw(accs[g], accs[g], shift)
            b.packsswh(p01, accs[0], accs[1])
            b.packsswh(p23, accs[2], accs[3])
            if clamp:
                for y in (p01, p23):
                    b.pmaxsh(y, y, cmin)
                    b.pminsh(y, y, cmax)
            b.li(addr, dst_base + r * N * 2)
            b.m_stq(p01, addr, 0)
            b.m_stq(p23, addr, 8)
            if r % 4 == 3:
                b.li(ctr, 1 if r == N - 1 else 0)
                b.beq(ctr, site)

    for n in range(blocks.shape[0]):
        base = in_addr + n * N * N * 2
        obase = out_addr + n * N * N * 2
        _emit_mmx_transpose(b, base, t_addr, trans_regs)
        row_pass(t_addr, r_addr, rnd1, PASS1_SHIFT, clamp=False)
        _emit_mmx_transpose(b, r_addr, t_addr, trans_regs)
        row_pass(t_addr, obase, rnd2, PASS2_SHIFT, clamp=True)

    pixels = b.mem.load_array(out_addr, np.int16, blocks.shape[0] * N * N)
    return BuiltKernel(
        builder=b,
        outputs={"pixels": pixels.reshape(blocks.shape[0], N, N)},
    )


# --- MOM -----------------------------------------------------------------------------

def _mom_transpose(b: MomBuilder, left, right, tmp_int) -> None:
    """Full 8x8 halfword transpose of a (left, right) matrix-register pair.

    ``momtransh`` transposes the 4x4 lane blocks in place; the off-diagonal
    quadrants then swap between the two registers through the integer pool.
    """
    b.momtransh(left, left)
    b.momtransh(right, right)
    # Swap left[4..7] with right[0..3] row by row through the integer pool.
    for row in range(4):
        b.momextrow(tmp_int, left, 4 + row)
        swap = b.ireg()
        b.momextrow(swap, right, row)
        b.mominsrow(left, swap, 4 + row)
        b.mominsrow(right, tmp_int, row)
        b.free(swap)


def _build_mom(workload: IdctWorkload) -> BuiltKernel:
    b = MomBuilder()
    blocks = workload.blocks
    in_addr = b.mem.alloc_array(blocks)
    out_addr = b.mem.alloc(blocks.shape[0] * N * N * 2)

    # Broadcast-constant matrices: K[x] row u = M[x][u] in all 4 lanes.
    kmats = np.zeros((N, N, 4), dtype=np.int16)
    for x in range(N):
        for u in range(N):
            kmats[x][u] = _M[x][u]
    kaddr = b.mem.alloc_array(kmats.reshape(-1, 4).view(np.uint64).reshape(-1))
    clamp_words = np.asarray([[OUT_MIN] * 4] * N + [[OUT_MAX] * 4] * N,
                             dtype=np.int16)
    clamp_addr = b.mem.alloc_array(clamp_words.view(np.uint64).reshape(-1))

    base, stride8, stride16 = b.ireg(), b.ireg(8), b.ireg(16)
    tmp_int = b.ireg()
    kregs = [b.mreg() for _ in range(N)]
    cmin, cmax = b.mreg(), b.mreg()
    left, right, rac, outl, outr = (b.mreg() for _ in range(5))
    accs = [b.areg(), b.areg()]   # ping-pong to overlap row chains

    b.setvli(N)
    for x in range(N):
        b.li(base, kaddr + x * N * 8)
        b.momldq(kregs[x], base, stride8)
    b.li(base, clamp_addr)
    b.momldq(cmin, base, stride8)
    b.li(base, clamp_addr + N * 8)
    b.momldq(cmax, base, stride8)

    def column_pass(shift: int) -> None:
        """Transform (left, right) in place: out rows x of each half."""
        for half_in, half_out in ((left, outl), (right, outr)):
            for x in range(N):
                acc = accs[x % 2]
                b.clracc(acc)
                b.pmaddah(acc, half_in, kregs[x])
                b.raccsh(rac, acc, shift=shift)
                b.momextrow(tmp_int, rac, 0)
                b.mominsrow(half_out, tmp_int, x)
        b.mommov(left, outl)
        b.mommov(right, outr)

    for n in range(blocks.shape[0]):
        blk_base = in_addr + n * N * N * 2
        b.setvli(N)
        b.li(base, blk_base)
        b.momldq(left, base, stride16)
        b.li(base, blk_base + 8)
        b.momldq(right, base, stride16)

        column_pass(PASS1_SHIFT)
        _mom_transpose(b, left, right, tmp_int)
        column_pass(PASS2_SHIFT)
        _mom_transpose(b, left, right, tmp_int)

        b.pmaxsh(left, left, cmin)
        b.pminsh(left, left, cmax)
        b.pmaxsh(right, right, cmin)
        b.pminsh(right, right, cmax)

        obase = out_addr + n * N * N * 2
        b.li(base, obase)
        b.momstq(left, base, stride16)
        b.li(base, obase + 8)
        b.momstq(right, base, stride16)

    pixels = b.mem.load_array(out_addr, np.int16, blocks.shape[0] * N * N)
    return BuiltKernel(
        builder=b,
        outputs={"pixels": pixels.reshape(blocks.shape[0], N, N)},
    )


register(KernelSpec(
    name="idct",
    description="8x8 fixed-point inverse DCT (JPEG / MPEG-2 decode)",
    make_workload=make_workload,
    golden=golden,
    builders={
        "alpha": _build_alpha,
        "mmx": lambda w: _build_packed(w, MmxBuilder),
        "mdmx": lambda w: _build_packed(w, MdmxBuilder),
        "mom": _build_mom,
    },
))
