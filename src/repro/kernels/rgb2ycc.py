"""rgb2ycc: RGB to YCbCr color-space conversion (JPEG encode front end).

Integer arithmetic, 8-bit coefficients::

    Y  =  (77 R + 150 G +  29 B + 128) >> 8
    Cb = ((-43 R -  84 G + 127 B + 128) >> 8) + 128
    Cr = ((127 R - 106 G -  21 B + 128) >> 8) + 128

The paper singles this kernel out: "vectorization happens along the color
space (Red, Green and Blue) dimension, yielding a vector length of only 3",
so MOM's second DLP dimension buys little here -- the one kernel where MOM
is not much more effective than MDMX.  The MOM version loads the three
colour planes as a VL=3 matrix (row stride = plane size) and reduces across
rows with one ``pmaddah`` per component; MDMX does the same reduction with
three chained accumulator operations; MMX uses explicit multiply/add trees.
Input is planar, as produced by the workload generator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from .common import BuiltKernel, KernelSpec, register, rng_for

#: (name, cR, cG, cB, bias_after_shift).  Coefficient magnitudes are kept
#: strictly below 128 so every output provably lands in [0, 255] -- the
#: scalar byte store and the saturating ``packushb`` then agree bit-exactly.
COMPONENTS = (
    ("y", 77, 150, 29, 0),
    ("cb", -43, -84, 127, 128),
    ("cr", 127, -106, -21, 128),
)


@dataclass
class RgbWorkload:
    """Planar 8-bit RGB pixels (length a multiple of 8)."""

    r: np.ndarray
    g: np.ndarray
    b: np.ndarray

    @property
    def pixels(self) -> int:
        return self.r.size


def make_workload(scale: int = 1) -> RgbWorkload:
    rng = rng_for("rgb2ycc", scale)
    n = 64 * max(1, scale)
    return RgbWorkload(
        r=rng.integers(0, 256, n, dtype=np.uint8),
        g=rng.integers(0, 256, n, dtype=np.uint8),
        b=rng.integers(0, 256, n, dtype=np.uint8),
    )


def golden(workload: RgbWorkload) -> dict[str, np.ndarray]:
    r = workload.r.astype(np.int64)
    g = workload.g.astype(np.int64)
    bb = workload.b.astype(np.int64)
    out = {}
    for name, cr_, cg, cb, bias in COMPONENTS:
        out[name] = (((cr_ * r + cg * g + cb * bb + 128) >> 8) + bias).astype(
            np.uint8
        )
    return out


# --- Alpha ---------------------------------------------------------------------

def _build_alpha(workload: RgbWorkload) -> BuiltKernel:
    b = AlphaBuilder()
    n = workload.pixels
    r_addr = b.mem.alloc_array(workload.r)
    g_addr = b.mem.alloc_array(workload.g)
    b_addr = b.mem.alloc_array(workload.b)
    out_addrs = {name: b.mem.alloc(n) for name, *_ in COMPONENTS}

    pr, pg, pb = b.ireg(r_addr), b.ireg(g_addr), b.ireg(b_addr)
    po = {name: b.ireg(addr) for name, addr in out_addrs.items()}
    vr, vg, vb, c, prod, s = (b.ireg() for _ in range(6))
    cnt = b.ireg(n // 4)
    site = b.site()

    for i in range(n):
        b.ldbu(vr, pr, i)
        b.ldbu(vg, pg, i)
        b.ldbu(vb, pb, i)
        for name, cr_, cg, cb, bias in COMPONENTS:
            b.li(c, cr_)
            b.mulq(s, vr, c)
            b.li(c, cg)
            b.mulq(prod, vg, c)
            b.addq(s, s, prod)
            b.li(c, cb)
            b.mulq(prod, vb, c)
            b.addq(s, s, prod)
            b.addi(s, s, 128)
            b.sra(s, s, 8)
            if bias:
                b.addi(s, s, bias)
            b.stb(s, po[name], i)
        if i % 4 == 3:
            b.subi(cnt, cnt, 1)
            b.bne(cnt, site)

    outputs = {
        name: b.mem.load_array(addr, np.uint8, n)
        for name, addr in out_addrs.items()
    }
    return BuiltKernel(builder=b, outputs=outputs)


# --- MMX ------------------------------------------------------------------------

def _const_words_mmx() -> tuple[np.ndarray, list[str]]:
    """Constant table: one broadcast halfword word per coefficient + biases."""
    words, labels = [], []
    for name, cr_, cg, cb, bias in COMPONENTS:
        for tag, coef in (("r", cr_), ("g", cg), ("b", cb)):
            words.append(np.asarray([coef] * 4, dtype=np.int16).view(np.uint64)[0])
            labels.append(f"{name}_{tag}")
    words.append(np.asarray([128] * 4, dtype=np.int16).view(np.uint64)[0])
    labels.append("round")
    words.append(np.asarray([128] * 4, dtype=np.int16).view(np.uint64)[0])
    labels.append("bias")
    return np.asarray(words, dtype=np.uint64), labels


def _build_mmx(workload: RgbWorkload) -> BuiltKernel:
    b = MmxBuilder()
    n = workload.pixels
    r_addr = b.mem.alloc_array(workload.r)
    g_addr = b.mem.alloc_array(workload.g)
    b_addr = b.mem.alloc_array(workload.b)
    out_addrs = {name: b.mem.alloc(n) for name, *_ in COMPONENTS}
    cwords, clabels = _const_words_mmx()
    c_addr = b.mem.alloc_array(cwords)

    addr = b.ireg()
    consts = {}
    for i, label in enumerate(clabels):
        reg = b.mreg()
        b.li(addr, c_addr + 8 * i)
        b.m_ldq(reg, addr, 0)
        consts[label] = reg

    zero = b.mreg()
    b.pxor(zero, zero, zero)
    raw = {"r": b.mreg(), "g": b.mreg(), "b": b.mreg()}
    halves = {k: (b.mreg(), b.mreg()) for k in raw}
    acc, prod, lo_out, packed_out = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    ptr = {"r": b.ireg(r_addr), "g": b.ireg(g_addr), "b": b.ireg(b_addr)}
    po = {name: b.ireg(a) for name, a in out_addrs.items()}
    cnt = b.ireg(n // 8)
    site = b.site()

    for i in range(0, n, 8):
        for k in raw:
            b.m_ldq(raw[k], ptr[k], i)
            b.punpcklb(halves[k][0], raw[k], zero)
            b.punpckhb(halves[k][1], raw[k], zero)
        for name, cr_, cg, cb, bias in COMPONENTS:
            for h in range(2):
                b.pmullh(acc, halves["r"][h], consts[f"{name}_r"])
                b.pmullh(prod, halves["g"][h], consts[f"{name}_g"])
                b.paddh(acc, acc, prod)
                b.pmullh(prod, halves["b"][h], consts[f"{name}_b"])
                b.paddh(acc, acc, prod)
                b.paddh(acc, acc, consts["round"])
                if bias:
                    b.psrah(acc, acc, 8)
                    b.paddh(acc, acc, consts["bias"])
                else:
                    b.psrlh(acc, acc, 8)
                if h == 0:
                    b.movq(lo_out, acc)
            b.packushb(packed_out, lo_out, acc)
            b.m_stq(packed_out, po[name], i)
        b.subi(cnt, cnt, 1)
        b.bne(cnt, site)

    outputs = {
        name: b.mem.load_array(a, np.uint8, n) for name, a in out_addrs.items()
    }
    return BuiltKernel(builder=b, outputs=outputs)


# --- MDMX ---------------------------------------------------------------------------

def _build_mdmx(workload: RgbWorkload) -> BuiltKernel:
    b = MdmxBuilder()
    n = workload.pixels
    r_addr = b.mem.alloc_array(workload.r)
    g_addr = b.mem.alloc_array(workload.g)
    b_addr = b.mem.alloc_array(workload.b)
    out_addrs = {name: b.mem.alloc(n) for name, *_ in COMPONENTS}
    cwords, clabels = _const_words_mmx()
    c_addr = b.mem.alloc_array(cwords)

    addr = b.ireg()
    consts = {}
    for i, label in enumerate(clabels):
        reg = b.mreg()
        b.li(addr, c_addr + 8 * i)
        b.m_ldq(reg, addr, 0)
        consts[label] = reg
    # The shared MMX constant table carries a rounding word, but MDMX
    # rounds inside the accumulator readout (raccsh/raccuh shift=8).
    b.mark_live_out(consts["round"])

    zero = b.mreg()
    b.pxor(zero, zero, zero)
    raw = {"r": b.mreg(), "g": b.mreg(), "b": b.mreg()}
    halves = {k: (b.mreg(), b.mreg()) for k in raw}
    lo_out, hi_out, packed_out = b.mreg(), b.mreg(), b.mreg()
    accs = [b.areg() for _ in range(2)]      # ping-pong the recurrence
    ptr = {"r": b.ireg(r_addr), "g": b.ireg(g_addr), "b": b.ireg(b_addr)}
    po = {name: b.ireg(a) for name, a in out_addrs.items()}
    cnt = b.ireg(n // 8)
    site = b.site()

    for i in range(0, n, 8):
        for k in raw:
            b.m_ldq(raw[k], ptr[k], i)
            b.punpcklb(halves[k][0], raw[k], zero)
            b.punpckhb(halves[k][1], raw[k], zero)
        for name, cr_, cg, cb, bias in COMPONENTS:
            for h, out_reg in ((0, lo_out), (1, hi_out)):
                acc = accs[h]
                b.clracc(acc)
                b.pmaddah(acc, halves["r"][h], consts[f"{name}_r"])
                b.pmaddah(acc, halves["g"][h], consts[f"{name}_g"])
                b.pmaddah(acc, halves["b"][h], consts[f"{name}_b"])
                if bias:
                    b.raccsh(out_reg, acc, shift=8)
                    b.paddh(out_reg, out_reg, consts["bias"])
                else:
                    b.raccuh(out_reg, acc, shift=8)
            b.packushb(packed_out, lo_out, hi_out)
            b.m_stq(packed_out, po[name], i)
        b.subi(cnt, cnt, 1)
        b.bne(cnt, site)

    outputs = {
        name: b.mem.load_array(a, np.uint8, n) for name, a in out_addrs.items()
    }
    return BuiltKernel(builder=b, outputs=outputs)


# --- MOM -----------------------------------------------------------------------------

def _build_mom(workload: RgbWorkload) -> BuiltKernel:
    b = MomBuilder()
    n = workload.pixels
    # One contiguous planar buffer so a VL=3 load with stride = plane size
    # fetches the R, G and B rows of the same 8 pixels.
    planes = np.concatenate([workload.r, workload.g, workload.b])
    base_addr = b.mem.alloc_array(planes)
    out_addrs = {name: b.mem.alloc(n) for name, *_ in COMPONENTS}

    # Constant matrices: rows (cR, cG, cB), each coefficient broadcast.
    cmat = {}
    words = []
    for name, cr_, cg, cb, _bias in COMPONENTS:
        for coef in (cr_, cg, cb):
            words.append(np.asarray([coef] * 4, dtype=np.int16).view(np.uint64)[0])
    words.append(np.asarray([128] * 4, dtype=np.int16).view(np.uint64)[0])
    c_addr = b.mem.alloc_array(np.asarray(words, dtype=np.uint64))

    addr, stride8, plane_stride = b.ireg(), b.ireg(8), b.ireg(n)
    b.setvli(3)
    for ci, (name, *_rest) in enumerate(COMPONENTS):
        reg = b.mreg()
        b.li(addr, c_addr + ci * 3 * 8)
        b.momldq(reg, addr, stride8)
        cmat[name] = reg
    bias_reg = b.mreg()
    b.setvli(1)
    b.li(addr, c_addr + 9 * 8)
    b.momldq(bias_reg, addr, stride8)

    zero, rgb, lo, hi, lo_out, hi_out, packed_out = (b.mreg() for _ in range(7))
    b.momzero(zero)
    acc = b.areg()
    po = {name: b.ireg(a) for name, a in out_addrs.items()}
    cnt = b.ireg(n // 8)
    site = b.site()

    for i in range(0, n, 8):
        b.setvli(3)
        b.li(addr, base_addr + i)
        b.momldq(rgb, addr, plane_stride)
        b.punpcklb(lo, rgb, zero)
        b.punpckhb(hi, rgb, zero)
        for name, cr_, cg, cb, bias in COMPONENTS:
            for half, out_reg in ((lo, lo_out), (hi, hi_out)):
                b.setvli(3)
                b.clracc(acc)
                b.pmaddah(acc, half, cmat[name])
                if bias:
                    b.raccsh(out_reg, acc, shift=8)
                    b.setvli(1)
                    b.paddh(out_reg, out_reg, bias_reg)
                else:
                    b.raccuh(out_reg, acc, shift=8)
            b.setvli(1)
            b.packushb(packed_out, lo_out, hi_out)
            b.momstrow(packed_out, po[name], 0, offset=i)
        b.subi(cnt, cnt, 1)
        b.bne(cnt, site)

    outputs = {
        name: b.mem.load_array(a, np.uint8, n) for name, a in out_addrs.items()
    }
    return BuiltKernel(builder=b, outputs=outputs)


register(KernelSpec(
    name="rgb2ycc",
    description="RGB to YCbCr colour conversion (JPEG encode)",
    make_workload=make_workload,
    golden=golden,
    builders={
        "alpha": _build_alpha,
        "mmx": _build_mmx,
        "mdmx": _build_mdmx,
        "mom": _build_mom,
    },
))
