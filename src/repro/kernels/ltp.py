"""ltpparameters: GSM 06.10 long-term-predictor parameter search.

For every candidate lag in the GSM window, cross-correlate the weighted
short-term residual ``wt[0..39]`` against the reconstructed history
``dp[k - lag]`` and select the lag with the maximum correlation -- the
hottest loop of the GSM encoder.

ISA notes: MMX uses ``pmaddh`` (no data promotion needed for 16-bit audio);
MDMX accumulates with ``pmaddah`` and pays the rac/punpck read-out per lag;
MOM loads both 40-sample windows as VL=10 matrices and reduces the whole
cross-correlation with **one** ``mommvmh`` matrix-dot instruction per lag.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from ..isa.model import ElemType
from .common import BuiltKernel, KernelSpec, register, rng_for

SUBFRAME = 40          # samples cross-correlated per lag
WORDS = SUBFRAME // 4  # 10 packed halfword words
MIN_LAG = 40


@dataclass
class LtpWorkload:
    """Weighted residual window and reconstructed-history buffer."""

    wt: np.ndarray        # (40,) int16
    dp: np.ndarray        # history, indexed dp[len - lag + k]
    lags: list[int]


def make_workload(scale: int = 1) -> LtpWorkload:
    rng = rng_for("ltp", scale)
    n_lags = 8 * max(1, scale)
    lags = [MIN_LAG + i for i in range(n_lags)]
    # 13-bit speech-like samples keep pmaddh pair sums inside 32 bits.
    wt = (rng.normal(0, 600, SUBFRAME)).clip(-2048, 2047).astype(np.int16)
    history_len = max(lags) + SUBFRAME + 8
    dp = (rng.normal(0, 600, history_len)).clip(-2048, 2047).astype(np.int16)
    return LtpWorkload(wt=wt, dp=dp, lags=lags)


def golden(workload: LtpWorkload) -> dict[str, np.ndarray]:
    wt = workload.wt.astype(np.int64)
    dp = workload.dp.astype(np.int64)
    base = len(workload.dp)
    corrs = []
    for lag in workload.lags:
        window = dp[base - lag : base - lag + SUBFRAME]
        corrs.append(int((wt * window).sum()))
    corrs = np.asarray(corrs, dtype=np.int64)
    return {"correlations": corrs, "best": np.asarray([int(np.argmax(corrs))])}


def _outputs(corrs: list[int], best: int) -> dict[str, np.ndarray]:
    return {
        "correlations": np.asarray(corrs, dtype=np.int64),
        "best": np.asarray([best]),
    }


def _track_max(b, corr, best, besti, tmp, cand, index: int) -> None:
    b.li(cand, index)
    b.cmplt(tmp, best, corr)
    b.cmovne(best, tmp, corr)
    b.cmovne(besti, tmp, cand)


def _window_addr(dp_addr: int, dp_len: int, lag: int) -> int:
    return dp_addr + 2 * (dp_len - lag)


def _build_alpha(workload: LtpWorkload) -> BuiltKernel:
    b = AlphaBuilder()
    wt_addr = b.mem.alloc_array(workload.wt)
    dp_addr = b.mem.alloc_array(workload.dp)

    pw, pd = b.ireg(wt_addr), b.ireg()
    vw, vd, prod, s = b.ireg(), b.ireg(), b.ireg(), b.ireg()
    best, besti, tmp, cand = b.ireg(-(1 << 62)), b.ireg(0), b.ireg(), b.ireg()
    cnt = b.ireg()
    site = b.site()

    corrs = []
    for index, lag in enumerate(workload.lags):
        b.li(pd, _window_addr(dp_addr, len(workload.dp), lag))
        b.li(s, 0)
        b.li(cnt, SUBFRAME // 4)
        for k in range(SUBFRAME):
            b.ldwu(vw, pw, 2 * k)
            b.sextw(vw, vw)
            b.ldwu(vd, pd, 2 * k)
            b.sextw(vd, vd)
            b.mulq(prod, vw, vd)
            b.addq(s, s, prod)
            if k % 4 == 3:
                b.subi(cnt, cnt, 1)
                b.bne(cnt, site)
        corrs.append(s.value)
        _track_max(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(corrs, besti.value))


def _build_mmx(workload: LtpWorkload) -> BuiltKernel:
    b = MmxBuilder()
    wt_addr = b.mem.alloc_array(workload.wt)
    dp_addr = b.mem.alloc_array(workload.dp)

    pw, pd, s = b.ireg(wt_addr), b.ireg(), b.ireg()
    best, besti, tmp, cand = b.ireg(-(1 << 62)), b.ireg(0), b.ireg(), b.ireg()
    mw, md, prod, acc = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    cnt = b.ireg()
    site = b.site()

    corrs = []
    for index, lag in enumerate(workload.lags):
        b.li(pd, _window_addr(dp_addr, len(workload.dp), lag))
        b.pxor(acc, acc, acc)
        b.li(cnt, WORDS // 5)
        for w in range(WORDS):
            b.m_ldq(mw, pw, 8 * w)
            b.m_ldq(md, pd, 8 * w)
            b.pmaddh(prod, mw, md)
            b.paddw(acc, acc, prod)
            if w % 5 == 4:
                b.subi(cnt, cnt, 1)
                b.bne(cnt, site)
        b.psrlq(prod, acc, 32)
        b.paddw(acc, acc, prod)
        b.movd_from(s, acc)
        b.sll(s, s, 32)
        b.sra(s, s, 32)          # sign-extend the 32-bit correlation
        corrs.append(s.value)
        _track_max(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(corrs, besti.value))


def _build_mdmx(workload: LtpWorkload) -> BuiltKernel:
    b = MdmxBuilder()
    wt_addr = b.mem.alloc_array(workload.wt)
    dp_addr = b.mem.alloc_array(workload.dp)

    pw, pd, s = b.ireg(wt_addr), b.ireg(), b.ireg()
    best, besti, tmp, cand = b.ireg(-(1 << 62)), b.ireg(0), b.ireg(), b.ireg()
    mw, md = b.mreg(), b.mreg()
    lo, mid, w01, w23 = b.mreg(), b.mreg(), b.mreg(), b.mreg()
    accs = [b.areg() for _ in range(2)]
    cnt = b.ireg()
    site = b.site()

    corrs = []
    for index, lag in enumerate(workload.lags):
        b.li(pd, _window_addr(dp_addr, len(workload.dp), lag))
        for acc in accs:
            b.clracc(acc)
        b.li(cnt, WORDS // 5)
        for w in range(WORDS):
            b.m_ldq(mw, pw, 8 * w)
            b.m_ldq(md, pd, 8 * w)
            b.pmaddah(accs[w % 2], mw, md)
            if w % 5 == 4:
                b.subi(cnt, cnt, 1)
                b.bne(cnt, site)
        b.li(s, 0)
        for acc in accs:
            # Reassemble the signed 48-bit lanes' low 32 bits and tree-sum.
            b.racl(lo, acc, ElemType.H)
            b.racm(mid, acc, ElemType.H)
            b.punpcklh(w01, lo, mid)
            b.punpckhh(w23, lo, mid)
            b.paddw(w01, w01, w23)
            b.psrlq(w23, w01, 32)
            b.paddw(w01, w01, w23)
            b.movd_from(tmp, w01)
            b.sll(tmp, tmp, 32)
            b.sra(tmp, tmp, 32)
            b.addq(s, s, tmp)
        corrs.append(s.value)
        _track_max(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(corrs, besti.value))


def _build_mom(workload: LtpWorkload) -> BuiltKernel:
    b = MomBuilder()
    wt_addr = b.mem.alloc_array(workload.wt)
    dp_addr = b.mem.alloc_array(workload.dp)

    pw, pd, s = b.ireg(wt_addr), b.ireg(), b.ireg()
    stride8 = b.ireg(8)
    best, besti, tmp, cand = b.ireg(-(1 << 62)), b.ireg(0), b.ireg(), b.ireg()
    mw, md = b.mreg(), b.mreg()
    acc = b.areg()

    b.setvli(WORDS)
    b.momldq(mw, pw, stride8)      # wt never changes: loaded once

    corrs = []
    for index, lag in enumerate(workload.lags):
        b.li(pd, _window_addr(dp_addr, len(workload.dp), lag))
        b.momldq(md, pd, stride8)
        b.clracc(acc)
        b.mommvmh(acc, mw, md)     # one matrix dot = the whole correlation
        b.racl(s, acc, ElemType.Q)
        corrs.append(s.value)
        _track_max(b, s, best, besti, tmp, cand, index)
    return BuiltKernel(builder=b, outputs=_outputs(corrs, besti.value))


register(KernelSpec(
    name="ltpparameters",
    description="GSM long-term predictor lag search (cross-correlation)",
    make_workload=make_workload,
    golden=golden,
    builders={
        "alpha": _build_alpha,
        "mmx": _build_mmx,
        "mdmx": _build_mdmx,
        "mom": _build_mom,
    },
))
