"""Cross-lane reduction idioms shared by the MDMX and MOM kernels.

A packed accumulator holds *per-lane* partial sums; kernels that need one
scalar (a SAD, a dot product) must still sum across lanes.  Neither MDMX nor
MOM has a horizontal-sum opcode -- by design: the lane slices read out with
``rac{l,m,h}`` reassemble into wide values with ordinary ``punpck``
instructions, and a log2-depth shift/add tree finishes the job.  These
helpers emit exactly those sequences, so every kernel pays the realistic
instruction cost for its reductions.
"""

from __future__ import annotations

from ..emulib.base_builder import RegHandle
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mom_builder import MomBuilder
from ..isa.model import ElemType

_E = ElemType


def mdmx_sad_total(b: MdmxBuilder, acc: RegHandle, scratch: list[RegHandle],
                   out: RegHandle) -> RegHandle:
    """Sum the 8 byte-format accumulator lanes into an integer register.

    Valid while every lane is < 2^16 and the lane total < 2^16 (true for a
    16x16 SAD: <= 256 * 255).  Ten instructions:
    ``racl racm punpcklb punpckhb paddh psrlq paddh psrlq paddh pextrh``.
    """
    lo, mid, t0, t1 = scratch[:4]
    b.racl(lo, acc, _E.B)
    b.racm(mid, acc, _E.B)
    b.punpcklb(t0, lo, mid)    # halves: lanes 0..3 (lo | mid << 8)
    b.punpckhb(t1, lo, mid)    # halves: lanes 4..7
    b.paddh(t0, t0, t1)
    b.psrlq(t1, t0, 32)
    b.paddh(t0, t0, t1)
    b.psrlq(t1, t0, 16)
    b.paddh(t0, t0, t1)
    b.pextrh(out, t0, 0)
    return out


def mdmx_sqd_total(b: MdmxBuilder, acc: RegHandle, scratch: list[RegHandle],
                   zero: RegHandle, out: RegHandle) -> RegHandle:
    """Sum the 8 byte-format lanes of a squared-difference accumulator.

    Lanes hold up to 24 bits, so all three slices participate and the tree
    runs at 32-bit width.  The grand total must fit 32 bits (true for a
    16x16 SQD: <= 256 * 255^2 < 2^25).
    """
    lo, mid, hi, t0, t1, h0, h1 = scratch[:7]
    b.racl(lo, acc, _E.B)
    b.racm(mid, acc, _E.B)
    b.rach(hi, acc, _E.B)
    b.punpcklb(t0, lo, mid)    # halves: lanes 0..3 low 16 bits
    b.punpckhb(t1, lo, mid)    # halves: lanes 4..7 low 16 bits
    b.punpcklb(h0, hi, zero)   # halves: lanes 0..3 high 8 bits
    b.punpckhb(h1, hi, zero)   # halves: lanes 4..7 high 8 bits
    b.punpcklh(lo, t0, h0)     # words: lanes 0..1
    b.punpckhh(mid, t0, h0)    # words: lanes 2..3
    b.punpcklh(t0, t1, h1)     # words: lanes 4..5
    b.punpckhh(t1, t1, h1)     # words: lanes 6..7
    b.paddw(lo, lo, mid)
    b.paddw(t0, t0, t1)
    b.paddw(lo, lo, t0)
    b.psrlq(t0, lo, 32)
    b.paddw(lo, lo, t0)
    b.movd_from(out, lo)
    b.andi(out, out, 0xFFFF_FFFF)
    return out


def mom_sad_total(b: MomBuilder, acc: RegHandle, scratch: list[RegHandle],
                  out: RegHandle) -> RegHandle:
    """MOM version of :func:`mdmx_sad_total`, operating on matrix row 0.

    The read-out runs under VL=1 so the packed tree touches only row 0,
    then ``momextrow`` moves the scalar to the integer pool.
    """
    lo, mid, t0, t1 = scratch[:4]
    saved_vl = b.vl
    b.setvli(1)
    b.racl(lo, acc, _E.B)
    b.racm(mid, acc, _E.B)
    b.punpcklb(t0, lo, mid)
    b.punpckhb(t1, lo, mid)
    b.paddh(t0, t0, t1)
    b.psrlq(t1, t0, 32)
    b.paddh(t0, t0, t1)
    b.psrlq(t1, t0, 16)
    b.paddh(t0, t0, t1)
    b.momextrow(out, t0, 0)
    b.andi(out, out, 0xFFFF)
    b.setvli(saved_vl)
    return out


def mom_sqd_total(b: MomBuilder, acc: RegHandle, scratch: list[RegHandle],
                  zero: RegHandle, out: RegHandle) -> RegHandle:
    """MOM version of :func:`mdmx_sqd_total` (32-bit grand total)."""
    lo, mid, hi, t0, t1, h0, h1 = scratch[:7]
    saved_vl = b.vl
    b.setvli(1)
    b.racl(lo, acc, _E.B)
    b.racm(mid, acc, _E.B)
    b.rach(hi, acc, _E.B)
    b.punpcklb(t0, lo, mid)
    b.punpckhb(t1, lo, mid)
    b.punpcklb(h0, hi, zero)
    b.punpckhb(h1, hi, zero)
    b.punpcklh(lo, t0, h0)
    b.punpckhh(mid, t0, h0)
    b.punpcklh(t0, t1, h1)
    b.punpckhh(t1, t1, h1)
    b.paddw(lo, lo, mid)
    b.paddw(t0, t0, t1)
    b.paddw(lo, lo, t0)
    b.psrlq(t0, lo, 32)
    b.paddw(lo, lo, t0)
    b.momextrow(out, lo, 0)
    b.andi(out, out, 0xFFFF_FFFF)
    b.setvli(saved_vl)
    return out
