"""addblock: MPEG-2 residual addition with saturation.

Adds an IDCT residual block (int16, in [-256, 255]) onto a prediction block
(uint8) and clamps the result to [0, 255].

The scalar reference -- exactly like the mpeg2play code the paper studied --
performs the clamp **through a memory lookup table**, which costs an extra
dependent load per pixel and makes the kernel memory-bound: that is why the
paper observes the plain Alpha version gaining relative performance on wider
machines (Section 4.1's noted exception).  Every media ISA replaces the
table with saturating pack instructions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..emulib.alpha_builder import AlphaBuilder
from ..emulib.mdmx_builder import MdmxBuilder
from ..emulib.mmx_builder import MmxBuilder
from ..emulib.mom_builder import MomBuilder
from .common import BuiltKernel, KernelSpec, register, rng_for

N = 8
#: Clamp table domain: pred + resid is within [-256, 510].
TABLE_BIAS = 256
TABLE_SIZE = 256 + 511


@dataclass
class AddblockWorkload:
    """Prediction blocks inside a frame plus residual blocks."""

    frame: np.ndarray               # (height, width) uint8 predictions
    residuals: np.ndarray           # (count, 8, 8) int16 in [-256, 255]
    positions: list[tuple[int, int]]
    width: int


def make_workload(scale: int = 1) -> AddblockWorkload:
    rng = rng_for("addblock", scale)
    width = 64
    count = 6 * max(1, scale)
    height = N + count + 2
    frame = rng.integers(0, 256, (height, width), dtype=np.uint8)
    residuals = rng.integers(-256, 256, (count, N, N)).astype(np.int16)
    positions = [
        (int(rng.integers(0, height - N)), int(rng.integers(0, (width - N) // 8)) * 8)
        for _ in range(count)
    ]
    return AddblockWorkload(frame=frame, residuals=residuals,
                            positions=positions, width=width)


def golden(workload: AddblockWorkload) -> dict[str, np.ndarray]:
    frame = workload.frame.astype(np.int64)
    outs = []
    for (y, x), resid in zip(workload.positions, workload.residuals):
        pred = frame[y : y + N, x : x + N]
        outs.append(np.clip(pred + resid.astype(np.int64), 0, 255).astype(np.uint8))
    return {"blocks": np.stack(outs)}


def _read_blocks(b, out_addr: int, count: int) -> dict[str, np.ndarray]:
    flat = b.mem.load_array(out_addr, np.uint8, count * N * N)
    return {"blocks": flat.reshape(count, N, N)}


def _build_alpha(workload: AddblockWorkload) -> BuiltKernel:
    b = AlphaBuilder()
    frame_addr = b.mem.alloc_array(workload.frame)
    resid_addr = b.mem.alloc_array(workload.residuals)
    out_addr = b.mem.alloc(len(workload.positions) * N * N)
    # The saturation memory table, exactly as in mpeg2play's Add_Block.
    clamp = np.clip(np.arange(TABLE_SIZE) - TABLE_BIAS, 0, 255).astype(np.uint8)
    table_addr = b.mem.alloc_array(clamp)
    width = workload.width

    pp, pr, po = b.ireg(), b.ireg(), b.ireg()
    tab = b.ireg(table_addr + TABLE_BIAS)
    vp, vr, idx = b.ireg(), b.ireg(), b.ireg()
    rows = b.ireg()
    site = b.site()

    for n, (y, x) in enumerate(workload.positions):
        b.li(pp, frame_addr + y * width + x)
        b.li(pr, resid_addr + n * N * N * 2)
        b.li(po, out_addr + n * N * N)
        b.li(rows, N)
        for _row in range(N):
            for i in range(N):
                b.ldbu(vp, pp, i)
                b.ldwu(vr, pr, 2 * i)
                b.sextw(vr, vr)
                b.addq(vp, vp, vr)
                b.addq(idx, tab, vp)
                b.ldbu(vp, idx, 0)      # dependent table load = the clamp
                b.stb(vp, po, i)
            b.addi(pp, pp, width)
            b.addi(pr, pr, 2 * N)
            b.addi(po, po, N)
            b.subi(rows, rows, 1)
            b.bne(rows, site)
    return BuiltKernel(
        builder=b, outputs=_read_blocks(b, out_addr, len(workload.positions))
    )


def _build_packed(workload: AddblockWorkload, builder_cls) -> BuiltKernel:
    """Shared MMX / MDMX implementation: unpack, paddh, packushb."""
    b = builder_cls()
    frame_addr = b.mem.alloc_array(workload.frame)
    resid_addr = b.mem.alloc_array(workload.residuals)
    out_addr = b.mem.alloc(len(workload.positions) * N * N)
    width = workload.width

    pp, pr, po = b.ireg(), b.ireg(), b.ireg()
    rows = b.ireg()
    pred, p_lo, p_hi, r_lo, r_hi, zero = (b.mreg() for _ in range(6))
    b.pxor(zero, zero, zero)
    site = b.site()

    for n, (y, x) in enumerate(workload.positions):
        b.li(pp, frame_addr + y * width + x)
        b.li(pr, resid_addr + n * N * N * 2)
        b.li(po, out_addr + n * N * N)
        b.li(rows, N // 4)
        for row in range(N):
            b.m_ldq(pred, pp, 0)
            b.punpcklb(p_lo, pred, zero)
            b.punpckhb(p_hi, pred, zero)
            b.m_ldq(r_lo, pr, 0)
            b.m_ldq(r_hi, pr, 8)
            b.paddh(p_lo, p_lo, r_lo)
            b.paddh(p_hi, p_hi, r_hi)
            b.packushb(pred, p_lo, p_hi)
            b.m_stq(pred, po, 0)
            b.addi(pp, pp, width)
            b.addi(pr, pr, 2 * N)
            b.addi(po, po, N)
            if row % 4 == 3:
                b.subi(rows, rows, 1)
                b.bne(rows, site)
    return BuiltKernel(
        builder=b, outputs=_read_blocks(b, out_addr, len(workload.positions))
    )


def _build_mom(workload: AddblockWorkload) -> BuiltKernel:
    b = MomBuilder()
    frame_addr = b.mem.alloc_array(workload.frame)
    resid_addr = b.mem.alloc_array(workload.residuals)
    out_addr = b.mem.alloc(len(workload.positions) * N * N)
    width = workload.width

    pp, pr, po = b.ireg(), b.ireg(), b.ireg()
    frame_stride, resid_stride, out_stride = b.ireg(width), b.ireg(2 * N), b.ireg(N)
    pred, p_lo, p_hi, r_lo, r_hi, zero = (b.mreg() for _ in range(6))
    b.setvli(N)
    b.momzero(zero)

    for n, (y, x) in enumerate(workload.positions):
        b.li(pp, frame_addr + y * width + x)
        b.li(pr, resid_addr + n * N * N * 2)
        b.li(po, out_addr + n * N * N)
        b.momldq(pred, pp, frame_stride)
        b.punpcklb(p_lo, pred, zero)
        b.punpckhb(p_hi, pred, zero)
        b.momldq(r_lo, pr, resid_stride)
        b.addi(pr, pr, 8)
        b.momldq(r_hi, pr, resid_stride)
        b.paddh(p_lo, p_lo, r_lo)
        b.paddh(p_hi, p_hi, r_hi)
        b.packushb(pred, p_lo, p_hi)
        b.momstq(pred, po, out_stride)
    return BuiltKernel(
        builder=b, outputs=_read_blocks(b, out_addr, len(workload.positions))
    )


register(KernelSpec(
    name="addblock",
    description="MPEG-2 residual addition with saturation (table vs packed)",
    make_workload=make_workload,
    golden=golden,
    builders={
        "alpha": _build_alpha,
        "mmx": lambda w: _build_packed(w, MmxBuilder),
        "mdmx": lambda w: _build_packed(w, MdmxBuilder),
        "mom": _build_mom,
    },
))
