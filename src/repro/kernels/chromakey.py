"""chromakey: threshold compositing via the select idiom (compiler-built).

``out = |a - b| > T ? a : b`` per pixel -- the green-screen / change-
detection kernel.  Exercises the IR's abs-diff and select idioms: the
packed lowerings emit ``pabsdiffb`` plus the classic unsigned-compare
sequence (``psubusb`` against the broadcast threshold, ``pcmpeqb``
against zero, ``pcmov``); the scalar lowering falls back to the
sub/sub/cmovlt absolute difference and a compare + conditional-move
select.

All four builders come from the vectorizing compiler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..vc import (AbsDiff, Binding, Buffer, BufferBinding, Const, GtU, Load,
                  LoopKernel, Select, make_builders)
from .common import KernelSpec, register, rng_for

N = 8
#: Key threshold: differences above this keep the foreground pixel.
THRESHOLD = 24


@dataclass
class ChromakeyWorkload:
    """Foreground/background 8x8 tile pairs (correlated so both select
    arms are exercised)."""

    fg: np.ndarray          # (count, 8, 8) uint8
    bg: np.ndarray          # (count, 8, 8) uint8


def make_workload(scale: int = 1) -> ChromakeyWorkload:
    rng = rng_for("chromakey", scale)
    count = 8 * max(1, scale)
    bg = rng.integers(0, 256, (count, N, N), dtype=np.uint8)
    # Half the pixels sit within the threshold of the background.
    noise = rng.integers(-THRESHOLD, THRESHOLD + 1, (count, N, N))
    far = rng.integers(0, 256, (count, N, N))
    near_mask = rng.integers(0, 2, (count, N, N)).astype(bool)
    fg = np.where(near_mask, bg.astype(np.int64) + noise, far)
    return ChromakeyWorkload(fg=fg.clip(0, 255).astype(np.uint8), bg=bg)


def golden(workload: ChromakeyWorkload) -> dict[str, np.ndarray]:
    fg = workload.fg.astype(np.int64)
    bg = workload.bg.astype(np.int64)
    keep = np.abs(fg - bg) > THRESHOLD
    return {"blocks": np.where(keep, workload.fg, workload.bg)}


IR = LoopKernel(
    name="chromakey",
    rows=N,
    cols=N,
    buffers=(Buffer("fg"), Buffer("bg"), Buffer("out", out=True)),
    expr=Select(GtU(AbsDiff(Load("fg"), Load("bg")), Const(THRESHOLD)),
                Load("fg"), Load("bg")),
)


def bind(workload: ChromakeyWorkload) -> Binding:
    count = len(workload.fg)
    offsets = [i * N * N for i in range(count)]
    return Binding(buffers={
        "fg": BufferBinding(workload.fg, row_stride=N,
                            offsets=list(offsets)),
        "bg": BufferBinding(workload.bg, row_stride=N,
                            offsets=list(offsets)),
        "out": BufferBinding(None, row_stride=N, offsets=list(offsets)),
    })


register(KernelSpec(
    name="chromakey",
    description="threshold compositing (compiler-built, abs-diff/select)",
    make_workload=make_workload,
    golden=golden,
    builders=make_builders(IR, bind, output_key="blocks", name="chromakey"),
))
