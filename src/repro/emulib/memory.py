"""Byte-addressable flat memory for the emulation libraries.

The paper's methodology instruments real Alpha binaries with ATOM; our
builders instead execute kernels functionally against this memory, so the
dynamic traces carry *real* effective addresses that later drive the cache
models.  Little-endian layout matches the packed-word lane order used by
:mod:`repro.emulib.packed`.
"""

from __future__ import annotations

import numpy as np


class Memory:
    """A flat little-endian memory image with a bump allocator.

    Addresses start at :attr:`BASE` (a non-zero base catches accidental
    null-pointer arithmetic in kernels).  The allocator hands out aligned,
    non-overlapping regions; there is no ``free`` because kernel runs are
    short-lived.
    """

    BASE = 0x1_0000

    def __init__(self, size: int = 8 << 20) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._brk = self.BASE

    # --- allocation ---------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Reserve ``nbytes`` and return the (aligned) base address."""
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        base = (self._brk + align - 1) & ~(align - 1)
        if base + nbytes - self.BASE > self.size:
            raise MemoryError(
                f"out of simulated memory allocating {nbytes} bytes"
            )
        self._brk = base + nbytes
        return base

    def _offset(self, addr: int, nbytes: int) -> int:
        off = addr - self.BASE
        if off < 0 or off + nbytes > self.size:
            raise IndexError(f"address {addr:#x}+{nbytes} outside memory")
        return off

    # --- scalar access -------------------------------------------------------

    def read(self, addr: int, nbytes: int, signed: bool = False) -> int:
        """Read an integer of 1/2/4/8 bytes, little-endian."""
        off = self._offset(addr, nbytes)
        raw = self.data[off : off + nbytes].tobytes()
        return int.from_bytes(raw, "little", signed=signed)

    def write(self, addr: int, value: int, nbytes: int) -> None:
        """Write an integer of 1/2/4/8 bytes, little-endian (truncating)."""
        off = self._offset(addr, nbytes)
        mask = (1 << (8 * nbytes)) - 1
        raw = (int(value) & mask).to_bytes(nbytes, "little")
        self.data[off : off + nbytes] = np.frombuffer(raw, dtype=np.uint8)

    # --- bulk access ------------------------------------------------------------

    def read_block(self, addr: int, nbytes: int) -> bytes:
        off = self._offset(addr, nbytes)
        return self.data[off : off + nbytes].tobytes()

    def write_block(self, addr: int, payload: bytes) -> None:
        off = self._offset(addr, len(payload))
        self.data[off : off + len(payload)] = np.frombuffer(
            bytes(payload), dtype=np.uint8
        )

    # --- numpy array helpers ------------------------------------------------------

    def store_array(self, addr: int, array: np.ndarray) -> None:
        """Copy a numpy array into memory at ``addr`` (native little-endian)."""
        self.write_block(addr, np.ascontiguousarray(array).tobytes())

    def load_array(self, addr: int, dtype, count: int) -> np.ndarray:
        """Read ``count`` items of ``dtype`` starting at ``addr``."""
        item = np.dtype(dtype).itemsize
        raw = self.read_block(addr, item * count)
        return np.frombuffer(raw, dtype=dtype).copy()

    def alloc_array(self, array: np.ndarray, align: int = 64) -> int:
        """Allocate space for ``array``, copy it in, and return the address."""
        arr = np.ascontiguousarray(array)
        addr = self.alloc(arr.nbytes, align=align)
        self.store_array(addr, arr)
        return addr
