"""Emulation libraries: functional execution plus dynamic-trace capture."""

from .memory import Memory
from .trace import DynInstr, Trace, reg, reg_index, reg_pool
from .fingerprint import source_fingerprint, trace_digest
from .alpha_builder import AlphaBuilder
from .mmx_builder import MmxBuilder
from .mdmx_builder import MdmxBuilder
from .mom_builder import MomBuilder

__all__ = [
    "Memory", "DynInstr", "Trace", "reg", "reg_index", "reg_pool",
    "source_fingerprint", "trace_digest",
    "AlphaBuilder", "MmxBuilder", "MdmxBuilder", "MomBuilder",
]
