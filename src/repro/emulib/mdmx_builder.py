"""MDMX-like emulation library: packed ops plus 192-bit accumulators.

Extends the MMX builder with the 25 accumulator opcodes of
:mod:`repro.isa.mdmx`.  The scalar-reduction opcodes MMX needed (``psadb``,
``psum*``) are absent from the MDMX table, so calling them raises -- MDMX
performs reductions through accumulators, which is the whole architectural
argument of Section 2.1.
"""

from __future__ import annotations

from ..core.accumulator import PackedAccumulator
from ..isa.mdmx import MDMX
from ..isa.model import ElemType, RegPool
from .base_builder import RegHandle, RegisterAllocator
from .mmx_builder import MmxBuilder

_E = ElemType


class MdmxBuilder(MmxBuilder):
    """Builder for the MDMX-like ISA (32 media registers, 4 accumulators)."""

    isa_name = "mdmx"
    media_table = MDMX
    accumulator_registers = 4
    ld_op = "mdmx_ldq"
    ldu_op = "mdmx_ldq_u"
    st_op = "mdmx_stq"

    def __init__(self, mem=None, int_registers: int = 30) -> None:
        super().__init__(mem, int_registers)
        self.acc_alloc = RegisterAllocator(RegPool.ACC, self.accumulator_registers)

    # --- registers --------------------------------------------------------------

    def areg(self) -> RegHandle:
        """Allocate a packed accumulator (cleared)."""
        return RegHandle(RegPool.ACC, self.acc_alloc.take(), PackedAccumulator(), self)

    def free(self, handle: RegHandle) -> None:
        if handle.pool == RegPool.ACC:
            self.acc_alloc.release(handle.index)
        else:
            super().free(handle)

    # --- accumulate emit helper -----------------------------------------------------

    def _acc_op(self, name: str, acc: RegHandle, srcs, mutate) -> RegHandle:
        """Emit an accumulate op: acc is both source and destination."""
        mutate(acc.value)
        self._emit(self.media_table[name], srcs=tuple(srcs) + (acc,), dsts=(acc,))
        return acc

    # --- multiply-accumulate -----------------------------------------------------------

    def pmaddab(self, acc, a, b):
        return self._acc_op(
            "pmaddab", acc, (a, b),
            lambda v: v.madd(a.value, b.value, _E.B, signed=True),
        )

    def pmaddah(self, acc, a, b):
        return self._acc_op(
            "pmaddah", acc, (a, b),
            lambda v: v.madd(a.value, b.value, _E.H, signed=True),
        )

    def pmaddauh(self, acc, a, b):
        return self._acc_op(
            "pmaddauh", acc, (a, b),
            lambda v: v.madd(a.value, b.value, _E.H, signed=False),
        )

    def pmsubab(self, acc, a, b):
        return self._acc_op(
            "pmsubab", acc, (a, b),
            lambda v: v.madd(a.value, b.value, _E.B, signed=True, subtract=True),
        )

    def pmsubah(self, acc, a, b):
        return self._acc_op(
            "pmsubah", acc, (a, b),
            lambda v: v.madd(a.value, b.value, _E.H, signed=True, subtract=True),
        )

    # --- add / subtract accumulate ---------------------------------------------------------

    def paccaddb(self, acc, a, b):
        return self._acc_op(
            "paccaddb", acc, (a, b), lambda v: v.acc_add(a.value, b.value, _E.B)
        )

    def paccaddh(self, acc, a, b):
        return self._acc_op(
            "paccaddh", acc, (a, b), lambda v: v.acc_add(a.value, b.value, _E.H)
        )

    def paccaddw(self, acc, a, b):
        return self._acc_op(
            "paccaddw", acc, (a, b), lambda v: v.acc_add(a.value, b.value, _E.W)
        )

    def paccsubb(self, acc, a, b):
        return self._acc_op(
            "paccsubb", acc, (a, b),
            lambda v: v.acc_add(a.value, b.value, _E.B, subtract=True),
        )

    def paccsubh(self, acc, a, b):
        return self._acc_op(
            "paccsubh", acc, (a, b),
            lambda v: v.acc_add(a.value, b.value, _E.H, subtract=True),
        )

    def paccsubw(self, acc, a, b):
        return self._acc_op(
            "paccsubw", acc, (a, b),
            lambda v: v.acc_add(a.value, b.value, _E.W, subtract=True),
        )

    # --- difference accumulate ----------------------------------------------------------------

    def paccsadb(self, acc, a, b):
        return self._acc_op(
            "paccsadb", acc, (a, b), lambda v: v.acc_sad(a.value, b.value, _E.B)
        )

    def paccsadh(self, acc, a, b):
        return self._acc_op(
            "paccsadh", acc, (a, b), lambda v: v.acc_sad(a.value, b.value, _E.H)
        )

    def paccsqdb(self, acc, a, b):
        return self._acc_op(
            "paccsqdb", acc, (a, b), lambda v: v.acc_sqd(a.value, b.value, _E.B)
        )

    def paccsqdh(self, acc, a, b):
        return self._acc_op(
            "paccsqdh", acc, (a, b), lambda v: v.acc_sqd(a.value, b.value, _E.H)
        )

    # --- accumulator read-out ----------------------------------------------------------------------

    def _rac(self, name: str, dst, acc, value: int) -> RegHandle:
        dst.value = value & (1 << 64) - 1
        self._emit(self.media_table[name], srcs=(acc,), dsts=(dst,))
        return dst

    def racl(self, dst, acc, elem: ElemType = ElemType.B):
        """Read the low slice of every accumulator lane (``racl.fmt``)."""
        return self._rac("racl", dst, acc, acc.value.read_slice("low", elem))

    def racm(self, dst, acc, elem: ElemType = ElemType.B):
        """Read the middle slice of every accumulator lane (``racm.fmt``)."""
        return self._rac("racm", dst, acc, acc.value.read_slice("mid", elem))

    def rach(self, dst, acc, elem: ElemType = ElemType.B):
        """Read the high slice of every accumulator lane (``rach.fmt``)."""
        return self._rac("rach", dst, acc, acc.value.read_slice("high", elem))

    def raccsb(self, dst, acc, shift: int = 0):
        return self._rac("raccsb", dst, acc, acc.value.read_saturated(_E.B, True, shift))

    def raccub(self, dst, acc, shift: int = 0):
        return self._rac("raccub", dst, acc, acc.value.read_saturated(_E.B, False, shift))

    def raccsh(self, dst, acc, shift: int = 0):
        return self._rac("raccsh", dst, acc, acc.value.read_saturated(_E.H, True, shift))

    def raccuh(self, dst, acc, shift: int = 0):
        return self._rac("raccuh", dst, acc, acc.value.read_saturated(_E.H, False, shift))

    # --- accumulator restore / clear ---------------------------------------------------------------------

    def wacl(self, acc, lo, mid):
        """Restore low + middle thirds from two media registers."""
        def mutate(v: PackedAccumulator) -> None:
            v.write_third("low", lo.value)
            v.write_third("mid", mid.value)
        return self._acc_op("wacl", acc, (lo, mid), mutate)

    def wach(self, acc, hi):
        """Restore the high third from a media register."""
        return self._acc_op("wach", acc, (hi,), lambda v: v.write_third("high", hi.value))

    def clracc(self, acc):
        """Clear an accumulator; breaks the dependence on its old value."""
        acc.value.clear()
        self._emit(self.media_table["clracc"], srcs=(), dsts=(acc,))
        return acc
