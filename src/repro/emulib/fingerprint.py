"""Stable content hashing for builds and for the experiment-result cache.

Two digests live here:

* :func:`source_fingerprint` -- a hash over every Python source file of the
  ``repro`` package.  The experiment engine mixes it into every cache key as
  a *code-version salt*, so editing any model file automatically invalidates
  previously cached :class:`~repro.cpu.core.SimResult`\\ s.
* :func:`trace_digest` -- a hash over the dynamic instruction stream of one
  built kernel or application.  Builds are deterministic (workloads are
  seeded), so two builds of the same (target, isa, scale) must produce the
  same digest; the tests use this to pin build stability, and cached results
  record it so a cache entry can be audited against a fresh build.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from .trace import Trace


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Digest of all ``repro`` package sources (the cache's version salt)."""
    root = Path(__file__).resolve().parents[1]          # src/repro
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


def trace_digest(trace: Trace) -> str:
    """Digest of a dynamic instruction stream (order- and field-sensitive).

    Hashes the ``repr`` of each row's field tuple.  The columnar store
    yields those tuples directly (:meth:`~repro.emulib.trace.Trace.
    iter_field_tuples`) with the same Python value types a materialized
    :class:`~repro.emulib.trace.DynInstr` carries, so digests are
    bit-identical to the historical list-of-objects encoding and
    independent of chunk geometry; any other sequence of instruction
    records hashes through the object fields.
    """
    digest = hashlib.sha256(trace.isa.encode())
    update = digest.update
    if isinstance(trace, Trace):
        rows = trace.iter_field_tuples()
    else:
        rows = ((ins.op.isa, ins.op.name, ins.srcs, ins.dsts, ins.addr,
                 ins.nbytes, ins.stride, ins.vl, ins.taken, ins.site)
                for ins in trace)
    for record in rows:
        update(repr(record).encode())
        update(b"\n")
    return digest.hexdigest()[:16]
