"""Calibrated synthesizer for non-vectorizable program sections.

The full-application study (Section 4.2) simulates entire Mediabench
programs: hand-vectorized hot functions plus everything else -- entropy
coding, bitstream assembly, header parsing, control.  The paper gets that
"everything else" from the ATOM-instrumented binary; we synthesize it.

Each non-vectorizable phase of an application measures its *exact* dynamic
operation counts while executing functionally in Python (e.g. one VLC
symbol -> so many compares, table loads, shifts and bit appends), fills a
:class:`SectionProfile`, and the synthesizer emits a scalar Alpha stream
with that instruction mix, a realistic dependence depth, a configurable
memory footprint (table lookups walk a buffer) and a mix of predictable
loop branches and data-dependent (hard-to-predict) branches.

Because the same profile is emitted identically for every ISA configuration
of an application, Amdahl's law plays out exactly as in the paper: the
scalar fraction bounds full-program speedups well below the kernel-level
numbers of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .base_builder import BaseBuilder


@dataclass
class SectionProfile:
    """Dynamic operation counts of one non-vectorizable program phase.

    Attributes:
        name: phase label (for DESIGN/EXPERIMENTS bookkeeping).
        loads: dependent memory reads (table lookups, buffer reads).
        stores: memory writes (bitstream bytes, state updates).
        alu: simple integer operations (add/shift/logical/compare).
        muls: integer multiplies.
        loop_branches: well-predicted back-edge style branches.
        data_branches: data-dependent, poorly-predictable branches
            (VLC code-length decisions and the like).
        footprint: bytes of memory the phase touches (lookup tables +
            output buffer); drives the cache behaviour of the phase.
    """

    name: str
    loads: int = 0
    stores: int = 0
    alu: int = 0
    muls: int = 0
    loop_branches: int = 0
    data_branches: int = 0
    footprint: int = 4096

    def total_instructions(self) -> int:
        return (self.loads + self.stores + self.alu + self.muls
                + self.loop_branches + self.data_branches)

    def scaled(self, factor: float) -> "SectionProfile":
        """A proportionally scaled copy (used by reduced-size workloads)."""
        return SectionProfile(
            name=self.name,
            loads=int(self.loads * factor),
            stores=int(self.stores * factor),
            alu=int(self.alu * factor),
            muls=int(self.muls * factor),
            loop_branches=int(self.loop_branches * factor),
            data_branches=int(self.data_branches * factor),
            footprint=self.footprint,
        )


@dataclass
class SectionTally:
    """Convenience counter used while the functional code runs."""

    profile: SectionProfile = field(
        default_factory=lambda: SectionProfile(name="phase")
    )

    def count(self, loads: int = 0, stores: int = 0, alu: int = 0,
              muls: int = 0, loop_branches: int = 0,
              data_branches: int = 0) -> None:
        p = self.profile
        p.loads += loads
        p.stores += stores
        p.alu += alu
        p.muls += muls
        p.loop_branches += loop_branches
        p.data_branches += data_branches


def emit_scalar_section(b: BaseBuilder, profile: SectionProfile,
                        seed: int = 1) -> None:
    """Emit a scalar stream matching ``profile`` into builder ``b``.

    The stream is a loop whose body interleaves the operation classes in
    proportion, with a serial dependence chain of depth ~3 (typical of
    pointer-chasing entropy code).  Loop branches are emitted on a single
    well-predicted site; data branches on a site driven by a deterministic
    pseudo-random outcome sequence, which trains the bimodal predictor to
    its realistic mid-50s accuracy for such code.
    """
    total = profile.total_instructions()
    if total == 0:
        return
    rng = np.random.default_rng(seed)
    buf = b.mem.alloc(max(64, profile.footprint))
    ptr = b.ireg(buf)
    acc = b.ireg(seed & 0xFFFF)
    tmp = b.ireg()
    loop_site = b.site()
    data_site = b.site()

    remaining = {
        "loads": profile.loads,
        "stores": profile.stores,
        "alu": profile.alu,
        "muls": profile.muls,
        "loop_branches": profile.loop_branches,
        "data_branches": profile.data_branches,
    }
    stride = 24
    offset = 0

    def pick() -> str | None:
        """Largest-remainder pick keeps the mix proportional throughout."""
        live = {k: v for k, v in remaining.items() if v > 0}
        if not live:
            return None
        return max(live, key=live.__getitem__)

    while True:
        kind = pick()
        if kind is None:
            break
        remaining[kind] -= 1
        if kind == "loads":
            b.ldbu(tmp, ptr, offset)
            b.addq(acc, acc, tmp)          # dependent use
            remaining["alu"] -= 1 if remaining["alu"] > 0 else 0
            offset = (offset + stride) % max(64, profile.footprint - 8)
        elif kind == "stores":
            b.stb(acc, ptr, offset)
            offset = (offset + stride) % max(64, profile.footprint - 8)
        elif kind == "alu":
            b.addi(acc, acc, 3)
        elif kind == "muls":
            b.muli(acc, acc, 3)
        elif kind == "loop_branches":
            b.li(tmp, 0 if remaining["loop_branches"] == 0 else 1)
            b.bne(tmp, loop_site)
        else:  # data_branches
            b.li(tmp, int(rng.integers(0, 2)))
            b.bne(tmp, data_site)
    b.free(ptr)
    b.free(acc)
    b.free(tmp)
