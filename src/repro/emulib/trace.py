"""Dynamic instruction traces.

The builders in this package execute kernels functionally and record one
dynamic instruction per emitted operation -- the same information the paper
obtains by filtering an ATOM-instrumented instruction stream into the Jinks
simulator.  The out-of-order core in :mod:`repro.cpu.core` consumes these
records; it never re-executes data computation.

Storage model
-------------
Frame-scale workloads (a single 720x480 MPEG-2 frame is tens of millions of
dynamic instructions) made the original list-of-:class:`DynInstr` encoding
the limiting factor: ~225 bytes and three heap objects per instruction,
gigabytes per trace, all resident before the first simulated cycle.
:class:`Trace` now stores instructions **columnar**: one structure-of-arrays
chunk per :data:`CHUNK_ROWS` rows (numpy arrays for opcode id / operand CSR /
address / size / stride / VL / branch outcome / site), with a small
plain-list staging buffer for the rows of the not-yet-sealed tail.  The
public API is unchanged -- :meth:`Trace.append` still takes a
:class:`DynInstr`, iteration still yields :class:`DynInstr` objects
(materialized on demand), and ``trace.instructions`` remains a mutable
list-like escape hatch -- so builders, the vectorizing compiler and the
digest code are untouched, while the cycle-level core can stream
:class:`TimingRecord` chunks without ever materializing the object form
(:meth:`Trace.iter_timing_records`).

Two invariants the tests pin:

* **Digest stability** -- :func:`repro.emulib.fingerprint.trace_digest`
  hashes the same bytes whether a row sits in the staging tail or a sealed
  chunk; field values are canonicalized to plain Python ints/bools at
  append time, so chunk geometry can never leak into a digest.
* **Summary equivalence** -- :class:`TraceSummary` statistics are computed
  by vectorized reductions over the columns, but match the historical
  per-record loop integer-for-integer.

Register encoding
-----------------
Operands are encoded as small integers ``(pool << 8) | index`` so the timing
model can use them as dictionary keys cheaply.  Use :func:`reg` and
:func:`reg_pool` / :func:`reg_index` to build and decode them.
"""

from __future__ import annotations

from bisect import bisect_right

import numpy as np

from ..isa.model import InstrClass, Opcode, RegPool

#: Rows per sealed columnar chunk.  65536 rows cost ~3 MiB of column data;
#: the staging tail holds at most this many Python-object rows, which is
#: what bounds the per-trace object overhead regardless of trace length.
CHUNK_ROWS = 1 << 16

#: ``taken`` column encoding (int8): -1 = not a branch, 0/1 = outcome.
_TAKEN_DECODE = (None, False, True)        # indexed by encoded + 1

#: RegPool by pool id, avoiding an enum construction per operand decode.
_POOL_BY_ID = tuple(RegPool)


def reg(pool: RegPool, index: int) -> int:
    """Encode an architectural register operand."""
    if index < 0 or index > 0xFF:
        raise ValueError(f"register index {index} out of range")
    return (int(pool) << 8) | index


def reg_pool(encoded: int) -> RegPool:
    """Pool of an encoded operand."""
    return RegPool(encoded >> 8)


def reg_index(encoded: int) -> int:
    """Index of an encoded operand within its pool."""
    return encoded & 0xFF


class DynInstr:
    """One dynamic instruction instance.

    Attributes:
        op: the static :class:`~repro.isa.model.Opcode`.
        srcs: encoded source registers (dependences the core must honour).
        dsts: encoded destination registers.
        addr: first effective address for memory classes, else ``None``.
        nbytes: bytes accessed *per element* for memory classes.
        stride: byte distance between consecutive elements (MOM memory).
        vl: number of vector elements (MOM: rows covered by VL; 1 for
            scalar and MMX/MDMX instructions).
        taken: branch outcome for control classes.
        site: static instruction identity (synthetic PC) -- used by the
            branch predictor and the BTB.
    """

    __slots__ = (
        "op", "srcs", "dsts", "addr", "nbytes", "stride",
        "vl", "taken", "site",
    )

    def __init__(
        self,
        op: Opcode,
        srcs: tuple[int, ...] = (),
        dsts: tuple[int, ...] = (),
        addr: int | None = None,
        nbytes: int = 0,
        stride: int = 0,
        vl: int = 1,
        taken: bool | None = None,
        site: int = 0,
    ) -> None:
        self.op = op
        self.srcs = srcs
        self.dsts = dsts
        self.addr = addr
        self.nbytes = nbytes
        self.stride = stride
        self.vl = vl
        self.taken = taken
        self.site = site

    @property
    def iclass(self) -> InstrClass:
        return self.op.iclass

    def element_addresses(self) -> list[int]:
        """Effective addresses of every element access of this instruction."""
        if self.addr is None:
            return []
        if self.vl == 1 or self.stride == 0:
            return [self.addr]
        return [self.addr + i * self.stride for i in range(self.vl)]

    def __repr__(self) -> str:
        extra = ""
        if self.addr is not None:
            extra = f" @{self.addr:#x}x{self.vl}"
        if self.taken is not None:
            extra = f" taken={self.taken}"
        return f"<{self.op.isa}:{self.op.name}{extra}>"


class TimingRecord:
    """Preclassified image of one :class:`DynInstr` for the timing core.

    The cycle-level scheduler consults instruction-class predicates and
    operand pools on every fetch/dispatch/issue/commit decision.  Resolving
    them through enum properties per simulated run is pure recomputation --
    the classification depends only on the trace, which the experiment grid
    reuses across every (width, memory model) point.  A record folds those
    lookups into plain attributes, computed once per trace.

    ``instr`` carries the object form for the memory models; in streaming
    mode (:meth:`Trace.iter_timing_records`) it is materialized only for
    memory-class rows -- the only rows whose record the core hands to a
    memory model -- and is ``None`` elsewhere.
    """

    #: values of :attr:`kind`, ordered by issue-path frequency.
    KIND_COMPUTE = 0
    KIND_MEMORY = 1
    KIND_CONTROL = 2
    KIND_NOP = 3

    __slots__ = (
        "instr", "iclass", "kind", "is_memory", "is_branch", "is_jump",
        "is_nop", "chains", "op_name", "latency", "vl", "exec_rows",
        "acc_chain_eligible", "writes_acc", "srcs", "dsts", "site", "taken",
    )

    def __init__(self, instr: DynInstr) -> None:
        op = instr.op
        iclass = op.iclass
        self.instr = instr
        self.iclass = iclass
        self.is_memory = iclass.is_memory
        self.is_branch = iclass == InstrClass.BRANCH
        self.is_jump = iclass == InstrClass.JUMP
        self.is_nop = iclass == InstrClass.NOP
        if self.is_memory:
            self.kind = self.KIND_MEMORY
        elif self.is_branch or self.is_jump:
            self.kind = self.KIND_CONTROL
        elif self.is_nop:
            self.kind = self.KIND_NOP
        else:
            self.kind = self.KIND_COMPUTE
        is_media_compute = iclass in (InstrClass.MED_SIMPLE,
                                      InstrClass.MED_COMPLEX)
        self.chains = instr.vl > 1 and (iclass.is_media or self.is_memory)
        self.op_name = op.name
        self.latency = op.latency
        self.vl = instr.vl
        #: rows a media computation streams through its functional unit.
        self.exec_rows = instr.vl if is_media_compute else 1
        self.acc_chain_eligible = (is_media_compute and op.reads_acc
                                   and op.writes_acc and instr.vl > 1)
        self.writes_acc = op.writes_acc
        self.srcs = instr.srcs
        #: per destination: (encoded reg, pool, rename row charge).
        self.dsts = tuple(
            (dst, reg_pool(dst),
             max(1, instr.vl) if reg_pool(dst) == RegPool.MED else 1)
            for dst in instr.dsts)
        self.site = instr.site
        self.taken = instr.taken


class _OpMeta:
    """Per-opcode constants folded once per trace for fast record builds.

    Everything :class:`TimingRecord` derives from the :class:`Opcode` (and
    nothing else) lives here, so the per-row work of a record build is pure
    attribute assignment.  The equivalence with the reference constructor
    is pinned by ``tests/test_trace_columnar.py``.
    """

    __slots__ = ("op", "iclass", "kind", "is_memory", "is_branch", "is_jump",
                 "is_nop", "is_media_compute", "chains_class", "op_name",
                 "latency", "acc_pair", "writes_acc")

    def __init__(self, op: Opcode) -> None:
        iclass = op.iclass
        self.op = op
        self.iclass = iclass
        self.is_memory = iclass.is_memory
        self.is_branch = iclass == InstrClass.BRANCH
        self.is_jump = iclass == InstrClass.JUMP
        self.is_nop = iclass == InstrClass.NOP
        if self.is_memory:
            self.kind = TimingRecord.KIND_MEMORY
        elif self.is_branch or self.is_jump:
            self.kind = TimingRecord.KIND_CONTROL
        elif self.is_nop:
            self.kind = TimingRecord.KIND_NOP
        else:
            self.kind = TimingRecord.KIND_COMPUTE
        self.is_media_compute = iclass in (InstrClass.MED_SIMPLE,
                                           InstrClass.MED_COMPLEX)
        #: instruction-class half of :attr:`TimingRecord.chains`.
        self.chains_class = iclass.is_media or self.is_memory
        self.op_name = op.name
        self.latency = op.latency
        self.acc_pair = op.reads_acc and op.writes_acc
        self.writes_acc = op.writes_acc


class _Stage:
    """Staging tail: parallel plain lists for the not-yet-sealed rows.

    Values are canonical Python objects exactly as a :class:`DynInstr`
    would hold them (``addr``/``taken`` keep their ``None``), so reads from
    the tail need no decoding and sealing is one bulk conversion.
    """

    __slots__ = ("op", "srcs", "dsts", "addr", "nbytes", "stride", "vl",
                 "taken", "site")

    _FIELDS = ("op", "srcs", "dsts", "addr", "nbytes", "stride", "vl",
               "taken", "site")

    def __init__(self) -> None:
        for name in self._FIELDS:
            setattr(self, name, [])

    def __len__(self) -> int:
        return len(self.op)

    def clear(self) -> None:
        for name in self._FIELDS:
            getattr(self, name).clear()

    def truncate(self, keep: int) -> None:
        for name in self._FIELDS:
            del getattr(self, name)[keep:]

    def row(self, i: int) -> tuple:
        return (self.op[i], self.srcs[i], self.dsts[i], self.addr[i],
                self.nbytes[i], self.stride[i], self.vl[i], self.taken[i],
                self.site[i])

    def set_row(self, i: int, row: tuple) -> None:
        (self.op[i], self.srcs[i], self.dsts[i], self.addr[i],
         self.nbytes[i], self.stride[i], self.vl[i], self.taken[i],
         self.site[i]) = row

    def iter_rows(self):
        return zip(self.op, self.srcs, self.dsts, self.addr, self.nbytes,
                   self.stride, self.vl, self.taken, self.site)


def _csr(tuples: list[tuple[int, ...]]) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a list of operand tuples into (offsets, values) arrays.

    Offsets fit int32 by construction (at most ``CHUNK_ROWS`` rows of a
    few operands each); values fit int16 because an encoded register is
    ``(pool << 8) | index`` with four pools and 8-bit indices.
    """
    offsets = np.zeros(len(tuples) + 1, dtype=np.int32)
    lengths = np.fromiter(map(len, tuples), dtype=np.int32, count=len(tuples))
    np.cumsum(lengths, out=offsets[1:])
    values = np.fromiter(
        (v for t in tuples for v in t), dtype=np.int16, count=int(offsets[-1]))
    return offsets, values


def _fit(values: list, small: np.dtype, wide: np.dtype) -> np.ndarray:
    """A column in its compact dtype, widened only when a value demands it.

    Almost every row fits the compact form (nbytes <= 8, strides within a
    frame, VL <= matrix rows); the wide fallback keeps the store correct
    for synthetic or adversarial traces without taxing the common case.
    """
    arr = np.asarray(values, dtype=wide)
    if arr.size == 0:
        return arr.astype(small)
    info = np.iinfo(small)
    lo, hi = int(arr.min()), int(arr.max())
    if lo >= info.min and hi <= info.max:
        return arr.astype(small)
    return arr


class _Chunk:
    """One sealed block of rows in structure-of-arrays form.

    Fixed-width columns are numpy arrays of one scalar per row; the
    variable-width operand lists use a CSR pair (``off[i]:off[i+1]`` slices
    ``val``).  ``addr`` stores 0 for address-less rows, disambiguated by
    ``has_addr`` (address 0 itself never occurs -- the functional memory
    allocates above :data:`~repro.emulib.memory.Memory.BASE` -- but the
    column does not rely on that).
    """

    __slots__ = ("n", "op", "addr", "has_addr", "nbytes", "stride", "vl",
                 "taken", "site", "src_off", "src_val", "dst_off", "dst_val")

    def __init__(self, stage: _Stage) -> None:
        self.n = len(stage)
        self.op = _fit(stage.op, np.int16, np.int32)
        self.has_addr = np.fromiter(
            (a is not None for a in stage.addr), dtype=bool, count=self.n)
        self.addr = np.fromiter(
            (0 if a is None else a for a in stage.addr),
            dtype=np.uint64, count=self.n)
        self.nbytes = _fit(stage.nbytes, np.int16, np.int64)
        self.stride = _fit(stage.stride, np.int32, np.int64)
        self.vl = _fit(stage.vl, np.int16, np.int64)
        self.taken = np.fromiter(
            (-1 if t is None else int(t) for t in stage.taken),
            dtype=np.int8, count=self.n)
        self.site = _fit(stage.site, np.int32, np.int64)
        self.src_off, self.src_val = _csr(stage.srcs)
        self.dst_off, self.dst_val = _csr(stage.dsts)

    def head(self, keep: int) -> "_Chunk":
        """A chunk holding only the first ``keep`` rows (shares storage)."""
        clone = _Chunk.__new__(_Chunk)
        clone.n = keep
        for name in ("op", "has_addr", "addr", "nbytes", "stride", "vl",
                     "taken", "site"):
            setattr(clone, name, getattr(self, name)[:keep])
        clone.src_off = self.src_off[:keep + 1]
        clone.src_val = self.src_val[:self.src_off[keep]]
        clone.dst_off = self.dst_off[:keep + 1]
        clone.dst_val = self.dst_val[:self.dst_off[keep]]
        return clone

    def row(self, i: int) -> tuple:
        """One row decoded back to canonical Python values (op still an id)."""
        s0, s1 = self.src_off[i], self.src_off[i + 1]
        d0, d1 = self.dst_off[i], self.dst_off[i + 1]
        return (
            int(self.op[i]),
            tuple(int(v) for v in self.src_val[s0:s1]),
            tuple(int(v) for v in self.dst_val[d0:d1]),
            int(self.addr[i]) if self.has_addr[i] else None,
            int(self.nbytes[i]),
            int(self.stride[i]),
            int(self.vl[i]),
            _TAKEN_DECODE[int(self.taken[i]) + 1],
            int(self.site[i]),
        )

    def iter_rows(self):
        """All rows as canonical Python tuples (bulk ``tolist`` decode)."""
        op = self.op.tolist()
        has_addr = self.has_addr.tolist()
        addr = self.addr.tolist()
        nbytes = self.nbytes.tolist()
        stride = self.stride.tolist()
        vl = self.vl.tolist()
        taken = self.taken.tolist()
        site = self.site.tolist()
        src_off = self.src_off.tolist()
        src_val = self.src_val.tolist()
        dst_off = self.dst_off.tolist()
        dst_val = self.dst_val.tolist()
        for i in range(self.n):
            yield (op[i],
                   tuple(src_val[src_off[i]:src_off[i + 1]]),
                   tuple(dst_val[dst_off[i]:dst_off[i + 1]]),
                   addr[i] if has_addr[i] else None,
                   nbytes[i], stride[i], vl[i],
                   _TAKEN_DECODE[taken[i] + 1], site[i])

    def nbytes_storage(self) -> int:
        """Bytes of column storage this chunk occupies (diagnostics)."""
        return sum(getattr(self, name).nbytes
                   for name in ("op", "has_addr", "addr", "nbytes", "stride",
                                "vl", "taken", "site", "src_off", "src_val",
                                "dst_off", "dst_val"))


class TraceSummary:
    """One-pass summary of a trace: statistics plus timing records.

    Computed lazily by :meth:`Trace.summary` and cached until the trace is
    mutated, so repeated simulation of the same trace (the experiment grid
    runs each trace under many machine/memory configurations) pays the
    O(trace) walk once instead of once per run.

    Statistics are vectorized reductions over the columnar store; the
    per-instruction :attr:`records` list is itself built lazily on first
    access, so frame-scale consumers that stream records
    (:meth:`Trace.iter_timing_records`) get the statistics without ever
    materializing the record list.
    """

    __slots__ = ("_trace", "_records", "_length", "class_histogram",
                 "opcode_histogram", "operation_count", "memory_references",
                 "branch_count")

    def __init__(self, trace: "Trace") -> None:
        self._trace = trace
        self._records: list[TimingRecord] | None = None
        self._length = len(trace)

        ops = trace._ops
        nops = len(ops)
        counts = np.zeros(nops, dtype=np.int64)
        operations = memory_refs = 0
        if nops:
            lanes = np.array([max(1, op.elem.lanes) for op in ops],
                             dtype=np.int64)
            is_mem = np.array([op.iclass.is_memory for op in ops], dtype=bool)
            for op_ids, vl in trace._stat_blocks():
                counts += np.bincount(op_ids, minlength=nops)
                operations += int((vl * lanes[op_ids]).sum())
                memory_refs += int(vl[is_mem[op_ids]].sum())

        class_hist: dict[InstrClass, int] = {}
        opcode_hist: dict[str, int] = {}
        branches = 0
        for op, count in zip(ops, counts.tolist()):
            if not count:
                continue
            iclass = op.iclass
            class_hist[iclass] = class_hist.get(iclass, 0) + count
            opcode_hist[op.name] = opcode_hist.get(op.name, 0) + count
            if iclass == InstrClass.BRANCH:
                branches += count
        self.class_histogram = class_hist
        self.opcode_histogram = opcode_hist
        self.operation_count = operations
        self.memory_references = memory_refs
        self.branch_count = branches

    @property
    def records(self) -> list[TimingRecord]:
        """Preclassified per-instruction records (built on first access).

        Raises if the trace was mutated after this summary was computed:
        the statistics above describe the old stream, and silently
        pairing them with records of the new one is exactly the
        desynchronization bug class the summary cache exists to prevent.
        Re-fetch through ``trace.summary()`` after mutation instead.
        """
        if self._records is None:
            trace = self._trace
            if trace._summary is not self or len(trace) != self._length:
                raise RuntimeError(
                    "stale TraceSummary: the trace was mutated after "
                    "summary(); call trace.summary() again")
            self._records = list(trace.iter_timing_records(
                materialize="all"))
        return self._records

    @property
    def records_built(self) -> bool:
        return self._records is not None


class Trace:
    """An ordered dynamic instruction stream plus summary statistics.

    Statistics and timing records are computed once and cached; mutating
    the trace through any path -- :meth:`append` / :meth:`extend` /
    :meth:`truncate` or the ``instructions`` view -- invalidates the
    cache.  Code holding a previously returned :class:`TraceSummary` can
    still call :meth:`invalidate_summary` explicitly, which remains the
    documented contract for direct ``instructions`` mutation.
    """

    __slots__ = ("isa", "_ops", "_op_ids", "_chunks", "_chunk_ends",
                 "_stage", "_sealed", "_chunk_rows", "_summary")

    def __init__(self, isa: str, instructions=None, *,
                 chunk_rows: int = CHUNK_ROWS) -> None:
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be >= 1")
        self.isa = isa
        self._ops: list[Opcode] = []            # op id -> Opcode
        self._op_ids: dict[int, int] = {}       # id(Opcode) -> op id
        self._chunks: list[_Chunk] = []
        self._chunk_ends: list[int] = []        # cumulative rows per chunk
        self._stage = _Stage()
        self._sealed = 0                        # rows in sealed chunks
        self._chunk_rows = chunk_rows
        self._summary: TraceSummary | None = None
        if instructions:
            for instr in instructions:
                self.append(instr)

    def __repr__(self) -> str:
        return (f"Trace(isa={self.isa!r}, instructions={len(self)}, "
                f"chunks={len(self._chunks)})")

    # --- mutation ---------------------------------------------------------------

    def append(self, instr: DynInstr) -> DynInstr:
        """Append one instruction (columnar row) and return it."""
        addr = instr.addr
        taken = instr.taken
        stage = self._stage
        stage.op.append(self._op_id(instr.op))
        stage.srcs.append(tuple(map(int, instr.srcs)))
        stage.dsts.append(tuple(map(int, instr.dsts)))
        stage.addr.append(None if addr is None else int(addr))
        stage.nbytes.append(int(instr.nbytes))
        stage.stride.append(int(instr.stride))
        stage.vl.append(int(instr.vl))
        stage.taken.append(None if taken is None else bool(taken))
        stage.site.append(int(instr.site))
        self._summary = None
        if len(stage.op) >= self._chunk_rows:
            self._seal()
        return instr

    def extend(self, other: "Trace") -> None:
        """Concatenate another trace (used to stitch program phases).

        Rows are **copied by value** -- the two traces share no mutable
        state afterwards, so later mutation of either can never corrupt
        the other or desynchronize a cached summary it holds (the seed
        list-of-objects encoding aliased ``DynInstr`` instances here).
        """
        rows = other._raw_rows()
        if other is self:
            rows = list(rows)           # snapshot before appending to self
        for op, srcs, dsts, addr, nbytes, stride, vl, taken, site in rows:
            self._append_row(self._op_id(op), srcs, dsts, addr, nbytes,
                             stride, vl, taken, site)
        self._summary = None

    def truncate(self, length: int) -> None:
        """Drop every row at index ``length`` and beyond."""
        if length < 0:
            raise ValueError("length must be >= 0")
        if length >= len(self):
            return
        if length >= self._sealed:
            self._stage.truncate(length - self._sealed)
        else:
            kept: list[_Chunk] = []
            ends: list[int] = []
            total = 0
            for chunk in self._chunks:
                if total + chunk.n <= length:
                    kept.append(chunk)
                    total += chunk.n
                elif total < length:
                    kept.append(chunk.head(length - total))
                    total = length
                else:
                    break
                ends.append(total)
            self._chunks = kept
            self._chunk_ends = ends
            self._sealed = length
            self._stage.clear()
        self._summary = None

    def invalidate_summary(self) -> None:
        """Drop cached statistics after direct ``instructions`` mutation."""
        self._summary = None

    # --- internal plumbing ------------------------------------------------------

    def _op_id(self, op: Opcode) -> int:
        """Intern an opcode; keyed by identity (opcodes are singletons)."""
        op_id = self._op_ids.get(id(op))
        if op_id is None:
            op_id = len(self._ops)
            self._ops.append(op)
            self._op_ids[id(op)] = op_id
        return op_id

    def _append_row(self, op_id: int, srcs, dsts, addr, nbytes, stride,
                    vl, taken, site) -> None:
        """Raw append of already-canonical values (no DynInstr needed)."""
        stage = self._stage
        stage.op.append(op_id)
        stage.srcs.append(srcs)
        stage.dsts.append(dsts)
        stage.addr.append(addr)
        stage.nbytes.append(nbytes)
        stage.stride.append(stride)
        stage.vl.append(vl)
        stage.taken.append(taken)
        stage.site.append(site)
        if len(stage.op) >= self._chunk_rows:
            self._seal()

    def _seal(self) -> None:
        """Convert the staging tail into a sealed columnar chunk."""
        if not len(self._stage):
            return
        chunk = _Chunk(self._stage)
        self._chunks.append(chunk)
        self._sealed += chunk.n
        self._chunk_ends.append(self._sealed)
        self._stage.clear()

    def _row(self, index: int) -> tuple:
        """Row ``index`` with the op decoded to its :class:`Opcode`.

        Sealed rows locate their chunk by bisecting the cumulative-end
        table, so indexed access stays O(log chunks) however long the
        trace grows (the reference core walks ``instructions`` by index).
        """
        if index < self._sealed:
            which = bisect_right(self._chunk_ends, index)
            start = self._chunk_ends[which - 1] if which else 0
            row = self._chunks[which].row(index - start)
        else:
            row = self._stage.row(index - self._sealed)
        return (self._ops[row[0]],) + row[1:]

    def _raw_rows(self):
        """Every row as a canonical tuple, op decoded to its Opcode."""
        ops = self._ops
        for chunk in self._chunks:
            for row in chunk.iter_rows():
                yield (ops[row[0]],) + row[1:]
        for row in self._stage.iter_rows():
            yield (ops[row[0]],) + row[1:]

    def _stat_blocks(self):
        """(op_id array, vl array) per storage block, for summary stats."""
        for chunk in self._chunks:
            yield chunk.op, chunk.vl
        if len(self._stage):
            yield (np.asarray(self._stage.op, dtype=np.int32),
                   np.asarray(self._stage.vl, dtype=np.int64))

    def _materialize(self, row: tuple) -> DynInstr:
        op, srcs, dsts, addr, nbytes, stride, vl, taken, site = row
        return DynInstr(op, srcs=srcs, dsts=dsts, addr=addr, nbytes=nbytes,
                        stride=stride, vl=vl, taken=taken, site=site)

    # --- sequence protocol ------------------------------------------------------

    def __len__(self) -> int:
        return self._sealed + len(self._stage)

    def __iter__(self):
        for row in self._raw_rows():
            yield self._materialize(row)

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return [self._materialize(self._row(i))
                    for i in range(*idx.indices(len(self)))]
        n = len(self)
        if idx < 0:
            idx += n
        if not 0 <= idx < n:
            raise IndexError("trace index out of range")
        return self._materialize(self._row(idx))

    @property
    def instructions(self) -> "_InstructionList":
        """Mutable list-like view of the stream (the escape hatch).

        Reads materialize :class:`DynInstr` objects on demand; writes are
        decoded back into the columnar store, so the view never aliases
        storage with another trace.  Callers that mutate through it should
        still call :meth:`invalidate_summary` per the historical contract
        (mutations also invalidate automatically, making that call
        idempotent rather than load-bearing).
        """
        return _InstructionList(self)

    # --- digest / streaming access ----------------------------------------------

    def iter_field_tuples(self):
        """Per-row ``(isa, name, srcs, dsts, addr, nbytes, stride, vl,
        taken, site)`` tuples -- exactly the fields (and Python types) of
        the materialized :class:`DynInstr`, without building one.  The
        trace digest hashes the ``repr`` of these, so their layout is
        part of the digest-compatibility contract (DESIGN.md section 5).
        """
        for op, *rest in self._raw_rows():
            yield (op.isa, op.name, *rest)

    def iter_timing_records(self, materialize: str = "memory"):
        """Stream :class:`TimingRecord` per row without retaining them.

        Args:
            materialize: which rows get a backing :class:`DynInstr` in
                ``record.instr`` -- ``"memory"`` (default; the only rows
                whose object form the core hands to a memory model) or
                ``"all"`` (full compatibility, used for the cached
                :meth:`timing_records` list).

        Record attributes are identical to ``TimingRecord(instr)``; the
        per-opcode constants are folded once per trace (:class:`_OpMeta`)
        and the per-row work is plain assignment over bulk-decoded
        columns.
        """
        want_all = materialize == "all"
        metas = [_OpMeta(op) for op in self._ops]
        pools = _POOL_BY_ID
        med = RegPool.MED
        for op_id, srcs, dsts, addr, nbytes, stride, vl, taken, site \
                in (row for chunk in self._chunks
                    for row in chunk.iter_rows()):
            yield self._record(metas[op_id], srcs, dsts, addr, nbytes,
                               stride, vl, taken, site, want_all, pools, med)
        for op_id, srcs, dsts, addr, nbytes, stride, vl, taken, site \
                in self._stage.iter_rows():
            yield self._record(metas[op_id], srcs, dsts, addr, nbytes,
                               stride, vl, taken, site, want_all, pools, med)

    def _record(self, meta: _OpMeta, srcs, dsts, addr, nbytes, stride, vl,
                taken, site, want_all: bool, pools, med) -> TimingRecord:
        rec = TimingRecord.__new__(TimingRecord)
        if want_all or meta.is_memory:
            rec.instr = DynInstr(meta.op, srcs=srcs, dsts=dsts, addr=addr,
                                 nbytes=nbytes, stride=stride, vl=vl,
                                 taken=taken, site=site)
        else:
            rec.instr = None
        rec.iclass = meta.iclass
        rec.kind = meta.kind
        rec.is_memory = meta.is_memory
        rec.is_branch = meta.is_branch
        rec.is_jump = meta.is_jump
        rec.is_nop = meta.is_nop
        rec.chains = vl > 1 and meta.chains_class
        rec.op_name = meta.op_name
        rec.latency = meta.latency
        rec.vl = vl
        rec.exec_rows = vl if meta.is_media_compute else 1
        rec.acc_chain_eligible = meta.acc_pair and meta.is_media_compute \
            and vl > 1
        rec.writes_acc = meta.writes_acc
        rec.srcs = srcs
        if dsts:
            charge = vl if vl > 1 else 1
            rec.dsts = tuple(
                (dst, pool, charge if pool == med else 1)
                for dst, pool in ((d, pools[d >> 8]) for d in dsts))
        else:
            rec.dsts = ()
        rec.site = site
        rec.taken = taken
        return rec

    # --- statistics ------------------------------------------------------------

    def summary(self) -> TraceSummary:
        """The cached one-pass summary (recomputed after mutation)."""
        if self._summary is None:
            self._summary = TraceSummary(self)
        return self._summary

    def records_cached(self) -> bool:
        """Whether a summary with a built record list is already cached."""
        return self._summary is not None and self._summary.records_built

    def timing_records(self) -> list[TimingRecord]:
        """Preclassified per-instruction records for the cycle-level core."""
        return self.summary().records

    def class_histogram(self) -> dict[InstrClass, int]:
        return dict(self.summary().class_histogram)

    def opcode_histogram(self) -> dict[str, int]:
        return dict(self.summary().opcode_histogram)

    def operation_count(self) -> int:
        """Total *operations* (lane-level work items), counting vector length.

        One MOM instruction of VL=16 on byte lanes counts 16 x 8 = 128
        operations -- the "order of magnitude more operations per
        instruction" the paper credits for MOM's low fetch pressure.
        """
        return self.summary().operation_count

    def memory_references(self) -> int:
        """Total element-level memory accesses in the trace."""
        return self.summary().memory_references

    def branch_count(self) -> int:
        return self.summary().branch_count

    def storage_bytes(self) -> int:
        """Approximate bytes of sealed column storage (diagnostics; the
        staging tail and interning tables are not counted)."""
        return sum(chunk.nbytes_storage() for chunk in self._chunks)


class _InstructionList:
    """Mutable list-like view over a :class:`Trace` (the escape hatch).

    Supports the operations historical callers used on the raw list --
    ``len`` / indexing / iteration / ``append`` / ``extend`` /
    ``del view[mark:]`` truncation / item assignment -- by translating
    them onto the columnar store.  Tail truncation and appends are O(tail);
    arbitrary deletions and insertions rebuild the store (escape-hatch
    operations, not hot paths).
    """

    __slots__ = ("_trace",)

    def __init__(self, trace: Trace) -> None:
        self._trace = trace

    def __len__(self) -> int:
        return len(self._trace)

    def __iter__(self):
        return iter(self._trace)

    def __getitem__(self, idx):
        return self._trace[idx]

    def append(self, instr: DynInstr) -> None:
        self._trace.append(instr)

    def extend(self, instrs) -> None:
        trace = self._trace
        for instr in instrs:
            trace.append(instr)

    def clear(self) -> None:
        self._trace.truncate(0)

    def __setitem__(self, index: int, instr: DynInstr) -> None:
        if isinstance(index, slice):
            raise TypeError("slice assignment is not supported; "
                            "rebuild the trace instead")
        trace = self._trace
        n = len(trace)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trace index out of range")
        sealed = trace._sealed
        if index >= sealed:
            trace._stage.set_row(index - sealed, (
                trace._op_id(instr.op), tuple(map(int, instr.srcs)),
                tuple(map(int, instr.dsts)),
                None if instr.addr is None else int(instr.addr),
                int(instr.nbytes), int(instr.stride), int(instr.vl),
                None if instr.taken is None else bool(instr.taken),
                int(instr.site)))
            trace._summary = None
        else:
            rows = list(trace)
            rows[index] = instr
            self._rebuild(rows)

    def __delitem__(self, index) -> None:
        trace = self._trace
        n = len(trace)
        if isinstance(index, slice):
            start, stop, step = index.indices(n)
            if step != 1:
                raise TypeError("extended-slice deletion is not supported")
            if start >= stop:
                return
            if stop >= n:
                trace.truncate(start)       # the common dry-run discard
                return
            rows = list(trace)
            del rows[start:stop]
            self._rebuild(rows)
            return
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trace index out of range")
        if index == n - 1:
            trace.truncate(index)
            return
        rows = list(trace)
        del rows[index]
        self._rebuild(rows)

    def insert(self, index: int, instr: DynInstr) -> None:
        rows = list(self._trace)
        rows.insert(index, instr)
        self._rebuild(rows)

    def _rebuild(self, rows: list[DynInstr]) -> None:
        trace = self._trace
        trace._chunks.clear()
        trace._chunk_ends.clear()
        trace._stage.clear()
        trace._sealed = 0
        trace._ops.clear()
        trace._op_ids.clear()
        for instr in rows:
            trace.append(instr)
        trace._summary = None
