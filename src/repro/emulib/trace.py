"""Dynamic instruction traces.

The builders in this package execute kernels functionally and record one
:class:`DynInstr` per dynamic instruction -- the same information the paper
obtains by filtering an ATOM-instrumented instruction stream into the Jinks
simulator.  The out-of-order core in :mod:`repro.cpu.core` consumes these
records; it never re-executes data computation.

Register encoding
-----------------
Operands are encoded as small integers ``(pool << 8) | index`` so the timing
model can use them as dictionary keys cheaply.  Use :func:`reg` and
:func:`reg_pool` / :func:`reg_index` to build and decode them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.model import InstrClass, Opcode, RegPool


def reg(pool: RegPool, index: int) -> int:
    """Encode an architectural register operand."""
    if index < 0 or index > 0xFF:
        raise ValueError(f"register index {index} out of range")
    return (int(pool) << 8) | index


def reg_pool(encoded: int) -> RegPool:
    """Pool of an encoded operand."""
    return RegPool(encoded >> 8)


def reg_index(encoded: int) -> int:
    """Index of an encoded operand within its pool."""
    return encoded & 0xFF


class DynInstr:
    """One dynamic instruction instance.

    Attributes:
        op: the static :class:`~repro.isa.model.Opcode`.
        srcs: encoded source registers (dependences the core must honour).
        dsts: encoded destination registers.
        addr: first effective address for memory classes, else ``None``.
        nbytes: bytes accessed *per element* for memory classes.
        stride: byte distance between consecutive elements (MOM memory).
        vl: number of vector elements (MOM: rows covered by VL; 1 for
            scalar and MMX/MDMX instructions).
        taken: branch outcome for control classes.
        site: static instruction identity (synthetic PC) -- used by the
            branch predictor and the BTB.
    """

    __slots__ = (
        "op", "srcs", "dsts", "addr", "nbytes", "stride",
        "vl", "taken", "site",
    )

    def __init__(
        self,
        op: Opcode,
        srcs: tuple[int, ...] = (),
        dsts: tuple[int, ...] = (),
        addr: int | None = None,
        nbytes: int = 0,
        stride: int = 0,
        vl: int = 1,
        taken: bool | None = None,
        site: int = 0,
    ) -> None:
        self.op = op
        self.srcs = srcs
        self.dsts = dsts
        self.addr = addr
        self.nbytes = nbytes
        self.stride = stride
        self.vl = vl
        self.taken = taken
        self.site = site

    @property
    def iclass(self) -> InstrClass:
        return self.op.iclass

    def element_addresses(self) -> list[int]:
        """Effective addresses of every element access of this instruction."""
        if self.addr is None:
            return []
        if self.vl == 1 or self.stride == 0:
            return [self.addr]
        return [self.addr + i * self.stride for i in range(self.vl)]

    def __repr__(self) -> str:
        extra = ""
        if self.addr is not None:
            extra = f" @{self.addr:#x}x{self.vl}"
        if self.taken is not None:
            extra = f" taken={self.taken}"
        return f"<{self.op.isa}:{self.op.name}{extra}>"


@dataclass
class Trace:
    """An ordered dynamic instruction stream plus summary statistics."""

    isa: str
    instructions: list[DynInstr] = field(default_factory=list)

    def append(self, instr: DynInstr) -> DynInstr:
        self.instructions.append(instr)
        return instr

    def extend(self, other: "Trace") -> None:
        """Concatenate another trace (used to stitch program phases)."""
        self.instructions.extend(other.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, idx):
        return self.instructions[idx]

    # --- statistics ------------------------------------------------------------

    def class_histogram(self) -> dict[InstrClass, int]:
        hist: dict[InstrClass, int] = {}
        for ins in self.instructions:
            hist[ins.iclass] = hist.get(ins.iclass, 0) + 1
        return hist

    def opcode_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for ins in self.instructions:
            hist[ins.op.name] = hist.get(ins.op.name, 0) + 1
        return hist

    def operation_count(self) -> int:
        """Total *operations* (lane-level work items), counting vector length.

        One MOM instruction of VL=16 on byte lanes counts 16 x 8 = 128
        operations -- the "order of magnitude more operations per
        instruction" the paper credits for MOM's low fetch pressure.
        """
        total = 0
        for ins in self.instructions:
            total += ins.vl * max(1, ins.op.elem.lanes)
        return total

    def memory_references(self) -> int:
        """Total element-level memory accesses in the trace."""
        return sum(ins.vl for ins in self.instructions if ins.iclass.is_memory)

    def branch_count(self) -> int:
        return sum(1 for ins in self.instructions if ins.iclass == InstrClass.BRANCH)
