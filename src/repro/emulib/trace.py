"""Dynamic instruction traces.

The builders in this package execute kernels functionally and record one
:class:`DynInstr` per dynamic instruction -- the same information the paper
obtains by filtering an ATOM-instrumented instruction stream into the Jinks
simulator.  The out-of-order core in :mod:`repro.cpu.core` consumes these
records; it never re-executes data computation.

Register encoding
-----------------
Operands are encoded as small integers ``(pool << 8) | index`` so the timing
model can use them as dictionary keys cheaply.  Use :func:`reg` and
:func:`reg_pool` / :func:`reg_index` to build and decode them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.model import InstrClass, Opcode, RegPool


def reg(pool: RegPool, index: int) -> int:
    """Encode an architectural register operand."""
    if index < 0 or index > 0xFF:
        raise ValueError(f"register index {index} out of range")
    return (int(pool) << 8) | index


def reg_pool(encoded: int) -> RegPool:
    """Pool of an encoded operand."""
    return RegPool(encoded >> 8)


def reg_index(encoded: int) -> int:
    """Index of an encoded operand within its pool."""
    return encoded & 0xFF


class DynInstr:
    """One dynamic instruction instance.

    Attributes:
        op: the static :class:`~repro.isa.model.Opcode`.
        srcs: encoded source registers (dependences the core must honour).
        dsts: encoded destination registers.
        addr: first effective address for memory classes, else ``None``.
        nbytes: bytes accessed *per element* for memory classes.
        stride: byte distance between consecutive elements (MOM memory).
        vl: number of vector elements (MOM: rows covered by VL; 1 for
            scalar and MMX/MDMX instructions).
        taken: branch outcome for control classes.
        site: static instruction identity (synthetic PC) -- used by the
            branch predictor and the BTB.
    """

    __slots__ = (
        "op", "srcs", "dsts", "addr", "nbytes", "stride",
        "vl", "taken", "site",
    )

    def __init__(
        self,
        op: Opcode,
        srcs: tuple[int, ...] = (),
        dsts: tuple[int, ...] = (),
        addr: int | None = None,
        nbytes: int = 0,
        stride: int = 0,
        vl: int = 1,
        taken: bool | None = None,
        site: int = 0,
    ) -> None:
        self.op = op
        self.srcs = srcs
        self.dsts = dsts
        self.addr = addr
        self.nbytes = nbytes
        self.stride = stride
        self.vl = vl
        self.taken = taken
        self.site = site

    @property
    def iclass(self) -> InstrClass:
        return self.op.iclass

    def element_addresses(self) -> list[int]:
        """Effective addresses of every element access of this instruction."""
        if self.addr is None:
            return []
        if self.vl == 1 or self.stride == 0:
            return [self.addr]
        return [self.addr + i * self.stride for i in range(self.vl)]

    def __repr__(self) -> str:
        extra = ""
        if self.addr is not None:
            extra = f" @{self.addr:#x}x{self.vl}"
        if self.taken is not None:
            extra = f" taken={self.taken}"
        return f"<{self.op.isa}:{self.op.name}{extra}>"


class TimingRecord:
    """Preclassified image of one :class:`DynInstr` for the timing core.

    The cycle-level scheduler consults instruction-class predicates and
    operand pools on every fetch/dispatch/issue/commit decision.  Resolving
    them through enum properties per simulated run is pure recomputation --
    the classification depends only on the trace, which the experiment grid
    reuses across every (width, memory model) point.  A record folds those
    lookups into plain attributes, computed once per trace.
    """

    #: values of :attr:`kind`, ordered by issue-path frequency.
    KIND_COMPUTE = 0
    KIND_MEMORY = 1
    KIND_CONTROL = 2
    KIND_NOP = 3

    __slots__ = (
        "instr", "iclass", "kind", "is_memory", "is_branch", "is_jump",
        "is_nop", "chains", "op_name", "latency", "vl", "exec_rows",
        "acc_chain_eligible", "writes_acc", "srcs", "dsts", "site", "taken",
    )

    def __init__(self, instr: DynInstr) -> None:
        op = instr.op
        iclass = op.iclass
        self.instr = instr
        self.iclass = iclass
        self.is_memory = iclass.is_memory
        self.is_branch = iclass == InstrClass.BRANCH
        self.is_jump = iclass == InstrClass.JUMP
        self.is_nop = iclass == InstrClass.NOP
        if self.is_memory:
            self.kind = self.KIND_MEMORY
        elif self.is_branch or self.is_jump:
            self.kind = self.KIND_CONTROL
        elif self.is_nop:
            self.kind = self.KIND_NOP
        else:
            self.kind = self.KIND_COMPUTE
        is_media_compute = iclass in (InstrClass.MED_SIMPLE,
                                      InstrClass.MED_COMPLEX)
        self.chains = instr.vl > 1 and (iclass.is_media or self.is_memory)
        self.op_name = op.name
        self.latency = op.latency
        self.vl = instr.vl
        #: rows a media computation streams through its functional unit.
        self.exec_rows = instr.vl if is_media_compute else 1
        self.acc_chain_eligible = (is_media_compute and op.reads_acc
                                   and op.writes_acc and instr.vl > 1)
        self.writes_acc = op.writes_acc
        self.srcs = instr.srcs
        #: per destination: (encoded reg, pool, rename row charge).
        self.dsts = tuple(
            (dst, reg_pool(dst),
             max(1, instr.vl) if reg_pool(dst) == RegPool.MED else 1)
            for dst in instr.dsts)
        self.site = instr.site
        self.taken = instr.taken


class TraceSummary:
    """One-pass summary of a trace: statistics plus timing records.

    Computed lazily by :meth:`Trace.summary` and cached until the trace is
    mutated, so repeated simulation of the same trace (the experiment grid
    runs each trace under many machine/memory configurations) pays the
    O(trace) walk once instead of once per run.
    """

    __slots__ = ("records", "class_histogram", "opcode_histogram",
                 "operation_count", "memory_references", "branch_count")

    def __init__(self, instructions: list[DynInstr]) -> None:
        records = [TimingRecord(ins) for ins in instructions]
        class_hist: dict[InstrClass, int] = {}
        opcode_hist: dict[str, int] = {}
        operations = memory_refs = branches = 0
        for rec in records:
            class_hist[rec.iclass] = class_hist.get(rec.iclass, 0) + 1
            opcode_hist[rec.op_name] = opcode_hist.get(rec.op_name, 0) + 1
            operations += rec.vl * max(1, rec.instr.op.elem.lanes)
            if rec.is_memory:
                memory_refs += rec.vl
            if rec.is_branch:
                branches += 1
        self.records = records
        self.class_histogram = class_hist
        self.opcode_histogram = opcode_hist
        self.operation_count = operations
        self.memory_references = memory_refs
        self.branch_count = branches


@dataclass
class Trace:
    """An ordered dynamic instruction stream plus summary statistics.

    Statistics and timing records are computed once and cached; mutating
    the trace through :meth:`append` / :meth:`extend` invalidates the
    cache.  Code that mutates ``instructions`` directly must call
    :meth:`invalidate_summary` afterwards.
    """

    isa: str
    instructions: list[DynInstr] = field(default_factory=list)
    _summary: "TraceSummary | None" = field(
        default=None, init=False, repr=False, compare=False)

    def append(self, instr: DynInstr) -> DynInstr:
        self.instructions.append(instr)
        self._summary = None
        return instr

    def extend(self, other: "Trace") -> None:
        """Concatenate another trace (used to stitch program phases)."""
        self.instructions.extend(other.instructions)
        self._summary = None

    def invalidate_summary(self) -> None:
        """Drop cached statistics after direct ``instructions`` mutation."""
        self._summary = None

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def __getitem__(self, idx):
        return self.instructions[idx]

    # --- statistics ------------------------------------------------------------

    def summary(self) -> TraceSummary:
        """The cached one-pass summary (recomputed after mutation)."""
        if self._summary is None:
            self._summary = TraceSummary(self.instructions)
        return self._summary

    def timing_records(self) -> list[TimingRecord]:
        """Preclassified per-instruction records for the cycle-level core."""
        return self.summary().records

    def class_histogram(self) -> dict[InstrClass, int]:
        return dict(self.summary().class_histogram)

    def opcode_histogram(self) -> dict[str, int]:
        return dict(self.summary().opcode_histogram)

    def operation_count(self) -> int:
        """Total *operations* (lane-level work items), counting vector length.

        One MOM instruction of VL=16 on byte lanes counts 16 x 8 = 128
        operations -- the "order of magnitude more operations per
        instruction" the paper credits for MOM's low fetch pressure.
        """
        return self.summary().operation_count

    def memory_references(self) -> int:
        """Total element-level memory accesses in the trace."""
        return self.summary().memory_references

    def branch_count(self) -> int:
        return self.summary().branch_count
