"""Scalar Alpha builder and common scalar code idioms.

The plain-superscalar baseline uses only the scalar instruction set, so the
Alpha builder is the base builder under its own name.  Kept as a distinct
class so traces are tagged with the right ISA and so baseline-specific
helpers have a home.
"""

from __future__ import annotations

from .base_builder import BaseBuilder, RegHandle


class AlphaBuilder(BaseBuilder):
    """Builder producing pure scalar Alpha traces (the paper's baseline)."""

    isa_name = "alpha"


def emit_abs_diff(b: BaseBuilder, dst: RegHandle, x: RegHandle, y: RegHandle,
                  scratch: RegHandle) -> RegHandle:
    """Emit ``dst = |x - y|`` with the branch-free sub/sub/cmovlt idiom.

    Three instructions and no control hazard -- what a late-90s compiler
    emits for ``abs(a[i]-b[i])`` on Alpha.
    """
    b.subq(dst, x, y)
    b.subq(scratch, y, x)
    b.cmovlt(dst, dst, scratch)
    return dst


def emit_clamp(b: BaseBuilder, value: RegHandle, lo: RegHandle, hi: RegHandle,
               scratch: RegHandle) -> RegHandle:
    """Emit ``value = min(max(value, lo), hi)`` with compare + cmov pairs."""
    b.cmplt(scratch, value, lo)
    b.cmovne(value, scratch, lo)
    b.cmplt(scratch, hi, value)
    b.cmovne(value, scratch, hi)
    return value
