"""MOM emulation library: matrix-register semantics + trace capture.

Implements the 121-opcode MOM table from :mod:`repro.core.mom_isa`.  A MOM
computation instruction applies its packed operation to the first VL rows of
its matrix operands; a MOM memory instruction walks memory with an arbitrary
byte stride between rows.  The builder tracks the architectural VL register
(renamed through the integer pool by the timing model, per Section 3.2) and
stamps every emitted instruction with the VL under which it executed -- the
timing model charges functional-unit occupancy and memory-port traffic per
row from that field.
"""

from __future__ import annotations

import numpy as np

from ..core.accumulator import PackedAccumulator
from ..core.matrix import MomRegister
from ..core.mom_isa import MATRIX_ROWS, MOM
from ..isa.model import ElemType, RegPool
from ..core import packed
from .base_builder import BaseBuilder, RegHandle, RegisterAllocator


class _Combine:
    """Reduction rule of a fully-reducing matrix instruction."""

    def __init__(self, fn, signed: bool) -> None:
        self._fn = fn
        self.signed = signed

    def __call__(self, la, lb):
        return self._fn(la, lb)


_SAD = _Combine(lambda a, b: np.abs(a - b).sum(), signed=False)
_SQD = _Combine(lambda a, b: ((a - b) * (a - b)).sum(), signed=False)
_DOT = _Combine(lambda a, b: (a * b).sum(), signed=True)

_U64 = (1 << 64) - 1
_E = ElemType


class MomBuilder(BaseBuilder):
    """Builder for the MOM ISA (16 matrix registers, 2 accumulators, VL)."""

    isa_name = "mom"
    media_table = MOM
    media_registers = 16
    accumulator_registers = 2

    def __init__(self, mem=None, int_registers: int = 30) -> None:
        super().__init__(mem, int_registers)
        self.med_alloc = RegisterAllocator(RegPool.MED, self.media_registers)
        self.acc_alloc = RegisterAllocator(RegPool.ACC, self.accumulator_registers)
        #: architectural vector length; every instruction captures it.
        self.vl = MATRIX_ROWS

    # --- registers ------------------------------------------------------------

    def mreg(self) -> RegHandle:
        """Allocate a matrix register (zeroed)."""
        return RegHandle(RegPool.MED, self.med_alloc.take(), MomRegister(), self)

    def areg(self) -> RegHandle:
        """Allocate a packed accumulator (cleared)."""
        return RegHandle(RegPool.ACC, self.acc_alloc.take(), PackedAccumulator(), self)

    def free(self, handle: RegHandle) -> None:
        if handle.pool == RegPool.MED:
            self.med_alloc.release(handle.index)
        elif handle.pool == RegPool.ACC:
            self.acc_alloc.release(handle.index)
        else:
            super().free(handle)

    # --- vector length ----------------------------------------------------------

    def setvl(self, src: RegHandle) -> None:
        """VL <- min(rs, 16) from an integer register."""
        self.vl = max(0, min(int(src.value), MATRIX_ROWS))
        self._emit(self.media_table["setvl"], srcs=(src,), dsts=())

    def setvli(self, length: int) -> None:
        """VL <- immediate."""
        if not 0 <= length <= MATRIX_ROWS:
            raise ValueError(f"VL must be in [0, {MATRIX_ROWS}], got {length}")
        self.vl = length
        self._emit(self.media_table["setvli"], srcs=(), dsts=())

    def readvl(self, dst: RegHandle) -> RegHandle:
        dst.value = self.vl
        self._emit(self.media_table["readvl"], srcs=(), dsts=(dst,))
        return dst

    # --- memory ----------------------------------------------------------------------

    def momldq(self, dst, base, stride, unaligned: bool = False) -> RegHandle:
        """Strided matrix load: row i <- mem[base + i*stride], VL rows."""
        addr = base.value & _U64
        step = int(stride.value)
        rows = dst.value.rows.copy()
        for i in range(self.vl):
            rows[i] = self.mem.read(addr + i * step, 8)
        dst.value = MomRegister(rows)
        name = "momldq_u" if unaligned or addr % 8 else "momldq"
        self._emit(self.media_table[name], srcs=(base, stride), dsts=(dst,),
                   addr=addr, nbytes=8, stride=step, vl=self.vl)
        return dst

    def momstq(self, src, base, stride, unaligned: bool = False) -> None:
        """Strided matrix store: mem[base + i*stride] <- row i, VL rows."""
        addr = base.value & _U64
        step = int(stride.value)
        for i in range(self.vl):
            self.mem.write(addr + i * step, src.value.get_row(i), 8)
        name = "momstq_u" if unaligned or addr % 8 else "momstq"
        self._emit(self.media_table[name], srcs=(src, base, stride), dsts=(),
                   addr=addr, nbytes=8, stride=step, vl=self.vl)

    def momldrow(self, dst, base, row: int, offset: int = 0) -> RegHandle:
        """Load one 64-bit word into matrix row ``row``."""
        addr = (base.value + offset) & _U64
        updated = dst.value.copy()
        updated.set_row(row, self.mem.read(addr, 8))
        dst.value = updated
        self._emit(self.media_table["momldrow"], srcs=(base, dst), dsts=(dst,),
                   addr=addr, nbytes=8, vl=1)
        return dst

    def momstrow(self, src, base, row: int, offset: int = 0) -> None:
        """Store matrix row ``row`` to memory."""
        addr = (base.value + offset) & _U64
        self.mem.write(addr, src.value.get_row(row), 8)
        self._emit(self.media_table["momstrow"], srcs=(src, base), dsts=(),
                   addr=addr, nbytes=8, vl=1)

    def momldbcast(self, dst, base, offset: int = 0) -> RegHandle:
        """Load one word and broadcast it into all VL rows."""
        addr = (base.value + offset) & _U64
        word = self.mem.read(addr, 8)
        rows = dst.value.rows.copy()
        rows[: self.vl] = np.uint64(word)
        dst.value = MomRegister(rows)
        self._emit(self.media_table["momldbcast"], srcs=(base,), dsts=(dst,),
                   addr=addr, nbytes=8, vl=1)
        return dst

    def momprefetch(self, base, stride) -> None:
        """Software prefetch of a strided row sequence (no register write)."""
        self._emit(self.media_table["momprefetch"], srcs=(base, stride), dsts=(),
                   addr=base.value & _U64, nbytes=8,
                   stride=int(stride.value), vl=self.vl)

    # --- data movement -------------------------------------------------------------------

    def mommov(self, dst, src) -> RegHandle:
        dst.value = src.value.copy()
        self._emit(self.media_table["mommov"], srcs=(src,), dsts=(dst,), vl=self.vl)
        return dst

    def momextrow(self, int_dst, src, row: int) -> RegHandle:
        int_dst.value = src.value.get_row(row)
        if int_dst.value >= 1 << 63:
            int_dst.value -= 1 << 64
        self._emit(self.media_table["momextrow"], srcs=(src,), dsts=(int_dst,), vl=1)
        return int_dst

    def mominsrow(self, dst, int_src, row: int) -> RegHandle:
        updated = dst.value.copy()
        updated.set_row(row, int_src.value & _U64)
        dst.value = updated
        self._emit(self.media_table["mominsrow"], srcs=(int_src, dst), dsts=(dst,), vl=1)
        return dst

    def mombcastrow(self, dst, src) -> RegHandle:
        """Broadcast row 0 of ``src`` into all VL rows of ``dst``."""
        rows = dst.value.rows.copy()
        rows[: self.vl] = np.uint64(src.value.get_row(0))
        dst.value = MomRegister(rows)
        self._emit(self.media_table["mombcastrow"], srcs=(src,), dsts=(dst,), vl=self.vl)
        return dst

    # --- packed (matrix) arithmetic: generic emit helpers -----------------------------------

    def _vec2(self, name: str, dst, a, b, fn, *args) -> RegHandle:
        """Two-source packed op applied to the first VL rows."""
        rows = dst.value.rows.copy()
        rows[: self.vl] = fn(a.value.rows[: self.vl], b.value.rows[: self.vl], *args)
        dst.value = MomRegister(rows)
        self._emit(self.media_table[name], srcs=(a, b), dsts=(dst,), vl=self.vl)
        return dst

    def _vec1(self, name: str, dst, a, fn, *args) -> RegHandle:
        """One-source packed op applied to the first VL rows."""
        rows = dst.value.rows.copy()
        rows[: self.vl] = fn(a.value.rows[: self.vl], *args)
        dst.value = MomRegister(rows)
        self._emit(self.media_table[name], srcs=(a,), dsts=(dst,), vl=self.vl)
        return dst

    # --- add / sub ------------------------------------------------------------------------

    def paddb(self, dst, a, b):
        return self._vec2("paddb", dst, a, b, packed.add_wrap, _E.B)

    def paddh(self, dst, a, b):
        return self._vec2("paddh", dst, a, b, packed.add_wrap, _E.H)

    def paddw(self, dst, a, b):
        return self._vec2("paddw", dst, a, b, packed.add_wrap, _E.W)

    def paddsb(self, dst, a, b):
        return self._vec2("paddsb", dst, a, b, packed.add_sat, _E.B, True)

    def paddsh(self, dst, a, b):
        return self._vec2("paddsh", dst, a, b, packed.add_sat, _E.H, True)

    def paddusb(self, dst, a, b):
        return self._vec2("paddusb", dst, a, b, packed.add_sat, _E.B, False)

    def paddush(self, dst, a, b):
        return self._vec2("paddush", dst, a, b, packed.add_sat, _E.H, False)

    def psubb(self, dst, a, b):
        return self._vec2("psubb", dst, a, b, packed.sub_wrap, _E.B)

    def psubh(self, dst, a, b):
        return self._vec2("psubh", dst, a, b, packed.sub_wrap, _E.H)

    def psubw(self, dst, a, b):
        return self._vec2("psubw", dst, a, b, packed.sub_wrap, _E.W)

    def psubsb(self, dst, a, b):
        return self._vec2("psubsb", dst, a, b, packed.sub_sat, _E.B, True)

    def psubsh(self, dst, a, b):
        return self._vec2("psubsh", dst, a, b, packed.sub_sat, _E.H, True)

    def psubusb(self, dst, a, b):
        return self._vec2("psubusb", dst, a, b, packed.sub_sat, _E.B, False)

    def psubush(self, dst, a, b):
        return self._vec2("psubush", dst, a, b, packed.sub_sat, _E.H, False)

    # --- multiplies ---------------------------------------------------------------------------

    def pmullh(self, dst, a, b):
        return self._vec2("pmullh", dst, a, b, packed.mul_low, _E.H)

    def pmulhh(self, dst, a, b):
        return self._vec2("pmulhh", dst, a, b, packed.mul_high, _E.H, True)

    def pmulhuh(self, dst, a, b):
        return self._vec2("pmulhuh", dst, a, b, packed.mul_high, _E.H, False)

    def pmaddh(self, dst, a, b):
        return self._vec2("pmaddh", dst, a, b, packed.mul_add_pairs)

    # --- average / abs-diff ----------------------------------------------------------------------

    def pavgb(self, dst, a, b):
        return self._vec2("pavgb", dst, a, b, packed.avg_round, _E.B)

    def pavgh(self, dst, a, b):
        return self._vec2("pavgh", dst, a, b, packed.avg_round, _E.H)

    def pabsdiffb(self, dst, a, b):
        return self._vec2("pabsdiffb", dst, a, b, packed.absdiff, _E.B)

    def pabsdiffh(self, dst, a, b):
        return self._vec2("pabsdiffh", dst, a, b, packed.absdiff, _E.H)

    def momabsb(self, dst, a):
        return self._vec1("momabsb", dst, a, packed.abs_packed, _E.B)

    def momabsh(self, dst, a):
        return self._vec1("momabsh", dst, a, packed.abs_packed, _E.H)

    # --- min / max ------------------------------------------------------------------------------------

    def pminub(self, dst, a, b):
        return self._vec2("pminub", dst, a, b, packed.minmax, _E.B, False, False)

    def pmaxub(self, dst, a, b):
        return self._vec2("pmaxub", dst, a, b, packed.minmax, _E.B, False, True)

    def pminsh(self, dst, a, b):
        return self._vec2("pminsh", dst, a, b, packed.minmax, _E.H, True, False)

    def pmaxsh(self, dst, a, b):
        return self._vec2("pmaxsh", dst, a, b, packed.minmax, _E.H, True, True)

    # --- logicals --------------------------------------------------------------------------------------

    def pand(self, dst, a, b):
        return self._vec2("pand", dst, a, b, lambda x, y: x & y)

    def pandn(self, dst, a, b):
        return self._vec2("pandn", dst, a, b, lambda x, y: ~x & y)

    def por(self, dst, a, b):
        return self._vec2("por", dst, a, b, lambda x, y: x | y)

    def pxor(self, dst, a, b):
        return self._vec2("pxor", dst, a, b, lambda x, y: x ^ y)

    # --- shifts ------------------------------------------------------------------------------------------

    def _vshift(self, name, dst, a, count, elem, kind):
        return self._vec1(name, dst, a, packed.shift, count, elem, kind)

    def psllh(self, dst, a, count: int):
        return self._vshift("psllh", dst, a, count, _E.H, "sll")

    def psllw(self, dst, a, count: int):
        return self._vshift("psllw", dst, a, count, _E.W, "sll")

    def psllq(self, dst, a, count: int):
        return self._vshift("psllq", dst, a, count, _E.Q, "sll")

    def psrlh(self, dst, a, count: int):
        return self._vshift("psrlh", dst, a, count, _E.H, "srl")

    def psrlw(self, dst, a, count: int):
        return self._vshift("psrlw", dst, a, count, _E.W, "srl")

    def psrlq(self, dst, a, count: int):
        return self._vshift("psrlq", dst, a, count, _E.Q, "srl")

    def psrah(self, dst, a, count: int):
        return self._vshift("psrah", dst, a, count, _E.H, "sra")

    def psraw(self, dst, a, count: int):
        return self._vshift("psraw", dst, a, count, _E.W, "sra")

    # --- compares / select -------------------------------------------------------------------------------------

    def pcmpeqb(self, dst, a, b):
        return self._vec2("pcmpeqb", dst, a, b, packed.cmp_mask, _E.B, "eq")

    def pcmpeqh(self, dst, a, b):
        return self._vec2("pcmpeqh", dst, a, b, packed.cmp_mask, _E.H, "eq")

    def pcmpeqw(self, dst, a, b):
        return self._vec2("pcmpeqw", dst, a, b, packed.cmp_mask, _E.W, "eq")

    def pcmpgtb(self, dst, a, b):
        return self._vec2("pcmpgtb", dst, a, b, packed.cmp_mask, _E.B, "gt")

    def pcmpgth(self, dst, a, b):
        return self._vec2("pcmpgth", dst, a, b, packed.cmp_mask, _E.H, "gt")

    def pcmpgtw(self, dst, a, b):
        return self._vec2("pcmpgtw", dst, a, b, packed.cmp_mask, _E.W, "gt")

    def pcmov(self, dst, mask, a, b):
        rows = dst.value.rows.copy()
        vl = self.vl
        rows[:vl] = packed.select(
            mask.value.rows[:vl], a.value.rows[:vl], b.value.rows[:vl]
        )
        dst.value = MomRegister(rows)
        self._emit(self.media_table["pcmov"], srcs=(mask, a, b), dsts=(dst,), vl=vl)
        return dst

    # --- pack / unpack --------------------------------------------------------------------------------------------

    def packsshb(self, dst, a, b):
        return self._vec2("packsshb", dst, a, b, packed.pack_sat, _E.H, True)

    def packushb(self, dst, a, b):
        return self._vec2("packushb", dst, a, b, packed.pack_sat, _E.H, False)

    def packsswh(self, dst, a, b):
        return self._vec2("packsswh", dst, a, b, packed.pack_sat, _E.W, True)

    def punpcklb(self, dst, a, b):
        return self._vec2("punpcklb", dst, a, b, packed.unpack_interleave, _E.B, False)

    def punpckhb(self, dst, a, b):
        return self._vec2("punpckhb", dst, a, b, packed.unpack_interleave, _E.B, True)

    def punpcklh(self, dst, a, b):
        return self._vec2("punpcklh", dst, a, b, packed.unpack_interleave, _E.H, False)

    def punpckhh(self, dst, a, b):
        return self._vec2("punpckhh", dst, a, b, packed.unpack_interleave, _E.H, True)

    def punpcklw(self, dst, a, b):
        return self._vec2("punpcklw", dst, a, b, packed.unpack_interleave, _E.W, False)

    def punpckhw(self, dst, a, b):
        return self._vec2("punpckhw", dst, a, b, packed.unpack_interleave, _E.W, True)

    # --- accumulator (matrix) operations ----------------------------------------------------------------------------

    def _acc_rows(self, name: str, acc, a, b, fold) -> RegHandle:
        """Accumulate pairwise over the first VL rows of two matrices."""
        for i in range(self.vl):
            fold(acc.value, a.value.get_row(i), b.value.get_row(i))
        self._emit(self.media_table[name], srcs=(a, b, acc), dsts=(acc,), vl=self.vl)
        return acc

    def pmaddab(self, acc, a, b):
        return self._acc_rows(
            "pmaddab", acc, a, b, lambda v, x, y: v.madd(x, y, _E.B, signed=True)
        )

    def pmaddah(self, acc, a, b):
        return self._acc_rows(
            "pmaddah", acc, a, b, lambda v, x, y: v.madd(x, y, _E.H, signed=True)
        )

    def pmaddauh(self, acc, a, b):
        return self._acc_rows(
            "pmaddauh", acc, a, b, lambda v, x, y: v.madd(x, y, _E.H, signed=False)
        )

    def pmsubab(self, acc, a, b):
        return self._acc_rows(
            "pmsubab", acc, a, b,
            lambda v, x, y: v.madd(x, y, _E.B, signed=True, subtract=True),
        )

    def pmsubah(self, acc, a, b):
        return self._acc_rows(
            "pmsubah", acc, a, b,
            lambda v, x, y: v.madd(x, y, _E.H, signed=True, subtract=True),
        )

    def paccaddb(self, acc, a, b):
        return self._acc_rows(
            "paccaddb", acc, a, b, lambda v, x, y: v.acc_add(x, y, _E.B)
        )

    def paccaddh(self, acc, a, b):
        return self._acc_rows(
            "paccaddh", acc, a, b, lambda v, x, y: v.acc_add(x, y, _E.H)
        )

    def paccaddw(self, acc, a, b):
        return self._acc_rows(
            "paccaddw", acc, a, b, lambda v, x, y: v.acc_add(x, y, _E.W)
        )

    def paccsubb(self, acc, a, b):
        return self._acc_rows(
            "paccsubb", acc, a, b,
            lambda v, x, y: v.acc_add(x, y, _E.B, subtract=True),
        )

    def paccsubh(self, acc, a, b):
        return self._acc_rows(
            "paccsubh", acc, a, b,
            lambda v, x, y: v.acc_add(x, y, _E.H, subtract=True),
        )

    def paccsubw(self, acc, a, b):
        return self._acc_rows(
            "paccsubw", acc, a, b,
            lambda v, x, y: v.acc_add(x, y, _E.W, subtract=True),
        )

    def paccsadb(self, acc, a, b):
        return self._acc_rows(
            "paccsadb", acc, a, b, lambda v, x, y: v.acc_sad(x, y, _E.B)
        )

    def paccsadh(self, acc, a, b):
        return self._acc_rows(
            "paccsadh", acc, a, b, lambda v, x, y: v.acc_sad(x, y, _E.H)
        )

    def paccsqdb(self, acc, a, b):
        return self._acc_rows(
            "paccsqdb", acc, a, b, lambda v, x, y: v.acc_sqd(x, y, _E.B)
        )

    def paccsqdh(self, acc, a, b):
        return self._acc_rows(
            "paccsqdh", acc, a, b, lambda v, x, y: v.acc_sqd(x, y, _E.H)
        )

    # --- special matrix operations ----------------------------------------------------------------------------------

    def _matrix_scalar_op(self, name: str, acc, a, b, combine, elem: ElemType):
        """Fully-reducing matrix operation: acc += sum over rows and lanes.

        These are Section 2.2's "very powerful matrix instructions": the
        hardware reduces both dimensions through an adder tree, so software
        reads one scalar back with a single ``racl``.
        """
        la = packed.to_lanes(a.value.rows[: self.vl], elem,
                             signed=combine.signed).astype(np.int64)
        lb = packed.to_lanes(b.value.rows[: self.vl], elem,
                             signed=combine.signed).astype(np.int64)
        acc.value.scalar_add(int(combine(la, lb)))
        self._emit(self.media_table[name], srcs=(a, b, acc), dsts=(acc,),
                   vl=self.vl)
        return acc

    def mommsadb(self, acc, a, b):
        """Matrix SAD: acc += sum over rows and byte lanes of |a - b|."""
        return self._matrix_scalar_op("mommsadb", acc, a, b, _SAD, _E.B)

    def mommsadh(self, acc, a, b):
        return self._matrix_scalar_op("mommsadh", acc, a, b, _SAD, _E.H)

    def mommsqdb(self, acc, a, b):
        """MPEG-2 matrix sum of quadratic differences (scalar total)."""
        return self._matrix_scalar_op("mommsqdb", acc, a, b, _SQD, _E.B)

    def mommsqdh(self, acc, a, b):
        return self._matrix_scalar_op("mommsqdh", acc, a, b, _SQD, _E.H)

    def mommvmb(self, acc, a, b):
        """Matrix dot product: acc += sum over rows and lanes of a * b."""
        return self._matrix_scalar_op("mommvmb", acc, a, b, _DOT, _E.B)

    def mommvmh(self, acc, a, b):
        return self._matrix_scalar_op("mommvmh", acc, a, b, _DOT, _E.H)

    def mommpvb(self, acc, a, v):
        """Matrix-per-vector: acc += sum over rows of a_row . v_row0, bytes."""
        row0 = np.full(self.vl, v.value.get_row(0), dtype=np.uint64)
        la = packed.to_lanes(a.value.rows[: self.vl], _E.B, signed=True).astype(np.int64)
        lv = packed.to_lanes(row0, _E.B, signed=True).astype(np.int64)
        acc.value.scalar_add(int((la * lv).sum()))
        self._emit(self.media_table["mommpvb"], srcs=(a, v, acc), dsts=(acc,),
                   vl=self.vl)
        return acc

    def mommpvh(self, acc, a, v):
        """Matrix-per-vector: acc += sum over rows of a_row . v_row0, halves."""
        row0 = np.full(self.vl, v.value.get_row(0), dtype=np.uint64)
        la = packed.to_lanes(a.value.rows[: self.vl], _E.H, signed=True).astype(np.int64)
        lv = packed.to_lanes(row0, _E.H, signed=True).astype(np.int64)
        acc.value.scalar_add(int((la * lv).sum()))
        self._emit(self.media_table["mommpvh"], srcs=(a, v, acc), dsts=(acc,),
                   vl=self.vl)
        return acc

    def momtransb(self, dst, a):
        dst.value = a.value.transpose_blocks(_E.B)
        self._emit(self.media_table["momtransb"], srcs=(a,), dsts=(dst,), vl=self.vl)
        return dst

    def momtransh(self, dst, a):
        dst.value = a.value.transpose_blocks(_E.H)
        self._emit(self.media_table["momtransh"], srcs=(a,), dsts=(dst,), vl=self.vl)
        return dst

    def momtransw(self, dst, a):
        dst.value = a.value.transpose_blocks(_E.W)
        self._emit(self.media_table["momtransw"], srcs=(a,), dsts=(dst,), vl=self.vl)
        return dst

    # --- accumulator read-out / restore (as MDMX, on the MOM table) -------------------------------------------------------

    def _rac(self, name: str, dst, acc, value: int) -> RegHandle:
        """Accumulator read-out into row 0 of a matrix register or an
        integer register (by destination pool)."""
        if dst.pool == RegPool.MED:
            updated = dst.value.copy()
            updated.set_row(0, value & _U64)
            dst.value = updated
        else:
            dst.value = value & _U64
            if dst.value >= 1 << 63:
                dst.value -= 1 << 64
        self._emit(self.media_table[name], srcs=(acc,), dsts=(dst,))
        return dst

    def racl(self, dst, acc, elem: ElemType = ElemType.B):
        """Read the low slice of every accumulator lane into row 0."""
        return self._rac("racl", dst, acc, acc.value.read_slice("low", elem))

    def racm(self, dst, acc, elem: ElemType = ElemType.B):
        """Read the middle slice of every accumulator lane into row 0."""
        return self._rac("racm", dst, acc, acc.value.read_slice("mid", elem))

    def rach(self, dst, acc, elem: ElemType = ElemType.B):
        """Read the high slice of every accumulator lane into row 0."""
        return self._rac("rach", dst, acc, acc.value.read_slice("high", elem))

    def raccsb(self, dst, acc, shift: int = 0):
        return self._rac("raccsb", dst, acc, acc.value.read_saturated(_E.B, True, shift))

    def raccub(self, dst, acc, shift: int = 0):
        return self._rac("raccub", dst, acc, acc.value.read_saturated(_E.B, False, shift))

    def raccsh(self, dst, acc, shift: int = 0):
        return self._rac("raccsh", dst, acc, acc.value.read_saturated(_E.H, True, shift))

    def raccuh(self, dst, acc, shift: int = 0):
        return self._rac("raccuh", dst, acc, acc.value.read_saturated(_E.H, False, shift))

    def wacl(self, acc, lo_int, mid_int):
        acc.value.write_third("low", lo_int.value & _U64)
        acc.value.write_third("mid", mid_int.value & _U64)
        self._emit(self.media_table["wacl"], srcs=(lo_int, mid_int, acc), dsts=(acc,))
        return acc

    def wach(self, acc, hi_int):
        acc.value.write_third("high", hi_int.value & _U64)
        self._emit(self.media_table["wach"], srcs=(hi_int, acc), dsts=(acc,))
        return acc

    def clracc(self, acc):
        acc.value.clear()
        self._emit(self.media_table["clracc"], srcs=(), dsts=(acc,))
        return acc

    # --- row reductions / shifts ----------------------------------------------------------------------------------------

    def _vsum(self, name: str, dst, a, elem: ElemType, saturating: bool) -> RegHandle:
        lanes = a.value.to_lane_matrix(elem, signed=False).astype(np.int64)
        total = lanes[: self.vl].sum(axis=0)
        if saturating:
            total = packed.saturate(total, elem, signed=False)
        rows = dst.value.rows.copy()
        rows[0] = packed.from_lanes(total)
        dst.value = MomRegister(rows)
        self._emit(self.media_table[name], srcs=(a,), dsts=(dst,), vl=self.vl)
        return dst

    def momvsumb(self, dst, a):
        return self._vsum("momvsumb", dst, a, _E.B, True)

    def momvsumh(self, dst, a):
        return self._vsum("momvsumh", dst, a, _E.H, True)

    def momvsumw(self, dst, a):
        return self._vsum("momvsumw", dst, a, _E.W, False)

    def momrowshl(self, dst, a):
        dst.value = a.value.row_shift(towards_zero=True)
        self._emit(self.media_table["momrowshl"], srcs=(a,), dsts=(dst,), vl=self.vl)
        return dst

    def momrowshr(self, dst, a):
        dst.value = a.value.row_shift(towards_zero=False)
        self._emit(self.media_table["momrowshr"], srcs=(a,), dsts=(dst,), vl=self.vl)
        return dst

    # --- vector-scalar broadcast forms --------------------------------------------------------------------------------------

    def _vs(self, name: str, dst, a, b, fn, *args) -> RegHandle:
        row0 = np.full(self.vl, b.value.get_row(0), dtype=np.uint64)
        rows = dst.value.rows.copy()
        rows[: self.vl] = fn(a.value.rows[: self.vl], row0, *args)
        dst.value = MomRegister(rows)
        self._emit(self.media_table[name], srcs=(a, b), dsts=(dst,), vl=self.vl)
        return dst

    def vsaddb(self, dst, a, b):
        return self._vs("vsaddb", dst, a, b, packed.add_sat, _E.B, False)

    def vsaddh(self, dst, a, b):
        return self._vs("vsaddh", dst, a, b, packed.add_sat, _E.H, True)

    def vssubb(self, dst, a, b):
        return self._vs("vssubb", dst, a, b, packed.sub_sat, _E.B, False)

    def vssubh(self, dst, a, b):
        return self._vs("vssubh", dst, a, b, packed.sub_sat, _E.H, True)

    def vsmullh(self, dst, a, b):
        return self._vs("vsmullh", dst, a, b, packed.mul_low, _E.H)

    def vsmulhh(self, dst, a, b):
        return self._vs("vsmulhh", dst, a, b, packed.mul_high, _E.H, True)

    def vsandq(self, dst, a, b):
        return self._vs("vsandq", dst, a, b, lambda x, y: x & y)

    def vsorq(self, dst, a, b):
        return self._vs("vsorq", dst, a, b, lambda x, y: x | y)

    # --- misc -------------------------------------------------------------------------------------------------------------------

    def momzero(self, dst) -> RegHandle:
        dst.value = MomRegister()
        self._emit(self.media_table["momzero"], srcs=(), dsts=(dst,), vl=self.vl)
        return dst
