"""Trace disassembler: render dynamic instruction streams for humans.

The emulation libraries produce :class:`~repro.emulib.trace.DynInstr`
records; this module renders them in an assembly-like listing (one line per
dynamic instruction, with operands, effective addresses, vector lengths and
branch outcomes) and produces summary reports.  Used for debugging kernels,
for documentation, and by the fetch-pressure study.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..isa.model import InstrClass, RegPool
from .trace import DynInstr, Trace, reg_index, reg_pool

_POOL_PREFIX = {
    RegPool.INT: "r",
    RegPool.FP: "f",
    RegPool.MED: "m",
    RegPool.ACC: "acc",
}


def format_operand(encoded: int) -> str:
    """Render one encoded register operand (``r5``, ``m3``, ``acc0``)."""
    return f"{_POOL_PREFIX[reg_pool(encoded)]}{reg_index(encoded)}"


def format_instr(instr: DynInstr) -> str:
    """One assembly-like line for a dynamic instruction."""
    parts = [instr.op.name]
    operands = [format_operand(d) for d in instr.dsts]
    operands += [format_operand(s) for s in instr.srcs]
    if operands:
        parts.append(", ".join(operands))
    notes = []
    if instr.addr is not None:
        if instr.vl > 1:
            notes.append(f"@{instr.addr:#x}+{instr.stride}*{instr.vl}")
        else:
            notes.append(f"@{instr.addr:#x}/{instr.nbytes}")
    elif instr.vl > 1:
        notes.append(f"vl={instr.vl}")
    if instr.taken is not None:
        notes.append("taken" if instr.taken else "not-taken")
        notes.append(f"site={instr.site}")
    if notes:
        parts.append("; " + " ".join(notes))
    return "  ".join(parts)


@dataclass
class ParsedInstr:
    """The information one :func:`format_instr` line carries.

    Only what the listing renders round-trips: a strided access prints
    ``@addr+stride*vl`` (so ``nbytes`` is not recoverable), a unit access
    prints ``@addr/nbytes`` (so a dormant stride is not), and register
    operands print as one destination-then-source list.
    """

    name: str
    operands: tuple[str, ...] = ()
    addr: int | None = None
    nbytes: int | None = None
    stride: int | None = None
    vl: int = 1
    taken: bool | None = None
    site: int | None = None
    notes: tuple[str, ...] = field(default_factory=tuple)


_OPERAND_RE = re.compile(r"^(?:r|f|m|acc)\d+$")
_ADDR_UNIT_RE = re.compile(r"^@(0x[0-9a-f]+)/(\d+)$")
_ADDR_STRIDE_RE = re.compile(r"^@(0x[0-9a-f]+)\+(-?\d+)\*(\d+)$")


def parse_instr(line: str) -> ParsedInstr:
    """Parse one :func:`format_instr` line back into its fields.

    Inverse of the renderer up to the information it prints (see
    :class:`ParsedInstr`); raises ``ValueError`` on lines it cannot
    account for, so tests catch format drift in either direction.
    """
    line = line.strip()
    if not line:
        raise ValueError("empty disassembly line")
    body, _, notes_text = line.partition(";")
    fields = body.split()
    if not fields:
        raise ValueError(f"no mnemonic in disassembly line {line!r}")
    name = fields[0]
    operands = tuple(tok.rstrip(",") for tok in fields[1:])
    for tok in operands:
        if not _OPERAND_RE.match(tok):
            raise ValueError(f"bad operand {tok!r} in {line!r}")
    parsed = ParsedInstr(name=name, operands=operands,
                         notes=tuple(notes_text.split()))
    for note in parsed.notes:
        unit = _ADDR_UNIT_RE.match(note)
        strided = _ADDR_STRIDE_RE.match(note)
        if unit:
            parsed.addr = int(unit.group(1), 16)
            parsed.nbytes = int(unit.group(2))
        elif strided:
            parsed.addr = int(strided.group(1), 16)
            parsed.stride = int(strided.group(2))
            parsed.vl = int(strided.group(3))
        elif note.startswith("vl="):
            parsed.vl = int(note[3:])
        elif note == "taken":
            parsed.taken = True
        elif note == "not-taken":
            parsed.taken = False
        elif note.startswith("site="):
            parsed.site = int(note[5:])
        else:
            raise ValueError(f"unrecognized note {note!r} in {line!r}")
    return parsed


def disassemble(trace: Trace, start: int = 0, count: int | None = None) -> str:
    """Render a slice of a trace as a numbered listing."""
    end = len(trace) if count is None else min(len(trace), start + count)
    lines = [f"; trace: isa={trace.isa}, {len(trace)} instructions"]
    for i in range(start, end):
        lines.append(f"{i:6d}: {format_instr(trace[i])}")
    return "\n".join(lines)


def summarize(trace: Trace) -> dict[str, float]:
    """Summary statistics of a dynamic trace.

    Returns a dictionary with instruction totals, the class mix, element
    operations (lane-level work), memory traffic and branch statistics --
    everything the fetch-pressure study reports.
    """
    n = len(trace)
    if n == 0:
        return {"instructions": 0}
    hist = trace.class_histogram()
    media = sum(v for k, v in hist.items() if k.is_media)
    memory = sum(v for k, v in hist.items() if k.is_memory)
    control = sum(v for k, v in hist.items() if k.is_control)
    return {
        "instructions": n,
        "operations": trace.operation_count(),
        "ops_per_instruction": trace.operation_count() / n,
        "media_fraction": media / n,
        "memory_fraction": memory / n,
        "control_fraction": control / n,
        "branches": trace.branch_count(),
        "memory_references": trace.memory_references(),
        "avg_vector_length": (
            sum(i.vl for i in trace if i.iclass.is_media)
            / max(1, sum(1 for i in trace if i.iclass.is_media))
        ),
    }


def class_mix_report(trace: Trace) -> str:
    """A printable instruction-class histogram."""
    hist = trace.class_histogram()
    total = len(trace)
    lines = [f"instruction class mix ({total} instructions):"]
    for iclass in sorted(hist, key=lambda c: -hist[c]):
        share = hist[iclass] / total
        lines.append(f"  {InstrClass(iclass).name:12s} {hist[iclass]:8d}"
                     f"  {share:6.1%}")
    return "\n".join(lines)
