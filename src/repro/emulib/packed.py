"""Compatibility re-export: the packed-arithmetic primitives live in
:mod:`repro.core.packed` (the emulation libraries depend on the core, not
the other way around)."""

from ..core.packed import *  # noqa: F401,F403
from ..core.packed import (  # noqa: F401
    to_lanes, from_lanes, saturate, add_wrap, add_sat, sub_wrap, sub_sat,
    mul_low, mul_high, mul_add_pairs, avg_round, absdiff, sad, abs_packed,
    minmax, cmp_mask, select, shift, pack_sat, unpack_interleave,
    shuffle_halves, horizontal_sum, word_from_bytes, word_to_bytes,
    lane_count,
)
