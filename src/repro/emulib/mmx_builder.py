"""MMX-like emulation library: functional semantics + trace capture.

Implements the 67-opcode table of :mod:`repro.isa.mmx` on top of
:class:`~repro.emulib.base_builder.BaseBuilder`.  Media registers hold one
64-bit packed word; the paper's extension to **three logical operands** means
every computation names a distinct destination.
"""

from __future__ import annotations

from ..isa.mmx import MMX
from ..isa.model import ElemType, IsaTable, RegPool
from ..core import packed
from .base_builder import BaseBuilder, RegHandle, RegisterAllocator

_U64 = (1 << 64) - 1
_E = ElemType


class MmxBuilder(BaseBuilder):
    """Builder for the MMX-like ISA (32 logical media registers)."""

    isa_name = "mmx"
    media_table: IsaTable = MMX
    media_registers = 32
    ld_op = "mmx_ldq"
    ldu_op = "mmx_ldq_u"
    st_op = "mmx_stq"

    def __init__(self, mem=None, int_registers: int = 30) -> None:
        super().__init__(mem, int_registers)
        self.med_alloc = RegisterAllocator(RegPool.MED, self.media_registers)

    # --- registers -------------------------------------------------------------

    def mreg(self, value: int | None = None) -> RegHandle:
        """Allocate a media register holding a packed 64-bit word.

        An explicit value marks the register pre-initialized (live-in) for
        dataflow analysis, mirroring :meth:`BaseBuilder.ireg`.
        """
        handle = RegHandle(
            RegPool.MED, self.med_alloc.take(), (value or 0) & _U64, self
        )
        if value is not None:
            self.preinit.add(handle.encoded)
        return handle

    def free(self, handle: RegHandle) -> None:
        if handle.pool == RegPool.MED:
            self.med_alloc.release(handle.index)
        else:
            super().free(handle)

    # --- emit helpers ------------------------------------------------------------

    def _med_op(self, name: str, dst: RegHandle, srcs, value: int) -> RegHandle:
        dst.value = int(value) & _U64
        self._emit(self.media_table[name], srcs=srcs, dsts=(dst,))
        return dst

    def _packed2(self, name: str, dst, a, b, fn, *fn_args) -> RegHandle:
        """Two-source packed operation computed by a :mod:`packed` function."""
        return self._med_op(name, dst, (a, b), int(fn(a.value, b.value, *fn_args)))

    # --- memory --------------------------------------------------------------------

    def m_ldq(self, dst, base, offset: int = 0, unaligned: bool = False) -> RegHandle:
        """Load a 64-bit packed word into a media register."""
        addr = (base.value + offset) & _U64
        dst.value = self.mem.read(addr, 8)
        name = self.ldu_op if unaligned or addr % 8 else self.ld_op
        self._emit(self.media_table[name], srcs=(base,), dsts=(dst,),
                   addr=addr, nbytes=8)
        return dst

    def m_stq(self, src, base, offset: int = 0) -> None:
        """Store a media register as a 64-bit word."""
        addr = (base.value + offset) & _U64
        self.mem.write(addr, src.value, 8)
        self._emit(self.media_table[self.st_op], srcs=(src, base), dsts=(),
                   addr=addr, nbytes=8)

    # --- moves ----------------------------------------------------------------------

    def movq(self, dst, src) -> RegHandle:
        return self._med_op("movq", dst, (src,), src.value)

    def movd_to(self, dst, int_src) -> RegHandle:
        """Integer register -> media register."""
        return self._med_op("movd_to", dst, (int_src,), int_src.value & _U64)

    def movd_from(self, int_dst, med_src) -> RegHandle:
        """Media register -> integer register."""
        int_dst.value = med_src.value & _U64
        if int_dst.value >= 1 << 63:
            int_dst.value -= 1 << 64
        self._emit(self.media_table["movd_from"], srcs=(med_src,), dsts=(int_dst,))
        return int_dst

    def pshufh(self, dst, src, order: tuple[int, int, int, int]) -> RegHandle:
        return self._med_op(
            "pshufh", dst, (src,), int(packed.shuffle_halves(src.value, order))
        )

    def pextrh(self, int_dst, med_src, lane: int) -> RegHandle:
        int_dst.value = (med_src.value >> (16 * lane)) & 0xFFFF
        self._emit(self.media_table["pextrh"], srcs=(med_src,), dsts=(int_dst,))
        return int_dst

    def pinsrh(self, dst, int_src, lane: int) -> RegHandle:
        mask = 0xFFFF << (16 * lane)
        value = (dst.value & ~mask) | ((int_src.value & 0xFFFF) << (16 * lane))
        return self._med_op("pinsrh", dst, (int_src, dst), value)

    # --- packed add / sub -------------------------------------------------------------

    def paddb(self, dst, a, b):
        return self._packed2("paddb", dst, a, b, packed.add_wrap, _E.B)

    def paddh(self, dst, a, b):
        return self._packed2("paddh", dst, a, b, packed.add_wrap, _E.H)

    def paddw(self, dst, a, b):
        return self._packed2("paddw", dst, a, b, packed.add_wrap, _E.W)

    def paddsb(self, dst, a, b):
        return self._packed2("paddsb", dst, a, b, packed.add_sat, _E.B, True)

    def paddsh(self, dst, a, b):
        return self._packed2("paddsh", dst, a, b, packed.add_sat, _E.H, True)

    def paddusb(self, dst, a, b):
        return self._packed2("paddusb", dst, a, b, packed.add_sat, _E.B, False)

    def paddush(self, dst, a, b):
        return self._packed2("paddush", dst, a, b, packed.add_sat, _E.H, False)

    def psubb(self, dst, a, b):
        return self._packed2("psubb", dst, a, b, packed.sub_wrap, _E.B)

    def psubh(self, dst, a, b):
        return self._packed2("psubh", dst, a, b, packed.sub_wrap, _E.H)

    def psubw(self, dst, a, b):
        return self._packed2("psubw", dst, a, b, packed.sub_wrap, _E.W)

    def psubsb(self, dst, a, b):
        return self._packed2("psubsb", dst, a, b, packed.sub_sat, _E.B, True)

    def psubsh(self, dst, a, b):
        return self._packed2("psubsh", dst, a, b, packed.sub_sat, _E.H, True)

    def psubusb(self, dst, a, b):
        return self._packed2("psubusb", dst, a, b, packed.sub_sat, _E.B, False)

    def psubush(self, dst, a, b):
        return self._packed2("psubush", dst, a, b, packed.sub_sat, _E.H, False)

    # --- multiplies -----------------------------------------------------------------------

    def pmullh(self, dst, a, b):
        return self._packed2("pmullh", dst, a, b, packed.mul_low, _E.H)

    def pmulhh(self, dst, a, b):
        return self._packed2("pmulhh", dst, a, b, packed.mul_high, _E.H, True)

    def pmulhuh(self, dst, a, b):
        return self._packed2("pmulhuh", dst, a, b, packed.mul_high, _E.H, False)

    def pmaddh(self, dst, a, b):
        return self._med_op(
            "pmaddh", dst, (a, b), int(packed.mul_add_pairs(a.value, b.value))
        )

    # --- average / absolute difference / SAD ------------------------------------------------

    def pavgb(self, dst, a, b):
        return self._packed2("pavgb", dst, a, b, packed.avg_round, _E.B)

    def pavgh(self, dst, a, b):
        return self._packed2("pavgh", dst, a, b, packed.avg_round, _E.H)

    def pabsdiffb(self, dst, a, b):
        return self._packed2("pabsdiffb", dst, a, b, packed.absdiff, _E.B)

    def pabsdiffh(self, dst, a, b):
        return self._packed2("pabsdiffh", dst, a, b, packed.absdiff, _E.H)

    def psadb(self, dst, a, b):
        return self._med_op("psadb", dst, (a, b), int(packed.sad(a.value, b.value)))

    # --- min / max -----------------------------------------------------------------------------

    def pminub(self, dst, a, b):
        return self._packed2("pminub", dst, a, b, packed.minmax, _E.B, False, False)

    def pmaxub(self, dst, a, b):
        return self._packed2("pmaxub", dst, a, b, packed.minmax, _E.B, False, True)

    def pminsh(self, dst, a, b):
        return self._packed2("pminsh", dst, a, b, packed.minmax, _E.H, True, False)

    def pmaxsh(self, dst, a, b):
        return self._packed2("pmaxsh", dst, a, b, packed.minmax, _E.H, True, True)

    # --- logicals ----------------------------------------------------------------------------------

    def pand(self, dst, a, b):
        return self._med_op("pand", dst, (a, b), a.value & b.value)

    def pandn(self, dst, a, b):
        return self._med_op("pandn", dst, (a, b), ~a.value & b.value & _U64)

    def por(self, dst, a, b):
        return self._med_op("por", dst, (a, b), a.value | b.value)

    def pxor(self, dst, a, b):
        return self._med_op("pxor", dst, (a, b), a.value ^ b.value)

    # --- shifts (immediate counts) --------------------------------------------------------------------

    def _shift(self, name: str, dst, a, count: int, elem: ElemType, kind: str):
        return self._med_op(
            name, dst, (a,), int(packed.shift(a.value, count, elem, kind))
        )

    def psllh(self, dst, a, count: int):
        return self._shift("psllh", dst, a, count, _E.H, "sll")

    def psllw(self, dst, a, count: int):
        return self._shift("psllw", dst, a, count, _E.W, "sll")

    def psllq(self, dst, a, count: int):
        return self._shift("psllq", dst, a, count, _E.Q, "sll")

    def psrlh(self, dst, a, count: int):
        return self._shift("psrlh", dst, a, count, _E.H, "srl")

    def psrlw(self, dst, a, count: int):
        return self._shift("psrlw", dst, a, count, _E.W, "srl")

    def psrlq(self, dst, a, count: int):
        return self._shift("psrlq", dst, a, count, _E.Q, "srl")

    def psrah(self, dst, a, count: int):
        return self._shift("psrah", dst, a, count, _E.H, "sra")

    def psraw(self, dst, a, count: int):
        return self._shift("psraw", dst, a, count, _E.W, "sra")

    # --- compares / select ---------------------------------------------------------------------------------

    def pcmpeqb(self, dst, a, b):
        return self._packed2("pcmpeqb", dst, a, b, packed.cmp_mask, _E.B, "eq")

    def pcmpeqh(self, dst, a, b):
        return self._packed2("pcmpeqh", dst, a, b, packed.cmp_mask, _E.H, "eq")

    def pcmpeqw(self, dst, a, b):
        return self._packed2("pcmpeqw", dst, a, b, packed.cmp_mask, _E.W, "eq")

    def pcmpgtb(self, dst, a, b):
        return self._packed2("pcmpgtb", dst, a, b, packed.cmp_mask, _E.B, "gt")

    def pcmpgth(self, dst, a, b):
        return self._packed2("pcmpgth", dst, a, b, packed.cmp_mask, _E.H, "gt")

    def pcmpgtw(self, dst, a, b):
        return self._packed2("pcmpgtw", dst, a, b, packed.cmp_mask, _E.W, "gt")

    def pcmov(self, dst, mask, a, b):
        value = int(packed.select(mask.value, a.value, b.value))
        return self._med_op("pcmov", dst, (mask, a, b), value)

    # --- pack / unpack ----------------------------------------------------------------------------------------

    def packsshb(self, dst, a, b):
        return self._packed2("packsshb", dst, a, b, packed.pack_sat, _E.H, True)

    def packushb(self, dst, a, b):
        return self._packed2("packushb", dst, a, b, packed.pack_sat, _E.H, False)

    def packsswh(self, dst, a, b):
        return self._packed2("packsswh", dst, a, b, packed.pack_sat, _E.W, True)

    def punpcklb(self, dst, a, b):
        return self._packed2("punpcklb", dst, a, b, packed.unpack_interleave, _E.B, False)

    def punpckhb(self, dst, a, b):
        return self._packed2("punpckhb", dst, a, b, packed.unpack_interleave, _E.B, True)

    def punpcklh(self, dst, a, b):
        return self._packed2("punpcklh", dst, a, b, packed.unpack_interleave, _E.H, False)

    def punpckhh(self, dst, a, b):
        return self._packed2("punpckhh", dst, a, b, packed.unpack_interleave, _E.H, True)

    def punpcklw(self, dst, a, b):
        return self._packed2("punpcklw", dst, a, b, packed.unpack_interleave, _E.W, False)

    def punpckhw(self, dst, a, b):
        return self._packed2("punpckhw", dst, a, b, packed.unpack_interleave, _E.W, True)

    # --- reductions ----------------------------------------------------------------------------------------------

    def psumb(self, dst, a):
        return self._med_op("psumb", dst, (a,), int(packed.horizontal_sum(a.value, _E.B)))

    def psumh(self, dst, a):
        return self._med_op("psumh", dst, (a,), int(packed.horizontal_sum(a.value, _E.H)))

    def psumw(self, dst, a):
        return self._med_op("psumw", dst, (a,), int(packed.horizontal_sum(a.value, _E.W)))
