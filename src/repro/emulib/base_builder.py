"""Builder infrastructure: functional execution plus trace capture.

The paper hand-rewrites the hot functions of each benchmark as "stylized
subroutine calls to our emulation libraries", then feeds the resulting
instruction stream (captured with ATOM) into the Jinks timing simulator.
Builders are our equivalent: a kernel is a Python function that manipulates
*register handles* through an assembly-like API.  Every call

* computes the architecturally-correct result (so outputs can be validated
  against numpy golden references), and
* appends one :class:`~repro.emulib.trace.DynInstr` to the trace, carrying
  the register dependences, memory addresses and branch outcome the
  out-of-order timing model needs.

:class:`BaseBuilder` implements the scalar Alpha baseline -- the ISA every
media extension sits on -- including register allocation, 64-bit arithmetic,
memory access and branches whose outcome is derived from the actual register
value (exactly what an instrumented binary would produce).
"""

from __future__ import annotations

import numpy as np

from ..isa.alpha import ALPHA
from ..isa.model import Opcode, RegPool
from .memory import Memory
from .trace import DynInstr, Trace, reg

_U64 = (1 << 64) - 1


def wrap64(value: int) -> int:
    """Truncate to 64 bits and reinterpret as signed two's complement."""
    value &= _U64
    if value >= 1 << 63:
        value -= 1 << 64
    return value


class RegHandle:
    """A named architectural register with its current functional value.

    Kernels allocate a handle per live variable, mirroring how hand-written
    assembly assigns logical registers; reusing a handle across loop
    iterations produces the WAW/WAR pressure that register renaming is there
    to remove.
    """

    __slots__ = ("pool", "index", "encoded", "value", "builder")

    def __init__(self, pool: RegPool, index: int, value, builder) -> None:
        self.pool = pool
        self.index = index
        self.encoded = reg(pool, index)
        self.value = value
        self.builder = builder

    def __repr__(self) -> str:
        return f"{self.pool.name.lower()}{self.index}"


class RegisterAllocator:
    """Hands out logical register indices for one pool.

    Raises when the pool is exhausted: a kernel that runs out of logical
    registers must be restructured (spill or reuse), just like real code.
    """

    def __init__(self, pool: RegPool, limit: int) -> None:
        self.pool = pool
        self.limit = limit
        self._next = 0
        self._free: list[int] = []

    def take(self) -> int:
        if self._free:
            return self._free.pop()
        if self._next >= self.limit:
            raise RuntimeError(
                f"out of logical {self.pool.name} registers (limit {self.limit})"
            )
        index = self._next
        self._next += 1
        return index

    def release(self, index: int) -> None:
        self._free.append(index)

    @property
    def in_use(self) -> int:
        return self._next - len(self._free)


class BaseBuilder:
    """Scalar Alpha-like builder; media builders extend it.

    Args:
        mem: backing functional memory.
        int_registers: logical integer registers available to kernels.
    """

    #: ISA name recorded in the produced trace.
    isa_name = "alpha"

    def __init__(self, mem: Memory | None = None, int_registers: int = 30) -> None:
        self.mem = mem if mem is not None else Memory()
        self.trace = Trace(self.isa_name)
        self.int_alloc = RegisterAllocator(RegPool.INT, int_registers)
        self._next_site = 1
        #: encoded registers created with a meaningful initial value and no
        #: defining instruction (the verifier treats them as live-in).
        self.preinit: set[int] = set()
        #: encoded registers whose values escape to the functional outputs
        #: between instructions (e.g. per-instance reduction scalars read
        #: back via ``.value``); dead-write analysis treats every write to
        #: them as observable.
        self.live_out: set[int] = set()

    # --- register & site management ------------------------------------------

    def ireg(self, value: int | None = None) -> RegHandle:
        """Allocate an integer register holding ``value``.

        Passing an explicit value marks the register *pre-initialized*: it
        carries meaning before any defining instruction, so dataflow
        analysis must treat it as live-in rather than undefined.
        """
        handle = RegHandle(
            RegPool.INT, self.int_alloc.take(), wrap64(value or 0), self
        )
        if value is not None:
            self.preinit.add(handle.encoded)
        return handle

    def mark_live_out(self, *handles: RegHandle) -> None:
        """Declare registers that are live beyond the visible dataflow.

        Kernels hand results to the host between instructions (appending
        ``reg.value`` per instance), and some materialize values a shared
        preamble provides but this lowering does not consume; both look
        dead to a stream analysis.  Marking the register keeps the
        dataflow verifier honest without emitting artificial
        instructions.
        """
        for handle in handles:
            self.live_out.add(handle.encoded)

    def free(self, handle: RegHandle) -> None:
        """Return a register to its pool (optional; for long kernels)."""
        if handle.pool == RegPool.INT:
            self.int_alloc.release(handle.index)
        else:
            raise ValueError(f"cannot free {handle!r} from the base builder")

    def site(self) -> int:
        """Allocate a static instruction identity (synthetic PC).

        One per static branch in the kernel source; every dynamic instance
        of that branch shares the site so the bimodal predictor and BTB can
        learn its behaviour.
        """
        pc = self._next_site
        self._next_site += 1
        return pc

    # --- emit helpers ----------------------------------------------------------

    def _emit(self, op: Opcode, srcs=(), dsts=(), **kw) -> DynInstr:
        instr = DynInstr(
            op,
            srcs=tuple(s.encoded for s in srcs),
            dsts=tuple(d.encoded for d in dsts),
            **kw,
        )
        return self.trace.append(instr)

    def _alu(self, name: str, dst: RegHandle, srcs, value: int) -> RegHandle:
        dst.value = wrap64(value)
        self._emit(ALPHA[name], srcs=srcs, dsts=(dst,))
        return dst

    # --- constants & moves --------------------------------------------------------

    def li(self, dst: RegHandle, imm: int) -> RegHandle:
        """Load immediate (``lda rd, imm(zero)``)."""
        return self._alu("lda", dst, (), imm)

    def mov(self, dst: RegHandle, src: RegHandle) -> RegHandle:
        """Register move (``bis rd, rs, rs``)."""
        return self._alu("bis", dst, (src,), src.value)

    # --- integer arithmetic ----------------------------------------------------------

    def addq(self, dst, a, b) -> RegHandle:
        return self._alu("addq", dst, (a, b), a.value + b.value)

    def addi(self, dst, a, imm: int) -> RegHandle:
        """Add immediate (``lda rd, imm(ra)``)."""
        return self._alu("lda", dst, (a,), a.value + imm)

    def subq(self, dst, a, b) -> RegHandle:
        return self._alu("subq", dst, (a, b), a.value - b.value)

    def subi(self, dst, a, imm: int) -> RegHandle:
        return self._alu("lda", dst, (a,), a.value - imm)

    def addl(self, dst, a, b) -> RegHandle:
        return self._alu("addl", dst, (a, b), _sext32(a.value + b.value))

    def subl(self, dst, a, b) -> RegHandle:
        return self._alu("subl", dst, (a, b), _sext32(a.value - b.value))

    def s4addq(self, dst, a, b) -> RegHandle:
        return self._alu("s4addq", dst, (a, b), a.value * 4 + b.value)

    def s8addq(self, dst, a, b) -> RegHandle:
        return self._alu("s8addq", dst, (a, b), a.value * 8 + b.value)

    def mulq(self, dst, a, b) -> RegHandle:
        return self._alu("mulq", dst, (a, b), a.value * b.value)

    def mull(self, dst, a, b) -> RegHandle:
        return self._alu("mull", dst, (a, b), _sext32(a.value * b.value))

    def muli(self, dst, a, imm: int) -> RegHandle:
        """Multiply by immediate (assembler idiom on top of ``mulq``)."""
        return self._alu("mulq", dst, (a,), a.value * imm)

    # --- logicals ----------------------------------------------------------------------

    def and_(self, dst, a, b) -> RegHandle:
        return self._alu("and_", dst, (a, b), (a.value & _U64) & (b.value & _U64))

    def andi(self, dst, a, imm: int) -> RegHandle:
        return self._alu("and_", dst, (a,), (a.value & _U64) & (imm & _U64))

    def bis(self, dst, a, b) -> RegHandle:
        return self._alu("bis", dst, (a, b), (a.value & _U64) | (b.value & _U64))

    def xor(self, dst, a, b) -> RegHandle:
        return self._alu("xor", dst, (a, b), (a.value & _U64) ^ (b.value & _U64))

    def sll(self, dst, a, count: int) -> RegHandle:
        return self._alu("sll", dst, (a,), (a.value & _U64) << (count & 63))

    def srl(self, dst, a, count: int) -> RegHandle:
        return self._alu("srl", dst, (a,), (a.value & _U64) >> (count & 63))

    def sra(self, dst, a, count: int) -> RegHandle:
        return self._alu("sra", dst, (a,), wrap64(a.value) >> (count & 63))

    # --- compares & conditional moves -----------------------------------------------------

    def cmpeq(self, dst, a, b) -> RegHandle:
        return self._alu("cmpeq", dst, (a, b), int(wrap64(a.value) == wrap64(b.value)))

    def cmplt(self, dst, a, b) -> RegHandle:
        return self._alu("cmplt", dst, (a, b), int(wrap64(a.value) < wrap64(b.value)))

    def cmple(self, dst, a, b) -> RegHandle:
        return self._alu("cmple", dst, (a, b), int(wrap64(a.value) <= wrap64(b.value)))

    def cmplti(self, dst, a, imm: int) -> RegHandle:
        return self._alu("cmplt", dst, (a,), int(wrap64(a.value) < imm))

    def cmpult(self, dst, a, b) -> RegHandle:
        return self._alu(
            "cmpult", dst, (a, b), int((a.value & _U64) < (b.value & _U64))
        )

    def cmovne(self, dst, cond, src) -> RegHandle:
        """``if cond != 0: dst <- src`` -- note dst is also a source."""
        value = src.value if wrap64(cond.value) != 0 else dst.value
        return self._alu("cmovne", dst, (cond, src, dst), value)

    def cmoveq(self, dst, cond, src) -> RegHandle:
        value = src.value if wrap64(cond.value) == 0 else dst.value
        return self._alu("cmoveq", dst, (cond, src, dst), value)

    def cmovlt(self, dst, cond, src) -> RegHandle:
        value = src.value if wrap64(cond.value) < 0 else dst.value
        return self._alu("cmovlt", dst, (cond, src, dst), value)

    def cmovge(self, dst, cond, src) -> RegHandle:
        value = src.value if wrap64(cond.value) >= 0 else dst.value
        return self._alu("cmovge", dst, (cond, src, dst), value)

    # --- byte manipulation -------------------------------------------------------------------

    def sextb(self, dst, a) -> RegHandle:
        v = a.value & 0xFF
        return self._alu("sextb", dst, (a,), v - 0x100 if v & 0x80 else v)

    def sextw(self, dst, a) -> RegHandle:
        v = a.value & 0xFFFF
        return self._alu("sextw", dst, (a,), v - 0x1_0000 if v & 0x8000 else v)

    def zapnot(self, dst, a, byte_mask: int) -> RegHandle:
        keep = 0
        for i in range(8):
            if byte_mask & (1 << i):
                keep |= 0xFF << (8 * i)
        return self._alu("zapnot", dst, (a,), (a.value & _U64) & keep)

    def extbl(self, dst, a, byte_index: int) -> RegHandle:
        return self._alu("extbl", dst, (a,), ((a.value & _U64) >> (8 * byte_index)) & 0xFF)

    # --- memory ------------------------------------------------------------------------

    def _load(self, name: str, dst, base, offset: int, nbytes: int,
              signed: bool) -> RegHandle:
        addr = (base.value + offset) & _U64
        dst.value = wrap64(self.mem.read(addr, nbytes, signed=signed))
        self._emit(ALPHA[name], srcs=(base,), dsts=(dst,), addr=addr, nbytes=nbytes)
        return dst

    def _store(self, name: str, src, base, offset: int, nbytes: int) -> None:
        addr = (base.value + offset) & _U64
        self.mem.write(addr, src.value, nbytes)
        self._emit(ALPHA[name], srcs=(src, base), dsts=(), addr=addr, nbytes=nbytes)

    def ldq(self, dst, base, offset: int = 0) -> RegHandle:
        return self._load("ldq", dst, base, offset, 8, signed=True)

    def ldl(self, dst, base, offset: int = 0) -> RegHandle:
        return self._load("ldl", dst, base, offset, 4, signed=True)

    def ldwu(self, dst, base, offset: int = 0) -> RegHandle:
        return self._load("ldwu", dst, base, offset, 2, signed=False)

    def ldbu(self, dst, base, offset: int = 0) -> RegHandle:
        return self._load("ldbu", dst, base, offset, 1, signed=False)

    def stq(self, src, base, offset: int = 0) -> None:
        self._store("stq", src, base, offset, 8)

    def stl(self, src, base, offset: int = 0) -> None:
        self._store("stl", src, base, offset, 4)

    def stw(self, src, base, offset: int = 0) -> None:
        self._store("stw", src, base, offset, 2)

    def stb(self, src, base, offset: int = 0) -> None:
        self._store("stb", src, base, offset, 1)

    # --- control flow -----------------------------------------------------------------------

    def _branch(self, name: str, cond, taken: bool, site: int) -> bool:
        self._emit(ALPHA[name], srcs=(cond,), taken=taken, site=site)
        return taken

    def bne(self, cond, site: int) -> bool:
        """Branch if ``cond != 0``; returns the outcome."""
        return self._branch("bne", cond, wrap64(cond.value) != 0, site)

    def beq(self, cond, site: int) -> bool:
        return self._branch("beq", cond, wrap64(cond.value) == 0, site)

    def blt(self, cond, site: int) -> bool:
        return self._branch("blt", cond, wrap64(cond.value) < 0, site)

    def bgt(self, cond, site: int) -> bool:
        return self._branch("bgt", cond, wrap64(cond.value) > 0, site)

    def bge(self, cond, site: int) -> bool:
        return self._branch("bge", cond, wrap64(cond.value) >= 0, site)

    def br(self, site: int) -> None:
        """Unconditional branch (always taken)."""
        self._emit(ALPHA["br"], taken=True, site=site)

    def jsr(self, site: int) -> None:
        self._emit(ALPHA["jsr"], taken=True, site=site)

    def ret(self, site: int) -> None:
        self._emit(ALPHA["ret"], taken=True, site=site)

    def nop(self) -> None:
        self._emit(ALPHA["nop"])

    # --- structured helpers ---------------------------------------------------------------

    def counted_loop(self, count: int):
        """Iterate a counted loop emitting realistic bookkeeping.

        Yields the iteration index; after each body the builder emits the
        decrement-and-branch pair a compiler would generate.  Usage::

            for i in b.counted_loop(16):
                ...body...
        """
        if count <= 0:
            return
        counter = self.ireg(count)
        back_edge = self.site()
        for i in range(count):
            yield i
            self.subi(counter, counter, 1)
            self.bne(counter, back_edge)
        self.free(counter)


def _sext32(value: int) -> int:
    value &= 0xFFFF_FFFF
    if value >= 1 << 31:
        value -= 1 << 32
    return value


def make_table_lookup(builder: BaseBuilder, table: np.ndarray) -> int:
    """Place a lookup table in memory and return its base address.

    Several scalar kernels (notably ``addblock``) use memory tables for
    saturation -- the very pattern the media ISAs replace with saturating
    arithmetic.
    """
    return builder.mem.alloc_array(np.ascontiguousarray(table))
