"""ISA tables and register-file modelling shared by all simulated ISAs."""

from .model import ElemType, InstrClass, IsaTable, Opcode, RegPool, RegisterFileSpec
from .alpha import ALPHA
from .mmx import MMX
from .mdmx import MDMX

__all__ = [
    "ElemType", "InstrClass", "IsaTable", "Opcode", "RegPool",
    "RegisterFileSpec", "ALPHA", "MMX", "MDMX",
]
