"""Common ISA modelling infrastructure shared by all four simulated ISAs.

The reproduction models four instruction sets on top of a common framework:

* ``alpha`` -- the scalar baseline (the paper adds every media extension on
  top of the Alpha ISA, *not* x86/MIPS),
* ``mmx``   -- an MMX-like sub-word SIMD extension (67 opcodes),
* ``mdmx``  -- an MDMX-like extension with packed accumulators (88 opcodes),
* ``mom``   -- the paper's matrix-oriented extension (121 opcodes).

Every opcode is described by an :class:`Opcode` record carrying the
information the timing model needs: which functional-unit class executes it
(:class:`InstrClass`), its execution latency, and which register pools its
operands live in (:class:`RegPool`).  The emulation libraries in
:mod:`repro.emulib` attach functional semantics to these opcodes; this module
is purely declarative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class InstrClass(enum.IntEnum):
    """Functional-unit class of an instruction.

    The out-of-order core maps each class onto a pool of functional units
    (Table 1 of the paper): *simple* integer/FP/media units handle logic,
    shifts and adds, while *complex* units additionally handle multiplies
    and divides.  Memory classes occupy a memory port instead of an ALU.
    """

    INT_SIMPLE = 0      #: integer add / logical / shift / compare
    INT_COMPLEX = 1     #: integer multiply / divide
    FP_SIMPLE = 2       #: FP add / compare / convert
    FP_COMPLEX = 3      #: FP multiply / divide / sqrt
    MED_SIMPLE = 4      #: packed add / logical / shift / min / max
    MED_COMPLEX = 5     #: packed multiply, multiply-accumulate, matrix ops
    LOAD = 6            #: scalar load (INT or FP destination)
    STORE = 7           #: scalar store
    MED_LOAD = 8        #: media / matrix load (MOM: up to VL words)
    MED_STORE = 9       #: media / matrix store
    BRANCH = 10         #: conditional branch
    JUMP = 11           #: unconditional jump / call / return
    NOP = 12            #: no-operation (padding)

    @property
    def is_memory(self) -> bool:
        return self in _MEMORY_CLASSES

    @property
    def is_load(self) -> bool:
        return self in (InstrClass.LOAD, InstrClass.MED_LOAD)

    @property
    def is_store(self) -> bool:
        return self in (InstrClass.STORE, InstrClass.MED_STORE)

    @property
    def is_media(self) -> bool:
        return self in _MEDIA_CLASSES

    @property
    def is_control(self) -> bool:
        return self in (InstrClass.BRANCH, InstrClass.JUMP)


_MEMORY_CLASSES = frozenset(
    {InstrClass.LOAD, InstrClass.STORE, InstrClass.MED_LOAD, InstrClass.MED_STORE}
)
_MEDIA_CLASSES = frozenset(
    {
        InstrClass.MED_SIMPLE,
        InstrClass.MED_COMPLEX,
        InstrClass.MED_LOAD,
        InstrClass.MED_STORE,
    }
)


class RegPool(enum.IntEnum):
    """Architectural register pools.

    The modeled machine renames four independent pools (Section 3.2): the
    integer and FP pools of the base Alpha ISA, the media pool (MMX/MDMX
    64-bit registers or MOM 16x64-bit matrix registers) and the accumulator
    pool (MDMX/MOM packed accumulators).  The MOM vector-length register is
    renamed through the *integer* pool, exactly as the paper specifies.
    """

    INT = 0
    FP = 1
    MED = 2
    ACC = 3


class ElemType(enum.Enum):
    """Packed sub-word element type of a media instruction."""

    B = "b"     #: 8 x 8-bit bytes per 64-bit word
    H = "h"     #: 4 x 16-bit halfwords per 64-bit word
    W = "w"     #: 2 x 32-bit words per 64-bit word
    Q = "q"     #: 1 x 64-bit quadword
    NONE = "-"  #: not a packed operation

    @property
    def lanes(self) -> int:
        """Number of sub-word lanes in a 64-bit word."""
        return {"b": 8, "h": 4, "w": 2, "q": 1, "-": 1}[self.value]

    @property
    def bits(self) -> int:
        """Width of one sub-word element in bits."""
        return 64 // self.lanes


@dataclass(frozen=True)
class Opcode:
    """Static description of one opcode of one ISA.

    Attributes:
        name: assembler mnemonic, unique within its ISA.
        isa: owning ISA name (``alpha``, ``mmx``, ``mdmx`` or ``mom``).
        iclass: functional-unit class used by the timing model.
        latency: execution latency in cycles (memory classes use the cache
            model instead; the value here is the address-generation cost).
        elem: packed element type for media opcodes.
        category: coarse grouping used for documentation and ISA statistics
            (e.g. ``"arith"``, ``"memory"``, ``"reduction"``).
        description: one-line human-readable semantics.
        writes_acc: ``True`` when the destination is an accumulator.
        reads_acc: ``True`` when an accumulator is a source operand.
    """

    name: str
    isa: str
    iclass: InstrClass
    latency: int = 1
    elem: ElemType = ElemType.NONE
    category: str = "arith"
    description: str = ""
    writes_acc: bool = False
    reads_acc: bool = False

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"negative latency for opcode {self.name!r}")
        if not self.name:
            raise ValueError("opcode name must be non-empty")


@dataclass
class IsaTable:
    """A named collection of opcodes forming one ISA (or ISA extension).

    Provides dictionary-style lookup by mnemonic and enforces mnemonic
    uniqueness.  The three media extensions of the paper have a fixed,
    documented opcode count (67 / 88 / 121) which the test suite pins down.
    """

    name: str
    opcodes: dict[str, Opcode] = field(default_factory=dict)

    def add(self, opcode: Opcode) -> Opcode:
        if opcode.name in self.opcodes:
            raise ValueError(f"duplicate opcode {opcode.name!r} in ISA {self.name!r}")
        if opcode.isa != self.name:
            raise ValueError(
                f"opcode {opcode.name!r} declares ISA {opcode.isa!r}, "
                f"table is {self.name!r}"
            )
        self.opcodes[opcode.name] = opcode
        return opcode

    def __getitem__(self, name: str) -> Opcode:
        return self.opcodes[name]

    def __contains__(self, name: str) -> bool:
        return name in self.opcodes

    def __len__(self) -> int:
        return len(self.opcodes)

    def __iter__(self):
        return iter(self.opcodes.values())

    def by_category(self, category: str) -> list[Opcode]:
        """All opcodes in a documentation category, in insertion order."""
        return [op for op in self.opcodes.values() if op.category == category]

    def categories(self) -> dict[str, int]:
        """Histogram of opcode counts per category."""
        hist: dict[str, int] = {}
        for op in self.opcodes.values():
            hist[op.category] = hist.get(op.category, 0) + 1
        return hist


@dataclass(frozen=True)
class RegisterFileSpec:
    """Physical organization of one register file (Table 2 of the paper).

    Attributes:
        pool: which architectural pool this file backs.
        logical: number of logical (architectural) registers.
        physical: number of physical registers after renaming.
        width_bits: width of one physical register in bits.  A MOM matrix
            register is 16 x 64 = 1024 bits; an accumulator is 192 bits
            (three 64-bit words, giving e.g. 4 x 48-bit guarded lanes).
        read_ports: number of read ports (per bank when ``banks > 1``).
        write_ports: number of write ports (per bank when ``banks > 1``).
        banks: interleaved banks (MOM exploits per-row interleaving, which
            is why a 5x larger file costs *less* area than MMX's).
    """

    pool: RegPool
    logical: int
    physical: int
    width_bits: int
    read_ports: int
    write_ports: int
    banks: int = 1

    def __post_init__(self) -> None:
        if self.physical < self.logical:
            raise ValueError(
                f"physical registers ({self.physical}) fewer than logical "
                f"({self.logical}) for pool {self.pool.name}"
            )
        if min(self.logical, self.width_bits, self.read_ports) <= 0:
            raise ValueError("register file dimensions must be positive")

    @property
    def size_bits(self) -> int:
        """Total storage of the physical file in bits."""
        return self.physical * self.width_bits

    @property
    def size_kbytes(self) -> float:
        """Total storage in kilobytes (the 'Register File Size' row)."""
        return self.size_bits / 8 / 1024


# Widely used element-type iteration orders.
BYTE_HALF = (ElemType.B, ElemType.H)
BYTE_HALF_WORD = (ElemType.B, ElemType.H, ElemType.W)
HALF_WORD = (ElemType.H, ElemType.W)
