"""Register-file size and area model (Table 2).

The paper sizes each extension's media register file and estimates its area
with the model of Lopez, Llosa, Valero & Ayguade ("Resource widening versus
replication", ICS'98): the area of a multiported SRAM cell grows
quadratically with its port count, because each port adds one wordline and
one bitline pair:

    cell_area ~ (1 + ports)^2,    ports = read_ports + write_ports

A banked file pays its ports *per bank* on a fraction of the bits, plus a
small interconnect overhead for the bank multiplexing (calibrated at 5%,
which reproduces the paper's normalized 0.87 for MOM).  The punchline of
Table 2: MOM's matrix file stores **5x more bits** than the MMX file yet
costs *less* area, because interleaving the rows of every matrix register
across banks needs only 2R/1W ports per bank instead of the 6R/3W a flat
64-bit file requires.

Expected normalized areas (paper): MMX 1.00, MDMX 1.19, MOM 0.87.
Expected sizes: 0.5 KB, 0.78 KB, 2.6 KB.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.model import RegisterFileSpec

#: Interconnect overhead applied to banked register files (bank decoders
#: and the inter-bank result network), calibrated to the paper's Table 2.
BANKING_OVERHEAD = 0.05


def cell_area_units(read_ports: int, write_ports: int) -> float:
    """Relative area of one bit cell with the given port count."""
    ports = read_ports + write_ports
    if ports < 1:
        raise ValueError("a register file needs at least one port")
    return float((1 + ports) ** 2)


def file_area_units(spec: RegisterFileSpec) -> float:
    """Relative area of one physical register file."""
    bits = spec.size_bits
    area = bits * cell_area_units(spec.read_ports, spec.write_ports)
    if spec.banks > 1:
        area *= 1.0 + BANKING_OVERHEAD
    return area


@dataclass(frozen=True)
class RegfileReport:
    """One row of Table 2."""

    isa: str
    size_kbytes: float
    area_units: float

    def normalized(self, baseline_area: float) -> float:
        return self.area_units / baseline_area


def table2_report(register_file_specs) -> dict[str, RegfileReport]:
    """Compute Table 2 for the media ISAs.

    Args:
        register_file_specs: callable ``isa -> list[RegisterFileSpec]``
            (normally :func:`repro.cpu.config.register_file_specs`).

    Returns:
        Mapping ISA name to its report; normalize against ``mmx``.
    """
    reports = {}
    for isa in ("mmx", "mdmx", "mom"):
        specs = register_file_specs(isa)
        size = sum(spec.size_kbytes for spec in specs)
        area = sum(file_area_units(spec) for spec in specs)
        reports[isa] = RegfileReport(isa=isa, size_kbytes=size, area_units=area)
    return reports
