"""MDMX-like multimedia extension (88 opcodes).

Models the paper's *MDMX emulation library* (Section 3.1): the MIPS digital
media extension with **packed accumulators**, 32 logical media registers and
4 logical accumulators.  Like the paper, we model "most of the features of
MDMX but the sub-word selector field".

The distinguishing feature versus MMX is the 192-bit packed accumulator: a
multiply-accumulate instruction multiplies packed lanes of two registers and
adds the full-precision products into 24-bit (byte lanes) or 48-bit (halfword
lanes) accumulator lanes, avoiding the pack/unpack data-promotion overhead
MMX needs for reductions.  The cost -- which Section 2.1 of the paper dwells
on -- is that every accumulator instruction *reads* the accumulator it
writes, creating a loop recurrence the out-of-order core cannot hide for
long-latency operations.  MOM inherits these accumulators but amortizes the
recurrence across the rows of a matrix register.

The table is built from the packed-arithmetic subset shared with the MMX
library (63 opcodes -- everything except the scalar-reduction group) plus 25
accumulator opcodes, for the paper's total of 88.
"""

from __future__ import annotations

import dataclasses

from .mmx import MED_MUL_LATENCY, MMX
from .model import ElemType, InstrClass, IsaTable, Opcode

MDMX = IsaTable("mdmx")

#: MMX opcodes not carried over: MDMX performs reductions through its
#: accumulators instead of horizontal-sum instructions.
_NOT_SHARED = {"psadb", "psumb", "psumh", "psumw"}

#: Renames applied to the shared subset (memory opcodes carry the ISA name).
_RENAMES = {"mmx_ldq": "mdmx_ldq", "mmx_stq": "mdmx_stq", "mmx_ldq_u": "mdmx_ldq_u"}

for _shared in MMX:
    if _shared.name in _NOT_SHARED:
        continue
    MDMX.add(
        dataclasses.replace(
            _shared, isa="mdmx", name=_RENAMES.get(_shared.name, _shared.name)
        )
    )


def _acc(
    name: str,
    iclass: InstrClass,
    elem: ElemType,
    latency: int,
    category: str,
    description: str,
    reads_acc: bool = True,
    writes_acc: bool = True,
) -> Opcode:
    return MDMX.add(
        Opcode(
            name=name,
            isa="mdmx",
            iclass=iclass,
            latency=latency,
            elem=elem,
            category=category,
            description=description,
            reads_acc=reads_acc,
            writes_acc=writes_acc,
        )
    )


_E = ElemType
_MUL = MED_MUL_LATENCY

# --- multiply-accumulate (5) -------------------------------------------------
_acc("pmaddab", InstrClass.MED_COMPLEX, _E.B, _MUL, "accumulate",
     "acc += a * b per byte lane (24-bit accumulator lanes)")
_acc("pmaddah", InstrClass.MED_COMPLEX, _E.H, _MUL, "accumulate",
     "acc += a * b per halfword lane (48-bit accumulator lanes)")
_acc("pmaddauh", InstrClass.MED_COMPLEX, _E.H, _MUL, "accumulate",
     "acc += a * b per halfword lane, unsigned operands")
_acc("pmsubab", InstrClass.MED_COMPLEX, _E.B, _MUL, "accumulate",
     "acc -= a * b per byte lane")
_acc("pmsubah", InstrClass.MED_COMPLEX, _E.H, _MUL, "accumulate",
     "acc -= a * b per halfword lane")

# --- add / subtract accumulate (6) ---------------------------------------------
_acc("paccaddb", InstrClass.MED_SIMPLE, _E.B, 1, "accumulate",
     "acc += a + b per byte lane")
_acc("paccaddh", InstrClass.MED_SIMPLE, _E.H, 1, "accumulate",
     "acc += a + b per halfword lane")
_acc("paccaddw", InstrClass.MED_SIMPLE, _E.W, 1, "accumulate",
     "acc += a + b per word lane")
_acc("paccsubb", InstrClass.MED_SIMPLE, _E.B, 1, "accumulate",
     "acc += a - b per byte lane")
_acc("paccsubh", InstrClass.MED_SIMPLE, _E.H, 1, "accumulate",
     "acc += a - b per halfword lane")
_acc("paccsubw", InstrClass.MED_SIMPLE, _E.W, 1, "accumulate",
     "acc += a - b per word lane")

# --- difference accumulate (4): the motion-estimation workhorses ----------------
_acc("paccsadb", InstrClass.MED_COMPLEX, _E.B, _MUL, "accumulate",
     "acc += |a - b| per byte lane (sum of absolute differences)")
_acc("paccsadh", InstrClass.MED_COMPLEX, _E.H, _MUL, "accumulate",
     "acc += |a - b| per halfword lane")
_acc("paccsqdb", InstrClass.MED_COMPLEX, _E.B, _MUL, "accumulate",
     "acc += (a - b)^2 per byte lane (sum of quadratic differences)")
_acc("paccsqdh", InstrClass.MED_COMPLEX, _E.H, _MUL, "accumulate",
     "acc += (a - b)^2 per halfword lane")

# --- accumulator read-out (7): truncate / round / clip into a media register ----
_acc("racl", InstrClass.MED_SIMPLE, _E.Q, 1, "acc_io",
     "read accumulator low 64-bit third", writes_acc=False)
_acc("racm", InstrClass.MED_SIMPLE, _E.Q, 1, "acc_io",
     "read accumulator middle 64-bit third", writes_acc=False)
_acc("rach", InstrClass.MED_SIMPLE, _E.Q, 1, "acc_io",
     "read accumulator high 64-bit third", writes_acc=False)
_acc("raccsb", InstrClass.MED_SIMPLE, _E.B, 1, "acc_io",
     "round accumulator lanes, clip to signed bytes", writes_acc=False)
_acc("raccub", InstrClass.MED_SIMPLE, _E.B, 1, "acc_io",
     "round accumulator lanes, clip to unsigned bytes", writes_acc=False)
_acc("raccsh", InstrClass.MED_SIMPLE, _E.H, 1, "acc_io",
     "round accumulator lanes, clip to signed halves", writes_acc=False)
_acc("raccuh", InstrClass.MED_SIMPLE, _E.H, 1, "acc_io",
     "round accumulator lanes, clip to unsigned halves", writes_acc=False)

# --- accumulator restore / clear (3) -----------------------------------------------
_acc("wacl", InstrClass.MED_SIMPLE, _E.Q, 1, "acc_io",
     "write accumulator low+middle thirds from a media register",
     reads_acc=True, writes_acc=True)
_acc("wach", InstrClass.MED_SIMPLE, _E.Q, 1, "acc_io",
     "write accumulator high third from a media register",
     reads_acc=True, writes_acc=True)
_acc("clracc", InstrClass.MED_SIMPLE, _E.Q, 1, "acc_io",
     "clear accumulator to zero", reads_acc=False, writes_acc=True)

#: The paper reports exactly 88 instructions in its MDMX emulation library.
EXPECTED_OPCODE_COUNT = 88

assert len(MDMX) == EXPECTED_OPCODE_COUNT, f"MDMX table has {len(MDMX)} opcodes"
