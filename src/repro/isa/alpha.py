"""Scalar baseline ISA (Alpha-like).

The paper's methodology (Section 3.1) is explicit that every media extension
is layered on top of the **Alpha** ISA -- "although we use the name MMX ...
we have added the MMX opcodes to the Alpha ISA".  This module declares the
scalar subset that the hand-written kernels and the scalar-section
synthesizer need: loads/stores of every width, integer arithmetic, logicals,
shifts, compares, conditional moves, byte-manipulation and control flow, plus
a small FP group.

Latencies follow a late-1990s out-of-order core (MIPS R10000 / Alpha 21264
ballpark): single-cycle simple integer ops, pipelined multi-cycle multiplies
and long non-pipelined divides.
"""

from __future__ import annotations

from .model import ElemType, InstrClass, IsaTable, Opcode

#: Execution latencies (cycles) for the scalar core.
INT_MUL_LATENCY = 6
INT_DIV_LATENCY = 30
FP_ADD_LATENCY = 4
FP_MUL_LATENCY = 4
FP_DIV_LATENCY = 16

ALPHA = IsaTable("alpha")


def _op(
    name: str,
    iclass: InstrClass,
    latency: int = 1,
    category: str = "arith",
    description: str = "",
) -> Opcode:
    return ALPHA.add(
        Opcode(
            name=name,
            isa="alpha",
            iclass=iclass,
            latency=latency,
            elem=ElemType.NONE,
            category=category,
            description=description,
        )
    )


# --- memory -----------------------------------------------------------------
_op("ldq", InstrClass.LOAD, 1, "memory", "load 64-bit quadword")
_op("ldl", InstrClass.LOAD, 1, "memory", "load 32-bit longword, sign-extend")
_op("ldwu", InstrClass.LOAD, 1, "memory", "load 16-bit word, zero-extend")
_op("ldbu", InstrClass.LOAD, 1, "memory", "load 8-bit byte, zero-extend")
_op("ldq_u", InstrClass.LOAD, 1, "memory", "load unaligned quadword")
_op("ldt", InstrClass.LOAD, 1, "memory", "load FP double")
_op("lds", InstrClass.LOAD, 1, "memory", "load FP single")
_op("stq", InstrClass.STORE, 1, "memory", "store 64-bit quadword")
_op("stl", InstrClass.STORE, 1, "memory", "store 32-bit longword")
_op("stw", InstrClass.STORE, 1, "memory", "store 16-bit word")
_op("stb", InstrClass.STORE, 1, "memory", "store 8-bit byte")
_op("stt", InstrClass.STORE, 1, "memory", "store FP double")

# --- integer arithmetic ------------------------------------------------------
_op("lda", InstrClass.INT_SIMPLE, 1, "arith", "load address (add immediate)")
_op("addq", InstrClass.INT_SIMPLE, 1, "arith", "64-bit add")
_op("subq", InstrClass.INT_SIMPLE, 1, "arith", "64-bit subtract")
_op("addl", InstrClass.INT_SIMPLE, 1, "arith", "32-bit add, sign-extend")
_op("subl", InstrClass.INT_SIMPLE, 1, "arith", "32-bit subtract, sign-extend")
_op("s4addq", InstrClass.INT_SIMPLE, 1, "arith", "scaled add: ra*4 + rb")
_op("s8addq", InstrClass.INT_SIMPLE, 1, "arith", "scaled add: ra*8 + rb")
_op("mulq", InstrClass.INT_COMPLEX, INT_MUL_LATENCY, "arith", "64-bit multiply")
_op("mull", InstrClass.INT_COMPLEX, INT_MUL_LATENCY, "arith", "32-bit multiply")
_op("umulh", InstrClass.INT_COMPLEX, INT_MUL_LATENCY, "arith", "unsigned mul high")
_op("divq", InstrClass.INT_COMPLEX, INT_DIV_LATENCY, "arith", "64-bit divide")

# --- logicals / shifts -------------------------------------------------------
_op("and_", InstrClass.INT_SIMPLE, 1, "logical", "bitwise and")
_op("bis", InstrClass.INT_SIMPLE, 1, "logical", "bitwise or (also used as mov)")
_op("xor", InstrClass.INT_SIMPLE, 1, "logical", "bitwise xor")
_op("bic", InstrClass.INT_SIMPLE, 1, "logical", "and-not")
_op("ornot", InstrClass.INT_SIMPLE, 1, "logical", "or-not")
_op("eqv", InstrClass.INT_SIMPLE, 1, "logical", "xor-not")
_op("sll", InstrClass.INT_SIMPLE, 1, "logical", "shift left logical")
_op("srl", InstrClass.INT_SIMPLE, 1, "logical", "shift right logical")
_op("sra", InstrClass.INT_SIMPLE, 1, "logical", "shift right arithmetic")

# --- compares / conditional moves -------------------------------------------
_op("cmpeq", InstrClass.INT_SIMPLE, 1, "compare", "compare equal")
_op("cmplt", InstrClass.INT_SIMPLE, 1, "compare", "compare signed less-than")
_op("cmple", InstrClass.INT_SIMPLE, 1, "compare", "compare signed less-equal")
_op("cmpult", InstrClass.INT_SIMPLE, 1, "compare", "compare unsigned less-than")
_op("cmpule", InstrClass.INT_SIMPLE, 1, "compare", "compare unsigned less-equal")
_op("cmovne", InstrClass.INT_SIMPLE, 1, "compare", "move if non-zero")
_op("cmoveq", InstrClass.INT_SIMPLE, 1, "compare", "move if zero")
_op("cmovlt", InstrClass.INT_SIMPLE, 1, "compare", "move if negative")
_op("cmovge", InstrClass.INT_SIMPLE, 1, "compare", "move if non-negative")

# --- byte manipulation (Alpha's sub-word toolbox) ----------------------------
_op("extbl", InstrClass.INT_SIMPLE, 1, "byte", "extract byte low")
_op("extwl", InstrClass.INT_SIMPLE, 1, "byte", "extract word low")
_op("insbl", InstrClass.INT_SIMPLE, 1, "byte", "insert byte low")
_op("mskbl", InstrClass.INT_SIMPLE, 1, "byte", "mask byte low")
_op("zap", InstrClass.INT_SIMPLE, 1, "byte", "zero selected bytes")
_op("zapnot", InstrClass.INT_SIMPLE, 1, "byte", "zero unselected bytes")
_op("sextb", InstrClass.INT_SIMPLE, 1, "byte", "sign-extend byte")
_op("sextw", InstrClass.INT_SIMPLE, 1, "byte", "sign-extend word")

# --- floating point -----------------------------------------------------------
_op("addt", InstrClass.FP_SIMPLE, FP_ADD_LATENCY, "fp", "FP add double")
_op("subt", InstrClass.FP_SIMPLE, FP_ADD_LATENCY, "fp", "FP subtract double")
_op("cmptlt", InstrClass.FP_SIMPLE, FP_ADD_LATENCY, "fp", "FP compare less-than")
_op("cvttq", InstrClass.FP_SIMPLE, FP_ADD_LATENCY, "fp", "convert double to int")
_op("cvtqt", InstrClass.FP_SIMPLE, FP_ADD_LATENCY, "fp", "convert int to double")
_op("mult", InstrClass.FP_COMPLEX, FP_MUL_LATENCY, "fp", "FP multiply double")
_op("divt", InstrClass.FP_COMPLEX, FP_DIV_LATENCY, "fp", "FP divide double")

# --- control flow -------------------------------------------------------------
_op("br", InstrClass.JUMP, 1, "control", "unconditional branch")
_op("jsr", InstrClass.JUMP, 1, "control", "jump to subroutine")
_op("ret", InstrClass.JUMP, 1, "control", "return from subroutine")
_op("beq", InstrClass.BRANCH, 1, "control", "branch if zero")
_op("bne", InstrClass.BRANCH, 1, "control", "branch if non-zero")
_op("blt", InstrClass.BRANCH, 1, "control", "branch if negative")
_op("ble", InstrClass.BRANCH, 1, "control", "branch if non-positive")
_op("bgt", InstrClass.BRANCH, 1, "control", "branch if positive")
_op("bge", InstrClass.BRANCH, 1, "control", "branch if non-negative")

_op("nop", InstrClass.NOP, 1, "control", "no operation")
