"""MMX-like multimedia extension (67 opcodes).

Models the paper's *MMX emulation library* (Section 3.1): an MMX-flavoured
sub-word SIMD extension layered on the Alpha ISA with

* an independent media register file with **32 logical registers** (the real
  MMX has 8; the paper deliberately gives every ISA the same headroom),
* **three-operand** instructions (two sources, one distinct destination),
* "enhanced reduction operations" (horizontal sums, sum-of-absolute
  differences) and extras such as vector average and conditional move.

The table below contains exactly 67 opcodes -- the number the paper reports
for its MMX library -- grouped in documented categories.  Functional
semantics live in :mod:`repro.emulib.mmx_builder`.
"""

from __future__ import annotations

from .model import ElemType, InstrClass, IsaTable, Opcode

#: Latency of packed multiply / multiply-add style media operations.
MED_MUL_LATENCY = 4

MMX = IsaTable("mmx")


def _op(
    name: str,
    iclass: InstrClass,
    elem: ElemType,
    latency: int = 1,
    category: str = "arith",
    description: str = "",
) -> Opcode:
    return MMX.add(
        Opcode(
            name=name,
            isa="mmx",
            iclass=iclass,
            latency=latency,
            elem=elem,
            category=category,
            description=description,
        )
    )


_E = ElemType

# --- memory (3) ---------------------------------------------------------------
_op("mmx_ldq", InstrClass.MED_LOAD, _E.Q, 1, "memory", "load 64-bit word to media reg")
_op("mmx_stq", InstrClass.MED_STORE, _E.Q, 1, "memory", "store media reg (64-bit)")
_op("mmx_ldq_u", InstrClass.MED_LOAD, _E.Q, 1, "memory", "unaligned 64-bit media load")

# --- data movement (4) ----------------------------------------------------------
_op("movq", InstrClass.MED_SIMPLE, _E.Q, 1, "move", "media register copy")
_op("movd_to", InstrClass.MED_SIMPLE, _E.Q, 1, "move", "integer reg -> media reg")
_op("movd_from", InstrClass.MED_SIMPLE, _E.Q, 1, "move", "media reg -> integer reg")
_op("pshufh", InstrClass.MED_SIMPLE, _E.H, 1, "move", "shuffle 16-bit halfwords")

# --- packed add (7) ------------------------------------------------------------
_op("paddb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed add, wraparound bytes")
_op("paddh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed add, wraparound halves")
_op("paddw", InstrClass.MED_SIMPLE, _E.W, 1, "arith", "packed add, wraparound words")
_op("paddsb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed add, signed saturate")
_op("paddsh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed add, signed saturate")
_op("paddusb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed add, unsigned saturate")
_op("paddush", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed add, unsigned saturate")

# --- packed subtract (7) ---------------------------------------------------------
_op("psubb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed sub, wraparound bytes")
_op("psubh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed sub, wraparound halves")
_op("psubw", InstrClass.MED_SIMPLE, _E.W, 1, "arith", "packed sub, wraparound words")
_op("psubsb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed sub, signed saturate")
_op("psubsh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed sub, signed saturate")
_op("psubusb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed sub, unsigned saturate")
_op("psubush", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed sub, unsigned saturate")

# --- packed multiply (4) ---------------------------------------------------------
_op("pmullh", InstrClass.MED_COMPLEX, _E.H, MED_MUL_LATENCY, "mul",
    "packed multiply halves, low 16 bits of product")
_op("pmulhh", InstrClass.MED_COMPLEX, _E.H, MED_MUL_LATENCY, "mul",
    "packed multiply halves, high 16 bits of signed product")
_op("pmulhuh", InstrClass.MED_COMPLEX, _E.H, MED_MUL_LATENCY, "mul",
    "packed multiply halves, high 16 bits of unsigned product")
_op("pmaddh", InstrClass.MED_COMPLEX, _E.H, MED_MUL_LATENCY, "mul",
    "multiply adjacent 16-bit pairs, add into 32-bit lanes (PMADDWD)")

# --- average / absolute difference / SAD (5) -------------------------------------
_op("pavgb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed rounded average bytes")
_op("pavgh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed rounded average halves")
_op("pabsdiffb", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed |a-b| bytes")
_op("pabsdiffh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed |a-b| halves")
_op("psadb", InstrClass.MED_COMPLEX, _E.B, MED_MUL_LATENCY, "reduction",
    "sum of absolute byte differences into 16-bit scalar result")

# --- min / max (4) ----------------------------------------------------------------
_op("pminub", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed unsigned min bytes")
_op("pmaxub", InstrClass.MED_SIMPLE, _E.B, 1, "arith", "packed unsigned max bytes")
_op("pminsh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed signed min halves")
_op("pmaxsh", InstrClass.MED_SIMPLE, _E.H, 1, "arith", "packed signed max halves")

# --- logical (4) -------------------------------------------------------------------
_op("pand", InstrClass.MED_SIMPLE, _E.Q, 1, "logical", "bitwise and")
_op("pandn", InstrClass.MED_SIMPLE, _E.Q, 1, "logical", "bitwise and-not")
_op("por", InstrClass.MED_SIMPLE, _E.Q, 1, "logical", "bitwise or")
_op("pxor", InstrClass.MED_SIMPLE, _E.Q, 1, "logical", "bitwise xor")

# --- shifts (8) --------------------------------------------------------------------
_op("psllh", InstrClass.MED_SIMPLE, _E.H, 1, "shift", "shift left logical halves")
_op("psllw", InstrClass.MED_SIMPLE, _E.W, 1, "shift", "shift left logical words")
_op("psllq", InstrClass.MED_SIMPLE, _E.Q, 1, "shift", "shift left logical quadword")
_op("psrlh", InstrClass.MED_SIMPLE, _E.H, 1, "shift", "shift right logical halves")
_op("psrlw", InstrClass.MED_SIMPLE, _E.W, 1, "shift", "shift right logical words")
_op("psrlq", InstrClass.MED_SIMPLE, _E.Q, 1, "shift", "shift right logical quadword")
_op("psrah", InstrClass.MED_SIMPLE, _E.H, 1, "shift", "shift right arithmetic halves")
_op("psraw", InstrClass.MED_SIMPLE, _E.W, 1, "shift", "shift right arithmetic words")

# --- compares (6) -------------------------------------------------------------------
_op("pcmpeqb", InstrClass.MED_SIMPLE, _E.B, 1, "compare", "lane mask: a == b, bytes")
_op("pcmpeqh", InstrClass.MED_SIMPLE, _E.H, 1, "compare", "lane mask: a == b, halves")
_op("pcmpeqw", InstrClass.MED_SIMPLE, _E.W, 1, "compare", "lane mask: a == b, words")
_op("pcmpgtb", InstrClass.MED_SIMPLE, _E.B, 1, "compare", "lane mask: a > b, bytes")
_op("pcmpgth", InstrClass.MED_SIMPLE, _E.H, 1, "compare", "lane mask: a > b, halves")
_op("pcmpgtw", InstrClass.MED_SIMPLE, _E.W, 1, "compare", "lane mask: a > b, words")

# --- pack / unpack (9) ----------------------------------------------------------------
_op("packsshb", InstrClass.MED_SIMPLE, _E.H, 1, "pack",
    "pack halves to bytes, signed saturate")
_op("packushb", InstrClass.MED_SIMPLE, _E.H, 1, "pack",
    "pack halves to bytes, unsigned saturate")
_op("packsswh", InstrClass.MED_SIMPLE, _E.W, 1, "pack",
    "pack words to halves, signed saturate")
_op("punpcklb", InstrClass.MED_SIMPLE, _E.B, 1, "pack", "interleave low bytes")
_op("punpckhb", InstrClass.MED_SIMPLE, _E.B, 1, "pack", "interleave high bytes")
_op("punpcklh", InstrClass.MED_SIMPLE, _E.H, 1, "pack", "interleave low halves")
_op("punpckhh", InstrClass.MED_SIMPLE, _E.H, 1, "pack", "interleave high halves")
_op("punpcklw", InstrClass.MED_SIMPLE, _E.W, 1, "pack", "interleave low words")
_op("punpckhw", InstrClass.MED_SIMPLE, _E.W, 1, "pack", "interleave high words")

# --- conditional move (1) ---------------------------------------------------------------
_op("pcmov", InstrClass.MED_SIMPLE, _E.Q, 1, "compare",
    "bitwise select: (mask & a) | (~mask & b)")

# --- enhanced reductions (3) --------------------------------------------------------------
_op("psumb", InstrClass.MED_COMPLEX, _E.B, MED_MUL_LATENCY, "reduction",
    "horizontal sum of bytes into scalar lane")
_op("psumh", InstrClass.MED_COMPLEX, _E.H, MED_MUL_LATENCY, "reduction",
    "horizontal sum of halves into scalar lane")
_op("psumw", InstrClass.MED_COMPLEX, _E.W, MED_MUL_LATENCY, "reduction",
    "horizontal sum of words into scalar lane")

# --- extract / insert (2) --------------------------------------------------------------------
_op("pextrh", InstrClass.MED_SIMPLE, _E.H, 1, "move", "extract halfword to int reg")
_op("pinsrh", InstrClass.MED_SIMPLE, _E.H, 1, "move", "insert halfword from int reg")

#: The paper reports exactly 67 instructions in its MMX emulation library.
EXPECTED_OPCODE_COUNT = 67

assert len(MMX) == EXPECTED_OPCODE_COUNT, f"MMX table has {len(MMX)} opcodes"
