"""Register-pressure report from the stream liveness pass.

Peak simultaneous liveness per pool, computed from the same def/use
walk the dataflow verifier performs: a register is live from its first
definition (or trace start, for pre-initialized live-ins) to its last
appearance.  The report joins each pool against the ISA's
:class:`~repro.isa.model.RegisterFileSpec` so the area side of Table 2
(``isa/regfile_area.py``) gets a demand figure to set against its cost
-- the input the ROADMAP autotuner needs to trade schedule aggressiveness
against register-file area.
"""

from __future__ import annotations

from typing import Any

from ..emulib.trace import reg_pool
from ..isa.model import RegPool
from ..isa.regfile_area import file_area_units


def peak_liveness(builder: Any) -> dict[str, dict[str, int]]:
    """Per-pool liveness statistics of one built kernel's trace."""
    preinit = getattr(builder, "preinit", set())
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for i, instr in enumerate(builder.trace):
        for encoded in instr.srcs + instr.dsts:
            if encoded not in first:
                first[encoded] = 0 if encoded in preinit else i
            last[encoded] = i

    pools: dict[str, dict[str, int]] = {}
    by_pool: dict[RegPool, list[tuple[int, int]]] = {}
    for encoded, start in first.items():
        by_pool.setdefault(reg_pool(encoded), []).append(
            (start, last[encoded]))
    for pool, ranges in by_pool.items():
        events = sorted([(s, 1) for s, _ in ranges]
                        + [(e + 1, -1) for _, e in ranges])
        live = peak = 0
        for _, delta in events:
            live += delta
            peak = max(peak, live)
        pools[pool.name.lower()] = {"registers": len(ranges), "peak": peak}
    return pools


def _allocator_stats(builder: Any) -> dict[str, dict[str, int]]:
    stats: dict[str, dict[str, int]] = {}
    for attr, pool in (("int_alloc", "int"), ("med_alloc", "med"),
                       ("acc_alloc", "acc")):
        alloc = getattr(builder, attr, None)
        if alloc is not None:
            stats[pool] = {"allocated": alloc._next, "limit": alloc.limit}
    return stats


def pressure_report(builder: Any, kernel: str = "",
                    isa: str = "") -> dict[str, Any]:
    """Liveness + allocator + register-file-cost report for one stream."""
    isa = isa or builder.isa_name
    pools = peak_liveness(builder)
    allocators = _allocator_stats(builder)

    # Join against the machine's register files to express demand as
    # utilization of the files the area model prices.
    from ..cpu.config import register_file_specs
    files: list[dict[str, object]] = []
    for spec in register_file_specs(isa):
        pool = spec.pool.name.lower()
        stats = pools.get(pool, {"registers": 0, "peak": 0})
        files.append({
            "pool": pool,
            "logical": spec.logical,
            "peak_live": stats["peak"],
            "utilization": (round(stats["peak"] / spec.logical, 3)
                            if spec.logical else 0.0),
            "area_units": round(file_area_units(spec), 1),
        })
    return {
        "kernel": kernel,
        "isa": isa,
        "pools": pools,
        "allocators": allocators,
        "register_files": files,
    }
