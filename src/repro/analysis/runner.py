"""Lint driver: runs every analysis pass over the kernel x ISA grid.

For each registered kernel and ISA the stream is built exactly as the
experiment engine builds it, then verified:

* all kernels get the stream dataflow passes and a pressure report;
* compiler-lowered kernels additionally get the IR verifier and the
  saturation-range proof (the lowering hook carries the IR and binding
  into the built stream);
* hand-written kernels with a digest-pinned compiler mirror (addblock,
  motion1, motion2) get the mirror lowered and verified too -- the
  mirror is what new-ISA work will regenerate, so it must stay provable
  on its own.

Results are :class:`~repro.analysis.findings.Report` objects plus
machine-readable artifacts (range-proof checkpoints and pressure
reports) suitable for ``repro lint --json`` and the CI findings
artifact.
"""

from __future__ import annotations

from typing import Any

from .findings import Report
from .ircheck import check_ir, check_ranges
from .jitlint import lint_jit
from .pressure import pressure_report
from .streamcheck import check_stream


def _registry() -> tuple[Any, Any]:
    # Importing the package populates the registry (side-effect imports).
    from .. import kernels  # noqa: F401
    from ..kernels.common import ISAS, KERNELS
    return KERNELS, ISAS


def kernel_names() -> list[str]:
    """Registered kernels in display order (hand order, then vc extras)."""
    KERNELS, _ = _registry()
    from ..kernels import KERNEL_ORDER
    order = [name for name in KERNEL_ORDER if name in KERNELS]
    order += sorted(set(KERNELS) - set(order))
    return order


def lint_kernel(name: str, isa: str,
                scale: int = 1) -> tuple[Report, dict[str, Any]]:
    """Run every applicable pass for one kernel on one ISA.

    Returns ``(report, artifacts)`` where artifacts carry the pressure
    report and, for compiler-lowered streams, the range-proof
    checkpoints (``checkpoints`` for the registered stream, plus
    ``mirror_checkpoints`` when a digest-pinned mirror was verified).
    """
    KERNELS, ISAS = _registry()
    if name not in KERNELS:
        raise KeyError(f"unknown kernel {name!r}; have {sorted(KERNELS)}")
    if isa not in ISAS:
        raise KeyError(f"unknown ISA {isa!r}; have {list(ISAS)}")
    spec = KERNELS[name]
    report = Report()
    artifacts: dict[str, Any] = {"kernel": name, "isa": isa}

    built = spec.builders[isa](spec.make_workload(scale))
    builder = built.builder
    report.extend(check_stream(builder, name, isa))
    artifacts["pressure"] = pressure_report(builder, name, isa)

    lowering = getattr(builder, "vc_lowering", None)
    if lowering is not None:
        report.extend(check_ir(lowering["ir"], name))
        range_findings, checkpoints = check_ranges(
            lowering["ir"], lowering["binding"], isa, name)
        report.extend(range_findings)
        artifacts["checkpoints"] = checkpoints
    else:
        from ..vc import COMPILED, compile_kernel
        record = COMPILED.get(name)
        if record is not None:
            mirror = compile_kernel(record.ir, isa,
                                    record.bind(spec.make_workload(scale)),
                                    record.output_key)
            report.extend(check_stream(mirror.builder, name, isa))
            report.extend(check_ir(record.ir, name))
            range_findings, checkpoints = check_ranges(
                record.ir, mirror.builder.vc_lowering["binding"], isa, name)
            report.extend(range_findings)
            artifacts["mirror_checkpoints"] = checkpoints
    return report, artifacts


def lint_grid(kernels: list[str] | None = None,
              isas: list[str] | None = None,
              scale: int = 1) -> tuple[Report, list[dict[str, Any]]]:
    """Lint a kernel x ISA sub-grid; returns merged report + artifacts."""
    _, all_isas = _registry()
    names = kernels if kernels is not None else kernel_names()
    targets = isas if isas is not None else list(all_isas)
    report = Report()
    artifacts: list[dict[str, Any]] = []
    for name in names:
        for isa in targets:
            sub_report, sub_artifacts = lint_kernel(name, isa, scale)
            report.extend(sub_report.findings)
            artifacts.append(sub_artifacts)
    return report, artifacts


def lint_all(kernels: list[str] | None = None,
             isas: list[str] | None = None,
             scale: int = 1,
             include_jit: bool = True) -> tuple[Report,
                                               list[dict[str, Any]]]:
    """Full lint surface: the kernel grid plus the jit-subset linter."""
    report, artifacts = lint_grid(kernels, isas, scale)
    if include_jit:
        report.extend(lint_jit())
    return report, artifacts


#: One-shot verified-status cache for the ``repro kernels`` column
#: (kernel, isa) -> True when every pass is clean.
_VERIFIED_CACHE: dict[tuple[str, str], bool] = {}


def verified_status(name: str, isa: str) -> bool:
    """Cheap cached yes/no used by the ``repro kernels`` listing."""
    key = (name, isa)
    if key not in _VERIFIED_CACHE:
        try:
            report, _ = lint_kernel(name, isa)
            _VERIFIED_CACHE[key] = report.ok
        except Exception:
            _VERIFIED_CACHE[key] = False
    return _VERIFIED_CACHE[key]
