"""IR verification and saturation-range analysis.

Two passes over a :class:`~repro.vc.ir.LoopKernel`:

* :func:`check_ir` re-establishes every structural invariant the IR
  constructor enforces (the mutation harness builds kernels that bypass
  ``__post_init__``, and future IR producers -- the ROADMAP autotuner --
  may not go through the constructor at all), plus width rules the
  constructor does not know: operand domains of byte operators, scalar
  Select bounds, shift-count range.

* :func:`check_ranges` runs an interval abstract interpreter over the
  expression DAG and proves, per ISA, that every u8/i16 intermediate is
  in range or explicitly saturated.  The per-ISA difference is the
  saturation device: the scalar lowering's lookup table only covers
  ``[-TABLE_BIAS, TABLE_SIZE - TABLE_BIAS)`` while ``packushb`` accepts
  any i16 lane; packed half-domain arithmetic is exact only while values
  fit one consistent 16-bit reading (unsigned or signed), which is the
  ``half-width`` checkpoint.

Input intervals: u8 buffers are ``[0, 255]`` by declaration; i16
buffers take the bound workload's concrete range when a binding is
supplied (the IDCT-residual contract of ``addblock``), else the full
i16 range.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..vc.ir import (AbsDiff, Add, BYTE, Binding, Const, Expr, GtU, HALF,
                     Load, LoopKernel, Mul, SatU8, Select, Shr, Square,
                     Sub, TABLE_BIAS, TABLE_SIZE, U8)
from .findings import Finding, PASS_IR, PASS_RANGE
from .interval import I16_MAX, I16_MIN, Interval, U8_MAX, U16_MAX, const

#: Scalar saturation-table domain (inclusive).
TABLE_LO = -TABLE_BIAS
TABLE_HI = TABLE_SIZE - TABLE_BIAS - 1

#: Reduction scalars are read out through 32-bit paths (``movd`` +
#: 32-bit mask on MMX, ``racl`` low word on MDMX/MOM).
ACC_LIMIT = (1 << 31) - 1

_BYTE_OPS = (AbsDiff, GtU, Select)


def _walk(node: Expr, path: str = "expr") -> Iterator[tuple[str, Expr]]:
    """Yield ``(path, node)`` over the tree (paths name DAG occurrences)."""
    yield path, node
    for name, value in vars(node).items():
        if isinstance(value, Expr):
            yield from _walk(value, f"{path}.{name}")


def domain_of(node: Expr, ir: LoopKernel) -> str:
    """Evaluation domain of a node (packed-lane width)."""
    if isinstance(node, Load):
        return BYTE if ir.buffer(node.buf).elem == U8 else HALF
    if isinstance(node, Const):
        return BYTE if node.value <= U8_MAX else HALF
    if isinstance(node, (Mul, Shr, Square)):
        return HALF
    if isinstance(node, (SatU8, AbsDiff, GtU, Select)):
        return BYTE
    # Add / Sub inherit the widest child domain.
    if any(domain_of(c, ir) == HALF for c in node.children()):
        return HALF
    return BYTE


# --- structural verification -------------------------------------------------

def check_ir(ir: LoopKernel, kernel: str = "") -> list[Finding]:
    """Type/width/shape-check one kernel; returns findings (empty = ok)."""
    kernel = kernel or ir.name
    out: list[Finding] = []

    def bad(rule: str, message: str, location: str = "") -> None:
        out.append(Finding(PASS_IR, rule, message, kernel=kernel,
                           location=location))

    if ir.rows < 1 or ir.cols < 1:
        bad("trip-count", f"trip counts must be positive, got "
            f"{ir.rows}x{ir.cols}")
        return out
    if ir.cols % 8:
        bad("tile-shape", f"cols must be a multiple of 8, got {ir.cols}")
    elif ir.cols // 8 > 2:
        bad("tile-shape", f"at most two 8-byte column tiles, got "
            f"cols={ir.cols}")

    names = [b.name for b in ir.buffers]
    if len(set(names)) != len(names):
        bad("buffers", "duplicate buffer names")
    outs = [b for b in ir.buffers if b.out]
    for buf in outs:
        if buf.elem != U8:
            bad("buffers", f"out buffer {buf.name!r} must be u8",
                location=buf.name)

    for path, node in _walk(ir.expr):
        if isinstance(node, Const) and not 0 <= node.value <= 0xFFFF:
            bad("const-range", f"Const {node.value} outside [0, 65535]",
                location=path)
        if isinstance(node, Load) and node.buf not in names:
            bad("unknown-buffer", f"load of undeclared buffer {node.buf!r}",
                location=path)
        if isinstance(node, Shr) and not 0 <= node.count <= 15:
            bad("shift-count", f"Shr count {node.count} outside [0, 15]",
                location=path)

    if ir.reduce:
        out.extend(_check_reduction(ir, kernel))
    else:
        out.extend(_check_map(ir, kernel, outs))
    return out


def _check_reduction(ir: LoopKernel, kernel: str) -> list[Finding]:
    out: list[Finding] = []

    def bad(rule: str, message: str) -> None:
        out.append(Finding(PASS_IR, rule, message, kernel=kernel,
                           location="expr"))

    if any(b.out for b in ir.buffers):
        bad("reduce-shape", "reduce kernels take no out buffer")
    expr = ir.expr
    if isinstance(expr, AbsDiff):
        a, b = expr.a, expr.b
    elif isinstance(expr, Square) and isinstance(expr.a, Sub):
        a, b = expr.a.a, expr.a.b
    else:
        bad("reduce-shape", "reductions must be AbsDiff(Load, Load) or "
            f"Square(Sub(Load, Load)), got {type(expr).__name__}")
        return out
    for side in (a, b):
        if not isinstance(side, Load):
            bad("reduce-shape", "reduction operands must be loads, got "
                f"{type(side).__name__}")
            return out
        buf = next((x for x in ir.buffers if x.name == side.buf), None)
        if buf is not None and buf.elem != U8:
            bad("reduce-shape", f"reduction operand {side.buf!r} must be u8")
    if a == b:
        bad("reduce-shape", "reduction operands must differ")
    return out


def _check_map(ir: LoopKernel, kernel: str,
               outs: list[Any]) -> list[Finding]:
    out: list[Finding] = []

    def bad(rule: str, message: str, location: str) -> None:
        out.append(Finding(PASS_IR, rule, message, kernel=kernel,
                           location=location))

    if len(outs) != 1:
        bad("map-shape", f"map kernels need exactly one out buffer, "
            f"got {len(outs)}", "buffers")
    if ir.argmin:
        bad("map-shape", "argmin is reduce-only", "expr")

    masks: set[int] = set()
    for path, node in _walk(ir.expr):
        if isinstance(node, Select):
            masks.add(id(node.mask))
            if not isinstance(node.mask, GtU):
                bad("select-mask", "Select mask must be GtU", path)
            elif not isinstance(node.mask.b, Const):
                bad("select-mask", "GtU bound must be a scalar Const "
                    "(the scalar lowering compares against an immediate)",
                    path)
    for path, node in _walk(ir.expr):
        if isinstance(node, Square):
            bad("map-shape", "Square is reduce-only", path)
        if isinstance(node, GtU) and id(node) not in masks:
            bad("select-mask", "GtU is only valid as a Select mask", path)
        if isinstance(node, _BYTE_OPS):
            for cpath, child in zip((f"{path}.a", f"{path}.b"),
                                    node.children()[-2:]):
                if domain_of(child, ir) == HALF:
                    bad("byte-op-operand",
                        f"{type(node).__name__} operand evaluates in the "
                        f"half domain; byte operators need u8 operands",
                        cpath)
    # The root must deliver u8 lanes: either an explicit saturation or a
    # byte-domain expression.
    root = ir.expr
    if not isinstance(root, SatU8) and domain_of(root, ir) == HALF:
        bad("unsaturated-root", "map root evaluates in the half domain "
            "without a SatU8 saturation", "expr")
    return out


# --- saturation-range analysis ----------------------------------------------

def input_interval(ir: LoopKernel, buf_name: str,
                   binding: Binding | None) -> Interval:
    buf = ir.buffer(buf_name)
    if buf.elem == U8:
        return Interval(0, U8_MAX)
    if binding is not None:
        bound = binding.buffers.get(buf_name)
        if bound is not None and bound.array is not None:
            return Interval(int(bound.array.min()), int(bound.array.max()))
    return Interval(I16_MIN, I16_MAX)


def _eval(node: Expr, ir: LoopKernel, binding: Binding | None,
          memo: dict[Expr, Interval]) -> Interval:
    if node in memo:
        return memo[node]
    if isinstance(node, Load):
        iv = input_interval(ir, node.buf, binding)
    elif isinstance(node, Const):
        iv = const(node.value)
    elif isinstance(node, Add):
        iv = _eval(node.a, ir, binding, memo).add(
            _eval(node.b, ir, binding, memo))
    elif isinstance(node, Sub):
        iv = _eval(node.a, ir, binding, memo).sub(
            _eval(node.b, ir, binding, memo))
    elif isinstance(node, Mul):
        iv = _eval(node.a, ir, binding, memo).mul(
            _eval(node.b, ir, binding, memo))
    elif isinstance(node, Shr):
        base = _eval(node.a, ir, binding, memo)
        # A possibly-negative operand is reported as a checkpoint
        # violation by the caller; keep the walk total by clamping.
        iv = Interval(max(base.lo, 0), max(base.hi, 0)).shr(node.count)
    elif isinstance(node, AbsDiff):
        iv = _eval(node.a, ir, binding, memo).abs_diff(
            _eval(node.b, ir, binding, memo))
    elif isinstance(node, Square):
        iv = _eval(node.a, ir, binding, memo).square()
    elif isinstance(node, GtU):
        _eval(node.a, ir, binding, memo)
        _eval(node.b, ir, binding, memo)
        iv = Interval(0, 1)
    elif isinstance(node, Select):
        _eval(node.mask, ir, binding, memo)
        iv = _eval(node.a, ir, binding, memo).join(
            _eval(node.b, ir, binding, memo))
    elif isinstance(node, SatU8):
        iv = _eval(node.a, ir, binding, memo).sat_u8()
    else:
        raise TypeError(f"unknown IR node {type(node).__name__}")
    memo[node] = iv
    return iv


def check_ranges(ir: LoopKernel, binding: Binding | None, isa: str,
                 kernel: str = "") -> tuple[list[Finding],
                                            list[dict[str, object]]]:
    """Interval proof for one kernel on one ISA.

    Returns ``(findings, checkpoints)``; the checkpoints are the proof
    artifact -- every width-sensitive program point with its computed
    interval, the bound it must satisfy, and its status.
    """
    kernel = kernel or ir.name
    memo: dict[Expr, Interval] = {}
    findings: list[Finding] = []
    checkpoints: list[dict[str, object]] = []

    def checkpoint(rule: str, path: str, node: Expr, iv: Interval,
                   lo: int, hi: int, saturated: bool = False) -> None:
        ok = iv.within(lo, hi)
        checkpoints.append({
            "rule": rule,
            "location": path,
            "node": type(node).__name__,
            "interval": [iv.lo, iv.hi],
            "bound": [lo, hi],
            "status": ("saturated" if saturated and ok else
                       "in-range" if ok else "violated"),
        })
        if not ok:
            findings.append(Finding(
                PASS_RANGE, rule,
                f"{type(node).__name__} interval {iv} escapes [{lo}, {hi}]",
                kernel=kernel, isa=isa, location=path))

    # Square's operand is widened before squaring (the packed lowerings
    # unpack to halfwords and psubh), so it evaluates in the half domain
    # even when both its inputs are bytes.
    widened = {id(n.a) for _, n in _walk(ir.expr) if isinstance(n, Square)}

    for path, node in _walk(ir.expr):
        iv = _eval(node, ir, binding, memo)
        dom = domain_of(node, ir)
        if id(node) in widened:
            dom = HALF
        if isinstance(node, SatU8):
            inner = _eval(node.a, ir, binding, memo)
            if isa == "alpha":
                # mpeg2play-style lookup table: the index must stay
                # inside the table.
                checkpoint("sat-table", f"{path}.a", node.a, inner,
                           TABLE_LO, TABLE_HI, saturated=True)
            else:
                # packushb reads signed 16-bit lanes.
                checkpoint("sat-pack", f"{path}.a", node.a, inner,
                           I16_MIN, I16_MAX, saturated=True)
        elif isinstance(node, Shr):
            # Packed logical shifts read unsigned 16-bit lanes; the
            # scalar path computes exactly, so agreement needs the exact
            # value inside u16.
            inner = _eval(node.a, ir, binding, memo)
            checkpoint("shr-range", f"{path}.a", node.a, inner, 0, U16_MAX)
        elif isinstance(node, (Add, Sub, AbsDiff, Select)):
            if dom == BYTE:
                # u8 lanes wrap; unsaturated byte arithmetic must stay
                # inside u8.
                checkpoint("byte-range", path, node, iv, 0, U8_MAX)
            else:
                _half_width(checkpoint, path, node, iv)
        elif isinstance(node, (Mul, Square)):
            _half_width(checkpoint, path, node, iv)

    root_iv = _eval(ir.expr, ir, binding, memo)
    if ir.reduce:
        total = root_iv.mul(const(ir.rows * ir.cols))
        checkpoint("acc-range", "expr", ir.expr, total, 0, ACC_LIMIT)
    else:
        checkpoint("root-range", "expr", ir.expr, root_iv, 0, U8_MAX,
                   saturated=isinstance(ir.expr, SatU8))
    return findings, checkpoints


def _half_width(checkpoint: Callable[..., None], path: str, node: Expr,
                iv: Interval) -> None:
    """Half-domain exactness: the value must fit one consistent 16-bit
    reading -- unsigned ``[0, 65535]`` or signed ``[-32768, 32767]``."""
    if iv.lo >= 0:
        checkpoint("half-width", path, node, iv, 0, U16_MAX)
    else:
        checkpoint("half-width", path, node, iv, I16_MIN, I16_MAX)
