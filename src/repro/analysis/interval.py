"""Integer interval domain for the saturation-range analysis.

The abstract values are closed integer intervals ``[lo, hi]``.  Every IR
operator gets a transfer function; the only non-monotone one is ``Shr``
applied to a value that may have wrapped a 16-bit intermediate, which the
analysis handles by checking wrap explicitly rather than by widening
(media arithmetic here is all bounded, so no widening/narrowing loop is
needed -- a single forward walk reaches the fixpoint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

U8_MAX = 255
I16_MIN = -(1 << 15)
I16_MAX = (1 << 15) - 1
U16_MAX = (1 << 16) - 1


@dataclass(frozen=True)
class Interval:
    """Closed integer interval ``[lo, hi]`` with exact arithmetic."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    # --- lattice -----------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def within(self, lo: int, hi: int) -> bool:
        return lo <= self.lo and self.hi <= hi

    @property
    def is_u8(self) -> bool:
        return self.within(0, U8_MAX)

    @property
    def is_i16(self) -> bool:
        return self.within(I16_MIN, I16_MAX)

    # --- transfer functions ------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        return Interval(self.lo - other.hi, self.hi - other.lo)

    def mul(self, other: "Interval") -> "Interval":
        corners = (self.lo * other.lo, self.lo * other.hi,
                   self.hi * other.lo, self.hi * other.hi)
        return Interval(min(corners), max(corners))

    def shr(self, count: int) -> "Interval":
        # Arithmetic shift on nonnegative bounds is floor division; the
        # range pass only applies this to proven-nonnegative values.
        if self.lo < 0:
            raise ValueError("shr of possibly-negative interval")
        return Interval(self.lo >> count, self.hi >> count)

    def abs_diff(self, other: "Interval") -> "Interval":
        diff = self.sub(other)
        lo = 0 if diff.lo <= 0 <= diff.hi else min(abs(diff.lo), abs(diff.hi))
        return Interval(lo, max(abs(diff.lo), abs(diff.hi)))

    def square(self) -> "Interval":
        lo = 0 if self.lo <= 0 <= self.hi else min(self.lo ** 2, self.hi ** 2)
        return Interval(lo, max(self.lo ** 2, self.hi ** 2))

    def sat_u8(self) -> "Interval":
        return Interval(min(max(self.lo, 0), U8_MAX),
                        min(max(self.hi, 0), U8_MAX))

    def __str__(self) -> str:
        return f"[{self.lo}, {self.hi}]"


def const(value: int) -> Interval:
    return Interval(value, value)


def from_array(array: Any) -> Interval:
    """Interval covering every element of a concrete bound numpy array."""
    return Interval(int(array.min()), int(array.max()))
