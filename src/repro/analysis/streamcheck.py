"""Dataflow and shape verification of lowered instruction streams.

The builders record *dynamic* traces -- loops are unrolled and every
branch carries its outcome -- so dataflow over the linear stream is
exact: no CFG, no merges.  The checks:

* **def-before-use** over all four register pools.  Live-in state comes
  from the builder: ``preinit`` registers were created holding a
  meaningful value (pointer bases, loop counts, argmin sentinels), and
  the self-zeroing idiom (``pxor r, r, r``) counts as a pure definition.
* **dead writes**: a write nobody reads before the next write to the
  same register.  The final write to a register is live-out, as are
  writes to registers the kernel marked with
  :meth:`~repro.emulib.base_builder.BaseBuilder.mark_live_out` (values
  read back functionally between instructions).
* **unused defs**: registers that are written but never read.
  Registers only ever defined by the zeroing idiom are exempt -- the
  digest-pinned codegen materializes a zero constant even on paths that
  end up not consuming it.
* **MOM VL/tile discipline**: every VL stamp inside ``[0, 16]``; for
  compiler-lowered kernels, every matrix operation covering more than
  one row must cover exactly ``ir.rows``.
* **buffer bounds** (compiler-lowered kernels): every accessed byte
  falls entirely inside one known region -- a bound buffer, the scalar
  saturation table, or the packed constant pool.
* **accumulator chains** (compiler-lowered reductions): accumulates per
  instance match ``rows x tiles``, every accumulate targets an
  accumulator cleared since the previous instance (a dropped ``clracc``
  silently carries totals over), and, on MDMX, consecutive accumulates
  into the same accumulator are at least the rotation depth apart --
  the software-pipelining property Section 2.1 motivates.
* **saturation discipline** (packed map kernels whose IR root is
  ``SatU8``): every store into the out buffer is fed by a saturating
  pack (``packushb``), never by a truncating one.
"""

from __future__ import annotations

from typing import Any

from ..emulib.memory import Memory
from ..emulib.trace import reg_pool
from ..isa.model import RegPool
from ..vc.ir import SatU8, TABLE_SIZE
from .findings import Finding, PASS_DATAFLOW, PASS_RANGE

#: MOM's architectural vector-length ceiling (matrix rows).
MATRIX_ROWS = 16

#: Ops that write only a slice of their destination: reading the (maybe
#: undefined) remainder on the first touch is the row-assembly idiom,
#: not a dataflow bug.
PARTIAL_WRITE_OPS = frozenset(("mominsrow",))


def _is_zeroing(instr: Any) -> bool:
    """Self-zeroing idiom (``pxor r, r, r``): a pure definition.

    Only xor-family opcodes qualify -- an in-place ``sextw r, r`` also
    has ``srcs <= dsts`` but genuinely reads its operand.
    """
    return "xor" in instr.op.name and bool(instr.dsts) and \
        bool(instr.srcs) and set(instr.srcs) <= set(instr.dsts)


def check_dataflow(builder: Any, kernel: str = "",
                   isa: str = "") -> list[Finding]:
    """Def-before-use, dead-write and unused-def over the trace."""
    isa = isa or builder.isa_name
    preinit = getattr(builder, "preinit", set())
    live_out = getattr(builder, "live_out", set())
    findings: list[Finding] = []

    defined = set(preinit)
    last_def: dict[int, tuple[int, str, bool]] = {}
    read_since: dict[int, bool] = {}
    ever_read: set[int] = set()
    nonzero_defs: set[int] = set()
    def_sites: dict[int, tuple[int, str]] = {}

    def name_of(encoded: int) -> str:
        return f"{reg_pool(encoded).name.lower()}{encoded & 0xFF}"

    for i, instr in enumerate(builder.trace):
        zeroing = _is_zeroing(instr)
        if not zeroing:
            for src in instr.srcs:
                if src not in defined:
                    # Partial writes (row inserts) read the untouched
                    # remainder of their own destination: first-touch
                    # reads there are benign.
                    if not (src in instr.dsts
                            and instr.op.name in PARTIAL_WRITE_OPS):
                        findings.append(Finding(
                            PASS_DATAFLOW, "use-before-def",
                            f"{instr.op.name} reads {name_of(src)} before "
                            f"any definition", kernel=kernel, isa=isa,
                            location=f"#{i}"))
                    defined.add(src)  # report once per register
                read_since[src] = True
                ever_read.add(src)
        self_update = any(d in instr.srcs for d in instr.dsts)
        for dst in instr.dsts:
            prev = last_def.get(dst)
            if (prev is not None and not read_since.get(dst, True)
                    and not prev[2] and dst not in live_out):
                findings.append(Finding(
                    PASS_DATAFLOW, "dead-write",
                    f"{prev[1]} writes {name_of(dst)} but {instr.op.name} "
                    f"overwrites it unread", kernel=kernel, isa=isa,
                    location=f"#{prev[0]}"))
            # A self-update (`lda p, 8(p)`: pointer bump, counter
            # decrement) going unread before redefinition is the normal
            # fate of the final trip of an unrolled loop, not dead code.
            last_def[dst] = (i, instr.op.name, self_update and not zeroing)
            read_since[dst] = False
            defined.add(dst)
            if dst not in def_sites:
                def_sites[dst] = (i, instr.op.name)
            if not zeroing:
                nonzero_defs.add(dst)

    for encoded, (index, op_name) in sorted(def_sites.items()):
        if encoded in ever_read or encoded in live_out:
            continue
        if encoded not in nonzero_defs:
            continue  # zero-constant materialization on an unused path
        findings.append(Finding(
            PASS_DATAFLOW, "unused-def",
            f"{name_of(encoded)} is written ({op_name}) but never read",
            kernel=kernel, isa=isa, location=f"#{index}"))
    return findings


# --- MOM vector-length discipline -------------------------------------------

def check_vl(builder: Any, kernel: str = "", isa: str = "") -> list[Finding]:
    isa = isa or builder.isa_name
    if isa != "mom":
        return []
    lowering = getattr(builder, "vc_lowering", None)
    rows = lowering["ir"].rows if lowering else None
    findings: list[Finding] = []
    for i, instr in enumerate(builder.trace):
        if not 0 <= instr.vl <= MATRIX_ROWS:
            findings.append(Finding(
                PASS_DATAFLOW, "vl-range",
                f"{instr.op.name} carries VL={instr.vl} outside "
                f"[0, {MATRIX_ROWS}]", kernel=kernel, isa=isa,
                location=f"#{i}"))
        elif rows is not None and instr.vl > 1 and instr.vl != rows:
            findings.append(Finding(
                PASS_DATAFLOW, "vl-mismatch",
                f"{instr.op.name} covers VL={instr.vl} rows but the IR "
                f"nest is {rows} rows deep", kernel=kernel, isa=isa,
                location=f"#{i}"))
    return findings


# --- buffer bounds -----------------------------------------------------------

def _extents(builder: Any) -> list[tuple[str, int, int]]:
    """Known memory regions ``(name, base, end)`` of a compiled kernel."""
    lowering = builder.vc_lowering
    ir, binding, bases = lowering["ir"], lowering["binding"], lowering["bases"]
    extents: list[tuple[str, int, int]] = []
    for buf in ir.buffers:
        base = bases[buf.name]
        if buf.out:
            size = binding.instances * ir.rows * ir.cols
        else:
            bound = binding.buffers[buf.name]
            size = int(bound.array.nbytes)
        extents.append((buf.name, base, base + size))
    table = lowering.get("sat_table")
    if table is not None:
        extents.append(("sat_table", table, table + TABLE_SIZE))
    pool = lowering.get("const_pool")
    if pool is not None:
        base, size = pool
        extents.append(("const_pool", base, base + size))
    return extents


def check_bounds(builder: Any, kernel: str = "",
                 isa: str = "") -> list[Finding]:
    """Every accessed byte inside exactly one known region (vc only)."""
    if getattr(builder, "vc_lowering", None) is None:
        return []
    isa = isa or builder.isa_name
    extents = _extents(builder)
    findings: list[Finding] = []
    for i, instr in enumerate(builder.trace):
        if not instr.op.iclass.is_memory or instr.addr is None:
            continue
        for addr in instr.element_addresses():
            end = addr + instr.nbytes
            if any(base <= addr and end <= stop
                   for _, base, stop in extents):
                continue
            inside = next((name for name, base, stop in extents
                           if base < end and addr < stop), None)
            detail = (f"straddles the end of {inside!r}" if inside
                      else "hits no bound buffer, table or pool"
                      if Memory.BASE <= addr < builder.mem._brk
                      else "lies outside allocated memory")
            findings.append(Finding(
                PASS_DATAFLOW, "oob",
                f"{instr.op.name} accesses [{addr:#x}, {end:#x}) which "
                f"{detail}", kernel=kernel, isa=isa, location=f"#{i}"))
            break  # one finding per instruction is enough
    return findings


# --- accumulator chains ------------------------------------------------------

def check_acc_chains(builder: Any, kernel: str = "",
                     isa: str = "") -> list[Finding]:
    """Reduction accumulator discipline for MDMX/MOM compiled kernels."""
    lowering = getattr(builder, "vc_lowering", None)
    isa = isa or builder.isa_name
    if lowering is None or isa not in ("mdmx", "mom"):
        return []
    ir = lowering["ir"]
    if not ir.reduce:
        return []
    expected = ir.rows * ir.tiles if isa == "mdmx" else ir.tiles
    findings: list[Finding] = []

    acc_regs: set[int] = set()
    n_acc_ops = 0
    last_acc_op: dict[int, int] = {}
    region_total = 0
    cleared: set[int] = set()
    stale_reported: set[int] = set()
    ever_closed = False

    def close_region(index: int) -> None:
        nonlocal region_total, ever_closed
        if region_total and region_total != expected:
            findings.append(Finding(
                PASS_DATAFLOW, "acc-count",
                f"accumulator region holds {region_total} accumulates; the "
                f"IR reduction needs {expected} per instance",
                kernel=kernel, isa=isa, location=f"#{index}"))
        if region_total:
            ever_closed = True
        region_total = 0
        last_acc_op.clear()
        cleared.clear()
        stale_reported.clear()

    for i, instr in enumerate(builder.trace):
        acc_dsts = [d for d in instr.dsts if reg_pool(d) is RegPool.ACC]
        if not acc_dsts:
            continue
        acc = acc_dsts[0]
        if acc in instr.srcs:
            # accumulate: read-modify-write of the accumulator
            n_acc_ops += 1
            region_total += 1
            if (ever_closed and acc not in cleared
                    and acc not in stale_reported):
                findings.append(Finding(
                    PASS_DATAFLOW, "acc-stale",
                    f"{instr.op.name} accumulates into an accumulator never "
                    f"cleared this region; the previous instance's total "
                    f"carries over", kernel=kernel, isa=isa,
                    location=f"#{i}"))
                stale_reported.add(acc)
            prev = last_acc_op.get(acc)
            depth = len(acc_regs)
            if (isa == "mdmx" and prev is not None and depth > 1
                    and n_acc_ops - prev < depth):
                findings.append(Finding(
                    PASS_DATAFLOW, "acc-rotation",
                    f"{instr.op.name} reuses an accumulator only "
                    f"{n_acc_ops - prev} accumulates after its last use; "
                    f"rotation depth is {depth}",
                    kernel=kernel, isa=isa, location=f"#{i}"))
            last_acc_op[acc] = n_acc_ops
        else:
            # clear: starts a new instance region once work accumulated
            if region_total:
                close_region(i)
            acc_regs.add(acc)
            cleared.add(acc)
    close_region(len(builder.trace) - 1 if len(builder.trace) else 0)
    return findings


# --- saturation discipline ---------------------------------------------------

def check_saturation_discipline(builder: Any, kernel: str = "",
                                isa: str = "") -> list[Finding]:
    """Packed map stores must be fed by ``packushb`` when the IR
    saturates (a truncating pack would silently wrap)."""
    lowering = getattr(builder, "vc_lowering", None)
    isa = isa or builder.isa_name
    if lowering is None or isa == "alpha":
        return []
    ir = lowering["ir"]
    if ir.reduce or not isinstance(ir.expr, SatU8):
        return []
    binding, bases = lowering["binding"], lowering["bases"]
    out = ir.out_buffer
    out_base = bases[out.name]
    out_end = out_base + binding.instances * ir.rows * ir.cols

    findings: list[Finding] = []
    def_op: dict[int, str] = {}
    for i, instr in enumerate(builder.trace):
        if (instr.op.iclass.is_store and instr.addr is not None
                and out_base <= instr.addr < out_end and instr.srcs):
            producer = def_op.get(instr.srcs[0], "<live-in>")
            if producer != "packushb":
                findings.append(Finding(
                    PASS_RANGE, "unsaturated-store",
                    f"{instr.op.name} stores to {out.name!r} from a value "
                    f"produced by {producer}; the IR root is SatU8 so the "
                    f"producer must be packushb",
                    kernel=kernel, isa=isa, location=f"#{i}"))
        for dst in instr.dsts:
            def_op[dst] = instr.op.name
    return findings


def check_stream(builder: Any, kernel: str = "",
                 isa: str = "") -> list[Finding]:
    """All stream passes applicable to one built kernel."""
    isa = isa or builder.isa_name
    findings = check_dataflow(builder, kernel, isa)
    findings += check_vl(builder, kernel, isa)
    findings += check_bounds(builder, kernel, isa)
    findings += check_acc_chains(builder, kernel, isa)
    findings += check_saturation_discipline(builder, kernel, isa)
    return findings
