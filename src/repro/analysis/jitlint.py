"""AST linter keeping ``cpu/jit.py`` inside the numba-compilable subset.

The jit engine's bit-exactness story (PR 7) rests on one structural
claim: ``_heap_push`` / ``_heap_pop`` / ``_step_lane`` are plain
module-level functions over flat int64 state, and the only thing numba
changes is a ``_numba.njit(cache=True)`` *re-wrap* of the very same
function objects -- ``REPRO_JIT_PUREPY=1`` runs the identical
statements.  This container has no numba, so violations (a dict in lane
state, a float constant, a closure, ``%`` instead of a pow2 mask) would
surface only on a numba-equipped host.  The linter enforces the subset
statically:

* the three kernel functions exist, undecorated, at module level;
* their bodies avoid constructs numba's nopython mode rejects or that
  break int64 lane state: container literals and comprehensions,
  nested functions/lambdas/closures, try/with/yield/global/nonlocal,
  f-strings, float/complex/str constants (docstrings aside), ``%``,
  ``/`` and ``**`` (ring arithmetic must use pow2 masks and shifts);
* every name resolves to a parameter, a local, a whitelisted callee, or
  a module-level integer constant;
* the ``if _numba is not None:`` shim reassigns exactly the kernel
  functions as ``X = _numba.njit(cache=True)(X)`` and nothing else.

The linter takes source text (defaulting to the installed module) so
the mutation harness can feed deliberately corrupted copies.
"""

from __future__ import annotations

import ast
from typing import Callable

from .findings import Finding, PASS_JIT

#: Module-level functions that make up the compiled kernel.
KERNEL_FUNCS = ("_heap_push", "_heap_pop", "_step_lane")

#: Callees allowed inside kernel bodies (numba-compilable built-ins plus
#: the kernel helpers themselves).
ALLOWED_CALLS = frozenset(KERNEL_FUNCS) | frozenset(
    ("range", "min", "max", "len", "abs", "int", "bool"))

#: Names imported from ``.core`` that are integer constants by contract.
ASSUMED_INT_IMPORTS = frozenset(("_FAR_FUTURE", "_NO_EVENT"))

_FORBIDDEN: dict[type[ast.AST], str] = {
    ast.Dict: "dict literal",
    ast.Set: "set literal",
    ast.DictComp: "dict comprehension",
    ast.SetComp: "set comprehension",
    ast.ListComp: "list comprehension",
    ast.GeneratorExp: "generator expression",
    ast.Lambda: "lambda",
    ast.FunctionDef: "nested function",
    ast.AsyncFunctionDef: "async function",
    ast.ClassDef: "class definition",
    ast.Try: "try block",
    ast.With: "with block",
    ast.AsyncWith: "async with",
    ast.AsyncFor: "async for",
    ast.Yield: "yield",
    ast.YieldFrom: "yield from",
    ast.Await: "await",
    ast.Global: "global statement",
    ast.Nonlocal: "nonlocal statement",
    ast.JoinedStr: "f-string",
    ast.Starred: "starred expression",
    ast.Raise: "raise statement",
    ast.Assert: "assert statement",
    ast.Import: "import statement",
    ast.ImportFrom: "import statement",
    ast.Delete: "del statement",
}

_FORBIDDEN_OPS: dict[type[ast.AST], str] = {
    ast.Mod: "% (use a pow2 '& mask' -- ring indices must stay branch-"
             "and-division-free)",
    ast.Div: "/ (true division produces floats; use >> or //)",
    ast.Pow: "** (use shifts)",
    ast.MatMult: "@",
}


def default_source() -> tuple[str, str]:
    """Source text and display path of the installed ``cpu/jit.py``."""
    from ..cpu import jit as jit_module
    path = jit_module.__file__ or "cpu/jit.py"
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read(), "src/repro/cpu/jit.py"


def _fold_int(node: ast.expr, known: dict[str, int]) -> int | None:
    """Constant-fold an integer expression; ``None`` when not an int."""
    if isinstance(node, ast.Constant):
        return node.value if type(node.value) is int else None
    if isinstance(node, ast.Name):
        return known.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub,
                                                              ast.Invert)):
        inner = _fold_int(node.operand, known)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else ~inner
    if isinstance(node, ast.BinOp):
        a = _fold_int(node.left, known)
        b = _fold_int(node.right, known)
        if a is None or b is None:
            return None
        ops: dict[type[ast.AST], Callable[[], int | None]] = {
            ast.Add: lambda: a + b, ast.Sub: lambda: a - b,
            ast.Mult: lambda: a * b, ast.LShift: lambda: a << b,
            ast.RShift: lambda: a >> b, ast.BitOr: lambda: a | b,
            ast.BitAnd: lambda: a & b, ast.BitXor: lambda: a ^ b,
            ast.FloorDiv: lambda: a // b if b else None}
        fn = ops.get(type(node.op))
        return fn() if fn else None
    return None


def _module_int_constants(tree: ast.Module) -> dict[str, int]:
    known: dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            value = _fold_int(stmt.value, known)
            if value is not None:
                known[stmt.targets[0].id] = value
        elif isinstance(stmt, ast.ImportFrom):
            for alias in stmt.names:
                if alias.name in ASSUMED_INT_IMPORTS:
                    known[alias.asname or alias.name] = 0
    return known


def _local_names(fn: ast.FunctionDef) -> set[str]:
    args = fn.args
    names = {a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.For,)) and isinstance(
                node.target, ast.Name):
            names.add(node.target.id)
    return names


def _lint_function(fn: ast.FunctionDef, known_ints: dict[str, int],
                   path: str) -> list[Finding]:
    findings: list[Finding] = []

    def bad(rule: str, message: str, node: ast.AST) -> None:
        findings.append(Finding(
            PASS_JIT, rule, f"{fn.name}: {message}",
            location=f"{path}:{getattr(node, 'lineno', fn.lineno)}"))

    if fn.decorator_list:
        bad("decorated-kernel", "kernel functions must be undecorated so "
            "the pure-python shim shares the same object", fn)

    locals_ = _local_names(fn)
    docstring = fn.body[0].value if (
        fn.body and isinstance(fn.body[0], ast.Expr)
        and isinstance(fn.body[0].value, ast.Constant)
        and isinstance(fn.body[0].value.value, str)) else None

    for node in ast.walk(fn):
        if node is fn or node is docstring:
            continue
        kind = _FORBIDDEN.get(type(node))
        if kind is not None:
            bad("forbidden-construct", f"{kind} is outside the jit subset",
                node)
            continue
        if isinstance(node, ast.BinOp):
            op_kind = _FORBIDDEN_OPS.get(type(node.op))
            if op_kind is not None:
                bad("forbidden-op", f"operator {op_kind}", node)
        elif isinstance(node, ast.Constant):
            if isinstance(node.value, float):
                bad("float-constant", f"float constant {node.value!r} in "
                    "int64 lane state", node)
            elif isinstance(node.value, complex):
                bad("float-constant", f"complex constant {node.value!r}",
                    node)
            elif isinstance(node.value, (str, bytes)):
                bad("string-constant", f"string constant {node.value!r} "
                    "(only the docstring is allowed)", node)
        elif isinstance(node, ast.Call):
            callee = node.func
            if not (isinstance(callee, ast.Name)
                    and callee.id in ALLOWED_CALLS):
                name = (callee.id if isinstance(callee, ast.Name)
                        else ast.unparse(callee))
                bad("forbidden-call", f"call to {name!r}; kernels may only "
                    f"call {sorted(ALLOWED_CALLS)}", node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if (node.id not in locals_ and node.id not in known_ints
                    and node.id not in ALLOWED_CALLS):
                bad("unresolved-name", f"name {node.id!r} is neither a "
                    "parameter, a local, nor a module-level int constant "
                    "(closures and module objects do not compile)", node)
    return findings


def _lint_shim(tree: ast.Module, path: str,
               present: set[str]) -> list[Finding]:
    """The ``if _numba is not None:`` block must rewrap, not redefine."""
    findings: list[Finding] = []
    shim = None
    for stmt in tree.body:
        if (isinstance(stmt, ast.If) and isinstance(stmt.test, ast.Compare)
                and isinstance(stmt.test.left, ast.Name)
                and stmt.test.left.id == "_numba"
                and any(isinstance(op, ast.IsNot)
                        for op in stmt.test.ops)):
            shim = stmt
            break
    if shim is None:
        findings.append(Finding(
            PASS_JIT, "missing-shim",
            "no 'if _numba is not None:' rewrap block: the compiled and "
            "pure-python paths would not share statements",
            location=f"{path}:1"))
        return findings

    rewrapped: set[str] = set()
    for stmt in shim.body:
        ok = (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
              and isinstance(stmt.targets[0], ast.Name)
              and isinstance(stmt.value, ast.Call)
              and len(stmt.value.args) == 1
              and isinstance(stmt.value.args[0], ast.Name)
              and stmt.targets[0].id == stmt.value.args[0].id
              and isinstance(stmt.value.func, ast.Call)
              and isinstance(stmt.value.func.func, ast.Attribute)
              and stmt.value.func.func.attr == "njit"
              and any(kw.arg == "cache"
                      and isinstance(kw.value, ast.Constant)
                      and kw.value.value is True
                      for kw in stmt.value.func.keywords))
        if not ok:
            findings.append(Finding(
                PASS_JIT, "shim-shape",
                "the numba shim may only contain 'X = _numba.njit("
                f"cache=True)(X)' rewraps, found {ast.dump(stmt)[:60]}...",
                location=f"{path}:{stmt.lineno}"))
            continue
        rewrapped.add(stmt.targets[0].id)
    for name in KERNEL_FUNCS:
        if name in present and name not in rewrapped:
            findings.append(Finding(
                PASS_JIT, "missing-shim",
                f"{name} is never rewrapped by the numba shim; the jit "
                "path would run a different function than pure python",
                location=f"{path}:{shim.lineno}"))
    return findings


def lint_jit(source: str | None = None,
             path: str = "src/repro/cpu/jit.py") -> list[Finding]:
    """Lint the jit kernel source; returns findings (empty = compliant)."""
    if source is None:
        source, path = default_source()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(PASS_JIT, "syntax", f"unparsable source: {exc}",
                        location=f"{path}:{exc.lineno or 1}")]

    known_ints = _module_int_constants(tree)
    findings: list[Finding] = []
    present: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name in KERNEL_FUNCS:
            present.add(stmt.name)
            findings.extend(_lint_function(stmt, known_ints, path))
    for name in KERNEL_FUNCS:
        if name not in present:
            findings.append(Finding(
                PASS_JIT, "missing-kernel",
                f"kernel function {name} not found at module level",
                location=f"{path}:1"))
    findings.extend(_lint_shim(tree, path, present))
    return findings
