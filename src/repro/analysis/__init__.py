"""``repro.analysis`` -- the static verification layer.

Zero-dependency passes proving the stack's correctness-critical
properties *before* anything executes:

* :mod:`~repro.analysis.ircheck` -- IR type/width verification plus an
  interval abstract interpreter proving every u8/i16 intermediate is
  in range or explicitly saturated, per kernel per ISA;
* :mod:`~repro.analysis.streamcheck` -- dataflow verification of the
  lowered instruction streams (def-before-use over all four register
  pools, dead writes, MOM VL/tile bounds, buffer bounds, accumulator
  chains, saturation discipline);
* :mod:`~repro.analysis.jitlint` -- AST linter keeping ``cpu/jit.py``
  inside the numba-compilable subset;
* :mod:`~repro.analysis.pressure` -- register-pressure reports feeding
  the register-file area model;
* :mod:`~repro.analysis.runner` -- the ``repro lint`` / CI driver over
  the whole kernel x ISA grid.

The package imports :mod:`repro.vc` and :mod:`repro.emulib` but nothing
imports it back; lowering hooks are plain attribute assignments, so
verified streams stay digest-identical to unverified ones.
"""

from __future__ import annotations

from .findings import (ALL_PASSES, Finding, PASS_DATAFLOW, PASS_IR,
                       PASS_JIT, PASS_RANGE, Report, Severity)
from .interval import Interval
from .ircheck import check_ir, check_ranges
from .jitlint import lint_jit
from .pressure import pressure_report
from .runner import lint_all, lint_grid, lint_kernel, verified_status
from .streamcheck import (check_acc_chains, check_bounds, check_dataflow,
                          check_saturation_discipline, check_stream,
                          check_vl)

__all__ = [
    "ALL_PASSES", "Finding", "Interval", "PASS_DATAFLOW", "PASS_IR",
    "PASS_JIT", "PASS_RANGE", "Report", "Severity", "check_acc_chains",
    "check_bounds", "check_dataflow", "check_ir", "check_ranges",
    "check_saturation_discipline", "check_stream", "check_vl", "lint_all",
    "lint_grid", "lint_jit", "lint_kernel", "pressure_report",
    "verified_status",
]
