"""Machine-readable findings shared by every analysis pass.

A finding is one violation: which pass saw it, on which kernel/ISA, at
which static location (instruction index into the lowered stream, IR node
path, or a ``file:line`` for the jit linter), and what rule was broken.
The CLI and CI serialise findings as JSON, so everything here is plain
data -- no behaviour beyond formatting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ERROR findings fail ``repro lint``; WARNING findings are reported but
    do not flip the verified bit (none of the shipped passes emit
    warnings yet -- the tier exists so later heuristics can).
    """

    ERROR = "error"
    WARNING = "warning"


#: Pass identifiers, used in findings and in the mutation harness to
#: assert a defect was caught by the *intended* pass.
PASS_IR = "ir"
PASS_DATAFLOW = "dataflow"
PASS_RANGE = "range"
PASS_JIT = "jit-subset"

ALL_PASSES = (PASS_IR, PASS_DATAFLOW, PASS_RANGE, PASS_JIT)


@dataclass(frozen=True)
class Finding:
    """One rule violation surfaced by a pass."""

    pass_name: str
    rule: str
    message: str
    kernel: str = ""
    isa: str = ""
    location: str = ""
    severity: Severity = Severity.ERROR

    def to_dict(self) -> dict[str, str]:
        return {
            "pass": self.pass_name,
            "rule": self.rule,
            "severity": self.severity.value,
            "kernel": self.kernel,
            "isa": self.isa,
            "location": self.location,
            "message": self.message,
        }

    def __str__(self) -> str:
        where = ":".join(p for p in (self.kernel, self.isa) if p)
        loc = f" @{self.location}" if self.location else ""
        head = f"[{self.pass_name}/{self.rule}]"
        if where:
            head = f"{head} {where}"
        return f"{head}{loc}: {self.message}"


@dataclass
class Report:
    """Accumulates findings across passes for one lint invocation."""

    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_pass(self, pass_name: str) -> list[Finding]:
        return [f for f in self.findings if f.pass_name == pass_name]

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "findings": [f.to_dict() for f in self.findings],
        }
