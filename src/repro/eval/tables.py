"""Tables 1-3: processor, register-file and cache-port configurations.

Run as a module to print all three tables::

    python -m repro.eval.tables
"""

from __future__ import annotations

from ..cpu.config import WAYS, machine_config, register_file_specs
from ..isa.regfile_area import table2_report
from ..memsys.hierarchy import HierarchyParams


def table1_rows() -> list[dict]:
    """Table 1: processor configurations per issue width."""
    rows = []
    for way in WAYS:
        cfg = machine_config(way, "mmx")
        mom = machine_config(way, "mom")
        rows.append({
            "way": way,
            "rob": cfg.rob_size,
            "lsq": cfg.lsq_size,
            "bimodal": cfg.bimodal_entries,
            "btb": cfg.btb_entries,
            "int": f"{cfg.int_units.simple}/{cfg.int_units.complex_}",
            "fp": f"{cfg.fp_units.simple}/{cfg.fp_units.complex_}",
            "med": (f"{cfg.med_units.total}"
                    + (f" - ({mom.med_units.total}x{mom.med_lanes})"
                       if mom.med_lanes > 1 else "")),
            "ports": (f"{cfg.mem_ports}"
                      + (f" - ({mom.mem_ports}x{mom.mem_port_width})"
                         if mom.mem_port_width > 1 else "")),
            "int_regs": f"32/{cfg.int_phys}",
            "fp_regs": f"32/{cfg.fp_phys}",
        })
    return rows


def table2_rows() -> dict:
    """Table 2: media register files, sizes and normalized area."""
    reports = table2_report(register_file_specs)
    baseline = reports["mmx"].area_units
    out = {}
    for isa, report in reports.items():
        cfg = machine_config(4, isa)
        out[isa] = {
            "media_regs": f"{cfg.med_logical}/{cfg.med_phys}",
            "acc_regs": (f"{cfg.acc_logical}/{cfg.acc_phys}"
                         if cfg.acc_phys else "-"),
            "size_kb": round(report.size_kbytes, 2),
            "norm_area": round(report.normalized(baseline), 2),
        }
    return out


def table3_rows() -> dict:
    """Table 3: cache port configurations for Conv/MA and VC/COL."""
    out = {}
    for way in (4, 8):
        conv = HierarchyParams.conventional(way)
        vc = HierarchyParams.vector(way, collapsing=False)
        col = HierarchyParams.vector(way, collapsing=True)
        out[way] = {
            "conv_ma": {
                "l1_ports": conv.l1_ports, "l1_banks": conv.l1_banks,
                "l1_latency": conv.l1_latency, "l2_latency": conv.l2_latency,
            },
            "vc_col": {
                "l1_ports": vc.l1_ports, "l1_banks": vc.l1_banks,
                "l1_latency": vc.l1_latency,
                "l2_ports": f"1x{vc.vector_port_width}",
                "l2_latency": f"{vc.l2_latency}/{col.l2_latency}",
            },
        }
    return out


def render_table1() -> str:
    lines = ["=== Table 1: processor configurations ==="]
    header = None
    for row in table1_rows():
        if header is None:
            header = list(row)
            lines.append("  ".join(f"{h:>9s}" for h in header))
        lines.append("  ".join(f"{str(row[h]):>9s}" for h in header))
    return "\n".join(lines)


def render_table2() -> str:
    lines = ["=== Table 2: multimedia register files (4-way machine) ===",
             f"{'':8s}{'media':>10s}{'acc':>8s}{'size KB':>9s}{'area':>7s}"]
    for isa, row in table2_rows().items():
        lines.append(f"{isa:8s}{row['media_regs']:>10s}{row['acc_regs']:>8s}"
                     f"{row['size_kb']:>9.2f}{row['norm_area']:>7.2f}")
    lines.append("(paper: sizes 0.5 / 0.78 / 2.6 KB; "
                 "areas 1.00 / 1.19 / 0.87)")
    return "\n".join(lines)


def render_table3() -> str:
    lines = ["=== Table 3: cache port configurations ==="]
    for way, cols in table3_rows().items():
        lines.append(f"{way}-way  Conv/MA: {cols['conv_ma']}")
        lines.append(f"{'':7s}VC/COL : {cols['vc_col']}")
    return "\n".join(lines)


def render_all() -> str:
    """All three configuration tables, as printed by ``repro tables``."""
    return "\n\n".join((render_table1(), render_table2(), render_table3()))


def main() -> None:
    print(render_all())


if __name__ == "__main__":
    main()
