"""Fetch-pressure study: the paper's embedded-systems argument.

Section 4.1 / Section 5 claim MOM "greatly reduces the fetch pressure by
packing an order of magnitude more operations per instruction than MMX or
MDMX, making it an ideal candidate for embedded systems where high issue
rates and out-of-order execution are not even an option".

This driver quantifies that claim on every kernel:

* **operations per instruction** -- lane-level work items carried by one
  fetched instruction (MOM targets >10x MMX);
* **measured fetch-bound share** -- the fraction of the 1-way machine's
  cycles the CPI-stack accounting attributes to instruction delivery:
  ``base`` (commit width saturated -- the front end is the binding
  resource) plus ``fetch`` (window empty).  This is the pressure as the
  pipeline experiences it, not as an instruction-count proxy predicts
  it: the scalar and SIMD machines run essentially 100% fetch-bound at
  1-way while MOM spends most cycles in the memory/FU components;
* **narrow-machine retention** -- the fraction of its own 8-way performance
  each ISA keeps on the 1-way machine (MOM should retain the most).

The sweep runs with cycle accounting on, so every point carries its CPI
stack; :func:`mom_fetch_advantage` compares the *measured*
fetch-bound cycles of MMX and MOM over the same workload.

A thin formatter over the ``fetch-pressure`` preset of the unified
experiment engine; run through the CLI (``repro fetch-pressure``) or as a
module::

    python -m repro.eval.fetch_pressure [--jobs N]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..emulib.disasm import summarize
from ..exp import PointSpec, built_kernel, default_session, preset
from ..kernels import KERNEL_ORDER

ISAS = ("alpha", "mmx", "mdmx", "mom")


@dataclass
class FetchPressurePoint:
    """Per (kernel, isa) fetch-pressure metrics."""

    kernel: str
    isa: str
    instructions: int
    ops_per_instruction: float
    fetch_bound_cycles: int     # 1-way cycles bound by instruction
                                # delivery (stack `base` + `fetch`)
    fetch_bound_share: float    # ... as a fraction of all 1-way cycles
    retention_1way: float       # speedup(1-way) / speedup(8-way)


def run(kernels=KERNEL_ORDER, scale: int = 1, quiet: bool = False,
        session=None, jobs: int | None = None
        ) -> dict[str, dict[str, FetchPressurePoint]]:
    session = session or default_session()
    sweep = preset("fetch-pressure").replace(targets=tuple(kernels),
                                             scale=scale, accounting=True)
    grid = session.run(sweep, jobs=jobs)

    def result(kernel: str, isa: str, way: int):
        key = PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                        scale=scale, accounting=True)
        return grid[key]

    results: dict[str, dict[str, FetchPressurePoint]] = {}
    for kernel in kernels:
        row = {}
        for isa in ISAS:
            built = built_kernel(kernel, isa, scale)
            stats = summarize(built.trace)
            narrow = result(kernel, isa, 1)
            bound = narrow.stack.base + narrow.stack.fetch
            row[isa] = FetchPressurePoint(
                kernel=kernel,
                isa=isa,
                instructions=stats["instructions"],
                ops_per_instruction=stats["ops_per_instruction"],
                fetch_bound_cycles=bound,
                fetch_bound_share=(bound / narrow.cycles
                                   if narrow.cycles else 0.0),
                retention_1way=(result(kernel, isa, 8).cycles
                                / narrow.cycles),
            )
        results[kernel] = row
        if not quiet:
            cells = "  ".join(
                f"{isa}:{p.ops_per_instruction:5.1f}op/i"
                f"/f{p.fetch_bound_share:4.0%}"
                f"/{p.retention_1way:4.0%}"
                for isa, p in row.items()
            )
            print(f"{kernel:16s} {cells}")
    return results


def mom_fetch_advantage(results) -> dict[str, float]:
    """Measured fetch economy: cycles the 1-way machine spends
    fetch-bound under MMX per such cycle under MOM, per kernel.

    Both ISAs execute the same workload, so the ratio of their
    fetch-bound cycles (stack ``base`` + ``fetch``) is the measured
    counterpart of the paper's instruction-count argument (a
    never-fetch-bound MOM run counts as one cycle so the advantage
    stays finite).
    """
    return {
        kernel: (row["mmx"].fetch_bound_cycles
                 / max(1, row["mom"].fetch_bound_cycles))
        for kernel, row in results.items()
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()
    print("ops/instruction, measured 1-way fetch-bound share (f) and "
          "1-way retention of 8-way performance:\n")
    results = run(scale=args.scale, jobs=args.jobs)
    print("\nFetch economy: measured MMX fetch-bound cycles per MOM "
          "fetch-bound cycle at 1-way (paper: 'an order of magnitude'):")
    for kernel, ratio in mom_fetch_advantage(results).items():
        print(f"  {kernel:16s} {ratio:5.1f}x")


if __name__ == "__main__":
    main()
