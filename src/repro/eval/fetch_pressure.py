"""Fetch-pressure study: the paper's embedded-systems argument.

Section 4.1 / Section 5 claim MOM "greatly reduces the fetch pressure by
packing an order of magnitude more operations per instruction than MMX or
MDMX, making it an ideal candidate for embedded systems where high issue
rates and out-of-order execution are not even an option".

This driver quantifies that claim on every kernel:

* **operations per instruction** -- lane-level work items carried by one
  fetched instruction (MOM targets >10x MMX);
* **fetch economy** -- instructions fetched per unit of scalar-equivalent
  work;
* **narrow-machine retention** -- the fraction of its own 8-way performance
  each ISA keeps on the 1-way machine (MOM should retain the most).

A thin formatter over the ``fetch-pressure`` preset of the unified
experiment engine; run through the CLI (``repro fetch-pressure``) or as a
module::

    python -m repro.eval.fetch_pressure [--jobs N]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..emulib.disasm import summarize
from ..exp import PointSpec, built_kernel, default_session, preset
from ..kernels import KERNEL_ORDER

ISAS = ("alpha", "mmx", "mdmx", "mom")


@dataclass
class FetchPressurePoint:
    """Per (kernel, isa) fetch-pressure metrics."""

    kernel: str
    isa: str
    instructions: int
    ops_per_instruction: float
    retention_1way: float       # speedup(1-way) / speedup(8-way)


def run(kernels=KERNEL_ORDER, scale: int = 1, quiet: bool = False,
        session=None, jobs: int | None = None
        ) -> dict[str, dict[str, FetchPressurePoint]]:
    session = session or default_session()
    sweep = preset("fetch-pressure").replace(targets=tuple(kernels),
                                             scale=scale)
    grid = session.run(sweep, jobs=jobs)

    def cycles(kernel: str, isa: str, way: int) -> int:
        key = PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                        scale=scale)
        return grid[key].cycles

    results: dict[str, dict[str, FetchPressurePoint]] = {}
    for kernel in kernels:
        row = {}
        for isa in ISAS:
            built = built_kernel(kernel, isa, scale)
            stats = summarize(built.trace)
            row[isa] = FetchPressurePoint(
                kernel=kernel,
                isa=isa,
                instructions=stats["instructions"],
                ops_per_instruction=stats["ops_per_instruction"],
                retention_1way=(cycles(kernel, isa, 8)
                                / cycles(kernel, isa, 1)),
            )
        results[kernel] = row
        if not quiet:
            cells = "  ".join(
                f"{isa}:{p.ops_per_instruction:5.1f}op/i"
                f"/{p.retention_1way:4.0%}"
                for isa, p in row.items()
            )
            print(f"{kernel:16s} {cells}")
    return results


def mom_fetch_advantage(results) -> dict[str, float]:
    """Instructions MMX fetches per instruction MOM fetches, per kernel."""
    return {
        kernel: row["mmx"].instructions / row["mom"].instructions
        for kernel, row in results.items()
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()
    print("ops/instruction and 1-way retention of 8-way performance:\n")
    results = run(scale=args.scale, jobs=args.jobs)
    print("\nFetch economy: MMX instructions per MOM instruction "
          "(paper: 'an order of magnitude'):")
    for kernel, ratio in mom_fetch_advantage(results).items():
        print(f"  {kernel:16s} {ratio:5.1f}x")


if __name__ == "__main__":
    main()
