"""Shared experiment plumbing, now a thin facade over :mod:`repro.exp`.

Every figure/table driver funnels through the unified experiment engine:
:func:`simulate_kernel` wraps one :class:`~repro.exp.spec.PointSpec` through
the process-wide :func:`~repro.exp.engine.default_session`, which verifies
builds against the numpy golden reference (memoized per process) and
memoizes cycle-level results in the persistent on-disk cache.  The
historical helpers keep their signatures so tests and benchmarks written
against the old sequential runner keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import SimResult
from ..exp.engine import built_kernel, default_session
from ..exp.spec import PointSpec
from ..memsys import PerfectMemory

__all__ = [
    "built_kernel", "perfect_memory_for", "simulate_kernel",
    "SpeedupPoint", "kernel_speedup_grid", "format_grid",
]


def perfect_memory_for(way: int, isa: str, latency: int = 1) -> PerfectMemory:
    """The Section 4.1 idealized memory: Table 1 ports, fixed latency."""
    from ..cpu import machine_config

    cfg = machine_config(way, isa)
    return PerfectMemory(latency, cfg.mem_ports, cfg.mem_port_width)


def simulate_kernel(kernel: str, isa: str, way: int, latency: int = 1,
                    scale: int = 1) -> SimResult:
    """Simulate one (kernel, ISA, width) point of the Figure 5 grid."""
    point = PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                      latency=latency, scale=scale)
    return default_session().run_point(point)


@dataclass
class SpeedupPoint:
    """One bar of Figure 5: cycles and speedup vs the 1-way Alpha run."""

    kernel: str
    isa: str
    way: int
    cycles: int
    speedup: float


def speedup_points(kernel: str, results, isas, ways, baseline_cycles: int,
                   latency: int = 1, scale: int = 1) -> list[SpeedupPoint]:
    """Normalize engine results for one kernel into Figure 5 bars.

    ``results`` is a ``{PointSpec: SimResult}`` mapping as returned by
    :meth:`repro.exp.engine.Session.run`; specs are hashable, so each
    cell is a direct dictionary lookup.
    """
    points = []
    for way in ways:
        for isa in isas:
            key = PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                            latency=latency, scale=scale)
            points.append(SpeedupPoint(
                kernel=kernel, isa=isa, way=way, cycles=results[key].cycles,
                speedup=baseline_cycles / results[key].cycles,
            ))
    return points


def kernel_speedup_grid(kernel: str, isas=("alpha", "mmx", "mdmx", "mom"),
                        ways=(1, 2, 4, 8), latency: int = 1,
                        scale: int = 1, session=None,
                        jobs: int | None = None) -> list[SpeedupPoint]:
    """The full per-kernel grid, normalized to 1-way Alpha (as Figure 5)."""
    session = session or default_session()
    baseline = PointSpec(kind="kernel", target=kernel, isa="alpha", way=1,
                         latency=latency, scale=scale)
    grid = [PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                      latency=latency, scale=scale)
            for way in ways for isa in isas]
    results = session.run([baseline] + grid, jobs=jobs)
    return speedup_points(kernel, results, isas, ways,
                          results[baseline].cycles,
                          latency=latency, scale=scale)


def format_grid(points: list[SpeedupPoint]) -> str:
    """Render a Figure 5 panel as an aligned text table."""
    isas = []
    ways = []
    by_cell: dict[tuple[int, str], SpeedupPoint] = {}
    for p in points:
        if p.isa not in isas:
            isas.append(p.isa)
        if p.way not in ways:
            ways.append(p.way)
        by_cell.setdefault((p.way, p.isa), p)
    lines = ["        " + "".join(f"{isa:>10s}" for isa in isas)]
    for way in ways:
        row = [f"{way}-way  "]
        for isa in isas:
            row.append(f"{by_cell[(way, isa)].speedup:9.1f}x")
        lines.append("".join(row))
    return "\n".join(lines)
