"""Shared experiment plumbing: build, verify, simulate, cache.

Every figure/table driver funnels through :func:`simulate_kernel`, which
(1) synthesizes the workload, (2) builds the ISA version and checks it
against the numpy golden reference, and (3) runs the cycle-level core with
the requested memory model.  Build products are memoized per process so a
sweep over machine widths reuses the same verified trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import Core, SimResult, machine_config
from ..kernels import KERNELS, BuiltKernel, build_and_check
from ..memsys import PerfectMemory

_BUILD_CACHE: dict[tuple[str, str, int], BuiltKernel] = {}


def built_kernel(kernel: str, isa: str, scale: int = 1) -> BuiltKernel:
    """Build (and verify) one kernel/ISA pair, memoized."""
    key = (kernel, isa, scale)
    if key not in _BUILD_CACHE:
        spec = KERNELS[kernel]
        workload = spec.make_workload(scale)
        _BUILD_CACHE[key] = build_and_check(spec, isa, workload)
    return _BUILD_CACHE[key]


def perfect_memory_for(way: int, isa: str, latency: int = 1) -> PerfectMemory:
    """The Section 4.1 idealized memory: Table 1 ports, fixed latency."""
    cfg = machine_config(way, isa)
    return PerfectMemory(latency, cfg.mem_ports, cfg.mem_port_width)


def simulate_kernel(kernel: str, isa: str, way: int, latency: int = 1,
                    scale: int = 1) -> SimResult:
    """Simulate one (kernel, ISA, width) point of the Figure 5 grid."""
    built = built_kernel(kernel, isa, scale)
    cfg = machine_config(way, isa)
    memsys = perfect_memory_for(way, isa, latency)
    return Core(cfg, memsys).run(built.trace)


@dataclass
class SpeedupPoint:
    """One bar of Figure 5: cycles and speedup vs the 1-way Alpha run."""

    kernel: str
    isa: str
    way: int
    cycles: int
    speedup: float


def kernel_speedup_grid(kernel: str, isas=("alpha", "mmx", "mdmx", "mom"),
                        ways=(1, 2, 4, 8), latency: int = 1,
                        scale: int = 1) -> list[SpeedupPoint]:
    """The full per-kernel grid, normalized to 1-way Alpha (as Figure 5)."""
    baseline = simulate_kernel(kernel, "alpha", 1, latency=latency,
                               scale=scale).cycles
    points = []
    for way in ways:
        for isa in isas:
            res = simulate_kernel(kernel, isa, way, latency=latency, scale=scale)
            points.append(SpeedupPoint(
                kernel=kernel, isa=isa, way=way, cycles=res.cycles,
                speedup=baseline / res.cycles,
            ))
    return points


def format_grid(points: list[SpeedupPoint]) -> str:
    """Render a Figure 5 panel as an aligned text table."""
    isas = []
    ways = []
    for p in points:
        if p.isa not in isas:
            isas.append(p.isa)
        if p.way not in ways:
            ways.append(p.way)
    lines = ["        " + "".join(f"{isa:>10s}" for isa in isas)]
    for way in ways:
        row = [f"{way}-way  "]
        for isa in isas:
            match = next(p for p in points if p.way == way and p.isa == isa)
            row.append(f"{match.speedup:9.1f}x")
        lines.append("".join(row))
    return "\n".join(lines)
