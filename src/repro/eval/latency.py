"""Section 4.1's memory-latency tolerance study.

The paper repeats the kernel simulations with a fixed 50-cycle memory
latency ("trying to approximate the effects of streaming-like memory
references") and reports the slow-down of every ISA relative to its own
1-cycle-latency run:

* Alpha slows down 3x-9x,
* MMX / MDMX slow down 4x-8x,
* **MOM slows down only 2x-4x** -- the classic latency tolerance of vector
  instructions, since one matrix load amortizes the latency over up to 16
  element accesses.

Run as a module::

    python -m repro.eval.latency [--scale N]
"""

from __future__ import annotations

import argparse

from ..kernels import KERNEL_ORDER
from .runner import simulate_kernel

HIGH_LATENCY = 50


def run(scale: int = 1, way: int = 4, kernels=KERNEL_ORDER,
        quiet: bool = False) -> dict[str, dict[str, float]]:
    """Slow-down factors {kernel: {isa: slowdown}} at ``way``-wide issue."""
    results: dict[str, dict[str, float]] = {}
    for kernel in kernels:
        row = {}
        for isa in ("alpha", "mmx", "mdmx", "mom"):
            fast = simulate_kernel(kernel, isa, way, latency=1, scale=scale)
            slow = simulate_kernel(kernel, isa, way, latency=HIGH_LATENCY,
                                   scale=scale)
            row[isa] = slow.cycles / fast.cycles
        results[kernel] = row
        if not quiet:
            cells = "  ".join(f"{isa}={v:5.2f}x" for isa, v in row.items())
            print(f"{kernel:16s} {cells}")
    return results


def summarize(results: dict[str, dict[str, float]]) -> dict[str, tuple[float, float]]:
    """(min, max) slow-down per ISA across kernels."""
    out = {}
    for isa in ("alpha", "mmx", "mdmx", "mom"):
        values = [row[isa] for row in results.values()]
        out[isa] = (min(values), max(values))
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--way", type=int, default=4, choices=(1, 2, 4, 8))
    args = parser.parse_args()
    print(f"Slow-down going from 1-cycle to {HIGH_LATENCY}-cycle memory "
          f"({args.way}-way machine):\n")
    results = run(scale=args.scale, way=args.way)
    print("\nRange per ISA (paper: Alpha 3-9x, MMX/MDMX 4-8x, MOM 2-4x):")
    for isa, (lo, hi) in summarize(results).items():
        print(f"  {isa:6s} {lo:.1f}x .. {hi:.1f}x")


if __name__ == "__main__":
    main()
