"""Section 4.1's memory-latency tolerance study.

The paper repeats the kernel simulations with a fixed 50-cycle memory
latency ("trying to approximate the effects of streaming-like memory
references") and reports the slow-down of every ISA relative to its own
1-cycle-latency run:

* Alpha slows down 3x-9x,
* MMX / MDMX slow down 4x-8x,
* **MOM slows down only 2x-4x** -- the classic latency tolerance of vector
  instructions, since one matrix load amortizes the latency over up to 16
  element accesses.

A thin formatter over the ``latency`` preset of the unified experiment
engine; run through the CLI (``repro latency``) or as a module::

    python -m repro.eval.latency [--scale N] [--jobs N]
"""

from __future__ import annotations

import argparse

from ..exp import PointSpec, default_session, preset
from ..exp.spec import HIGH_LATENCY
from ..kernels import KERNEL_ORDER

__all__ = ["HIGH_LATENCY", "run", "summarize", "main"]

ISAS = ("alpha", "mmx", "mdmx", "mom")


def run(scale: int = 1, way: int = 4, kernels=KERNEL_ORDER,
        quiet: bool = False, session=None,
        jobs: int | None = None) -> dict[str, dict[str, float]]:
    """Slow-down factors {kernel: {isa: slowdown}} at ``way``-wide issue."""
    session = session or default_session()
    sweep = preset("latency").replace(targets=tuple(kernels), ways=(way,),
                                      scale=scale)
    grid = session.run(sweep, jobs=jobs)

    def cycles(kernel: str, isa: str, latency: int) -> int:
        key = PointSpec(kind="kernel", target=kernel, isa=isa, way=way,
                        latency=latency, scale=scale)
        return grid[key].cycles

    results: dict[str, dict[str, float]] = {}
    for kernel in kernels:
        row = {isa: cycles(kernel, isa, HIGH_LATENCY) / cycles(kernel, isa, 1)
               for isa in ISAS}
        results[kernel] = row
        if not quiet:
            cells = "  ".join(f"{isa}={v:5.2f}x" for isa, v in row.items())
            print(f"{kernel:16s} {cells}")
    return results


def summarize(results: dict[str, dict[str, float]]) -> dict[str, tuple[float, float]]:
    """(min, max) slow-down per ISA across kernels."""
    out = {}
    for isa in ISAS:
        values = [row[isa] for row in results.values()]
        out[isa] = (min(values), max(values))
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--way", type=int, default=4, choices=(1, 2, 4, 8))
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()
    print(f"Slow-down going from 1-cycle to {HIGH_LATENCY}-cycle memory "
          f"({args.way}-way machine):\n")
    results = run(scale=args.scale, way=args.way, jobs=args.jobs)
    print("\nRange per ISA (paper: Alpha 3-9x, MMX/MDMX 4-8x, MOM 2-4x):")
    for isa, (lo, hi) in summarize(results).items():
        print(f"  {isa:6s} {lo:.1f}x .. {hi:.1f}x")


if __name__ == "__main__":
    main()
