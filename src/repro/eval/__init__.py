"""Experiment drivers regenerating every table and figure of the paper."""
