"""Figure 5: kernel speedups of the four ISAs across issue widths.

Reproduces the eight panels of Figure 5 -- speed-up of each multimedia ISA
with respect to the 1-way Alpha run, under the idealized 1-cycle memory of
Section 4.1.  A thin formatter over the ``figure5`` preset of the unified
experiment engine; run through the CLI (``repro figure5``) or as a module::

    python -m repro.eval.figure5 [--scale N] [--kernel NAME] [--jobs N]

The paper's headline claims checked here: MMX/MDMX gain 1.5x-15x over
scalar; MDMX edges MMX on reduction-heavy kernels; MOM adds 1.3x-4x on top
(except rgb2ycc, whose vector length is 3); MOM's advantage is largest at
low issue widths thanks to its fetch-pressure reduction.
"""

from __future__ import annotations

import argparse

from ..exp import PointSpec, default_session, preset
from ..kernels import KERNEL_ORDER
from .runner import format_grid, speedup_points

ISAS = ("alpha", "mmx", "mdmx", "mom")
WAYS = (1, 2, 4, 8)


def run(scale: int = 1, kernels=KERNEL_ORDER, quiet: bool = False,
        session=None, jobs: int | None = None, progress=None) -> dict:
    """Compute the full Figure 5 grid; returns {kernel: [SpeedupPoint]}.

    The whole grid (all kernels, all baselines) resolves into one engine
    sweep, so ``jobs > 1`` parallelizes across every uncached point.
    ``progress`` is forwarded to :meth:`Session.run` (called with the
    count of newly resolved points).
    """
    session = session or default_session()
    sweep = preset("figure5").replace(targets=tuple(kernels), scale=scale)
    results = session.run(sweep, jobs=jobs, progress=progress)
    output = {}
    for kernel in kernels:
        baseline = results[PointSpec(kind="kernel", target=kernel,
                                     isa="alpha", way=1, scale=scale)].cycles
        points = speedup_points(kernel, results, ISAS, WAYS, baseline,
                                scale=scale)
        output[kernel] = points
        if not quiet:
            print(f"\n=== Figure 5: {kernel} (speed-up vs 1-way Alpha) ===")
            print(format_grid(points))
    return output


def mom_vs_best_simd(results: dict) -> dict[str, float]:
    """MOM's extra gain over the better of MMX/MDMX at 4-way (paper: 1.3-4x,
    except rgb2ycc)."""
    ratios = {}
    for kernel, points in results.items():
        at4 = {p.isa: p.speedup for p in points if p.way == 4}
        ratios[kernel] = at4["mom"] / max(at4["mmx"], at4["mdmx"])
    return ratios


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--kernel", action="append",
                        help="restrict to specific kernels (repeatable)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel simulation processes")
    args = parser.parse_args()
    kernels = tuple(args.kernel) if args.kernel else KERNEL_ORDER
    results = run(scale=args.scale, kernels=kernels, jobs=args.jobs)
    print("\n=== MOM gain over best 1D SIMD ISA at 4-way ===")
    for kernel, ratio in mom_vs_best_simd(results).items():
        print(f"  {kernel:16s} {ratio:5.2f}x")


if __name__ == "__main__":
    main()
