"""Figure 7: full-application speedups with realistic cache hierarchies.

Reproduces the five panels of Figure 7: each application runs in five
configurations -- Alpha and MMX on the conventional cache, MOM on the
multi-address cache, the vector cache and the collapsing-buffer cache --
at 4-way and 8-way issue, normalized to the 4-way Alpha/conventional run.

Paper claims checked here (Section 4.2.2): MMX gains 1.1x-3.1x over Alpha,
MOM 1.5x-4.3x (about 20% over MMX on average); the multi-address cache wins
at 4-way (working sets fit in L1), the vector/collapsing caches win at
8-way (bandwidth), and mpeg2-encode is the exception where large strides
defeat the line-pair organizations.

Run as a module::

    python -m repro.eval.figure7 [--scale N] [--app NAME]
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..apps import APP_ORDER, APPS
from ..cpu import Core, machine_config
from ..memsys import (CollapsingBufferHierarchy, ConventionalHierarchy,
                      MultiAddressHierarchy, VectorCacheHierarchy)

#: The five configurations of Figure 7: (label, app ISA, memory factory).
CONFIGS = (
    ("alpha-conv", "alpha", ConventionalHierarchy),
    ("mmx-conv", "mmx", ConventionalHierarchy),
    ("mom-multiaddress", "mom", MultiAddressHierarchy),
    ("mom-vectorcache", "mom", VectorCacheHierarchy),
    ("mom-collapsing", "mom", CollapsingBufferHierarchy),
)

WAYS = (4, 8)

_APP_CACHE: dict[tuple[str, str, int], object] = {}


def built_app(app: str, isa: str, scale: int = 1):
    key = (app, isa, scale)
    if key not in _APP_CACHE:
        _APP_CACHE[key] = APPS[app].build(isa, scale)
    return _APP_CACHE[key]


@dataclass
class AppPoint:
    """One bar of Figure 7."""

    app: str
    config: str
    way: int
    cycles: int
    speedup: float


def run_app(app: str, scale: int = 1, quiet: bool = False) -> list[AppPoint]:
    """All ten bars for one application panel."""
    points: list[AppPoint] = []
    baseline = None
    for way in WAYS:
        for label, isa, mem_factory in CONFIGS:
            built = built_app(app, isa, scale)
            cfg = machine_config(way, isa)
            result = Core(cfg, mem_factory(way)).run(built.trace)
            if baseline is None:        # 4-way alpha-conventional
                baseline = result.cycles
            points.append(AppPoint(
                app=app, config=label, way=way, cycles=result.cycles,
                speedup=baseline / result.cycles,
            ))
    if not quiet:
        print(f"\n=== Figure 7: {app} (speed-up vs 4-way Alpha) ===")
        for way in WAYS:
            row = [p for p in points if p.way == way]
            cells = "  ".join(f"{p.config}={p.speedup:5.2f}x" for p in row)
            print(f"{way}-way: {cells}")
    return points


def run(scale: int = 1, apps=APP_ORDER, quiet: bool = False) -> dict:
    return {app: run_app(app, scale=scale, quiet=quiet) for app in apps}


def summarize(results: dict) -> dict[str, float]:
    """Headline ratios: best-MOM over MMX at 4-way, per app and average."""
    ratios = {}
    for app, points in results.items():
        at4 = {p.config: p.speedup for p in points if p.way == 4}
        best_mom = max(v for k, v in at4.items() if k.startswith("mom"))
        ratios[app] = best_mom / at4["mmx-conv"]
    ratios["average"] = sum(ratios.values()) / len(ratios)
    return ratios


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--app", action="append")
    args = parser.parse_args()
    apps = tuple(args.app) if args.app else APP_ORDER
    results = run(scale=args.scale, apps=apps)
    print("\n=== MOM (best cache) gain over MMX at 4-way "
          "(paper: ~20% average) ===")
    for app, ratio in summarize(results).items():
        print(f"  {app:16s} {ratio:5.2f}x")


if __name__ == "__main__":
    main()
