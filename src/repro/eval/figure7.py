"""Figure 7: full-application speedups with realistic cache hierarchies.

Reproduces the five panels of Figure 7: each application runs in five
configurations -- Alpha and MMX on the conventional cache, MOM on the
multi-address cache, the vector cache and the collapsing-buffer cache --
at 4-way and 8-way issue, normalized to the 4-way Alpha/conventional run.
A thin formatter over the ``figure7`` preset of the unified experiment
engine; run through the CLI (``repro figure7``) or as a module::

    python -m repro.eval.figure7 [--scale N] [--app NAME] [--jobs N]

Paper claims checked here (Section 4.2.2): MMX gains 1.1x-3.1x over Alpha,
MOM 1.5x-4.3x (about 20% over MMX on average); the multi-address cache wins
at 4-way (working sets fit in L1), the vector/collapsing caches win at
8-way (bandwidth), and mpeg2-encode is the exception where large strides
defeat the line-pair organizations.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from ..apps import APP_ORDER
from ..exp import PointSpec, built_app, default_session, preset
from ..exp.spec import FIGURE7_CONFIGS

#: The five configurations of Figure 7: (label, app ISA, memory model).
CONFIGS = FIGURE7_CONFIGS

WAYS = (4, 8)

__all__ = ["CONFIGS", "WAYS", "AppPoint", "built_app", "run_app", "run",
           "summarize", "main"]


@dataclass
class AppPoint:
    """One bar of Figure 7."""

    app: str
    config: str
    way: int
    cycles: int
    speedup: float


def _panel(app: str, results, scale: int) -> list[AppPoint]:
    """Normalize one application's engine results into Figure 7 bars."""
    def cycles(way: int, isa: str, memory: str) -> int:
        key = PointSpec(kind="app", target=app, isa=isa, way=way,
                        memory=memory, scale=scale)
        return results[key].cycles

    baseline = cycles(4, "alpha", "conventional")
    return [
        AppPoint(app=app, config=label, way=way,
                 cycles=cycles(way, isa, memory),
                 speedup=baseline / cycles(way, isa, memory))
        for way in WAYS
        for label, isa, memory in CONFIGS
    ]


def run_app(app: str, scale: int = 1, quiet: bool = False,
            session=None, jobs: int | None = None) -> list[AppPoint]:
    """All ten bars for one application panel."""
    session = session or default_session()
    sweep = preset("figure7").replace(targets=(app,), scale=scale)
    points = _panel(app, session.run(sweep, jobs=jobs), scale)
    if not quiet:
        _print_panel(app, points)
    return points


def _print_panel(app: str, points: list[AppPoint]) -> None:
    print(f"\n=== Figure 7: {app} (speed-up vs 4-way Alpha) ===")
    for way in WAYS:
        row = [p for p in points if p.way == way]
        cells = "  ".join(f"{p.config}={p.speedup:5.2f}x" for p in row)
        print(f"{way}-way: {cells}")


def run(scale: int = 1, apps=APP_ORDER, quiet: bool = False,
        session=None, jobs: int | None = None, progress=None) -> dict:
    """All panels through one engine sweep (parallel across every point).

    ``progress`` is forwarded to :meth:`Session.run`.
    """
    session = session or default_session()
    sweep = preset("figure7").replace(targets=tuple(apps), scale=scale)
    results = session.run(sweep, jobs=jobs, progress=progress)
    output = {}
    for app in apps:
        output[app] = _panel(app, results, scale)
        if not quiet:
            _print_panel(app, output[app])
    return output


def summarize(results: dict) -> dict[str, float]:
    """Headline ratios: best-MOM over MMX at 4-way, per app and average."""
    ratios = {}
    for app, points in results.items():
        at4 = {p.config: p.speedup for p in points if p.way == 4}
        best_mom = max(v for k, v in at4.items() if k.startswith("mom"))
        ratios[app] = best_mom / at4["mmx-conv"]
    ratios["average"] = sum(ratios.values()) / len(ratios)
    return ratios


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=1)
    parser.add_argument("--app", action="append")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()
    apps = tuple(args.app) if args.app else APP_ORDER
    results = run(scale=args.scale, apps=apps, jobs=args.jobs)
    print("\n=== MOM (best cache) gain over MMX at 4-way "
          "(paper: ~20% average) ===")
    for app, ratio in summarize(results).items():
        print(f"  {app:16s} {ratio:5.2f}x")


if __name__ == "__main__":
    main()
