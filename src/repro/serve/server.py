"""The asyncio simulation job server.

One :class:`SimServer` owns a :class:`~repro.exp.engine.Session` (and
through it the persistent :class:`~repro.exp.cache.ResultCache`) plus a
:class:`~repro.serve.shard.ShardPool` of worker processes, and serves
the newline-delimited JSON protocol of :mod:`repro.serve.protocol` to
any number of concurrent clients:

* **Cache first** -- a point whose result is already in the session
  memo or the on-disk cache is answered immediately on the event loop;
  no worker is touched.  The service and in-process sessions share one
  source-fingerprinted store, so either side can warm the other.
* **Dedup** -- identical points in flight (same content hash, any
  client) share one future; the simulation runs once and every waiter
  receives the same bits.
* **Shard + batch** -- cache misses are grouped by build identity and
  queued to the shard that owns that build (see
  :mod:`repro.serve.shard`), so a worker builds each kernel/app once
  and then answers its whole batch from the build memo.
* **Backpressure** -- a global in-flight budget (``max_inflight``,
  default ``8 x workers``) bounds queued-but-unfinished simulations;
  a submit that exceeds it waits instead of ballooning worker queues,
  and every streamed response awaits ``writer.drain()``.
* **Graceful drain** -- shutdown (the ``shutdown`` op or
  :meth:`SimServer.stop`) stops accepting work, lets in-flight points
  finish and be streamed/cached, then joins the pool.

Failure modes: a point whose build or simulation raises streams back an
``ok: false`` result for that point only (the shard survives); a client
that disconnects mid-job does not cancel its simulations -- they finish
and warm the cache for the next asker; a worker process killed from
outside has its outstanding points failed and its process respawned by
the shard pool's watchdog (see :mod:`repro.serve.shard`), so the
in-flight futures resolve, their backpressure slots release, and
capacity recovers instead of shrinking for the life of the server.
Worker churn is visible to clients: the ``stats``/``metrics`` snapshot
carries ``workers_alive``, ``worker_deaths``, ``worker_respawns``,
``worker_failed_keys`` and per-shard queue depths, and the ``metrics``
op adds a Prometheus-style exposition with submit-to-answer latency
percentiles (see :mod:`repro.obs`).
"""

from __future__ import annotations

import asyncio

from .. import __version__
from ..cpu import SimResult
from ..exp.engine import Session
from ..exp.spec import PointSpec
from ..obs import Obs, Registry, obs_from_env, render_prometheus
from ..obs.spans import NULL_TRACER
from . import protocol
from .shard import ShardPool, build_key


class SimServer:
    """Sharded, deduplicating simulation service over asyncio TCP.

    Args:
        host/port: bind address; ``port=0`` picks a free port (see
            :attr:`port` after :meth:`start`).
        workers: shard-pool width (worker processes).
        cache_dir / use_cache: forwarded to :class:`Session`.
        max_inflight: in-flight simulation budget (default ``8*workers``).
        allow_shutdown: honor the ``shutdown`` op (CLI/CI convenience);
            disable for servers that should only die by signal.
        obs: telemetry bundle.  The server's *metrics* are always live
            (a server exists to be watched; the ``metrics`` op and
            ``repro stats`` read them), so when the environment doesn't
            enable telemetry the default is a metrics-only bundle with
            tracing off.  Span tracing (client request → shard dispatch
            → worker sim → flush, worker spans stitched back) turns on
            via ``REPRO_OBS_TRACE=path`` / ``REPRO_OBS=1`` or an
            explicit ``obs``.
    """

    def __init__(self, host: str = protocol.DEFAULT_HOST,
                 port: int = protocol.DEFAULT_PORT, *,
                 workers: int = 2, cache_dir=None, use_cache: bool = True,
                 max_inflight: int | None = None,
                 allow_shutdown: bool = True,
                 obs: Obs | None = None) -> None:
        self.host = host
        self.port = port
        self.workers = workers
        self.allow_shutdown = allow_shutdown
        if obs is None:
            obs = obs_from_env()
            if not obs.enabled:
                obs = Obs(Registry(), NULL_TRACER, enabled=True)
        self.obs = obs
        self.metrics = obs.metrics
        self.session = Session(cache_dir, use_cache=use_cache, obs=obs)
        self.stats = {"connections": 0, "jobs": 0, "points": 0,
                      "cache_hits": 0, "dedup_hits": 0, "simulated": 0,
                      "errors": 0}
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self._max_inflight = (8 * workers if max_inflight is None
                              else max_inflight)
        #: content hash -> (PointSpec, future resolving to (result, error))
        self._inflight: dict[str, tuple[PointSpec, asyncio.Future]] = {}
        self._pool: ShardPool | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._slots: asyncio.Semaphore | None = None
        self._draining = False
        self._stopped: asyncio.Event | None = None
        self._active_jobs = 0
        self._writers: set[asyncio.StreamWriter] = set()

    # --- lifecycle --------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Spawn the shard pool and start listening; returns (host, port)."""
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self._max_inflight)
        self._stopped = asyncio.Event()
        self._pool = ShardPool(self.workers, self._on_worker_result)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port,
            limit=protocol.MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes (directly or via shutdown op)."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful drain: finish in-flight work, then tear everything down."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        self._server.close()
        pending = [fut for _, fut in self._inflight.values()]
        if pending:
            await asyncio.gather(*(asyncio.shield(f) for f in pending),
                                 return_exceptions=True)
        # Let handlers flush their final result/done messages.  Wait as
        # long as *some* job keeps finishing (a slow reader draining a
        # big backlog is progress); only a job count frozen for a full
        # window means a wedged peer, which gets force-closed.
        last_active = self._active_jobs
        stalled = self._loop.time()
        while self._active_jobs:
            if self._active_jobs != last_active:
                last_active = self._active_jobs
                stalled = self._loop.time()
            elif self._loop.time() - stalled > 10.0:
                break
            await asyncio.sleep(0.025)
        for writer in list(self._writers):
            writer.close()
        await self._loop.run_in_executor(None, self._pool.close)
        await self._server.wait_closed()
        self._stopped.set()

    # --- worker plumbing --------------------------------------------------

    def _on_worker_result(self, key: str, result: dict | None,
                          error: str | None, spans=None) -> None:
        """Collector-thread callback; bridge onto the event loop."""
        self._loop.call_soon_threadsafe(self._complete, key, result, error,
                                        spans)

    def _complete(self, key: str, result: dict | None,
                  error: str | None, spans=None) -> None:
        if spans:
            # Worker span records ship on a task's last result; stitch
            # them into the server's trace (same trace id by handle).
            self.obs.tracer.adopt(spans)
        entry = self._inflight.pop(key, None)
        if entry is None:      # defensive: never let a callback raise and
            return             # strand waiters -- every key completes once
        self._slots.release()  # exactly one release per registration
        point, future = entry
        if error is None:
            # Store through the session so later submits and in-process
            # Sessions see this result: the memo synchronously (lookups
            # after this callback must hit), the disk write off-loop so
            # a storm of completions cannot stall response streaming.
            fresh = SimResult.from_dict(result)
            self.session.memoize(point, fresh)
            self._loop.run_in_executor(None, self.session.persist,
                                       point, fresh)
        else:
            self.stats["errors"] += 1
        if not future.done():
            future.set_result((result, error))

    # --- request handling -------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.stats["connections"] += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, protocol.error_response(
                        "request line too long"))
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line)
                    op = protocol.check_request(message)
                except protocol.ProtocolError as exc:
                    await self._send(writer, protocol.error_response(
                        str(exc), version=__version__))
                    break       # a confused peer gets one loud error
                if not await self._dispatch(op, message, writer):
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass                # client went away; in-flight sims continue
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _dispatch(self, op: str, message: dict,
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request; returns False to end the connection."""
        if op == "ping":
            await self._send(writer, {
                "ok": True, "op": "pong",
                "protocol": protocol.PROTOCOL_VERSION,
                "version": __version__, "salt": self.session.salt,
                "workers": self.workers, "stats": self._stat_snapshot()})
            return True
        if op == "stats":
            await self._send(writer, {"ok": True, "op": "stats",
                                      "stats": self._stat_snapshot()})
            return True
        if op == "metrics":
            # Additive op (see protocol docstring): Prometheus text plus
            # a JSON snapshot of the same registry.  _sync_metrics runs
            # inside the snapshot call; everything here is in-memory, so
            # the event loop is never blocked by a metrics poll.
            snapshot = self._stat_snapshot()
            await self._send(writer, {
                "ok": True, "op": "metrics",
                "text": render_prometheus(self.metrics),
                "stats": snapshot,
                "metrics": self.metrics.snapshot()})
            return True
        if op == "shutdown":
            if not self.allow_shutdown:
                await self._send(writer, protocol.error_response(
                    "shutdown disabled on this server"))
                return True
            await self._send(writer, {"ok": True, "op": "bye"})
            asyncio.ensure_future(self.stop())
            return False
        if op == "submit":
            self._active_jobs += 1
            try:
                await self._handle_submit(message, writer)
            finally:
                self._active_jobs -= 1
            return True
        await self._send(writer, protocol.error_response(
            f"unknown op {op!r}"))
        return True

    async def _handle_submit(self, message: dict,
                             writer: asyncio.StreamWriter) -> None:
        job = message.get("id", "")
        if self._draining:
            await self._send(writer, protocol.error_response(
                "server is draining", id=job))
            return
        payloads = message.get("points")
        if not isinstance(payloads, list) or not payloads:
            await self._send(writer, protocol.error_response(
                "submit needs a non-empty 'points' list", id=job))
            return
        try:
            points = [PointSpec.from_payload(p) for p in payloads]
        except (TypeError, ValueError, KeyError) as exc:
            await self._send(writer, protocol.error_response(
                f"bad point payload: {exc}", id=job))
            return

        self.stats["jobs"] += 1
        self.stats["points"] += len(points)
        await self._send(writer, {"ok": True, "op": "accepted", "id": job,
                                  "points": len(points)})
        accepted_at = self._loop.time()
        tracer = self.obs.tracer
        request_span = tracer.span("serve.request", id=str(job),
                                   points=len(points))

        # Classify every point: served from cache, attached to an
        # in-flight duplicate, or owned (we will simulate it).  The whole
        # scan is leak-proofed: however it exits, every acquired slot is
        # either registered in ``_inflight`` (and will be released by
        # ``_complete``) or released here -- a slot that escaped both
        # would permanently shrink server capacity.
        counts = {"cache": 0, "dedup": 0, "sim": 0}
        waiters: list[tuple[int, PointSpec, str, asyncio.Future]] = []
        batches: dict[tuple, list[tuple[str, dict]]] = {}
        slot_held = False
        dispatch_span = tracer.span("serve.dispatch", parent=request_span)
        try:
            for seq, point in enumerate(points):
                key = self.session.key_for(point)
                while True:
                    cached = self.session.lookup(point)
                    if cached is not None:
                        source = "cache"
                        # Whatever layer replayed it (session memo or disk),
                        # what goes over the wire is not this client's fresh
                        # measurement -- mark the copy so the recorded
                        # wall-clock can never be read as one.
                        data = cached.to_dict()
                        data.setdefault("meta", {})["cache_hit"] = True
                        future = self._loop.create_future()
                        future.set_result((data, None))
                        break
                    if key in self._inflight:
                        source = "dedup"
                        future = self._inflight[key][1]
                        break
                    # Backpressure: block the scan (and this client) until a
                    # simulation slot frees up, bounding worker queues.  Any
                    # batch collected so far must reach the workers *before*
                    # blocking, or the slots it holds could never free.  The
                    # await yields the loop, so another client may cache or
                    # register this very point meanwhile -- reclassify after
                    # waking (classification and registration must be atomic,
                    # i.e. no await between them) instead of double-booking.
                    if self._slots.locked():
                        self._flush(batches, span=dispatch_span)
                    await self._slots.acquire()
                    slot_held = True
                    if (key in self._inflight
                            or self.session.lookup(point) is not None):
                        self._slots.release()
                        slot_held = False
                        continue
                    source = "sim"
                    future = self._loop.create_future()
                    self._inflight[key] = (point, future)
                    slot_held = False      # _complete owns the release now
                    batches.setdefault(build_key(point.payload()), []).append(
                        (key, point.payload()))
                    break
                counts[source] += 1
                self.stats[{"cache": "cache_hits", "dedup": "dedup_hits",
                            "sim": "simulated"}[source]] += 1
                waiters.append((seq, point, source, future))
        except Exception as exc:
            # A mid-scan failure (e.g. a corrupt cache entry raising out
            # of lookup) must not strand what was already registered:
            # flush collected batches so their futures resolve and their
            # slots release through the normal completion path, drop any
            # slot acquired but not yet registered, and fail the job.
            if slot_held:
                self._slots.release()
            self._flush(batches, span=dispatch_span)
            dispatch_span.end()
            self.stats["errors"] += 1
            request_span.set(error="classification").end()
            await self._send(writer, protocol.error_response(
                f"submit failed mid-classification: {exc}", id=job))
            return

        self._flush(batches, span=dispatch_span)
        dispatch_span.set(**counts).end()

        latency = self.metrics.histogram("submit_answer_seconds")

        async def deliver(seq, point, source, future):
            result, error = await asyncio.shield(future)
            return seq, point, source, result, error

        tasks = [asyncio.ensure_future(deliver(*w)) for w in waiters]
        flush_span = tracer.span("serve.flush", parent=request_span,
                                 points=len(waiters))
        try:
            for task in asyncio.as_completed(tasks):
                seq, point, source, result, error = await task
                response = {"ok": error is None, "op": "result", "id": job,
                            "seq": seq, "source": source,
                            "point": point.payload()}
                if error is None:
                    response["result"] = result
                else:
                    response["error"] = error
                await self._send(writer, response)
                # Submit-to-answer latency: from job acceptance to this
                # point's result hitting the client's socket buffer.
                latency.observe(self._loop.time() - accepted_at)
        finally:
            for task in tasks:
                task.cancel()
            flush_span.end()
            request_span.end()
        await self._send(writer, {
            "ok": True, "op": "done", "id": job, "points": len(points),
            "cache_hits": counts["cache"], "dedup_hits": counts["dedup"],
            "simulated": counts["sim"]})

    # --- helpers ----------------------------------------------------------

    def _flush(self, batches: dict[tuple, list[tuple[str, dict]]],
               span=None) -> None:
        """Queue the collected same-build batches (one hop each) and reset.

        ``span`` (when tracing) parents the worker-side ``worker.sim``
        spans, which ship back on each task's last result.

        A batch the pool refuses (closed mid-drain, dead queue) is
        completed as an error immediately: its keys are registered in
        ``_inflight`` holding backpressure slots, so dropping the batch
        on the floor would leak both and hang every waiter.
        """
        handle = span.handle if span is not None else None
        for batch in batches.values():
            try:
                self._pool.submit(batch, span=handle)
            except Exception as exc:
                detail = f"worker pool rejected batch: {exc}"
                for key, _payload in batch:
                    self._complete(key, None, detail)
        batches.clear()

    async def _send(self, writer: asyncio.StreamWriter,
                    message: dict) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()

    def _stat_snapshot(self) -> dict:
        cache = self.session.cache
        # Unsorted count: ping/stats run on the event loop, and a
        # long-lived shared cache can hold many thousands of entries.
        entries = (sum(1 for _ in cache.directory.glob("*.json"))
                   if cache is not None and cache.directory.is_dir() else 0)
        pool = self._pool
        depths = pool.queue_depths() if pool else []
        snapshot = dict(self.stats, inflight=len(self._inflight),
                        draining=self._draining,
                        workers_alive=pool.alive() if pool else 0,
                        worker_deaths=pool.deaths if pool else 0,
                        worker_respawns=pool.restarts if pool else 0,
                        worker_failed_keys=pool.failed_keys if pool else 0,
                        shard_queue_depths=depths,
                        cache_entries=entries)
        self._sync_metrics(snapshot)
        return snapshot

    def _sync_metrics(self, snapshot: dict) -> None:
        """Mirror the stats snapshot into the registry as gauges.

        Synced whenever a snapshot is taken (``ping``/``stats``/
        ``metrics`` ops) rather than at every increment, so the hot
        submit path pays nothing for the mirror; counters that must be
        live continuously (latency histograms, cache counters) are
        observed at their sources instead.
        """
        metrics = self.metrics
        for key, value in snapshot.items():
            if key == "shard_queue_depths":
                for shard, depth in enumerate(value):
                    metrics.gauge(
                        f'server_shard_queue_depth{{shard="{shard}"}}'
                    ).set(depth)
            elif isinstance(value, bool):
                metrics.gauge(f"server_{key}").set(int(value))
            elif isinstance(value, (int, float)):
                metrics.gauge(f"server_{key}").set(value)
        metrics.gauge("server_max_inflight").set(self._max_inflight)


async def run_server(server: SimServer, ready=None) -> None:
    """Start a server and serve until it is stopped.

    Args:
        ready: optional event set once the socket is bound -- anything
            with a ``set()`` method, e.g. a ``threading.Event`` when the
            caller boots the loop in a background thread (the test and
            load-bench harnesses) and needs the real port before
            connecting.
    """
    await server.start()
    if ready is not None:
        ready.set()
    await server.serve_forever()
