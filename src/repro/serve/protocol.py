"""Wire protocol of the simulation service: versioned NDJSON over TCP.

Every message is one JSON object on one ``\\n``-terminated line (UTF-8,
no embedded newlines -- ``json.dumps`` never emits raw newlines).  Every
*request* carries ``{"op": ..., "protocol": PROTOCOL_VERSION}``; the
server refuses, loudly and with its own version in the error payload,
any request whose ``protocol`` differs, so mismatched client/server
builds fail at the handshake instead of mis-parsing each other.

Requests (client -> server)::

    {"op": "ping", "protocol": 1, "version": "<client package version>"}
    {"op": "submit", "protocol": 1, "id": "<job id>",
     "points": [<PointSpec payload>, ...]}
    {"op": "stats", "protocol": 1}
    {"op": "metrics", "protocol": 1}
    {"op": "shutdown", "protocol": 1}

Responses (server -> client), all carrying ``"ok"``::

    {"ok": true, "op": "pong", "protocol": 1, "version": ..., "salt": ...,
     "workers": N, "stats": {...}}
    {"ok": true, "op": "accepted", "id": ..., "points": N}
    {"ok": true, "op": "result", "id": ..., "seq": i, "source":
     "cache"|"dedup"|"sim", "point": {...}, "result": <SimResult dict>}
    {"ok": true, "op": "done", "id": ..., "points": N,
     "cache_hits": ..., "dedup_hits": ..., "simulated": ...}
    {"ok": true, "op": "stats", "stats": {...}}
    {"ok": true, "op": "metrics", "text": "<Prometheus exposition>",
     "stats": {...}, "metrics": {<registry snapshot>}}
    {"ok": true, "op": "bye"}
    {"ok": false, "error": "...", ...}

``metrics`` is additive (new in package 1.6): ``text`` is the
Prometheus-style text exposition of the server's registry -- counters,
gauges (per-shard queue depth, in-flight budget) and latency summaries
(submit-to-answer p50/p90/p99) -- and ``metrics`` the same registry as
a JSON snapshot.  An older server answers the op with a plain
``"ok": false`` unknown-op error, so no protocol-version bump is
needed.

``result`` messages stream back in *completion* order (``seq`` indexes
into the submitted point list); ``done`` is always the last message of a
job.  A failed point still produces a ``result`` message, with
``"ok": false`` and ``"error"`` instead of ``"result"``.

Cycle accounting (package 1.7) rides the existing shapes additively:
a point payload carries ``"accounting": true`` only when requested
(plain payloads are byte-identical to 1.6), and an accounted result
dict gains a ``"cpi_stack"`` key that old clients simply ignore --
:meth:`SimResult.from_dict` on either side tolerates the field's
absence -- so no protocol-version bump is needed.  An older *server*
rejects the unknown spec field per point (a failed ``result`` message,
not a job abort), which is the intended loud-but-contained failure.
"""

from __future__ import annotations

import json

#: Bump on any incompatible wire change; the handshake rejects mismatches.
PROTOCOL_VERSION = 1

#: Refuse lines beyond this many bytes (a figure7-sized submit is ~20 KiB;
#: this bound exists so a stray client cannot balloon server memory).
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Default TCP endpoint of ``repro serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8643


class ProtocolError(ValueError):
    """A malformed or version-mismatched message."""


def encode(message: dict) -> bytes:
    """One message as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode() + b"\n"


def decode(line: bytes | str) -> dict:
    """Parse one line into a message dict.

    Raises:
        ProtocolError: not JSON, or not a JSON object.
    """
    try:
        message = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"undecodable message: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}")
    return message


def check_request(message: dict) -> str:
    """Validate a request's shape and protocol version; returns the op.

    Raises:
        ProtocolError: missing op, or client/server protocol mismatch.
    """
    op = message.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request has no 'op'")
    got = message.get("protocol")
    if got != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol mismatch: server speaks {PROTOCOL_VERSION}, "
            f"request carries {got!r}; upgrade the older side")
    return op


def request(op: str, **fields) -> dict:
    """A client request carrying the local protocol version."""
    return {"op": op, "protocol": PROTOCOL_VERSION, **fields}


def error_response(message: str, **fields) -> dict:
    return {"ok": False, "error": message,
            "protocol": PROTOCOL_VERSION, **fields}
