"""Hash-sharded simulation worker pool with per-shard build affinity.

Every :class:`~repro.exp.spec.PointSpec` belongs to exactly one shard,
chosen by a stable content hash of its *build identity* -- ``(kind,
target, isa, scale)`` -- modulo the pool width.  All points that share a
build therefore land on the same worker process, whose per-process
:data:`repro.exp.engine._BUILD_MEMO` builds and verifies the trace once
and then serves every sibling point from memory.  The server batches
same-build points into one task for the same reason: the worker runs the
batch back to back, so at most the *first* point of a build pays the
build-and-verify cost.

Workers receive task batches over a per-shard queue and report each
point individually on one shared result queue as soon as it finishes,
so results stream back in completion order.  A collector thread drains
the result queue and hands ``(key, result_dict, error)`` triples to the
callback supplied by the owner (the asyncio server bridges them onto its
event loop with ``call_soon_threadsafe``).

Every submitted key is tracked until its result is reported, and a
watchdog thread monitors worker liveness: if a worker process dies (OOM
kill, segfault, operator ``kill -9``) the watchdog reports an error for
each of the dead shard's outstanding keys, replaces the shard's task
queue (a worker killed inside ``get()`` dies holding the queue's reader
lock, which would deadlock a respawn on the same queue) and spawns a
fresh worker -- backing off exponentially when workers die young, so a
persistently crashing worker (broken deploy, startup OOM) cannot turn
the watchdog into a fork storm.  Without this, a dead worker silently
stranded its keys --
the server's in-flight futures never resolved and their backpressure
slots never released, permanently shrinking service capacity; batches
still queued for the shard would also never run.  The owner treats a
straggling result for an already-failed key as a no-op, so the recovery
is idempotent from its side.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import time
import traceback

_STOP = None      # queue sentinel


def build_key(payload: dict) -> tuple:
    """The build identity of a point payload: what :func:`built_kernel` /
    :func:`built_app` memoize on."""
    return (payload["kind"], payload["target"], payload["isa"],
            payload.get("scale", 1))


def shard_index(key: tuple, shards: int) -> int:
    """Stable shard assignment for a build key.

    Derived from sha256 of the repr, never :func:`hash`, so the mapping
    survives hash randomization and is identical in every process --
    clients and tests can predict placement.
    """
    digest = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _shard_worker(task_queue, result_queue) -> None:
    """Worker-process main loop: execute point batches, stream results.

    A task is either a plain ``[(key, payload), ...]`` batch or a
    ``(batch, span_handle)`` pair: with a handle the worker records a
    ``worker.sim`` span (plus the engine's build/sim/phase spans) under
    it into a local memory sink and ships the finished records on the
    *last* result item of the task -- a 4-tuple ``(key, result, error,
    spans)`` -- for the server's tracer to stitch.
    """
    import signal

    from ..exp.engine import batching_enabled, execute_batch, execute_point
    from ..exp.spec import PointSpec
    from ..obs import OBS_OFF, Obs

    # Ctrl-C on `repro serve` delivers SIGINT to the whole foreground
    # process group; the server's own handler drives the graceful drain,
    # and workers must keep simulating through it rather than failing
    # their in-flight points with KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    while True:
        task = task_queue.get()
        if task is _STOP:
            break
        if isinstance(task, tuple):
            batch, parent = task
        else:
            batch, parent = task, None
        obs = Obs.make(trace_id=parent[0]) if parent is not None else OBS_OFF
        span = obs.tracer.span("worker.sim", parent=parent,
                               points=len(batch))
        remaining = len(batch)

        def report(key, result, error):
            """Queue one result; the task's last one carries the spans."""
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and parent is not None:
                span.end()
                result_queue.put((key, result, error, obs.sink.drain()))
            else:
                result_queue.put((key, result, error))

        # Batches are same-build by construction (submit() asserts it),
        # so a multi-point task is exactly a BatchCore lane group: one
        # decode pass for the whole batch instead of a Core.run loop.
        # Any failure -- an unbatchable lane, a model error -- falls back
        # to the per-point path, which reports errors point by point.
        if len(batch) > 1 and batching_enabled():
            try:
                points = [PointSpec.from_payload(p) for _, p in batch]
                results = execute_batch(points, obs=obs, parent=span)
            except BaseException:
                pass           # diagnose per point below
            else:
                for (key, _payload), result in zip(batch, results):
                    report(key, result.to_dict(), None)
                continue
        for key, payload in batch:
            try:
                result = execute_point(PointSpec.from_payload(payload),
                                       obs=obs, parent=span)
                report(key, result.to_dict(), None)
            except BaseException as exc:   # report, never kill the shard
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)).strip()
                report(key, None, detail)


class ShardPool:
    """A fixed pool of simulation worker processes.

    Args:
        workers: shard count (one process per shard).
        on_result: called as ``on_result(key, result_dict, error)`` from
            the collector thread for every finished point, and from the
            watchdog thread for points failed by a worker death.  Exactly
            one of ``result_dict`` / ``error`` is non-``None``.  When a
            task was submitted with a span handle, the task's last
            result arrives as ``on_result(key, result_dict, error,
            spans)`` carrying the worker's finished span records --
            callbacks that never pass ``span=`` to :meth:`submit` keep
            the 3-argument form.

    Observability counters (all exposed through the server's ``stats``/
    ``metrics`` snapshot): :attr:`deaths` worker processes found dead,
    :attr:`restarts` respawns performed, :attr:`failed_keys` points
    failed because their worker died; :meth:`queue_depths` reports the
    submitted-but-unreported key count per shard.
    """

    #: Seconds between worker-liveness checks.
    WATCH_INTERVAL = 0.25

    #: A worker that dies younger than this is "crashing at startup";
    #: its shard's respawns back off exponentially (up to
    #: :data:`MAX_BACKOFF_SECONDS`) instead of fork-storming -- a broken
    #: deploy or an OOM-killed interpreter would otherwise be respawned
    #: every watch tick, several forks per second, forever.
    FLAP_SECONDS = 5.0
    MAX_BACKOFF_SECONDS = 30.0

    def __init__(self, workers: int, on_result) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.restarts = 0
        self.deaths = 0
        self.failed_keys = 0
        self._on_result = on_result
        self._ctx = ctx = multiprocessing.get_context()
        self._results = ctx.SimpleQueue()
        self._tasks = [ctx.SimpleQueue() for _ in range(workers)]
        self._spawned_at = [0.0] * workers
        self._respawn_at = [0.0] * workers
        self._backoff = [0.0] * workers
        self._procs: list = [self._spawn(i) for i in range(workers)]
        #: key -> shard, for every submitted-but-unreported point.
        self._pending: dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._collector = threading.Thread(
            target=self._collect, name="repro-shard-collector", daemon=True)
        self._collector.start()
        self._watchdog = threading.Thread(
            target=self._watch, name="repro-shard-watchdog", daemon=True)
        self._watchdog.start()

    def _spawn(self, shard: int):
        proc = self._ctx.Process(
            target=_shard_worker, args=(self._tasks[shard], self._results),
            daemon=True, name=f"repro-shard-{shard}")
        proc.start()
        self._spawned_at[shard] = time.monotonic()
        return proc

    # --- submission -------------------------------------------------------

    def shard_for(self, payload: dict) -> int:
        return shard_index(build_key(payload), self.workers)

    def submit(self, batch: list[tuple[str, dict]], *,
               span=None) -> int:
        """Queue one same-build batch of ``(key, payload)``; returns the
        shard it was routed to.  Callers group by :func:`build_key` --
        the pool routes by the first element and asserts homogeneity.

        ``span`` is an optional parent span handle (a picklable
        ``(trace_id, span_id)`` tuple); the worker then traces its
        execution under it and ships the records back on the task's
        last result (see ``on_result``).
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        keys = {build_key(payload) for _, payload in batch}
        if len(keys) != 1:
            raise ValueError(f"batch mixes builds: {sorted(keys)}")
        shard = shard_index(next(iter(keys)), self.workers)
        task = batch if span is None else (batch, tuple(span))
        # The put happens under the lock so it is atomic with the
        # watchdog's queue replacement: a batch must never land on a
        # queue whose (dead) reader has just been swapped out, or its
        # keys would wait forever behind an apparently healthy worker.
        with self._lock:
            for key, _payload in batch:
                self._pending[key] = shard
            self._tasks[shard].put(task)
        return shard

    # --- lifecycle --------------------------------------------------------

    def _collect(self) -> None:
        while True:
            item = self._results.get()
            if item is _STOP:
                break
            with self._lock:
                self._pending.pop(item[0], None)
            # Items are (key, result, error) or, for a task's last
            # result when it was submitted with a span handle,
            # (key, result, error, spans) -- forwarded verbatim, so
            # 3-argument callbacks only ever see 3-argument calls.
            self._on_result(*item)

    def _watch(self) -> None:
        """Fail the keys of dead workers and respawn them (see module doc)."""
        while not self._closed:
            for shard in range(self.workers):
                if self._closed:
                    break
                proc = self._procs[shard]
                if proc is not None and proc.is_alive():
                    continue
                if proc is not None:
                    self.deaths += 1
                    # Just died.  Fail its outstanding keys right away
                    # (waiters must not wait out the backoff) and decide
                    # when the shard may respawn: a worker that died
                    # young is flapping and backs off exponentially.
                    now = time.monotonic()
                    flapping = (now - self._spawned_at[shard]
                                < self.FLAP_SECONDS)
                    self._backoff[shard] = (
                        min(self.MAX_BACKOFF_SECONDS,
                            max(1.0, self._backoff[shard] * 2))
                        if flapping else 0.0)
                    with self._lock:
                        dead = [key for key, s in self._pending.items()
                                if s == shard]
                        for key in dead:
                            del self._pending[key]
                        # A worker killed while blocked in its queue's
                        # get() dies *holding the queue's reader lock*
                        # (SimpleQueue wraps the whole blocking recv in
                        # it, and process death does not release
                        # multiprocessing locks), so a respawn on the old
                        # queue would deadlock on its first get.  Replace
                        # the queue; batches still sitting in the old one
                        # are exactly the outstanding keys, failed below.
                        # Batches submitted during the backoff window
                        # queue here and run once the shard respawns.
                        self._tasks[shard] = self._ctx.SimpleQueue()
                        self._procs[shard] = None
                        self._respawn_at[shard] = now + self._backoff[shard]
                    detail = (f"worker shard-{shard} died "
                              f"(exit code {proc.exitcode}); restarting")
                    self.failed_keys += len(dead)
                    for key in dead:
                        self._on_result(key, None, detail)
                if (self._procs[shard] is None
                        and time.monotonic() >= self._respawn_at[shard]):
                    with self._lock:
                        self.restarts += 1
                        self._procs[shard] = self._spawn(shard)
            time.sleep(self.WATCH_INTERVAL)

    def alive(self) -> int:
        """How many worker processes are currently alive."""
        return sum(proc is not None and proc.is_alive()
                   for proc in self._procs)

    def queue_depths(self) -> list[int]:
        """Submitted-but-unreported key count per shard (queue depth)."""
        depths = [0] * self.workers
        with self._lock:
            for shard in self._pending.values():
                depths[shard] += 1
        return depths

    def close(self, timeout: float = 30.0) -> None:
        """Stop workers after their queued tasks finish and join them."""
        if self._closed:
            return
        self._closed = True
        self._watchdog.join(timeout)
        for queue in self._tasks:
            queue.put(_STOP)
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout)
            if proc.is_alive():     # refused to drain: don't hang shutdown
                proc.terminate()
                proc.join(5)
        self._results.put(_STOP)
        self._collector.join(timeout)
