"""Hash-sharded simulation worker pool with per-shard build affinity.

Every :class:`~repro.exp.spec.PointSpec` belongs to exactly one shard,
chosen by a stable content hash of its *build identity* -- ``(kind,
target, isa, scale)`` -- modulo the pool width.  All points that share a
build therefore land on the same worker process, whose per-process
:data:`repro.exp.engine._BUILD_MEMO` builds and verifies the trace once
and then serves every sibling point from memory.  The server batches
same-build points into one task for the same reason: the worker runs the
batch back to back, so at most the *first* point of a build pays the
build-and-verify cost.

Workers receive task batches over a per-shard queue and report each
point individually on one shared result queue as soon as it finishes,
so results stream back in completion order.  A collector thread drains
the result queue and hands ``(key, result_dict, error)`` triples to the
callback supplied by the owner (the asyncio server bridges them onto its
event loop with ``call_soon_threadsafe``).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import threading
import traceback

_STOP = None      # queue sentinel


def build_key(payload: dict) -> tuple:
    """The build identity of a point payload: what :func:`built_kernel` /
    :func:`built_app` memoize on."""
    return (payload["kind"], payload["target"], payload["isa"],
            payload.get("scale", 1))


def shard_index(key: tuple, shards: int) -> int:
    """Stable shard assignment for a build key.

    Derived from sha256 of the repr, never :func:`hash`, so the mapping
    survives hash randomization and is identical in every process --
    clients and tests can predict placement.
    """
    digest = hashlib.sha256(repr(key).encode()).digest()
    return int.from_bytes(digest[:8], "big") % shards


def _shard_worker(task_queue, result_queue) -> None:
    """Worker-process main loop: execute point batches, stream results."""
    import signal

    from ..exp.engine import execute_point
    from ..exp.spec import PointSpec

    # Ctrl-C on `repro serve` delivers SIGINT to the whole foreground
    # process group; the server's own handler drives the graceful drain,
    # and workers must keep simulating through it rather than failing
    # their in-flight points with KeyboardInterrupt.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    while True:
        task = task_queue.get()
        if task is _STOP:
            break
        for key, payload in task:
            try:
                result = execute_point(PointSpec.from_payload(payload))
                result_queue.put((key, result.to_dict(), None))
            except BaseException as exc:   # report, never kill the shard
                detail = "".join(
                    traceback.format_exception_only(type(exc), exc)).strip()
                result_queue.put((key, None, detail))


class ShardPool:
    """A fixed pool of simulation worker processes.

    Args:
        workers: shard count (one process per shard).
        on_result: called as ``on_result(key, result_dict, error)`` from
            the collector thread for every finished point.  Exactly one
            of ``result_dict`` / ``error`` is non-``None``.
    """

    def __init__(self, workers: int, on_result) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self._on_result = on_result
        ctx = multiprocessing.get_context()
        self._results = ctx.SimpleQueue()
        self._tasks = [ctx.SimpleQueue() for _ in range(workers)]
        self._procs = [
            ctx.Process(target=_shard_worker, args=(q, self._results),
                        daemon=True, name=f"repro-shard-{i}")
            for i, q in enumerate(self._tasks)]
        for proc in self._procs:
            proc.start()
        self._collector = threading.Thread(
            target=self._collect, name="repro-shard-collector", daemon=True)
        self._collector.start()
        self._closed = False

    # --- submission -------------------------------------------------------

    def shard_for(self, payload: dict) -> int:
        return shard_index(build_key(payload), self.workers)

    def submit(self, batch: list[tuple[str, dict]]) -> int:
        """Queue one same-build batch of ``(key, payload)``; returns the
        shard it was routed to.  Callers group by :func:`build_key` --
        the pool routes by the first element and asserts homogeneity.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        keys = {build_key(payload) for _, payload in batch}
        if len(keys) != 1:
            raise ValueError(f"batch mixes builds: {sorted(keys)}")
        shard = shard_index(next(iter(keys)), self.workers)
        self._tasks[shard].put(batch)
        return shard

    # --- lifecycle --------------------------------------------------------

    def _collect(self) -> None:
        while True:
            item = self._results.get()
            if item is _STOP:
                break
            self._on_result(*item)

    def alive(self) -> int:
        """How many worker processes are currently alive."""
        return sum(proc.is_alive() for proc in self._procs)

    def close(self, timeout: float = 30.0) -> None:
        """Stop workers after their queued tasks finish and join them."""
        if self._closed:
            return
        self._closed = True
        for queue in self._tasks:
            queue.put(_STOP)
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():     # refused to drain: don't hang shutdown
                proc.terminate()
                proc.join(5)
        self._results.put(_STOP)
        self._collector.join(timeout)
