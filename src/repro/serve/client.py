"""Client library for the simulation service: sync and asyncio flavors.

:class:`Client` is a plain-socket synchronous client -- what the CLI,
tests and thread-based load generators use.  :class:`AsyncClient` is the
same protocol on asyncio streams for callers already inside an event
loop.  Both speak the versioned handshake of
:mod:`repro.serve.protocol`: every request carries the local protocol
version and any ``ok: false`` control response raises :class:`ServeError`
with the server's complaint, so mismatched builds fail loudly.

The convenience :meth:`Client.run` mirrors
:meth:`repro.exp.engine.Session.run`: submit points, collect the
streamed results, and return ``{point: SimResult}`` in submit order --
bit-identical to an in-process session, by construction and by the
golden-digest service test.
"""

from __future__ import annotations

import asyncio
import itertools
import socket

from ..cpu import SimResult
from ..exp.spec import PointSpec
from . import protocol


class ServeError(RuntimeError):
    """The server refused a request or a submitted point failed."""


def _payloads(points) -> list[dict]:
    out = []
    for point in points:
        out.append(point.payload() if isinstance(point, PointSpec)
                   else dict(point))
    return out


def _collect(stream, points) -> dict[PointSpec, SimResult]:
    """Fold a submit message stream into ``{point: result}`` (submit order)."""
    points = [p if isinstance(p, PointSpec) else PointSpec.from_payload(p)
              for p in points]
    by_seq: dict[int, SimResult] = {}
    failures: list[str] = []
    for message in stream:
        if message["op"] == "result":
            if message["ok"]:
                by_seq[message["seq"]] = SimResult.from_dict(
                    message["result"])
            else:
                failures.append(
                    f"{message['point']}: {message['error']}")
    if failures:
        raise ServeError(f"{len(failures)} point(s) failed: "
                         + "; ".join(failures[:3]))
    return {point: by_seq[seq] for seq, point in enumerate(points)}


class Client:
    """Synchronous service client (context manager closes the socket)."""

    def __init__(self, host: str = protocol.DEFAULT_HOST,
                 port: int = protocol.DEFAULT_PORT, *,
                 timeout: float | None = None) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._jobs = itertools.count(1)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # --- plumbing ---------------------------------------------------------

    def _send(self, message: dict) -> None:
        self._file.write(protocol.encode(message))
        self._file.flush()

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ServeError("server closed the connection")
        message = protocol.decode(line)
        # Control-level refusals raise; per-point failures stream back as
        # ``op: "result"`` messages and are aggregated by the caller.
        if (not message.get("ok", False) and "error" in message
                and message.get("op") != "result"):
            raise ServeError(message["error"])
        return message

    # --- control ops ------------------------------------------------------

    def ping(self) -> dict:
        """Handshake; returns the pong (version, salt, workers, stats)."""
        from .. import __version__

        self._send(protocol.request("ping", version=__version__))
        return self._recv()

    def stats(self) -> dict:
        self._send(protocol.request("stats"))
        return self._recv()["stats"]

    def metrics(self) -> dict:
        """Full metrics payload: ``{"text": <Prometheus exposition>,
        "stats": {...}, "metrics": {<registry snapshot>}}``.

        Raises :class:`ServeError` against pre-1.6 servers (they answer
        the op with an unknown-op error)."""
        self._send(protocol.request("metrics"))
        reply = self._recv()
        return {"text": reply.get("text", ""),
                "stats": reply.get("stats", {}),
                "metrics": reply.get("metrics", {})}

    def shutdown(self) -> None:
        """Ask the server to drain and exit."""
        self._send(protocol.request("shutdown"))
        self._recv()                     # "bye"

    # --- jobs -------------------------------------------------------------

    def submit_iter(self, points):
        """Submit points; yield ``result`` messages as they stream back
        (completion order), ending after the final ``done`` message."""
        job = f"job-{next(self._jobs)}"
        self._send(protocol.request("submit", id=job,
                                    points=_payloads(points)))
        while True:
            message = self._recv()
            yield message
            if message["op"] == "done":
                return

    def run(self, points) -> dict[PointSpec, SimResult]:
        """Submit and gather: ``{point: SimResult}`` in submit order."""
        points = list(points)
        return _collect(self.submit_iter(points), points)


class AsyncClient:
    """The same protocol for callers already on an event loop."""

    def __init__(self, host: str = protocol.DEFAULT_HOST,
                 port: int = protocol.DEFAULT_PORT) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._jobs = itertools.count(1)

    async def connect(self) -> "AsyncClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=protocol.MAX_LINE_BYTES)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def __aenter__(self) -> "AsyncClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _send(self, message: dict) -> None:
        self._writer.write(protocol.encode(message))
        await self._writer.drain()

    async def _recv(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ServeError("server closed the connection")
        message = protocol.decode(line)
        # Control-level refusals raise; per-point failures stream back as
        # ``op: "result"`` messages and are aggregated by the caller.
        if (not message.get("ok", False) and "error" in message
                and message.get("op") != "result"):
            raise ServeError(message["error"])
        return message

    async def ping(self) -> dict:
        from .. import __version__

        await self._send(protocol.request("ping", version=__version__))
        return await self._recv()

    async def stats(self) -> dict:
        await self._send(protocol.request("stats"))
        return (await self._recv())["stats"]

    async def metrics(self) -> dict:
        """Async twin of :meth:`Client.metrics`."""
        await self._send(protocol.request("metrics"))
        reply = await self._recv()
        return {"text": reply.get("text", ""),
                "stats": reply.get("stats", {}),
                "metrics": reply.get("metrics", {})}

    async def shutdown(self) -> None:
        await self._send(protocol.request("shutdown"))
        await self._recv()

    async def submit_iter(self, points):
        """Async generator of streamed ``result`` messages, then ``done``."""
        job = f"job-{next(self._jobs)}"
        await self._send(protocol.request("submit", id=job,
                                          points=_payloads(points)))
        while True:
            message = await self._recv()
            yield message
            if message["op"] == "done":
                return

    async def run(self, points) -> dict[PointSpec, SimResult]:
        points = list(points)
        messages = [m async for m in self.submit_iter(points)]
        return _collect(messages, points)
