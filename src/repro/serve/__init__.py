"""The serving layer: a sharded async simulation service.

Turns the experiment engine into a long-lived multi-client throughput
machine while keeping every answer bit-identical to an in-process
:class:`~repro.exp.engine.Session`:

* :mod:`repro.serve.protocol` -- versioned newline-delimited JSON over
  TCP (requests, responses, the handshake that rejects mismatched
  builds).
* :mod:`repro.serve.shard` -- :class:`ShardPool`, worker processes with
  per-shard build affinity (points sharing a build land on the shard
  whose build memo already holds their trace).
* :mod:`repro.serve.server` -- :class:`SimServer`, the asyncio event
  loop: cache-first answers, cross-client in-flight dedup, same-build
  batching, backpressure and graceful drain.
* :mod:`repro.serve.client` -- :class:`Client` / :class:`AsyncClient`.

CLI: ``repro serve`` boots a server, ``repro ping`` handshakes,
``repro submit`` runs any sweep through it.
"""

from .protocol import DEFAULT_HOST, DEFAULT_PORT, PROTOCOL_VERSION
from .client import AsyncClient, Client, ServeError
from .server import SimServer, run_server
from .shard import ShardPool

__all__ = [
    "DEFAULT_HOST", "DEFAULT_PORT", "PROTOCOL_VERSION",
    "AsyncClient", "Client", "ServeError",
    "SimServer", "run_server", "ShardPool",
]
