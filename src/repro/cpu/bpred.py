"""Branch prediction: bimodal predictor and branch target buffer.

Table 1 sizes both structures per issue width (512-16K bimodal entries,
64-1024 BTB entries).  The bimodal predictor is the classic array of 2-bit
saturating counters indexed by (synthetic) PC; the BTB is a direct-mapped tag
store -- in a trace-driven simulator the *target* is always known, so a BTB
hit/miss only decides whether a taken branch redirects fetch with or without
a one-cycle bubble.
"""

from __future__ import annotations


class BimodalPredictor:
    """Array of 2-bit saturating counters, initialized weakly taken.

    Loop back-edges (the dominant branches in media kernels) train to
    strongly-taken after one iteration, matching the high accuracy the
    paper's kernels enjoy.
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.counters = bytearray([2] * entries)
        self.lookups = 0
        self.mispredicts = 0

    def _index(self, site: int) -> int:
        return site & (self.entries - 1)

    def predict(self, site: int) -> bool:
        """Predicted direction for a branch site."""
        return self.counters[self._index(site)] >= 2

    def update(self, site: int, taken: bool) -> None:
        """Train the 2-bit counter with the resolved outcome."""
        idx = self._index(site)
        ctr = self.counters[idx]
        if taken:
            self.counters[idx] = min(3, ctr + 1)
        else:
            self.counters[idx] = max(0, ctr - 1)

    def predict_and_update(self, site: int, taken: bool) -> bool:
        """One-call interface used by the core; returns the prediction."""
        self.lookups += 1
        prediction = self.predict(site)
        self.update(site, taken)
        if prediction != taken:
            self.mispredicts += 1
        return prediction

    @property
    def accuracy(self) -> float:
        if not self.lookups:
            return 1.0
        return 1.0 - self.mispredicts / self.lookups


class BranchTargetBuffer:
    """Direct-mapped BTB holding branch sites.

    A taken branch whose site misses costs one fetch-bubble cycle while the
    front end computes the target; the site is then installed.
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.tags: list[int | None] = [None] * entries
        self.hits = 0
        self.misses = 0

    def lookup_insert(self, site: int) -> bool:
        """Probe for ``site``; install on miss.  Returns hit/miss."""
        idx = site & (self.entries - 1)
        tag = site // self.entries
        if self.tags[idx] == tag:
            self.hits += 1
            return True
        self.tags[idx] = tag
        self.misses += 1
        return False
