"""JIT-compiled timing-core fast path over the shared decode rings.

PR 5/6 flattened the hot path into integer rings: columnar trace chunks
and :class:`~repro.cpu.batch._SharedDecode`'s per-record issue
constants, SWAR register charges and precomputed predictor streams.
This module compiles the one remaining interpreted piece -- the
per-record event loop -- into a numba ``@njit`` kernel over preallocated
numpy arrays, one call per lane per decode block.

The kernel is a *transcription* of :func:`repro.cpu.batch._lane_stepper`
(itself a transcription of :meth:`repro.cpu.core.Core.run`): identical
phase order (release, commit, wake, issue, dispatch, fetch, horizon),
identical scheduling disciplines, identical stall accounting.  Every
scheduler structure maps onto a flat typed array:

* the ROB window becomes ``e_completion``/``e_chain``/``e_pending``/
  ``e_base`` rings indexed by ``instruction_index & (window - 1)``;
* the heaps (``releases``, ``wakeups``, ``parked``) become int64 arrays
  with explicit sift-up/sift-down helpers; entries keep the stepper's
  ``cycle << 32 | payload`` packing, so pop order is unchanged (the
  release word is repacked from ``cycle << 80 | SWAR`` to fit int64:
  ``cycle << 32 | (MED charge << 16 | ACC charge)``);
* the per-producer waiter lists become a free-listed edge pool
  (``whead``/``wedge_w``/``wedge_next``), sized ``window * DEP_CAP`` so
  it can never overflow (records carry at most three producer edges);
* the SWAR headroom word ``D`` becomes explicit ``inflight[pool]`` /
  ``lsq_used`` counters plus unpacked per-record charge matrices; the
  masked-subtract admission test becomes a per-present-pool compare,
  field for field the same predicate;
* the ``PerfectMemory`` port set is inlined (the only memory model a
  jit lane admits -- see :func:`lane_unjittable_reason`), with the
  access counters buffered in kernel registers and written back only
  after the whole run succeeds, so a fallback re-run starts clean.

Capability detection mirrors PR 6's ``UnbatchableError`` idiom: numba
missing, an inexpressible lane, or an in-kernel capacity limit raises
:class:`UnjittableError` and the caller falls back to the interpreted
path.  ``REPRO_JIT_PUREPY=1`` forces the jit path *without* numba --
the kernels are plain functions that run under the interpreter -- which
is how the parity suite exercises this module in environments where
numba is not installed.

:func:`warm` triggers (cached) kernel compilation once per process with
a zero-length run, so a one-shot CLI invocation pays the cold ``@njit``
latency before timing-sensitive work, and ``cache=True`` persists the
compiled kernel across processes.
"""

from __future__ import annotations

import os
import time as _time

try:
    import numpy as _np
except ImportError:                    # pragma: no cover - numpy is baked in
    _np = None

try:
    import numba as _numba
except ImportError:
    _numba = None

from ..isa.model import RegPool
from ..memsys.perfect import PerfectMemory
from .core import Core, _FAR_FUTURE, _NO_EVENT

#: numba version string, or ``None`` when numba is not importable
#: (reported by ``repro --version``).
NUMBA_VERSION = getattr(_numba, "__version__", None)

#: Producer-edge capacity per record.  Records carry at most three
#: register sources, so at most three (possibly duplicated) producer
#: edges; the conversion layer asserts this.
DEP_CAP = 4

_M32 = (1 << 32) - 1
_M64 = (1 << 64) - 1
_UNISSUED = 1 << 62

#: Heap entries pack a cycle into the upper 32 bits of an int64; abort
#: to the interpreter (status ``_ST_OVERFLOW``) before any cycle could
#: reach the packing limit.  The margin keeps ``completion`` (cycle plus
#: occupancy plus latency) packable too.
_PACK_LIMIT = (1 << 31) - (1 << 20)

# ``regs`` slots: one int64 array per lane holds every scalar the
# stepper keeps in locals, so a lane can pause at a decode-block
# boundary and resume bit-exactly.
_R_CYCLE = 0
_R_COMMITTED = 1
_R_DISP = 2
_R_FETCH = 3
_R_NFC = 4            # next_fetch_cycle
_R_FSTALL = 5
_R_RSTALL = 6
_R_CP = 7             # cursor into the nonzero-control position lists
_R_BURST_END = 8
_R_FRONT_READY = 9
_R_WAITING = 10
_R_LSQ = 11
_R_EFREE = 12         # head of the waiter-edge free list
_R_NREL = 13          # live heap/list sizes
_R_NWAKE = 14
_R_NPARK = 15
_R_NISS = 16
_R_NWNEXT = 17
_R_BQ_HEAD = 18
_R_BQ_TAIL = 19
_R_PM_SCALAR = 20
_R_PM_VECTOR = 21
_R_PM_ELEM = 22
# CPI-stack accumulators (live only when ``cfg[_C_ACCT]`` is set; the
# kernel statements are identical under numba and pure python).
_R_ST_BASE = 23
_R_ST_FETCH = 24
_R_ST_RENAME = 25
_R_ST_FU = 26
_R_ST_MEMC = 27
_R_ST_MEML = 28
_R_ST_DRAIN = 29
_R_PM_ACCT_N = 30
_R_PM_ACCT_OCC = 31
_NREGS = 32

# ``cfg`` slots: per-lane constants.
_C_WIDTH = 0
_C_ROB = 1
_C_LSQ = 2
_C_FRONT = 3
_C_FQCAP = 4
_C_REDIRECT = 5
_C_GMASK = 6
_C_WMASK = 7
_C_BQMASK = 8
_C_PM_LAT = 9
_C_PM_PORTS = 10
_C_PM_SLOTS = 11
_C_LIM0 = 12          # .. _C_LIM0 + 3: physical-register pool limits
_C_ACCT = 16          # 1 when the lane runs with cycle accounting
_NCFG = 17

# Kernel exit statuses.
_ST_PAUSED = 0        # fetch reached the decoded prefix; resume after decode
_ST_DONE = 1
_ST_DEADLOCK = 2      # no pending event (model bug; driver raises)
_ST_EDGES = 3         # waiter-edge pool exhausted (unreachable; defensive)
_ST_OVERFLOW = 4      # cycle count would overflow the packed heaps


class UnjittableError(RuntimeError):
    """This point cannot run through the jit kernels; use the fallback."""


def numba_available() -> bool:
    """True when numba imported successfully."""
    return _numba is not None


def _purepy_forced() -> bool:
    """``REPRO_JIT_PUREPY=1`` runs the kernels as plain python."""
    return os.environ.get("REPRO_JIT_PUREPY") == "1"


def jit_available() -> bool:
    """True when the jit path can execute (compiled or forced pure-python)."""
    return _np is not None and (_numba is not None or _purepy_forced())


def jit_enabled() -> bool:
    """False when ``REPRO_NO_JIT=1`` disables the path (mirrors
    ``REPRO_NO_BATCH``)."""
    return os.environ.get("REPRO_NO_JIT") != "1"


def lane_unjittable_reason(spec) -> str | None:
    """Why this lane cannot run through the kernel, or ``None`` if it can.

    The kernel inlines the perfect-memory port set; any other memory
    model (cache hierarchies with per-access state) stays on the
    interpreted path.  Predictor tables must be powers of two, exactly
    as :class:`~repro.cpu.batch.BatchCore` requires.
    """
    if not jit_available():
        return "numba is unavailable (and REPRO_JIT_PUREPY is not set)"
    if type(spec.memsys) is not PerfectMemory:
        return (f"memory model {type(spec.memsys).__name__} is not "
                "expressible in typed kernel state")
    cfg = spec.config
    for entries in (cfg.bimodal_entries, cfg.btb_entries):
        if entries <= 0 or entries & (entries - 1):
            return "predictor tables must be powers of two"
    return None


# --- kernels ----------------------------------------------------------------
#
# Plain functions, reassigned through ``numba.njit`` below when numba is
# importable.  ``_step_lane`` resolves ``_heap_push``/``_heap_pop`` at
# first-call compile time, so the reassignment is what it compiles.


def _heap_push(heap, m, val):
    """Push ``val`` onto the min-heap ``heap[:m]``; returns the new size.

    Identical ordering to ``heapq`` on the packed int entries: the pop
    always returns the minimum value, and equal packed values are
    indistinguishable, so the stepper's pop *sequence* is unchanged.
    """
    i = m
    while i > 0:
        parent = (i - 1) >> 1
        pv = heap[parent]
        if val < pv:
            heap[i] = pv
            i = parent
        else:
            break
    heap[i] = val
    return m + 1


def _heap_pop(heap, m):
    """Pop the minimum of ``heap[:m]``; returns ``(value, new_size)``."""
    top = heap[0]
    m -= 1
    if m > 0:
        val = heap[m]
        i = 0
        while True:
            child = 2 * i + 1
            if child >= m:
                break
            right = child + 1
            if right < m and heap[right] < heap[child]:
                child = right
            cv = heap[child]
            if cv < val:
                heap[i] = cv
                i = child
            else:
                break
        heap[i] = val
    return top, m


def _step_lane(regs, cfg, inflight, fu_busy, fu_lo, fu_hi, fu_lanes,
               pm_busy,
               e_completion, e_chain, e_pending, e_base,
               whead, wedge_w, wedge_next,
               rel_heap, wake_heap, park_heap, iss_heap, wnext, bursts,
               r_kind, r_sidx, r_rows, r_lat, r_nonpip, r_chmode, r_vl,
               r_chains, r_ndep, r_dep,
               c_alloc, c_chk, c_commit, r_rel, r_has,
               ctl_ring, pos_idx, pos_code,
               n, aw, npos):
    """One lane's event loop until completion or a decode-block pause.

    Transcribes :func:`repro.cpu.batch._lane_stepper` phase for phase;
    the parity suites pin bit-identity.  Returns a ``_ST_*`` status.
    """
    width = cfg[_C_WIDTH]
    rob_size = cfg[_C_ROB]
    lsq_size = cfg[_C_LSQ]
    front_latency = cfg[_C_FRONT]
    fqcap = cfg[_C_FQCAP]
    redirect = cfg[_C_REDIRECT]
    gmask = cfg[_C_GMASK]
    wmask = cfg[_C_WMASK]
    bqmask = cfg[_C_BQMASK]
    pm_lat = cfg[_C_PM_LAT]
    pm_ports = cfg[_C_PM_PORTS]
    pm_slots = cfg[_C_PM_SLOTS]
    accounting = cfg[_C_ACCT]

    cycle = regs[_R_CYCLE]
    committed = regs[_R_COMMITTED]
    disp_idx = regs[_R_DISP]
    fetch_idx = regs[_R_FETCH]
    next_fetch_cycle = regs[_R_NFC]
    fetch_stalls = regs[_R_FSTALL]
    rename_stalls = regs[_R_RSTALL]
    cp = regs[_R_CP]
    burst_end = regs[_R_BURST_END]
    front_ready = regs[_R_FRONT_READY]
    waiting = regs[_R_WAITING]
    lsq_used = regs[_R_LSQ]
    efree = regs[_R_EFREE]
    nrel = regs[_R_NREL]
    nwake = regs[_R_NWAKE]
    npark = regs[_R_NPARK]
    niss = regs[_R_NISS]
    nwn = regs[_R_NWNEXT]
    bq_head = regs[_R_BQ_HEAD]
    bq_tail = regs[_R_BQ_TAIL]
    pm_scalar = regs[_R_PM_SCALAR]
    pm_vector = regs[_R_PM_VECTOR]
    pm_elem = regs[_R_PM_ELEM]
    st_base = regs[_R_ST_BASE]
    st_fetch = regs[_R_ST_FETCH]
    st_rename = regs[_R_ST_RENAME]
    st_fu = regs[_R_ST_FU]
    st_memc = regs[_R_ST_MEMC]
    st_meml = regs[_R_ST_MEML]
    st_drain = regs[_R_ST_DRAIN]
    pm_acct_n = regs[_R_PM_ACCT_N]
    pm_acct_occ = regs[_R_PM_ACCT_OCC]

    status = _ST_DONE
    while committed < n:
        # Pause whenever fetch could outrun the decoded prefix; the
        # driver decodes the next block and re-enters inside the same
        # simulated cycle (timing-transparent, like the stepper's yield).
        if fetch_idx > aw:
            status = _ST_PAUSED
            break

        cycle += 1
        if cycle >= _PACK_LIMIT:
            status = _ST_OVERFLOW
            break

        # --- release late-freed physical registers --------------------------
        while nrel > 0 and (rel_heap[0] >> 32) <= cycle:
            v, nrel = _heap_pop(rel_heap, nrel)
            inflight[2] -= (v >> 16) & 0xFFFF
            inflight[3] -= v & 0xFFFF

        # --- commit ---------------------------------------------------------
        cbase = committed
        lim = committed + width
        if disp_idx < lim:
            lim = disp_idx
        while committed < lim:
            if e_completion[committed & wmask] > cycle:
                break
            gs = committed & gmask
            inflight[0] -= c_commit[gs, 0]
            inflight[1] -= c_commit[gs, 1]
            inflight[2] -= c_commit[gs, 2]
            inflight[3] -= c_commit[gs, 3]
            lsq_used -= c_commit[gs, 4]
            committed += 1
        if committed >= n:
            if accounting != 0:
                if committed - cbase == width:
                    st_base += 1
                else:
                    st_drain += 1
            break

        # --- wake -----------------------------------------------------------
        for k in range(nwn):
            niss = _heap_push(iss_heap, niss, wnext[k])
        nwn = 0
        while nwake > 0 and (wake_heap[0] >> 32) <= cycle:
            v, nwake = _heap_pop(wake_heap, nwake)
            niss = _heap_push(iss_heap, niss, v & _M32)
        while npark > 0 and (park_heap[0] >> 32) <= cycle:
            v, npark = _heap_pop(park_heap, npark)
            niss = _heap_push(iss_heap, niss, v & _M32)

        # --- issue: oldest-first among ready entries ------------------------
        # (a min-heap of indices pops the same oldest-first sequence the
        # stepper's descending-sorted list does)
        issued = 0
        next_cycle = cycle + 1
        while niss > 0 and issued < width:
            i, niss = _heap_pop(iss_heap, niss)
            gs = i & gmask
            kind = r_kind[gs]
            sidx = r_sidx[gs]
            vl = r_vl[gs]
            lat = r_lat[gs]
            completion = -1
            if kind == 0:               # compute
                lo = fu_lo[sidx]
                hi = fu_hi[sidx]
                for u in range(lo, hi):
                    if fu_busy[u] <= cycle:
                        occ = -(-r_rows[gs] // fu_lanes[sidx])
                        if r_nonpip[gs] != 0 and occ < lat:
                            occ = lat
                        if occ < 1:
                            occ = 1
                        fu_busy[u] = cycle + occ
                        completion = cycle + occ - 1 + lat
                        break
            elif kind == 1:             # memory (inlined PerfectMemory)
                if vl > 1:
                    free = True
                    for p in range(pm_ports):
                        if pm_busy[p] > cycle:
                            free = False
                            break
                    if free:
                        occ = -(-vl // pm_slots)
                        if occ < 1:
                            occ = 1
                        until = cycle + occ
                        for p in range(pm_ports):
                            pm_busy[p] = until
                        pm_vector += 1
                        pm_elem += vl
                        completion = cycle + occ - 1 + pm_lat
                        pm_acct_n += 1
                        pm_acct_occ += completion - cycle
                else:
                    for p in range(pm_ports):
                        if pm_busy[p] <= cycle:
                            pm_busy[p] = next_cycle
                            pm_scalar += 1
                            pm_elem += 1
                            completion = cycle + pm_lat
                            pm_acct_n += 1
                            pm_acct_occ += pm_lat
                            break
            elif kind == 2:             # control: simple integer pipe
                for u in range(fu_lo[0], fu_hi[0]):
                    if fu_busy[u] <= cycle:
                        fu_busy[u] = next_cycle
                        completion = next_cycle
                        break
            else:                       # nop
                completion = next_cycle
            if completion < 0:
                # Structural hazard: park until the resource's earliest
                # possible free cycle (Core._retry_cycle).
                if kind == 1:
                    hint = pm_busy[0]
                    if vl > 1:
                        for p in range(1, pm_ports):
                            if pm_busy[p] > hint:
                                hint = pm_busy[p]
                    else:
                        for p in range(1, pm_ports):
                            if pm_busy[p] < hint:
                                hint = pm_busy[p]
                else:
                    if kind == 2:
                        lo = fu_lo[0]
                        hi = fu_hi[0]
                    else:
                        lo = fu_lo[sidx]
                        hi = fu_hi[sidx]
                    hint = cycle
                    if hi > lo:
                        hint = fu_busy[lo]
                        for u in range(lo + 1, hi):
                            if fu_busy[u] < hint:
                                hint = fu_busy[u]
                npark = _heap_push(
                    park_heap, npark,
                    ((hint if hint > cycle else next_cycle) << 32) | i)
                continue
            ws = i & wmask
            e_completion[ws] = completion
            chmode = r_chmode[gs]
            if chmode == 0:
                e_chain[ws] = completion
            elif chmode == 1:
                early = completion - vl + 1
                e_chain[ws] = early if early > next_cycle else next_cycle
            else:
                first = cycle + lat
                e_chain[ws] = completion if completion < first else first
            if kind == 2 and ctl_ring[gs] == 1:
                next_fetch_cycle = completion + redirect
            issued += 1
            rv = r_rel[gs]
            if rv != 0:
                nrel = _heap_push(rel_heap, nrel, (completion << 32) | rv)
            if waiting > 0:
                e = whead[ws]
                if e >= 0:
                    chain = e_chain[ws]
                    while e >= 0:
                        w = wedge_w[e]
                        waiting -= 1
                        wws = w & wmask
                        p = e_pending[wws] - 1
                        e_pending[wws] = p
                        if r_chains[w & gmask] != 0:
                            availw = chain
                        else:
                            availw = completion
                        if availw > e_base[wws]:
                            e_base[wws] = availw
                        if p == 0:
                            ready = e_base[wws]
                            if ready == next_cycle:
                                wnext[nwn] = w
                                nwn += 1
                            elif ready <= cycle:
                                # Unreachable (results land after `cycle`);
                                # kept for strict equivalence with Core.
                                niss = _heap_push(iss_heap, niss, w)
                            else:
                                nwake = _heap_push(wake_heap, nwake,
                                                   (ready << 32) | w)
                        nxt_e = wedge_next[e]
                        wedge_next[e] = efree
                        efree = e
                        e = nxt_e
                    whead[ws] = -1

        # --- dispatch: fetch queue -> ROB (rename + allocate) ---------------
        disp_before = disp_idx
        admission_blocked = False
        dlim = disp_idx + width
        if fetch_idx < dlim:
            dlim = fetch_idx
        rcap = committed + rob_size
        if rcap < dlim:
            dlim = rcap
        fail = 0
        while disp_idx < dlim:
            if disp_idx >= burst_end:
                v = bursts[bq_head & bqmask]
                bq_head += 1
                burst_end = v >> 32
                front_ready = v & _M32
            if front_ready > cycle:
                break
            gs = disp_idx & gmask
            sm = r_has[gs]
            if sm != 0:
                blocked = False
                for p in range(4):
                    if ((sm >> p) & 1) != 0 and \
                            inflight[p] + c_chk[gs, p] > cfg[_C_LIM0 + p]:
                        blocked = True
                        break
                if not blocked and ((sm >> 4) & 1) != 0 and \
                        lsq_used + c_chk[gs, 4] > lsq_size:
                    blocked = True
                if blocked:
                    # Admission failed: LSQ-full breaks silently (a
                    # commit will free it); a register shortfall is a
                    # rename stall, exactly Core's check order.
                    admission_blocked = True
                    if r_kind[gs] == 1 and lsq_used >= lsq_size:
                        break
                    rename_stalls += 1
                    break
                inflight[0] += c_alloc[gs, 0]
                inflight[1] += c_alloc[gs, 1]
                inflight[2] += c_alloc[gs, 2]
                inflight[3] += c_alloc[gs, 3]
                lsq_used += c_alloc[gs, 4]
            i = disp_idx
            disp_idx += 1
            ws = i & wmask
            e_completion[ws] = _UNISSUED
            nd = r_ndep[gs]
            if nd == 0:
                wnext[nwn] = i          # ready at dispatch + 1
                nwn += 1
                continue
            pending = 0
            base = next_cycle
            chaining = r_chains[gs]
            for k in range(nd):
                j = r_dep[gs, k]
                if j >= committed:      # producer still in flight
                    js = j & wmask
                    c = e_completion[js]
                    if c != _UNISSUED:
                        availd = e_chain[js] if chaining != 0 else c
                        if availd > base:
                            base = availd
                    else:
                        if efree < 0:
                            fail = 1
                            break
                        e = efree
                        efree = wedge_next[e]
                        wedge_w[e] = i
                        wedge_next[e] = whead[js]
                        whead[js] = e
                        pending += 1
            if fail != 0:
                break
            if pending > 0:
                e_pending[ws] = pending
                e_base[ws] = base
                waiting += pending
            elif base == next_cycle:
                wnext[nwn] = i
                nwn += 1
            else:
                nwake = _heap_push(wake_heap, nwake, (base << 32) | i)
        if fail != 0:
            status = _ST_EDGES
            break

        # --- fetch: one group, stopping at the next taken branch ------------
        if cycle >= next_fetch_cycle:
            if fetch_idx < n:
                stop = fetch_idx + width
                if stop > n:
                    stop = n
                cap_stop = disp_idx + fqcap
                if stop > cap_stop:
                    stop = cap_stop
                if stop > fetch_idx:
                    if cp < npos and pos_idx[cp] < stop:
                        fetch_idx = pos_idx[cp] + 1
                        code = pos_code[cp]
                        cp += 1
                        if code == 1:
                            next_fetch_cycle = _FAR_FUTURE
                        elif code == 2:
                            next_fetch_cycle = next_cycle
                        else:
                            next_fetch_cycle = cycle + 2
                    else:
                        fetch_idx = stop
                    bursts[bq_tail & bqmask] = \
                        (fetch_idx << 32) | (cycle + front_latency)
                    bq_tail += 1
        elif fetch_idx < n:
            fetch_stalls += 1

        # --- account: same end-of-cycle classification as Core.run ----------
        # Head index is `committed`; dispatched-this-cycle is
        # `committed >= disp_before` (the dispatch_cycle test without a
        # per-entry field).
        if accounting != 0:
            if committed - cbase == width:
                st_base += 1
            elif committed < disp_idx:
                hcc = e_completion[committed & wmask]
                if hcc != _UNISSUED:
                    if r_kind[committed & gmask] == 1 and hcc > next_cycle:
                        st_meml += 1
                    elif admission_blocked:
                        st_rename += 1
                    else:
                        st_base += 1
                elif committed < disp_before:
                    if r_kind[committed & gmask] == 1:
                        st_memc += 1
                    elif admission_blocked:
                        st_rename += 1
                    else:
                        st_fu += 1
                elif admission_blocked:
                    st_rename += 1
                else:
                    st_base += 1
            elif fetch_idx >= n:
                st_drain += 1
            else:
                st_fetch += 1

        # --- horizon: first future cycle at which anything can happen -------
        if niss > 0 or nwn > 0:
            continue
        nxt = _NO_EVENT
        if committed < disp_idx:
            hc = e_completion[committed & wmask]
            if hc != _UNISSUED:
                nxt = hc if hc > cycle else next_cycle
        if npark > 0:
            retry = park_heap[0] >> 32
            if retry < nxt:
                nxt = retry
        if nwake > 0:
            ready = wake_heap[0] >> 32
            if ready <= cycle:
                ready = next_cycle
            if ready < nxt:
                nxt = ready
        rename_blocked = False
        lsq_blocked = False
        if disp_idx < fetch_idx and disp_idx - committed < rob_size:
            if disp_idx >= burst_end:
                v = bursts[bq_head & bqmask]
                bq_head += 1
                burst_end = v >> 32
                front_ready = v & _M32
            if front_ready > cycle:
                if front_ready < nxt:
                    nxt = front_ready
            else:
                gs = disp_idx & gmask
                sm = r_has[gs]
                blocked = False
                if sm != 0:
                    for p in range(4):
                        if ((sm >> p) & 1) != 0 and \
                                inflight[p] + c_chk[gs, p] > cfg[_C_LIM0 + p]:
                            blocked = True
                            break
                    if not blocked and ((sm >> 4) & 1) != 0 and \
                            lsq_used + c_chk[gs, 4] > lsq_size:
                        blocked = True
                if blocked:
                    if r_kind[gs] == 1 and lsq_used >= lsq_size:
                        # A commit frees the LSQ; commits are events.
                        lsq_blocked = True
                    else:
                        rename_blocked = True
                        if nrel > 0:
                            rel_at = rel_heap[0] >> 32
                            if rel_at < nxt:
                                nxt = rel_at
                elif next_cycle < nxt:
                    nxt = next_cycle
        if fetch_idx < n and fetch_idx - disp_idx < fqcap \
                and next_fetch_cycle != _FAR_FUTURE:
            fetch_at = next_fetch_cycle if next_fetch_cycle > cycle \
                else next_cycle
            if fetch_at < nxt:
                nxt = fetch_at
        if nxt >= _NO_EVENT:
            status = _ST_DEADLOCK
            break
        skipped = nxt - next_cycle
        if skipped > 0:
            if fetch_idx < n and next_fetch_cycle > next_cycle:
                stop = nxt if nxt < next_fetch_cycle else next_fetch_cycle
                fetch_stalls += stop - next_cycle
            if rename_blocked:
                rename_stalls += skipped
            if accounting != 0:
                # Frozen-state span replay of the per-cycle rules; the
                # only in-span transition is the head's memory completion
                # landing exactly on `nxt` (see Core.run).
                adm = rename_blocked or lsq_blocked
                if committed < disp_idx:
                    hcs = e_completion[committed & wmask]
                    if hcs != _UNISSUED:
                        if r_kind[committed & gmask] == 1:
                            st_meml += skipped
                            if hcs == nxt:
                                st_meml -= 1
                                if adm:
                                    st_rename += 1
                                else:
                                    st_base += 1
                        elif adm:
                            st_rename += skipped
                        else:
                            st_base += skipped
                    elif r_kind[committed & gmask] == 1:
                        st_memc += skipped
                    elif adm:
                        st_rename += skipped
                    else:
                        st_fu += skipped
                elif fetch_idx >= n:
                    st_drain += skipped
                else:
                    st_fetch += skipped
            cycle = nxt - 1     # the loop header re-increments

    regs[_R_CYCLE] = cycle
    regs[_R_COMMITTED] = committed
    regs[_R_DISP] = disp_idx
    regs[_R_FETCH] = fetch_idx
    regs[_R_NFC] = next_fetch_cycle
    regs[_R_FSTALL] = fetch_stalls
    regs[_R_RSTALL] = rename_stalls
    regs[_R_CP] = cp
    regs[_R_BURST_END] = burst_end
    regs[_R_FRONT_READY] = front_ready
    regs[_R_WAITING] = waiting
    regs[_R_LSQ] = lsq_used
    regs[_R_EFREE] = efree
    regs[_R_NREL] = nrel
    regs[_R_NWAKE] = nwake
    regs[_R_NPARK] = npark
    regs[_R_NISS] = niss
    regs[_R_NWNEXT] = nwn
    regs[_R_BQ_HEAD] = bq_head
    regs[_R_BQ_TAIL] = bq_tail
    regs[_R_PM_SCALAR] = pm_scalar
    regs[_R_PM_VECTOR] = pm_vector
    regs[_R_PM_ELEM] = pm_elem
    regs[_R_ST_BASE] = st_base
    regs[_R_ST_FETCH] = st_fetch
    regs[_R_ST_RENAME] = st_rename
    regs[_R_ST_FU] = st_fu
    regs[_R_ST_MEMC] = st_memc
    regs[_R_ST_MEML] = st_meml
    regs[_R_ST_DRAIN] = st_drain
    regs[_R_PM_ACCT_N] = pm_acct_n
    regs[_R_PM_ACCT_OCC] = pm_acct_occ
    return status


if _numba is not None:
    _heap_push = _numba.njit(cache=True)(_heap_push)
    _heap_pop = _numba.njit(cache=True)(_heap_pop)
    _step_lane = _numba.njit(cache=True)(_step_lane)


_warmed = False


def warm() -> None:
    """Compile the kernels once per process (idempotent, cheap if cached).

    A zero-length run exercises every signature the real driver uses;
    ``cache=True`` persists the machine code on disk, so only the first
    process on a host pays full compilation latency.
    """
    global _warmed
    if _warmed or _np is None:
        return
    _warmed = True
    i64 = _np.int64
    regs = _np.zeros(_NREGS, i64)
    cfg = _np.zeros(_NCFG, i64)
    cfg[_C_WIDTH] = 1
    cfg[_C_PM_PORTS] = 1
    cfg[_C_PM_SLOTS] = 1
    one = _np.zeros(1, i64)
    mat5 = _np.zeros((1, 5), i64)
    dep = _np.zeros((1, DEP_CAP), i64)
    _step_lane(regs, cfg, _np.zeros(4, i64), one.copy(), _np.zeros(6, i64),
               _np.zeros(6, i64), _np.ones(6, i64), one.copy(),
               one.copy(), one.copy(), one.copy(), one.copy(),
               _np.full(1, -1, i64), one.copy(), one.copy(),
               one.copy(), one.copy(), one.copy(), one.copy(), one.copy(),
               one.copy(),
               one.copy(), one.copy(), one.copy(), one.copy(), one.copy(),
               one.copy(), one.copy(), one.copy(), one.copy(), dep,
               mat5, mat5.copy(), mat5.copy(), one.copy(), one.copy(),
               one.copy(), one.copy(), one.copy(),
               0, 0, 0)


# --- conversion layer -------------------------------------------------------


def _unpack_charges(src, base, stop, out):
    """Unpack a SWAR charge ring span into an int64 ``[:, 5]`` matrix.

    Charge fields carry no bias and stay far below 2**15, so the low 64
    bits always fit a nonnegative int64.
    """
    m = stop - base
    lo = _np.fromiter((v & _M64 for v in src[base:stop]), _np.int64, m)
    hi = _np.fromiter((v >> 64 for v in src[base:stop]), _np.int64, m)
    out[base:stop, 0] = lo & 0xFFFF
    out[base:stop, 1] = (lo >> 16) & 0xFFFF
    out[base:stop, 2] = (lo >> 32) & 0xFFFF
    out[base:stop, 3] = (lo >> 48) & 0xFFFF
    out[base:stop, 4] = hi


def _pack_releases(src, base, stop, out):
    """Repack writeback-release charges (MED/ACC fields only) into
    ``MED << 16 | ACC`` so a heap entry fits ``cycle << 32 | charges``."""
    m = stop - base
    seg = _np.fromiter((v for v in src[base:stop]), _np.int64, m)
    out[base:stop] = (((seg >> 32) & 0xFFFF) << 16) | ((seg >> 48) & 0xFFFF)


def _presence_bits(v: int) -> int:
    """smask SWAR word -> per-pool presence bitmask (bit 4 = LSQ)."""
    return (((v >> 15) & 1) | ((v >> 30) & 2) | ((v >> 45) & 4)
            | ((v >> 60) & 8) | ((v >> 75) & 16))


class _CtlArrays:
    """numpy image of one ``_CtlState``'s ring + positional lists."""

    __slots__ = ("ring", "pos_idx", "pos_code", "npos")

    def __init__(self, size: int) -> None:
        self.ring = _np.zeros(size, _np.int64)
        self.pos_idx = _np.zeros(64, _np.int64)
        self.pos_code = _np.zeros(64, _np.int64)
        self.npos = 0

    def sync(self, st, base: int, stop: int) -> None:
        self.ring[base:stop] = st.ring[base:stop]
        tail = len(st.pos_idx)
        if tail > self.npos:
            if tail > len(self.pos_idx):
                cap = max(2 * len(self.pos_idx), tail)
                for name in ("pos_idx", "pos_code"):
                    grown = _np.zeros(cap, _np.int64)
                    old = getattr(self, name)
                    grown[:len(old)] = old
                    setattr(self, name, grown)
            self.pos_idx[self.npos:tail] = st.pos_idx[self.npos:tail]
            self.pos_code[self.npos:tail] = st.pos_code[self.npos:tail]
            self.npos = tail


class _Rings:
    """numpy images of the ``_SharedDecode`` rings, refreshed per block.

    Only the knob variants some lane in the batch actually selects are
    materialized; lanes with ``late_release=False`` read their releases
    from one shared all-zero ring.
    """

    def __init__(self, shared, specs) -> None:
        size = shared.size
        i64 = _np.int64
        self.r_kind = _np.zeros(size, i64)
        self.r_sidx = _np.zeros(size, i64)
        self.r_rows = _np.zeros(size, i64)
        self.r_nonpip = _np.zeros(size, i64)
        self.r_chmode = _np.zeros(size, i64)
        self.r_vl = _np.zeros(size, i64)
        self.r_chains = _np.zeros(size, i64)
        self.r_ndep = _np.zeros(size, i64)
        self.r_dep = _np.zeros((size, DEP_CAP), i64)
        self.lat_raw = _np.zeros(size, i64)
        self.lat_ac = _np.zeros(size, i64)
        self.chk = _np.zeros((size, 5), i64)
        self.zero_rel = _np.zeros(size, i64)
        alloc_names = set()
        commit_names = set()
        rel_names = set()
        has_names = set()
        ctl_keys = set()
        for spec in specs:
            z = "z" if spec.zero_idiom_elision else "raw"
            alloc_names.add(f"alloc_{z}")
            has_names.add(f"smask_{z}")
            if spec.late_release:
                commit_names.add(f"commit_if_{z}")
                rel_names.add(f"rel_{z}")
            else:
                commit_names.add(f"commit_full_{z}")
            cfg = spec.config
            ctl_keys.add((cfg.bimodal_entries, cfg.btb_entries))
        self.alloc = {k: _np.zeros((size, 5), i64) for k in alloc_names}
        self.commit = {k: _np.zeros((size, 5), i64) for k in commit_names}
        self.rel = {k: _np.zeros(size, i64) for k in rel_names}
        self.has = {k: _np.zeros(size, i64) for k in has_names}
        self.ctl = {k: _CtlArrays(size) for k in ctl_keys}

    def select(self, spec):
        """The (lat, alloc, chk, commit, rel, has) rings this lane reads."""
        z = "z" if spec.zero_idiom_elision else "raw"
        if spec.late_release:
            commit = self.commit[f"commit_if_{z}"]
            rel = self.rel[f"rel_{z}"]
        else:
            commit = self.commit[f"commit_full_{z}"]
            rel = self.zero_rel
        lat = self.lat_ac if spec.acc_chaining else self.lat_raw
        return (lat, self.alloc[f"alloc_{z}"], self.chk, commit, rel,
                self.has[f"smask_{z}"])

    def sync(self, shared, start: int, end: int) -> None:
        """Convert the just-decoded span ``[start, end)`` (ring-aligned,
        contiguous -- decode blocks never wrap)."""
        if start >= end:
            return
        base = start & shared.mask
        stop = base + (end - start)
        self._sync_ops(shared, base, stop)
        for name, out in self.alloc.items():
            _unpack_charges(getattr(shared, name), base, stop, out)
        for name, out in self.commit.items():
            _unpack_charges(getattr(shared, name), base, stop, out)
        _unpack_charges(shared.chk, base, stop, self.chk)
        for name, out in self.rel.items():
            _pack_releases(getattr(shared, name), base, stop, out)
        for name, out in self.has.items():
            src = getattr(shared, name)
            for s in range(base, stop):
                out[s] = _presence_bits(src[s])
        for key, ca in self.ctl.items():
            ca.sync(shared.ctl[key], base, stop)

    def _sync_ops(self, shared, base: int, stop: int) -> None:
        op_raw = shared.op_raw
        op_ac = shared.op_ac
        deps = shared.deps
        chains = shared.chains
        m = stop - base
        kind_l = [0] * m
        sidx_l = [0] * m
        rows_l = [1] * m
        latr_l = [0] * m
        lata_l = [0] * m
        nonpip_l = [0] * m
        chmode_l = [0] * m
        vl_l = [1] * m
        chains_l = [0] * m
        ndep_l = [0] * m
        r_dep = self.r_dep
        for k in range(m):
            s = base + k
            op = op_raw[s]
            if type(op) is int:
                # single-row pipelined compute: kind 0, rows 1, chmode 0
                sidx_l[k] = op & 7
                lat = op >> 3
                latr_l[k] = lat
                lata_l[k] = lat
            else:
                kind_l[k] = op[0]
                sidx_l[k] = op[1]
                rows_l[k] = op[3]
                latr_l[k] = op[4]
                if op[5]:
                    nonpip_l[k] = 1
                chmode_l[k] = op[6]
                vl_l[k] = op[7]
                lata_l[k] = op_ac[s][4]
            if chains[s]:
                chains_l[k] = 1
            d = deps[s]
            if d is not None:
                nd = len(d)
                if nd > DEP_CAP:
                    raise UnjittableError(
                        f"record carries {nd} producer edges "
                        f"(kernel cap {DEP_CAP})")
                ndep_l[k] = nd
                for x in range(nd):
                    r_dep[s, x] = d[x]
        self.r_kind[base:stop] = kind_l
        self.r_sidx[base:stop] = sidx_l
        self.r_rows[base:stop] = rows_l
        self.lat_raw[base:stop] = latr_l
        self.lat_ac[base:stop] = lata_l
        self.r_nonpip[base:stop] = nonpip_l
        self.r_chmode[base:stop] = chmode_l
        self.r_vl[base:stop] = vl_l
        self.r_chains[base:stop] = chains_l
        self.r_ndep[base:stop] = ndep_l


# --- per-lane typed state ---------------------------------------------------


class _JitLane:
    """Preallocated kernel state for one lane."""

    __slots__ = ("spec", "index", "width", "ctl_key", "regs", "cfg",
                 "inflight", "fu_busy", "fu_lo", "fu_hi", "fu_lanes",
                 "pm_busy", "e_completion", "e_chain", "e_pending",
                 "e_base", "whead", "wedge_w", "wedge_next", "rel_heap",
                 "wake_heap", "park_heap", "iss_heap", "wnext", "bursts")

    def __init__(self, spec, index: int, gmask: int) -> None:
        cfg = spec.config
        i64 = _np.int64
        self.spec = spec
        self.index = index
        self.width = cfg.width
        self.ctl_key = (cfg.bimodal_entries, cfg.btb_entries)

        need = cfg.rob_size + 2 * cfg.width
        window = 1 << (need - 1).bit_length()
        wcap = 2 * window + 2
        edges = window * DEP_CAP

        self.regs = _np.zeros(_NREGS, i64)
        self.inflight = _np.zeros(4, i64)

        # FU pools flattened [int | fp | med], simple units first inside
        # each family -- the exact order FuPool scans, so first-free-wins
        # (and the park hint's min over the same subrange) matches.
        fus = (cfg.int_units, cfg.fp_units, cfg.med_units)
        totals = [f.total for f in fus]
        offsets = [0, totals[0], totals[0] + totals[1]]
        self.fu_busy = _np.zeros(max(1, sum(totals)), i64)
        lo, hi = [], []
        for fam in range(3):
            lo += [offsets[fam], offsets[fam] + fus[fam].simple]
            hi += [offsets[fam] + totals[fam]] * 2
        self.fu_lo = _np.array(lo, i64)
        self.fu_hi = _np.array(hi, i64)
        self.fu_lanes = _np.array([1, 1, 1, 1, cfg.med_lanes,
                                   cfg.med_lanes], i64)

        pm = spec.memsys
        portset = pm.portset
        self.pm_busy = _np.array(portset.busy_until, dtype=i64)
        regs = self.regs
        regs[_R_PM_SCALAR] = portset.scalar_accesses
        regs[_R_PM_VECTOR] = portset.vector_accesses
        regs[_R_PM_ELEM] = portset.element_accesses
        regs[_R_PM_ACCT_N] = pm.acct_accesses
        regs[_R_PM_ACCT_OCC] = pm.acct_occupancy

        self.e_completion = _np.zeros(window, i64)
        self.e_chain = _np.zeros(window, i64)
        self.e_pending = _np.zeros(window, i64)
        self.e_base = _np.zeros(window, i64)
        self.whead = _np.full(window, -1, i64)
        self.wedge_w = _np.zeros(edges, i64)
        self.wedge_next = _np.arange(1, edges + 1, dtype=i64)
        self.wedge_next[edges - 1] = -1
        self.rel_heap = _np.zeros(wcap, i64)
        self.wake_heap = _np.zeros(wcap, i64)
        self.park_heap = _np.zeros(wcap, i64)
        self.iss_heap = _np.zeros(wcap, i64)
        self.wnext = _np.zeros(wcap, i64)
        bqcap = 1 << (4 * cfg.width - 1).bit_length()
        self.bursts = _np.zeros(bqcap, i64)

        c = _np.zeros(_NCFG, i64)
        c[_C_WIDTH] = cfg.width
        c[_C_ROB] = cfg.rob_size
        c[_C_LSQ] = cfg.lsq_size
        c[_C_FRONT] = cfg.front_latency
        c[_C_FQCAP] = 2 * cfg.width
        c[_C_REDIRECT] = Core.MISPREDICT_REDIRECT
        c[_C_GMASK] = gmask
        c[_C_WMASK] = window - 1
        c[_C_BQMASK] = bqcap - 1
        c[_C_PM_LAT] = pm.latency
        c[_C_PM_PORTS] = portset.ports
        c[_C_PM_SLOTS] = portset.ports * portset.port_width
        for pool in RegPool:
            c[_C_LIM0 + int(pool)] = cfg.phys_limit(pool)
        c[_C_ACCT] = 1 if spec.accounting else 0
        self.cfg = c

    def step(self, rings: _Rings, n: int, avail: int) -> int:
        aw = n if avail >= n else avail - self.width
        ca = rings.ctl[self.ctl_key]
        lat, alloc, chk, commit, rel, has = rings.select(self.spec)
        return _step_lane(
            self.regs, self.cfg, self.inflight, self.fu_busy, self.fu_lo,
            self.fu_hi, self.fu_lanes, self.pm_busy,
            self.e_completion, self.e_chain, self.e_pending, self.e_base,
            self.whead, self.wedge_w, self.wedge_next,
            self.rel_heap, self.wake_heap, self.park_heap, self.iss_heap,
            self.wnext, self.bursts,
            rings.r_kind, rings.r_sidx, rings.r_rows, lat, rings.r_nonpip,
            rings.r_chmode, rings.r_vl, rings.r_chains,
            rings.r_ndep, rings.r_dep,
            alloc, chk, commit, rel, has,
            ca.ring, ca.pos_idx, ca.pos_code,
            n, aw, ca.npos)

    def finish(self) -> dict:
        """Write the buffered memory-model state back and report stats.

        Called only after *every* lane of the run completed, so a failed
        run (``UnjittableError`` fallback) leaves the caller-owned
        memory systems untouched for the interpreted re-run.
        """
        regs = self.regs
        pm = self.spec.memsys
        portset = pm.portset
        portset.busy_until[:] = [int(v) for v in self.pm_busy]
        portset.scalar_accesses = int(regs[_R_PM_SCALAR])
        portset.vector_accesses = int(regs[_R_PM_VECTOR])
        portset.element_accesses = int(regs[_R_PM_ELEM])
        pm.acct_accesses = int(regs[_R_PM_ACCT_N])
        pm.acct_occupancy = int(regs[_R_PM_ACCT_OCC])
        stats = {
            "cycles": int(regs[_R_CYCLE]),
            "fetch_stalls": int(regs[_R_FSTALL]),
            "rename_stalls": int(regs[_R_RSTALL]),
        }
        if self.spec.accounting:
            stats["stack"] = {
                "base": int(regs[_R_ST_BASE]),
                "fetch": int(regs[_R_ST_FETCH]),
                "rename": int(regs[_R_ST_RENAME]),
                "fu_structural": int(regs[_R_ST_FU]),
                "mem_conflict": int(regs[_R_ST_MEMC]),
                "mem_latency": int(regs[_R_ST_MEML]),
                "drain": int(regs[_R_ST_DRAIN]),
            }
        return stats


# --- driver -----------------------------------------------------------------


def run_lanes_jit(specs, trace, *, block: int | None = None,
                  ring: int | None = None,
                  stream_threshold: int | None = None,
                  phases: dict | None = None) -> list:
    """Run every lane through the kernel; one stats dict per lane.

    Same decode-block cadence, record-source policy and ring-retention
    invariant as :meth:`BatchCore.run`; raises :class:`UnjittableError`
    when any lane (or the trace) cannot be expressed, *before* any
    caller-visible state is mutated.

    ``phases``, when given, accumulates decode/step/writeback wall-clock
    seconds, timed once per decode block (65536 records by default) —
    decode covers ring construction + ``decode_block``/``rings.sync``,
    step the lane kernel calls, writeback the ``finish`` readback.
    """
    from .batch import BatchCore, _SharedDecode

    for spec in specs:
        reason = lane_unjittable_reason(spec)
        if reason is not None:
            raise UnjittableError(reason)
    n = len(trace)
    if n >= 1 << 31:
        raise UnjittableError("trace too long for packed int64 indices")
    if n == 0:
        out = []
        for spec in specs:
            s = {"cycles": 0, "fetch_stalls": 0, "rename_stalls": 0,
                 "ctl": None}
            if spec.accounting:
                s["stack"] = {name: 0 for name in
                              ("base", "fetch", "rename", "fu_structural",
                               "mem_conflict", "mem_latency", "drain")}
            out.append(s)
        return out

    if block is None:
        block = BatchCore.BLOCK
    if ring is None:
        ring = BatchCore.RING
    if stream_threshold is None:
        stream_threshold = Core.STREAM_THRESHOLD
    if trace.records_cached() or n < stream_threshold:
        next_record = iter(trace.timing_records()).__next__
    else:
        next_record = trace.iter_timing_records().__next__

    _pc = _time.perf_counter
    _decode_t = 0.0
    _step_t = 0.0
    _t = _pc()
    warm()
    dep_cap = max(spec.config.rob_size for spec in specs)
    ctl_classes = {(spec.config.bimodal_entries, spec.config.btb_entries)
                   for spec in specs}
    shared = _SharedDecode(n, next_record, dep_cap, ctl_classes, block, ring)
    rings = _Rings(shared, specs)
    lanes = [_JitLane(spec, i, shared.mask) for i, spec in enumerate(specs)]
    _decode_t += _pc() - _t

    active = list(lanes)
    converted = 0
    while active:
        if shared.avail < n:
            if shared.avail >= shared.size:
                # About to overwrite the oldest ring block: every lane
                # must have retired past it (same invariant, and the
                # same safety net, as BatchCore.run).
                m = min(block, n - shared.avail)
                floor = shared.avail + m - shared.size
                cmin = min(int(lane.regs[_R_COMMITTED]) for lane in active)
                if cmin < floor:
                    raise RuntimeError(
                        "jit ring retention violated: lane committed "
                        f"{cmin} < floor {floor}")
            _t = _pc()
            shared.decode_block()
            rings.sync(shared, converted, shared.avail)
            converted = shared.avail
            _decode_t += _pc() - _t
        _t = _pc()
        still = []
        for lane in active:
            status = lane.step(rings, n, shared.avail)
            if status == _ST_PAUSED:
                still.append(lane)
            elif status == _ST_DONE:
                pass
            elif status == _ST_OVERFLOW:
                raise UnjittableError(
                    "cycle count overflows the packed int64 heap entries")
            elif status == _ST_EDGES:
                raise UnjittableError("waiter-edge pool exhausted")
            else:
                regs = lane.regs
                raise RuntimeError(
                    "jit lane deadlocked with no pending event "
                    f"(lane {lane.index}, cycle {int(regs[_R_CYCLE])}, "
                    f"{int(regs[_R_COMMITTED])}/{n})")
        active = still
        _step_t += _pc() - _t

    _t = _pc()
    stats = []
    for lane in lanes:
        s = lane.finish()
        s["ctl"] = shared.ctl[lane.ctl_key]
        stats.append(s)
    if phases is not None:
        phases["decode"] = phases.get("decode", 0.0) + _decode_t
        phases["step"] = phases.get("step", 0.0) + _step_t
        phases["writeback"] = (phases.get("writeback", 0.0)
                               + _pc() - _t)
    return stats
