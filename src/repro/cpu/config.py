"""Processor configurations (Table 1) and register-file sizing (Table 2).

The modeled machine closely follows a MIPS R10000 with an added multimedia
unit and register file.  Four issue widths are simulated; Table 1 of the
paper gives the exact resources, reproduced in :data:`TABLE1`.

Conventions taken from the paper:

* *simple* functional units perform logical/shift/add operations only;
  *complex* units additionally perform multiplication and division (so a
  complex unit subsumes a simple one);
* for the 8-way machine the MOM configuration replaces 4 single-lane media
  units by **2 units of width 2** (two parallel lanes each, executing two
  vector element operations per cycle), and likewise 4 scalar memory ports
  become **2 ports of width 2** -- each MOM port moves two vector elements
  per cycle but only one element of scalar data;
* the MOM vector-length register is renamed through the integer pool.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..isa.model import RegPool, RegisterFileSpec


@dataclass(frozen=True)
class FuConfig:
    """Functional-unit counts for one operation family."""

    simple: int
    complex_: int

    @property
    def total(self) -> int:
        return self.simple + self.complex_


@dataclass(frozen=True)
class MachineConfig:
    """One column of Table 1, plus the ISA-dependent media register files.

    Attributes:
        width: fetch/issue/graduate width (the machine's "way").
        med_lanes: vector lanes per media functional unit (MOM 8-way: 2).
        mem_ports: number of cache ports.
        mem_port_width: vector elements one port moves per cycle (MOM
            8-way: 2); scalar data always moves one element per cycle.
        front_latency: fetch-to-dispatch pipeline depth in cycles.
    """

    name: str
    width: int
    rob_size: int
    lsq_size: int
    bimodal_entries: int
    btb_entries: int
    int_units: FuConfig
    fp_units: FuConfig
    med_units: FuConfig
    med_lanes: int
    mem_ports: int
    mem_port_width: int
    int_phys: int
    fp_phys: int
    med_logical: int
    med_phys: int
    acc_logical: int
    acc_phys: int
    #: Rows per media register: 16 for MOM's banked matrix file, 1 for the
    #: 64-bit MMX/MDMX registers.  Rename headroom for the media pool is
    #: accounted in *row* units -- the matrix file is interleaved across
    #: banks (Section 3.2, citing DeVries & Lee and Asanovic), so a write
    #: of VL rows occupies VL row slots rather than a whole register.
    med_reg_rows: int = 1
    front_latency: int = 2

    def phys_limit(self, pool: RegPool) -> int:
        """In-flight rename headroom (row units for the media pool)."""
        if pool == RegPool.INT:
            return self.int_phys - 32
        if pool == RegPool.FP:
            return self.fp_phys - 32
        if pool == RegPool.MED:
            return max(0, self.med_phys - self.med_logical) * self.med_reg_rows
        if pool == RegPool.ACC:
            return max(0, self.acc_phys - self.acc_logical)
        raise ValueError(f"unknown pool {pool}")


#: Media register file organizations per ISA, from Table 2 (4-way machine).
#: ``(med_logical, med_phys, acc_logical, acc_phys)``.  The paper sized these
#: by "preliminary simulations ... to maintain processor performance"; it
#: reports them only for the 4-way machine, so we use them at every width.
MEDIA_REGFILES = {
    "alpha": (0, 0, 0, 0),
    "mmx": (32, 64, 0, 0),
    "mdmx": (32, 52, 4, 16),
    "mom": (16, 20, 2, 4),
}

#: Issue widths evaluated in the paper.
WAYS = (1, 2, 4, 8)

_BASE = {
    1: dict(rob_size=8, lsq_size=4, bimodal_entries=512, btb_entries=64,
            int_units=FuConfig(0, 1), fp_units=FuConfig(0, 1),
            med_units=FuConfig(0, 1), med_lanes=1,
            mem_ports=1, mem_port_width=1, int_phys=40, fp_phys=40),
    2: dict(rob_size=16, lsq_size=8, bimodal_entries=2048, btb_entries=256,
            int_units=FuConfig(1, 1), fp_units=FuConfig(1, 1),
            med_units=FuConfig(1, 1), med_lanes=1,
            mem_ports=1, mem_port_width=1, int_phys=48, fp_phys=48),
    4: dict(rob_size=32, lsq_size=16, bimodal_entries=4096, btb_entries=512,
            int_units=FuConfig(2, 1), fp_units=FuConfig(2, 1),
            med_units=FuConfig(0, 2), med_lanes=1,
            mem_ports=2, mem_port_width=1, int_phys=64, fp_phys=64),
    8: dict(rob_size=64, lsq_size=32, bimodal_entries=16384, btb_entries=1024,
            int_units=FuConfig(2, 2), fp_units=FuConfig(2, 2),
            med_units=FuConfig(0, 4), med_lanes=1,
            mem_ports=4, mem_port_width=1, int_phys=96, fp_phys=96),
}


def machine_config(way: int, isa: str) -> MachineConfig:
    """Build the Table 1 configuration for an issue width and ISA.

    The 8-way MOM machine gets 2 double-lane media units and 2 double-width
    memory ports in place of 4 single ones, per the paper's note.
    """
    if way not in _BASE:
        raise ValueError(f"way must be one of {sorted(_BASE)}, got {way}")
    if isa not in MEDIA_REGFILES:
        raise ValueError(f"unknown ISA {isa!r}")
    med_log, med_phys, acc_log, acc_phys = MEDIA_REGFILES[isa]
    cfg = MachineConfig(
        name=f"{way}-way-{isa}",
        width=way,
        med_logical=med_log,
        med_phys=med_phys,
        acc_logical=acc_log,
        acc_phys=acc_phys,
        med_reg_rows=16 if isa == "mom" else 1,
        **_BASE[way],
    )
    if way == 8 and isa == "mom":
        cfg = replace(
            cfg,
            med_units=FuConfig(0, 2), med_lanes=2,
            mem_ports=2, mem_port_width=2,
        )
    return cfg


def register_file_specs(isa: str, way: int = 4) -> list[RegisterFileSpec]:
    """Physical register files of the media extension (Table 2 content)."""
    med_log, med_phys, acc_log, acc_phys = MEDIA_REGFILES[isa]
    specs: list[RegisterFileSpec] = []
    if med_phys:
        if isa == "mom":
            # 16 rows of 64 bits, interleaved over 8 banks with 2R/1W each.
            specs.append(RegisterFileSpec(
                RegPool.MED, med_log, med_phys, width_bits=16 * 64,
                read_ports=2, write_ports=1, banks=8,
            ))
        else:
            specs.append(RegisterFileSpec(
                RegPool.MED, med_log, med_phys, width_bits=64,
                read_ports=6, write_ports=3,
            ))
    if acc_phys:
        if isa == "mom":
            specs.append(RegisterFileSpec(
                RegPool.ACC, acc_log, acc_phys, width_bits=192,
                read_ports=2, write_ports=1,
            ))
        else:
            specs.append(RegisterFileSpec(
                RegPool.ACC, acc_log, acc_phys, width_bits=192,
                read_ports=4, write_ports=2,
            ))
    return specs
