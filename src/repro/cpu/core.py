"""Trace-driven out-of-order superscalar core.

Models the paper's R10000-like machine (Section 3.2): per-cycle fetch
bounded by the issue width and by taken branches, a bimodal predictor and
BTB, register renaming over four pools with finite physical registers, a
reorder buffer, a load/store queue, fully-pipelined functional units (with
multi-lane media units for MOM) and out-of-order issue with oldest-first
priority.  Instruction *semantics* were already executed by the emulation
library; the core consumes :class:`~repro.emulib.trace.DynInstr` records and
charges time, exactly like the ATOM + Jinks arrangement of the paper.

Two engines implement the same machine:

* :meth:`Core.run` -- the production **event-driven scheduler**.  Instead of
  rescanning the whole reorder buffer every cycle it keeps per-producer
  wakeup lists (an instruction is re-examined only when a dependence
  completes), an oldest-first ready queue, structural-stall horizons from
  :meth:`~repro.cpu.funit.FuPool.next_free` and the memory models'
  ``earliest_issue`` hints, and *cycle skipping*: when no commit, wakeup,
  issue retry, dispatch or fetch can happen, the clock jumps straight to
  the next event horizon.  See DESIGN.md section 1.5.
* :meth:`Core.run_reference` -- the original per-cycle busy-wait loop,
  retained verbatim as the differential oracle.  Both engines are
  bit-identical in every :class:`SimResult` field; the golden-digest test
  pins that equivalence over a mini-grid captured from the seed core.

Simplifications (documented in DESIGN.md): mispredicted branches stall fetch
until the branch resolves (wrong-path fetch is not simulated -- standard for
trace-driven models), and memory disambiguation is optimistic (kernels
carry their memory dependences through registers).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field, fields
from time import perf_counter as _perf_counter

from ..emulib.trace import DynInstr, TimingRecord, Trace, reg_pool
from ..isa.model import InstrClass, RegPool
from .bpred import BimodalPredictor, BranchTargetBuffer
from .config import MachineConfig
from .funit import FuPool, fu_family, needs_complex_unit

#: Sentinel blocking fetch until a mispredicted branch resolves.
_FAR_FUTURE = 1 << 60

#: "No pending event" sentinel for the event scheduler's horizon search.
_NO_EVENT = 1 << 62


class _Entry:
    """One in-flight instruction in the reorder buffer (reference core)."""

    __slots__ = ("instr", "deps", "completion", "chain_ready", "issued",
                 "fetch_cycle", "dispatch_cycle", "mispredicted")

    def __init__(self, instr: DynInstr, fetch_cycle: int) -> None:
        self.instr = instr
        self.deps: list[_Entry] = []
        self.completion: int | None = None
        #: When a *chaining* consumer (another vector operation) may start:
        #: the producer's first element result is available while the rest
        #: still streams -- classic vector chaining.
        self.chain_ready: int | None = None
        self.issued = False
        self.fetch_cycle = fetch_cycle
        self.mispredicted = False


class _EventEntry:
    """One in-flight instruction in the event-driven scheduler.

    Beyond the reference entry's fields it carries the wakeup machinery:
    ``waiters`` (consumers to re-examine when this producer issues),
    ``pending_deps`` (producers this entry still waits on) and ``seq``
    (dispatch order, which is ROB order -- the ready queue's priority).
    """

    __slots__ = ("rec", "deps", "waiters", "pending_deps", "seq",
                 "completion", "chain_ready", "issued", "fetch_cycle",
                 "dispatch_cycle", "mispredicted")

    def __init__(self, rec, fetch_cycle: int) -> None:
        self.rec = rec
        self.deps: list[_EventEntry] = []
        self.waiters: list[_EventEntry] = []
        self.completion: int | None = None
        self.chain_ready: int | None = None
        self.issued = False
        self.fetch_cycle = fetch_cycle
        self.mispredicted = False
        # seq, dispatch_cycle and pending_deps are assigned at dispatch.


#: CPI-stack components, in display order.  With cycle accounting enabled
#: every simulated cycle lands in exactly one of these buckets (the
#: one-cycle-one-bucket rule; see DESIGN.md section 9):
#:
#: * ``base`` -- committing at full width, or the head is making normal
#:   single-cycle progress (includes issued compute latency).
#: * ``fetch`` -- the instruction window is empty because the front end
#:   has not delivered (I-window fill, taken-branch bubbles, misprediction
#:   redirect).
#: * ``rename`` -- dispatch blocked on window admission: physical-register
#:   headroom or a full load/store queue.
#: * ``fu_structural`` -- the window head is ready but no functional unit
#:   of its class is free.
#: * ``mem_conflict`` -- the head is a memory operation that cannot issue
#:   (port/bank conflict, MSHR or bus occupancy in the cache models).
#: * ``mem_latency`` -- the head is an issued memory operation still
#:   waiting on the hierarchy (miss latency, element streaming).
#: * ``drain`` -- the trace is exhausted and the pipeline is emptying.
STACK_COMPONENTS = ("base", "fetch", "rename", "fu_structural",
                    "mem_conflict", "mem_latency", "drain")


@dataclass
class TimingStats:
    """A CPI stack: simulated cycles attributed to exactly one component.

    Produced by the timing engines when ``accounting=`` is on; conservation
    (``total() == SimResult.cycles``) is asserted at construction via
    :func:`checked_stack`.  ``legacy`` marks an instance rebuilt from a
    pre-1.7 result dict that carried no stack fields (all zero); it is
    excluded from equality so legacy round-trips stay comparable.
    """

    base: int = 0
    fetch: int = 0
    rename: int = 0
    fu_structural: int = 0
    mem_conflict: int = 0
    mem_latency: int = 0
    drain: int = 0
    legacy: bool = field(default=False, compare=False)

    def total(self) -> int:
        return (self.base + self.fetch + self.rename + self.fu_structural
                + self.mem_conflict + self.mem_latency + self.drain)

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in STACK_COMPONENTS}

    @classmethod
    def from_dict(cls, data: dict) -> "TimingStats":
        """Tolerant inverse of :meth:`to_dict`.

        Components missing from ``data`` (a result written before the
        component existed) default to zero and flag the instance as
        ``legacy`` instead of raising, so old cached/served results stay
        loadable forever.
        """
        stack = cls(**{name: int(data.get(name, 0))
                       for name in STACK_COMPONENTS})
        stack.legacy = any(name not in data for name in STACK_COMPONENTS)
        return stack


def checked_stack(cycles: int, stack: TimingStats) -> TimingStats:
    """Enforce the conservation invariant ``cycles == sum(stack)``."""
    total = stack.total()
    if total != cycles:
        raise AssertionError(
            f"CPI-stack conservation violated: {total} cycles attributed "
            f"vs {cycles} simulated ({stack.to_dict()})")
    return stack


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    cycles: int
    instructions: int
    operations: int
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0
    fetch_stall_cycles: int = 0
    rename_stall_events: int = 0
    mem_stats: dict = field(default_factory=dict)
    #: CPI stack (cycle accounting); ``None`` unless the run was made with
    #: ``accounting=`` on.  Serialized as ``cpi_stack`` -- and only when
    #: present, so accounting-off results stay bit-identical to pre-1.7.
    stack: TimingStats | None = None
    #: Non-deterministic run metadata (wall-clock timing and the like);
    #: excluded from equality so simulation results stay comparable across
    #: hosts, cache hits and parallel execution paths.
    meta: dict = field(default_factory=dict, compare=False)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def opc(self) -> float:
        """Operations (lane-level work items) per cycle."""
        return self.operations / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        """Plain-data image for the persistent result cache (JSON-safe)."""
        data = {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "operations": self.operations,
            "branch_lookups": self.branch_lookups,
            "branch_mispredicts": self.branch_mispredicts,
            "btb_misses": self.btb_misses,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "rename_stall_events": self.rename_stall_events,
            "mem_stats": dict(self.mem_stats),
            "meta": dict(self.meta),
        }
        if self.stack is not None:
            data["cpi_stack"] = self.stack.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Inverse of :meth:`to_dict`; round-trips to an equal instance.

        Unknown keys are ignored rather than raised on, so persistent-cache
        entries written by a newer schema degrade gracefully instead of
        breaking older readers; pre-1.7 dicts (no ``cpi_stack``) load with
        ``stack=None``, and partial stacks load default-zero via the
        tolerant :meth:`TimingStats.from_dict`.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items()
                  if k in known and k != "stack"}
        stack = data.get("cpi_stack")
        if stack is not None:
            kwargs["stack"] = TimingStats.from_dict(stack)
        return cls(**kwargs)


class Core:
    """The cycle-level engine.

    Args:
        config: a Table 1 machine configuration.
        memsys: any object with ``try_issue(instr, cycle) -> int | None``
            (perfect model or a full cache hierarchy).  A memory model may
            additionally export ``earliest_issue(instr, cycle) -> int``, a
            retry horizon the event scheduler uses to skip guaranteed-futile
            reattempts (see :mod:`repro.memsys.cache` for the contract).
    """

    #: Extra cycles between a mispredicted branch resolving and useful
    #: instructions re-entering the pipeline (redirect + refill).
    MISPREDICT_REDIRECT = 1

    #: Pools whose physical registers release at *writeback* rather than
    #: commit.  The media and accumulator files are the banked structures
    #: of Section 3.2 (the paper cites DeVries & Lee and Asanovic's banked
    #: vector register files); with only 20 physical matrix registers for
    #: 16 logical ones, Table 2's sizing is only sufficient under this
    #: eager-reclamation discipline.
    LATE_RELEASE_POOLS = frozenset({RegPool.MED, RegPool.ACC})

    #: Traces at or above this many instructions stream their
    #: :class:`TimingRecord`\ s straight from the columnar chunks instead
    #: of materializing (and caching) the full record list -- the
    #: frame-scale path.  Below it, the cached list is kept so the
    #: experiment grid's reuse of one trace across many configurations
    #: classifies each instruction once.
    STREAM_THRESHOLD = 1 << 20

    #: Zeroing idioms rename to a hard-wired zero value and allocate no
    #: physical register -- standard renamer practice; essential for the
    #: accumulator pool, whose clear-accumulate-read pattern would
    #: otherwise burn two of its four physical registers per chain.
    ZERO_IDIOMS = frozenset({"clracc", "momzero"})

    def __init__(self, config: MachineConfig, memsys, *,
                 acc_chaining: bool = True, late_release: bool = True,
                 zero_idiom_elision: bool = True,
                 accounting: bool = False) -> None:
        """Args beyond config/memsys are ablation knobs (benchmarks):

        acc_chaining: pipeline partial accumulations inside matrix
            accumulate instructions (Section 2.1); off = MDMX-style
            recurrence for MOM too.
        late_release: banked media/accumulator files release physical
            registers at writeback instead of commit.
        zero_idiom_elision: ``clracc``/``momzero`` allocate no register.
        accounting: attribute every simulated cycle to one CPI-stack
            component (``result.stack``); off by default so results and
            speed are untouched.
        """
        self.config = config
        self.memsys = memsys
        self.accounting = accounting
        self.acc_chaining = acc_chaining
        self.late_release_pools = (self.LATE_RELEASE_POOLS if late_release
                                   else frozenset())
        self.zero_idioms = (self.ZERO_IDIOMS if zero_idiom_elision
                            else frozenset())
        self._reset_frontend()

    def _reset_frontend(self) -> None:
        """Rebuild the run-scoped microarchitectural state.

        Called at the top of every :meth:`run` / :meth:`run_reference` so
        a reused ``Core`` instance starts each run with cold predictor
        tables and idle functional units, exactly like a fresh one --
        predictor counters, BTB tags and FU busy horizons would otherwise
        leak from the previous trace and silently skew the second run.
        (The memory system is caller-owned and deliberately *not* reset.)
        """
        config = self.config
        self.bpred = BimodalPredictor(config.bimodal_entries)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.pools = {
            "int": FuPool(config.int_units),
            "fp": FuPool(config.fp_units),
            "med": FuPool(config.med_units, lanes=config.med_lanes),
        }
        #: computation classes -> (functional-unit pool, needs complex unit).
        self._route = {
            InstrClass.INT_SIMPLE: (self.pools["int"], False),
            InstrClass.INT_COMPLEX: (self.pools["int"], True),
            InstrClass.FP_SIMPLE: (self.pools["fp"], False),
            InstrClass.FP_COMPLEX: (self.pools["fp"], True),
            InstrClass.MED_SIMPLE: (self.pools["med"], False),
            InstrClass.MED_COMPLEX: (self.pools["med"], True),
        }
        # Re-resolved here (not just in __init__) so a caller that swaps
        # in a fresh memory system between runs gets a matching hint.
        self._mem_hint = getattr(self.memsys, "earliest_issue", None)

    # --- public API --------------------------------------------------------------

    def run(self, trace: Trace, *, jit: bool | None = None,
            phases: dict | None = None) -> SimResult:
        """Simulate a full trace to completion and return statistics.

        Event-driven: per-producer wakeup lists re-examine only the
        instructions whose dependences just completed, structurally
        stalled instructions park until their resource's next-free
        horizon, and the clock jumps over cycles in which nothing can
        happen.  Bit-identical to :meth:`run_reference` in every result
        field -- including stall counters and memory-model statistics,
        whose retry cadence the scheduler reproduces exactly.

        Args:
            jit: ``True``/``False`` forces the compiled fast path on or
                off; ``None`` (default) uses it when available unless
                ``REPRO_NO_JIT=1``.  Points the kernel cannot express
                fall back to this interpreted loop automatically;
                ``result.meta["jit"]`` records which path ran.
            phases: optional dict the run *adds* decode/step/writeback
                wall-clock seconds into.  Timed only at natural block
                boundaries — record-source setup, the scheduler loop,
                result assembly — so the guard costs a handful of
                ``perf_counter`` calls per run, never one per record.
                On the streaming record source decode interleaves with
                stepping and is accounted under ``step``.
        """
        self._reset_frontend()
        from .jit import jit_enabled
        use_jit = jit_enabled() if jit is None else bool(jit)
        if use_jit:
            result = self._run_jit(trace, phases=phases)
            if result is not None:
                return result
        cfg = self.config
        width = cfg.width
        n = len(trace)
        # Record source: the experiment grid simulates one (small) trace
        # under many machine configurations, so the cached record list
        # amortizes classification across runs.  Frame-scale traces are
        # simulated once each and never fit comfortably as object records;
        # they stream TimingRecords chunk by chunk instead, keeping peak
        # memory at the columnar store plus one in-flight window (fetch
        # consumes records strictly in program order, exactly once).
        _t = _perf_counter()
        if trace.records_cached() or n < self.STREAM_THRESHOLD:
            next_record = iter(trace.timing_records()).__next__
        else:
            next_record = trace.iter_timing_records().__next__
        if phases is not None:
            phases["decode"] = phases.get("decode", 0.0) + _perf_counter() - _t
        _t = _perf_counter()

        rob: deque[_EventEntry] = deque()     # program order; head leftmost
        fetch_queue: deque[_EventEntry] = deque()
        last_writer: dict[int, _EventEntry] = {}
        inflight_dsts = [0] * len(RegPool)    # RegPool is an IntEnum index
        phys_limit = [cfg.phys_limit(pool) for pool in RegPool]
        lsq_used = 0

        releases: list[tuple[int, RegPool, int]] = []  # (completion, pool, rows)

        fetch_idx = 0
        cycle = 0
        committed = 0
        next_fetch_cycle = 0
        fetch_stall_cycles = 0
        rename_stalls = 0
        fetch_queue_cap = 2 * width
        seq = 0

        # CPI-stack accumulators (see STACK_COMPONENTS); only touched when
        # accounting is on, so the default path pays one flag test per
        # cycle plus the admission_blocked reset.
        accounting = self.accounting
        st_base = st_fetch = st_rename = st_fu = 0
        st_memc = st_meml = st_drain = 0

        #: (ready_cycle, seq, entry): all dependences issued, waiting for
        #: their results; promoted to `issuable` when ready_cycle arrives.
        wakeups: list[tuple[int, int, _EventEntry]] = []
        #: entries that become ready exactly next cycle -- the overwhelmingly
        #: common case, kept off the heap (the fast path guarantees the next
        #: active cycle is `cycle + 1` while this list is non-empty).
        wakeups_next: list[_EventEntry] = []
        #: (seq, entry): ready now -- examined oldest-first each cycle.
        issuable: list[tuple[int, _EventEntry]] = []
        #: (retry_cycle, seq, entry): ready but structurally stalled;
        #: sleeping until the resource's earliest possible free cycle.
        parked: list[tuple[int, int, _EventEntry]] = []

        # Hot-loop locals (the scheduler's inner loop is the hottest path in
        # the whole package; attribute loads in it are measurable).
        heappush = heapq.heappush
        heappop = heapq.heappop
        zero_idioms = self.zero_idioms
        late_release_pools = self.late_release_pools
        acc_chaining = self.acc_chaining
        route = self._route
        mem_try_issue = self.memsys.try_issue
        int_try_issue = self.pools["int"].try_issue
        predict_and_update = self.bpred.predict_and_update
        btb_lookup_insert = self.btb.lookup_insert
        rename_ok = self._rename_ok_rec
        rob_size = cfg.rob_size
        lsq_size = cfg.lsq_size
        front_latency = cfg.front_latency
        redirect = self.MISPREDICT_REDIRECT
        KIND_COMPUTE = TimingRecord.KIND_COMPUTE
        KIND_MEMORY = TimingRecord.KIND_MEMORY
        KIND_CONTROL = TimingRecord.KIND_CONTROL

        while committed < n:
            cycle += 1

            # --- release late-freed physical registers (backlog included) -------
            while releases and releases[0][0] <= cycle:
                _done, pool, charge = heappop(releases)
                inflight_dsts[pool] -= charge

            # --- commit: retire completed instructions in order ----------------
            commits = 0
            while rob and commits < width:
                head = rob[0]
                if head.completion is None or head.completion > cycle:
                    break
                rob.popleft()
                rec = head.rec
                head_zero = rec.op_name in zero_idioms
                for dst, pool, charge in rec.dsts:
                    if pool not in late_release_pools and not head_zero:
                        inflight_dsts[pool] -= charge
                    if last_writer.get(dst) is head:
                        del last_writer[dst]
                if rec.is_memory:
                    lsq_used -= 1
                committed += 1
                commits += 1
            if committed >= n:
                # Final cycle: the window and fetch stream are empty.  A
                # full-width commit is base work; anything narrower is the
                # pipeline draining (identical to the per-cycle rules the
                # reference loop applies on its way out).
                if accounting:
                    if commits == width:
                        st_base += 1
                    else:
                        st_drain += 1
                break       # the remaining phases are vacuously empty

            # --- wake: promote entries whose readiness/retry horizon arrived ----
            if wakeups_next:
                for entry in wakeups_next:
                    heappush(issuable, (entry.seq, entry))
                wakeups_next.clear()
            while wakeups and wakeups[0][0] <= cycle:
                _ready, s, entry = heappop(wakeups)
                heappush(issuable, (s, entry))
            while parked and parked[0][0] <= cycle:
                _retry, s, entry = heappop(parked)
                heappush(issuable, (s, entry))

            # --- issue: oldest-first among ready entries, `width` per cycle -----
            issued = 0
            next_cycle = cycle + 1
            while issuable and issued < width:
                s, entry = heappop(issuable)
                rec = entry.rec
                kind = rec.kind
                if kind == KIND_COMPUTE:
                    latency = 1 if (acc_chaining and rec.acc_chain_eligible) \
                        else rec.latency
                    pool, needs_complex = route[rec.iclass]
                    completion = pool.try_issue(
                        needs_complex, cycle, rec.exec_rows, rec.op_name,
                        latency)
                elif kind == KIND_MEMORY:
                    completion = mem_try_issue(rec.instr, cycle)
                elif kind == KIND_CONTROL:
                    # Branches resolve on a simple integer pipe.
                    completion = int_try_issue(False, cycle, 1, rec.op_name, 1)
                else:
                    completion = next_cycle
                if completion is None:
                    # Structural hazard; younger ops may go.  Park until the
                    # resource's earliest-free horizon (retries the seed core
                    # would have made in between are guaranteed futile and
                    # side-effect free -- see _retry_cycle).
                    heappush(parked, (self._retry_cycle(entry, cycle), s,
                                      entry))
                    continue
                entry.issued = True
                entry.completion = completion
                # First-element availability for chaining consumers (see
                # _chain_ready on the reference engine).
                if rec.vl <= 1:
                    entry.chain_ready = completion
                elif rec.is_memory:
                    early = completion - rec.vl + 1
                    entry.chain_ready = early if early > next_cycle \
                        else next_cycle
                elif rec.writes_acc:
                    entry.chain_ready = completion
                else:
                    first = cycle + rec.latency
                    entry.chain_ready = completion if completion < first \
                        else first
                issued += 1
                if rec.op_name not in zero_idioms:
                    for _dst, pool, charge in rec.dsts:
                        if pool in late_release_pools:
                            heappush(releases, (completion, pool, charge))
                if entry.mispredicted:
                    # Redirect fetch once the branch resolves.
                    next_fetch_cycle = completion + redirect
                waiters = entry.waiters
                if waiters:
                    for waiter in waiters:
                        pending = waiter.pending_deps - 1
                        waiter.pending_deps = pending
                        if pending == 0:
                            # All producers issued: earliest issue cycle is
                            # the latest dependence availability (chain time
                            # for chaining vector consumers) but never before
                            # the cycle after dispatch.
                            ready = waiter.dispatch_cycle + 1
                            chaining = waiter.rec.chains
                            for dep in waiter.deps:
                                avail = dep.chain_ready if chaining \
                                    else dep.completion
                                if avail > ready:
                                    ready = avail
                            if ready == next_cycle:
                                wakeups_next.append(waiter)
                            elif ready <= cycle:
                                heappush(issuable, (waiter.seq, waiter))
                            else:
                                heappush(wakeups, (ready, waiter.seq, waiter))
                    entry.waiters = []

            # --- dispatch: fetch queue -> ROB (rename + allocate) ---------------
            dispatched = 0
            admission_blocked = False
            while (fetch_queue and dispatched < width
                   and len(rob) < rob_size):
                entry = fetch_queue[0]
                rec = entry.rec
                if entry.fetch_cycle + front_latency > cycle:
                    break
                if rec.is_memory and lsq_used >= lsq_size:
                    admission_blocked = True
                    break
                zero_idiom = rec.op_name in zero_idioms
                if not zero_idiom:
                    # Physical-register headroom for every destination pool
                    # (inline _rename_ok_rec; this runs once per instruction).
                    blocked = False
                    for _dst, pool, charge in rec.dsts:
                        if inflight_dsts[pool] + charge - 1 >= phys_limit[pool]:
                            blocked = True
                            break
                    if blocked:
                        rename_stalls += 1
                        admission_blocked = True
                        break
                fetch_queue.popleft()
                pending = 0
                for src in rec.srcs:
                    producer = last_writer.get(src)
                    if producer is not None:
                        entry.deps.append(producer)
                        if not producer.issued:
                            producer.waiters.append(entry)
                            pending += 1
                for dst, pool, charge in rec.dsts:
                    if not zero_idiom:
                        inflight_dsts[pool] += charge
                    last_writer[dst] = entry
                if rec.is_memory:
                    lsq_used += 1
                entry.seq = seq
                entry.dispatch_cycle = cycle
                seq += 1
                rob.append(entry)
                dispatched += 1
                entry.pending_deps = pending
                if pending == 0:
                    ready = next_cycle
                    chaining = rec.chains
                    for dep in entry.deps:
                        avail = dep.chain_ready if chaining \
                            else dep.completion
                        if avail > ready:
                            ready = avail
                    if ready == next_cycle:
                        wakeups_next.append(entry)
                    else:
                        heappush(wakeups, (ready, entry.seq, entry))

            # --- fetch: up to `width`, stopping at taken branches ---------------
            if fetch_idx < n and cycle >= next_fetch_cycle:
                fetched = 0
                while (fetch_idx < n and fetched < width
                       and len(fetch_queue) < fetch_queue_cap):
                    rec = next_record()
                    entry = _EventEntry(rec, cycle)
                    fetch_queue.append(entry)
                    fetch_idx += 1
                    fetched += 1
                    if rec.is_branch:
                        prediction = predict_and_update(
                            rec.site, bool(rec.taken)
                        )
                        if prediction != rec.taken:
                            # Fetch blocks until the branch resolves at
                            # issue, which rewrites next_fetch_cycle.
                            entry.mispredicted = True
                            next_fetch_cycle = _FAR_FUTURE
                            break
                        if rec.taken:
                            hit = btb_lookup_insert(rec.site)
                            next_fetch_cycle = cycle + (1 if hit else 2)
                            break
                    elif rec.is_jump:
                        hit = btb_lookup_insert(rec.site)
                        next_fetch_cycle = cycle + (1 if hit else 2)
                        break
            elif fetch_idx < n:
                fetch_stall_cycles += 1

            # --- account: attribute this cycle to exactly one stack bucket ------
            # End-of-cycle classification, first-match-wins (DESIGN.md §9):
            # full-width commit > head memory latency > head memory conflict
            # > window admission > FU structural > base > drain > fetch.
            if accounting:
                if commits == width:
                    st_base += 1
                elif rob:
                    head = rob[0]
                    if head.completion is not None:
                        if head.rec.is_memory and head.completion > cycle + 1:
                            st_meml += 1
                        elif admission_blocked:
                            st_rename += 1
                        else:
                            st_base += 1
                    elif head.dispatch_cycle < cycle:
                        if head.rec.is_memory:
                            st_memc += 1
                        elif admission_blocked:
                            st_rename += 1
                        else:
                            st_fu += 1
                    elif admission_blocked:
                        st_rename += 1
                    else:
                        st_base += 1
                elif fetch_idx >= n:
                    st_drain += 1
                else:
                    st_fetch += 1

            # --- horizon: first future cycle at which anything can happen -------
            # Fast path: leftover ready entries (width cutoff) or wakeups due
            # next cycle mean the next cycle is active; nothing to account.
            if issuable or wakeups_next:
                continue
            nxt = _NO_EVENT
            if rob:
                head = rob[0]
                if head.completion is not None:
                    nxt = head.completion if head.completion > cycle \
                        else next_cycle
            if parked and parked[0][0] < nxt:
                nxt = parked[0][0]
            if wakeups:
                ready = wakeups[0][0]
                if ready <= cycle:
                    ready = next_cycle
                if ready < nxt:
                    nxt = ready
            rename_blocked = False
            lsq_blocked = False
            if fetch_queue and len(rob) < rob_size:
                head = fetch_queue[0]
                front_ready = head.fetch_cycle + front_latency
                if front_ready > cycle:
                    if front_ready < nxt:
                        nxt = front_ready
                elif head.rec.is_memory and lsq_used >= lsq_size:
                    lsq_blocked = True  # a commit frees the LSQ; commits are events
                elif not rename_ok(head.rec, inflight_dsts, phys_limit):
                    # Dispatch resumes at a register release or a commit;
                    # skipped cycles still count as rename-stall events.
                    rename_blocked = True
                    if releases and releases[0][0] < nxt:
                        nxt = releases[0][0]
                elif next_cycle < nxt:
                    nxt = next_cycle
            if (fetch_idx < n and len(fetch_queue) < fetch_queue_cap
                    and next_fetch_cycle != _FAR_FUTURE):
                fetch_at = next_fetch_cycle if next_fetch_cycle > cycle \
                    else next_cycle
                if fetch_at < nxt:
                    nxt = fetch_at
            if nxt >= _NO_EVENT:
                raise RuntimeError(
                    "event scheduler deadlocked with no pending event "
                    f"(cycle {cycle}, {committed}/{n} committed)")

            # --- cycle skip: account the stall counters the seed loop would
            # have incremented while busy-waiting through the skipped span.
            skipped = nxt - next_cycle
            if skipped > 0:
                if fetch_idx < n and next_fetch_cycle > next_cycle:
                    fetch_stall_cycles += (min(nxt, next_fetch_cycle)
                                           - next_cycle)
                if rename_blocked:
                    rename_stalls += skipped
                if accounting:
                    # The skipped span replays the per-cycle rules against
                    # frozen state: no commits, no releases, no dispatch and
                    # no fetch can occur before `nxt`, so every span cycle
                    # classifies identically -- except the last one when the
                    # head's memory completion lands exactly on `nxt`, where
                    # the latency rule (completion > t+1) no longer holds.
                    adm = rename_blocked or lsq_blocked
                    if rob:
                        head = rob[0]
                        if head.completion is not None:
                            if head.rec.is_memory:
                                st_meml += skipped
                                if head.completion == nxt:
                                    st_meml -= 1
                                    if adm:
                                        st_rename += 1
                                    else:
                                        st_base += 1
                            elif adm:
                                st_rename += skipped
                            else:
                                st_base += skipped
                        elif head.rec.is_memory:
                            st_memc += skipped
                        elif adm:
                            st_rename += skipped
                        else:
                            st_fu += skipped
                    elif fetch_idx >= n:
                        st_drain += skipped
                    else:
                        st_fetch += skipped
                cycle = nxt - 1     # the loop header re-increments

        if phases is not None:
            phases["step"] = phases.get("step", 0.0) + _perf_counter() - _t
        _t = _perf_counter()
        result = SimResult(
            cycles=cycle,
            instructions=n,
            operations=trace.operation_count(),
            branch_lookups=self.bpred.lookups,
            branch_mispredicts=self.bpred.mispredicts,
            btb_misses=self.btb.misses,
            fetch_stall_cycles=fetch_stall_cycles,
            rename_stall_events=rename_stalls,
            mem_stats=self.memsys.stats() if hasattr(self.memsys, "stats") else {},
        )
        if accounting:
            result.stack = checked_stack(cycle, TimingStats(
                base=st_base, fetch=st_fetch, rename=st_rename,
                fu_structural=st_fu, mem_conflict=st_memc,
                mem_latency=st_meml, drain=st_drain))
            if hasattr(self.memsys, "accounting_stats"):
                result.meta["mem_accounting"] = self.memsys.accounting_stats()
        result.meta["jit"] = False
        if phases is not None:
            phases["writeback"] = (phases.get("writeback", 0.0)
                                   + _perf_counter() - _t)
        return result

    def _run_jit(self, trace: Trace,
                 phases: dict | None = None) -> SimResult | None:
        """Attempt the compiled fast path; ``None`` means fall back.

        The jit kernel consumes the same shared-decode rings as
        :class:`~repro.cpu.batch.BatchCore` and is bit-identical to this
        method's interpreted loop on every result field.  Inexpressible
        points (non-perfect memory, numba missing, in-kernel capacity
        limits) return ``None`` without mutating caller-visible state.
        """
        from .jit import (UnjittableError, jit_available,
                          lane_unjittable_reason, run_lanes_jit)
        if not jit_available() or len(trace) == 0:
            return None
        from .batch import LaneSpec
        spec = LaneSpec(self.config, self.memsys,
                        acc_chaining=self.acc_chaining,
                        late_release=bool(self.late_release_pools),
                        zero_idiom_elision=bool(self.zero_idioms),
                        accounting=self.accounting)
        if lane_unjittable_reason(spec) is not None:
            return None
        # Phase timings go to a local dict first: an UnjittableError
        # mid-run must not leave partial jit timings in the caller's
        # view of the interpreted re-run.
        jit_phases: dict | None = {} if phases is not None else None
        try:
            (stats,) = run_lanes_jit(
                [spec], trace, stream_threshold=self.STREAM_THRESHOLD,
                phases=jit_phases)
        except UnjittableError:
            return None
        ctl = stats["ctl"]
        result = SimResult(
            cycles=stats["cycles"],
            instructions=len(trace),
            operations=trace.operation_count(),
            branch_lookups=ctl.lookups,
            branch_mispredicts=ctl.mispredicts,
            btb_misses=ctl.btb_misses,
            fetch_stall_cycles=stats["fetch_stalls"],
            rename_stall_events=stats["rename_stalls"],
            mem_stats=self.memsys.stats() if hasattr(self.memsys, "stats")
            else {},
        )
        if self.accounting:
            result.stack = checked_stack(
                stats["cycles"], TimingStats(**stats["stack"]))
            if hasattr(self.memsys, "accounting_stats"):
                result.meta["mem_accounting"] = self.memsys.accounting_stats()
        result.meta["jit"] = True
        if phases is not None:
            for key, dt in jit_phases.items():
                phases[key] = phases.get(key, 0.0) + dt
        return result

    def run_reference(self, trace: Trace) -> SimResult:
        """The seed per-cycle busy-wait engine, kept as the timing oracle.

        Rescans the whole ROB every cycle and retries every stalled
        instruction cycle-by-cycle.  Slow, but trivially correct; the
        golden-digest and differential tests pin :meth:`run` against it.
        """
        self._reset_frontend()
        cfg = self.config
        width = cfg.width
        rob: list[_Entry] = []          # in program order; head at index 0
        fetch_queue: list[_Entry] = []
        last_writer: dict[int, _Entry] = {}
        inflight_dsts = {pool: 0 for pool in RegPool}
        phys_limit = {pool: cfg.phys_limit(pool) for pool in RegPool}
        lsq_used = 0

        releases: list[tuple[int, RegPool, int]] = []  # (completion, pool, rows)

        instrs = trace.instructions
        n = len(instrs)
        fetch_idx = 0
        cycle = 0
        committed = 0
        next_fetch_cycle = 0
        fetch_stall_cycles = 0
        rename_stalls = 0
        fetch_queue_cap = 2 * width

        accounting = self.accounting
        st_base = st_fetch = st_rename = st_fu = 0
        st_memc = st_meml = st_drain = 0

        while committed < n:
            cycle += 1

            # --- release late-freed physical registers --------------------------
            while releases and releases[0][0] <= cycle:
                _done, pool, charge = heapq.heappop(releases)
                inflight_dsts[pool] -= charge

            # --- commit: retire completed instructions in order ----------------
            commits = 0
            while rob and commits < width:
                head = rob[0]
                if head.completion is None or head.completion > cycle:
                    break
                rob.pop(0)
                head_zero = head.instr.op.name in self.zero_idioms
                for dst in head.instr.dsts:
                    pool = reg_pool(dst)
                    if pool not in self.late_release_pools and not head_zero:
                        inflight_dsts[pool] -= self._charge(head.instr, dst)
                    if last_writer.get(dst) is head:
                        del last_writer[dst]
                if head.instr.iclass.is_memory:
                    lsq_used -= 1
                committed += 1
                commits += 1

            # --- issue: oldest-first, up to `width` per cycle --------------------
            issued = 0
            for entry in rob:
                if issued >= width:
                    break
                if entry.issued:
                    continue
                if not self._deps_ready(entry, cycle, self._chains(entry)):
                    continue
                completion = self._execute(entry, cycle)
                if completion is None:
                    continue        # structural hazard; younger ops may go
                entry.issued = True
                entry.completion = completion
                entry.chain_ready = self._chain_ready(entry, cycle, completion)
                issued += 1
                if entry.instr.op.name not in self.zero_idioms:
                    for dst in entry.instr.dsts:
                        pool = reg_pool(dst)
                        if pool in self.late_release_pools:
                            charge = self._charge(entry.instr, dst)
                            heapq.heappush(releases, (completion, pool, charge))
                if entry.mispredicted:
                    # Redirect fetch once the branch resolves.
                    next_fetch_cycle = completion + self.MISPREDICT_REDIRECT

            # --- dispatch: fetch queue -> ROB (rename + allocate) ------------------
            dispatched = 0
            admission_blocked = False
            while (fetch_queue and dispatched < width and len(rob) < cfg.rob_size):
                entry = fetch_queue[0]
                if entry.fetch_cycle + cfg.front_latency > cycle:
                    break
                instr = entry.instr
                if instr.iclass.is_memory and lsq_used >= cfg.lsq_size:
                    admission_blocked = True
                    break
                if not self._rename_ok(instr, inflight_dsts, phys_limit):
                    rename_stalls += 1
                    admission_blocked = True
                    break
                fetch_queue.pop(0)
                zero_idiom = instr.op.name in self.zero_idioms
                for src in instr.srcs:
                    producer = last_writer.get(src)
                    if producer is not None:
                        entry.deps.append(producer)
                for dst in instr.dsts:
                    if not zero_idiom:
                        inflight_dsts[reg_pool(dst)] += self._charge(instr, dst)
                    last_writer[dst] = entry
                if instr.iclass.is_memory:
                    lsq_used += 1
                entry.dispatch_cycle = cycle
                rob.append(entry)
                dispatched += 1

            # --- fetch: up to `width`, stopping at taken branches -------------------
            if fetch_idx < n and cycle >= next_fetch_cycle:
                fetched = 0
                while (fetch_idx < n and fetched < width
                       and len(fetch_queue) < fetch_queue_cap):
                    instr = instrs[fetch_idx]
                    entry = _Entry(instr, cycle)
                    fetch_queue.append(entry)
                    fetch_idx += 1
                    fetched += 1
                    if instr.iclass == InstrClass.BRANCH:
                        prediction = self.bpred.predict_and_update(
                            instr.site, bool(instr.taken)
                        )
                        if prediction != instr.taken:
                            # Fetch blocks until the branch resolves at issue,
                            # which rewrites next_fetch_cycle.
                            entry.mispredicted = True
                            next_fetch_cycle = _FAR_FUTURE
                            break
                        if instr.taken:
                            hit = self.btb.lookup_insert(instr.site)
                            next_fetch_cycle = cycle + (1 if hit else 2)
                            break
                    elif instr.iclass == InstrClass.JUMP:
                        hit = self.btb.lookup_insert(instr.site)
                        next_fetch_cycle = cycle + (1 if hit else 2)
                        break
            elif fetch_idx < n:
                fetch_stall_cycles += 1

            # --- account: the same end-of-cycle rules as the event engine -------
            if accounting:
                if commits == width:
                    st_base += 1
                elif rob:
                    head = rob[0]
                    if head.completion is not None:
                        if (head.instr.iclass.is_memory
                                and head.completion > cycle + 1):
                            st_meml += 1
                        elif admission_blocked:
                            st_rename += 1
                        else:
                            st_base += 1
                    elif head.dispatch_cycle < cycle:
                        if head.instr.iclass.is_memory:
                            st_memc += 1
                        elif admission_blocked:
                            st_rename += 1
                        else:
                            st_fu += 1
                    elif admission_blocked:
                        st_rename += 1
                    else:
                        st_base += 1
                elif fetch_idx >= n:
                    st_drain += 1
                else:
                    st_fetch += 1

        result = SimResult(
            cycles=cycle,
            instructions=n,
            operations=trace.operation_count(),
            branch_lookups=self.bpred.lookups,
            branch_mispredicts=self.bpred.mispredicts,
            btb_misses=self.btb.misses,
            fetch_stall_cycles=fetch_stall_cycles,
            rename_stall_events=rename_stalls,
            mem_stats=self.memsys.stats() if hasattr(self.memsys, "stats") else {},
        )
        if accounting:
            result.stack = checked_stack(cycle, TimingStats(
                base=st_base, fetch=st_fetch, rename=st_rename,
                fu_structural=st_fu, mem_conflict=st_memc,
                mem_latency=st_meml, drain=st_drain))
            if hasattr(self.memsys, "accounting_stats"):
                result.meta["mem_accounting"] = self.memsys.accounting_stats()
        return result

    # --- event-scheduler helpers --------------------------------------------------

    def _retry_cycle(self, entry: _EventEntry, cycle: int) -> int:
        """Next cycle a structurally stalled entry must be re-attempted.

        Resources whose failures are side-effect free report how long they
        stay busy (:meth:`FuPool.next_free`, the memory models'
        ``earliest_issue``); everything else retries next cycle, exactly
        like the busy-wait loop.
        """
        rec = entry.rec
        if rec.is_memory:
            hint = self._mem_hint(rec.instr, cycle) if self._mem_hint \
                else cycle
        elif rec.is_branch or rec.is_jump:
            hint = self.pools["int"].next_free(False)
        elif rec.is_nop:
            hint = cycle        # a NOP never stalls; defensive only
        else:
            pool, needs_complex = self._route[rec.iclass]
            hint = pool.next_free(needs_complex)
        return hint if hint > cycle else cycle + 1

    def _rename_ok_rec(self, rec, inflight, limits) -> bool:
        """Record-based twin of :meth:`_rename_ok`."""
        if rec.op_name in self.zero_idioms:
            return True
        for _dst, pool, charge in rec.dsts:
            if inflight[pool] + charge - 1 >= limits[pool]:
                return False
        return True

    # --- reference-core helpers ---------------------------------------------------

    @staticmethod
    def _chains(entry: _Entry) -> bool:
        """Vector operations chain on their producers' element streams."""
        instr = entry.instr
        return instr.vl > 1 and (instr.iclass.is_media
                                 or instr.iclass.is_memory)

    @staticmethod
    def _deps_ready(entry: _Entry, cycle: int, chaining: bool) -> bool:
        for dep in entry.deps:
            if dep.completion is None:
                return False
            ready = dep.chain_ready if (chaining and dep.chain_ready
                                        is not None) else dep.completion
            if ready > cycle:
                return False
        return True

    @staticmethod
    def _chain_ready(entry: _Entry, cycle: int, completion: int) -> int:
        """First-element availability for chaining consumers.

        Vector computations deliver their first element after one latency;
        vector loads stream roughly one element per cycle ahead of their
        final completion.  Scalar results do not stream: chain time equals
        completion.
        """
        instr = entry.instr
        if instr.vl <= 1:
            return completion
        if instr.iclass.is_memory:
            return max(cycle + 1, completion - (instr.vl - 1))
        if instr.op.writes_acc:
            # Accumulator totals only exist once every row has drained.
            return completion
        return min(completion, cycle + instr.op.latency)

    @staticmethod
    def _charge(instr: DynInstr, dst: int) -> int:
        """Row slots a destination occupies (VL rows for matrix writes)."""
        if reg_pool(dst) == RegPool.MED:
            return max(1, instr.vl)
        return 1

    def _rename_ok(self, instr: DynInstr, inflight, limits) -> bool:
        """Check physical-register headroom for every destination pool."""
        if instr.op.name in self.zero_idioms:
            return True
        for dst in instr.dsts:
            pool = reg_pool(dst)
            if inflight[pool] + self._charge(instr, dst) - 1 >= limits[pool]:
                return False
        return True

    def _execute(self, entry: _Entry, cycle: int) -> int | None:
        """Acquire execution resources; return the completion cycle."""
        instr = entry.instr
        iclass = instr.iclass
        if iclass.is_memory:
            return self.memsys.try_issue(instr, cycle)
        if iclass == InstrClass.NOP:
            return cycle + 1
        if iclass in (InstrClass.BRANCH, InstrClass.JUMP):
            # Branches resolve on a simple integer pipe.
            return self.pools["int"].try_issue(False, cycle, 1, instr.op.name, 1)
        family = fu_family(iclass)
        pool = self.pools[family]
        rows = instr.vl if family == "med" else 1
        op = instr.op
        latency = op.latency
        if (self.acc_chaining and family == "med" and op.reads_acc
                and op.writes_acc and rows > 1):
            # Pipelined accumulation (Section 2.1): a matrix accumulate
            # keeps `latency` partial sums in flight and folds as it
            # streams, so a dependent accumulate can chain one cycle after
            # the rows drain -- unlike MDMX, whose scalar accumulator
            # recurrence pays the full latency per instruction.
            latency = 1
        return pool.try_issue(
            needs_complex_unit(iclass), cycle, rows, op.name, latency,
        )
