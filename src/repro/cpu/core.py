"""Trace-driven out-of-order superscalar core.

Models the paper's R10000-like machine (Section 3.2): per-cycle fetch
bounded by the issue width and by taken branches, a bimodal predictor and
BTB, register renaming over four pools with finite physical registers, a
reorder buffer, a load/store queue, fully-pipelined functional units (with
multi-lane media units for MOM) and out-of-order issue with oldest-first
priority.  Instruction *semantics* were already executed by the emulation
library; the core consumes :class:`~repro.emulib.trace.DynInstr` records and
charges time, exactly like the ATOM + Jinks arrangement of the paper.

Simplifications (documented in DESIGN.md): mispredicted branches stall fetch
until the branch resolves (wrong-path fetch is not simulated -- standard for
trace-driven models), and memory disambiguation is optimistic (kernels
carry their memory dependences through registers).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..emulib.trace import DynInstr, Trace, reg_pool
from ..isa.model import InstrClass, RegPool
from .bpred import BimodalPredictor, BranchTargetBuffer
from .config import MachineConfig
from .funit import FuPool, fu_family, needs_complex_unit

#: Sentinel blocking fetch until a mispredicted branch resolves.
_FAR_FUTURE = 1 << 60


class _Entry:
    """One in-flight instruction in the reorder buffer."""

    __slots__ = ("instr", "deps", "completion", "chain_ready", "issued",
                 "fetch_cycle", "mispredicted")

    def __init__(self, instr: DynInstr, fetch_cycle: int) -> None:
        self.instr = instr
        self.deps: list[_Entry] = []
        self.completion: int | None = None
        #: When a *chaining* consumer (another vector operation) may start:
        #: the producer's first element result is available while the rest
        #: still streams -- classic vector chaining.
        self.chain_ready: int | None = None
        self.issued = False
        self.fetch_cycle = fetch_cycle
        self.mispredicted = False


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    cycles: int
    instructions: int
    operations: int
    branch_lookups: int = 0
    branch_mispredicts: int = 0
    btb_misses: int = 0
    fetch_stall_cycles: int = 0
    rename_stall_events: int = 0
    mem_stats: dict = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def opc(self) -> float:
        """Operations (lane-level work items) per cycle."""
        return self.operations / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        """Plain-data image for the persistent result cache (JSON-safe)."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "operations": self.operations,
            "branch_lookups": self.branch_lookups,
            "branch_mispredicts": self.branch_mispredicts,
            "btb_misses": self.btb_misses,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "rename_stall_events": self.rename_stall_events,
            "mem_stats": dict(self.mem_stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Inverse of :meth:`to_dict`; round-trips to an equal instance."""
        return cls(**data)


class Core:
    """The cycle-level engine.

    Args:
        config: a Table 1 machine configuration.
        memsys: any object with ``try_issue(instr, cycle) -> int | None``
            (perfect model or a full cache hierarchy).
    """

    #: Extra cycles between a mispredicted branch resolving and useful
    #: instructions re-entering the pipeline (redirect + refill).
    MISPREDICT_REDIRECT = 1

    #: Pools whose physical registers release at *writeback* rather than
    #: commit.  The media and accumulator files are the banked structures
    #: of Section 3.2 (the paper cites DeVries & Lee and Asanovic's banked
    #: vector register files); with only 20 physical matrix registers for
    #: 16 logical ones, Table 2's sizing is only sufficient under this
    #: eager-reclamation discipline.
    LATE_RELEASE_POOLS = frozenset({RegPool.MED, RegPool.ACC})

    #: Zeroing idioms rename to a hard-wired zero value and allocate no
    #: physical register -- standard renamer practice; essential for the
    #: accumulator pool, whose clear-accumulate-read pattern would
    #: otherwise burn two of its four physical registers per chain.
    ZERO_IDIOMS = frozenset({"clracc", "momzero"})

    def __init__(self, config: MachineConfig, memsys, *,
                 acc_chaining: bool = True, late_release: bool = True,
                 zero_idiom_elision: bool = True) -> None:
        """Args beyond config/memsys are ablation knobs (benchmarks):

        acc_chaining: pipeline partial accumulations inside matrix
            accumulate instructions (Section 2.1); off = MDMX-style
            recurrence for MOM too.
        late_release: banked media/accumulator files release physical
            registers at writeback instead of commit.
        zero_idiom_elision: ``clracc``/``momzero`` allocate no register.
        """
        self.config = config
        self.memsys = memsys
        self.acc_chaining = acc_chaining
        self.late_release_pools = (self.LATE_RELEASE_POOLS if late_release
                                   else frozenset())
        self.zero_idioms = (self.ZERO_IDIOMS if zero_idiom_elision
                            else frozenset())
        self.bpred = BimodalPredictor(config.bimodal_entries)
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.pools = {
            "int": FuPool(config.int_units),
            "fp": FuPool(config.fp_units),
            "med": FuPool(config.med_units, lanes=config.med_lanes),
        }

    # --- public API --------------------------------------------------------------

    def run(self, trace: Trace) -> SimResult:
        """Simulate a full trace to completion and return statistics."""
        cfg = self.config
        width = cfg.width
        rob: list[_Entry] = []          # in program order; head at index 0
        fetch_queue: list[_Entry] = []
        last_writer: dict[int, _Entry] = {}
        inflight_dsts = {pool: 0 for pool in RegPool}
        phys_limit = {pool: cfg.phys_limit(pool) for pool in RegPool}
        lsq_used = 0

        releases: list[tuple[int, RegPool, int]] = []  # (completion, pool, rows)

        instrs = trace.instructions
        n = len(instrs)
        fetch_idx = 0
        cycle = 0
        committed = 0
        next_fetch_cycle = 0
        fetch_stall_cycles = 0
        rename_stalls = 0
        fetch_queue_cap = 2 * width

        while committed < n:
            cycle += 1

            # --- release late-freed physical registers --------------------------
            while releases and releases[0][0] <= cycle:
                _done, pool, charge = heapq.heappop(releases)
                inflight_dsts[pool] -= charge

            # --- commit: retire completed instructions in order ----------------
            commits = 0
            while rob and commits < width:
                head = rob[0]
                if head.completion is None or head.completion > cycle:
                    break
                rob.pop(0)
                head_zero = head.instr.op.name in self.zero_idioms
                for dst in head.instr.dsts:
                    pool = reg_pool(dst)
                    if pool not in self.late_release_pools and not head_zero:
                        inflight_dsts[pool] -= self._charge(head.instr, dst)
                    if last_writer.get(dst) is head:
                        del last_writer[dst]
                if head.instr.iclass.is_memory:
                    lsq_used -= 1
                committed += 1
                commits += 1

            # --- issue: oldest-first, up to `width` per cycle --------------------
            issued = 0
            for entry in rob:
                if issued >= width:
                    break
                if entry.issued:
                    continue
                if not self._deps_ready(entry, cycle, self._chains(entry)):
                    continue
                completion = self._execute(entry, cycle)
                if completion is None:
                    continue        # structural hazard; younger ops may go
                entry.issued = True
                entry.completion = completion
                entry.chain_ready = self._chain_ready(entry, cycle, completion)
                issued += 1
                if entry.instr.op.name not in self.zero_idioms:
                    for dst in entry.instr.dsts:
                        pool = reg_pool(dst)
                        if pool in self.late_release_pools:
                            charge = self._charge(entry.instr, dst)
                            heapq.heappush(releases, (completion, pool, charge))
                if entry.mispredicted:
                    # Redirect fetch once the branch resolves.
                    next_fetch_cycle = completion + self.MISPREDICT_REDIRECT

            # --- dispatch: fetch queue -> ROB (rename + allocate) ------------------
            dispatched = 0
            while (fetch_queue and dispatched < width and len(rob) < cfg.rob_size):
                entry = fetch_queue[0]
                if entry.fetch_cycle + cfg.front_latency > cycle:
                    break
                instr = entry.instr
                if instr.iclass.is_memory and lsq_used >= cfg.lsq_size:
                    break
                if not self._rename_ok(instr, inflight_dsts, phys_limit):
                    rename_stalls += 1
                    break
                fetch_queue.pop(0)
                zero_idiom = instr.op.name in self.zero_idioms
                for src in instr.srcs:
                    producer = last_writer.get(src)
                    if producer is not None:
                        entry.deps.append(producer)
                for dst in instr.dsts:
                    if not zero_idiom:
                        inflight_dsts[reg_pool(dst)] += self._charge(instr, dst)
                    last_writer[dst] = entry
                if instr.iclass.is_memory:
                    lsq_used += 1
                rob.append(entry)
                dispatched += 1

            # --- fetch: up to `width`, stopping at taken branches -------------------
            if fetch_idx < n and cycle >= next_fetch_cycle:
                fetched = 0
                while (fetch_idx < n and fetched < width
                       and len(fetch_queue) < fetch_queue_cap):
                    instr = instrs[fetch_idx]
                    entry = _Entry(instr, cycle)
                    fetch_queue.append(entry)
                    fetch_idx += 1
                    fetched += 1
                    if instr.iclass == InstrClass.BRANCH:
                        prediction = self.bpred.predict_and_update(
                            instr.site, bool(instr.taken)
                        )
                        if prediction != instr.taken:
                            # Fetch blocks until the branch resolves at issue,
                            # which rewrites next_fetch_cycle.
                            entry.mispredicted = True
                            next_fetch_cycle = _FAR_FUTURE
                            break
                        if instr.taken:
                            hit = self.btb.lookup_insert(instr.site)
                            next_fetch_cycle = cycle + (1 if hit else 2)
                            break
                    elif instr.iclass == InstrClass.JUMP:
                        hit = self.btb.lookup_insert(instr.site)
                        next_fetch_cycle = cycle + (1 if hit else 2)
                        break
            elif fetch_idx < n:
                fetch_stall_cycles += 1

        return SimResult(
            cycles=cycle,
            instructions=n,
            operations=trace.operation_count(),
            branch_lookups=self.bpred.lookups,
            branch_mispredicts=self.bpred.mispredicts,
            btb_misses=self.btb.misses,
            fetch_stall_cycles=fetch_stall_cycles,
            rename_stall_events=rename_stalls,
            mem_stats=self.memsys.stats() if hasattr(self.memsys, "stats") else {},
        )

    # --- helpers ----------------------------------------------------------------------

    @staticmethod
    def _chains(entry: _Entry) -> bool:
        """Vector operations chain on their producers' element streams."""
        instr = entry.instr
        return instr.vl > 1 and (instr.iclass.is_media
                                 or instr.iclass.is_memory)

    @staticmethod
    def _deps_ready(entry: _Entry, cycle: int, chaining: bool) -> bool:
        for dep in entry.deps:
            if dep.completion is None:
                return False
            ready = dep.chain_ready if (chaining and dep.chain_ready
                                        is not None) else dep.completion
            if ready > cycle:
                return False
        return True

    @staticmethod
    def _chain_ready(entry: _Entry, cycle: int, completion: int) -> int:
        """First-element availability for chaining consumers.

        Vector computations deliver their first element after one latency;
        vector loads stream roughly one element per cycle ahead of their
        final completion.  Scalar results do not stream: chain time equals
        completion.
        """
        instr = entry.instr
        if instr.vl <= 1:
            return completion
        if instr.iclass.is_memory:
            return max(cycle + 1, completion - (instr.vl - 1))
        if instr.op.writes_acc:
            # Accumulator totals only exist once every row has drained.
            return completion
        return min(completion, cycle + instr.op.latency)

    @staticmethod
    def _charge(instr: DynInstr, dst: int) -> int:
        """Row slots a destination occupies (VL rows for matrix writes)."""
        if reg_pool(dst) == RegPool.MED:
            return max(1, instr.vl)
        return 1

    def _rename_ok(self, instr: DynInstr, inflight, limits) -> bool:
        """Check physical-register headroom for every destination pool."""
        if instr.op.name in self.zero_idioms:
            return True
        for dst in instr.dsts:
            pool = reg_pool(dst)
            if inflight[pool] + self._charge(instr, dst) - 1 >= limits[pool]:
                return False
        return True

    def _execute(self, entry: _Entry, cycle: int) -> int | None:
        """Acquire execution resources; return the completion cycle."""
        instr = entry.instr
        iclass = instr.iclass
        if iclass.is_memory:
            return self.memsys.try_issue(instr, cycle)
        if iclass == InstrClass.NOP:
            return cycle + 1
        if iclass in (InstrClass.BRANCH, InstrClass.JUMP):
            # Branches resolve on a simple integer pipe.
            return self.pools["int"].try_issue(False, cycle, 1, instr.op.name, 1)
        family = fu_family(iclass)
        pool = self.pools[family]
        rows = instr.vl if family == "med" else 1
        op = instr.op
        latency = op.latency
        if (self.acc_chaining and family == "med" and op.reads_acc
                and op.writes_acc and rows > 1):
            # Pipelined accumulation (Section 2.1): a matrix accumulate
            # keeps `latency` partial sums in flight and folds as it
            # streams, so a dependent accumulate can chain one cycle after
            # the rows drain -- unlike MDMX, whose scalar accumulator
            # recurrence pays the full latency per instruction.
            latency = 1
        return pool.try_issue(
            needs_complex_unit(iclass), cycle, rows, op.name, latency,
        )
