"""Trace-driven out-of-order superscalar core (R10000-like, Table 1)."""

from .config import MachineConfig, machine_config, register_file_specs, WAYS
from .bpred import BimodalPredictor, BranchTargetBuffer
from .funit import FuPool, FunctionalUnit
from .core import Core, SimResult
from .jit import UnjittableError, jit_available

__all__ = [
    "MachineConfig", "machine_config", "register_file_specs", "WAYS",
    "BimodalPredictor", "BranchTargetBuffer", "FuPool", "FunctionalUnit",
    "Core", "SimResult", "UnjittableError", "jit_available",
]
