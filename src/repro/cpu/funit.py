"""Functional units: scalar pipes and multi-lane media units.

Each family (INT, FP, MED) is a pool of units.  *Simple* units execute only
the simple instruction class of their family; *complex* units execute both
(a complex unit contains the simple datapath).  Units are fully pipelined
except integer/FP divide, which occupies its unit for the full latency.

A media unit has ``lanes`` parallel vector lanes: a MOM computation of
vector length VL occupies the unit for ``ceil(VL / lanes)`` cycles while one
packed element operation per lane retires per cycle -- "a MOM implementation
executes as many SIMD MMX-like computation operations per cycle as the
number of vector pipes of the MOM functional unit" (Section 2.1).
"""

from __future__ import annotations

from ..isa.model import InstrClass
from .config import FuConfig

#: Opcodes that occupy their unit for the full latency (not pipelined).
_NON_PIPELINED = {"divq", "divt"}


class FunctionalUnit:
    """One execution pipe with an occupancy horizon."""

    __slots__ = ("complex_capable", "lanes", "busy_until", "ops_executed")

    def __init__(self, complex_capable: bool, lanes: int = 1) -> None:
        self.complex_capable = complex_capable
        self.lanes = lanes
        self.busy_until = 0
        self.ops_executed = 0


class FuPool:
    """All functional units of one family (e.g. the media units)."""

    def __init__(self, config: FuConfig, lanes: int = 1) -> None:
        self.units = [FunctionalUnit(False, lanes) for _ in range(config.simple)]
        self.units += [FunctionalUnit(True, lanes) for _ in range(config.complex_)]

    def try_issue(self, needs_complex: bool, cycle: int, occupancy_rows: int,
                  op_name: str, latency: int) -> int | None:
        """Issue an operation if a capable unit is free.

        Args:
            needs_complex: instruction is of the complex class.
            cycle: current cycle.
            occupancy_rows: vector elements to stream (1 for scalar/MMX).
            op_name: opcode mnemonic (to detect non-pipelined divides).
            latency: execution latency of one element operation.

        Returns:
            The cycle at which the *result* is available, or ``None`` when
            every capable unit is busy this cycle.
        """
        for unit in self.units:
            if needs_complex and not unit.complex_capable:
                continue
            if unit.busy_until > cycle:
                continue
            if occupancy_rows == 1 and op_name not in _NON_PIPELINED:
                # Scalar pipelined op: occupies the unit for one cycle.
                unit.busy_until = cycle + 1
                unit.ops_executed += 1
                return cycle + latency
            occupancy = -(-occupancy_rows // unit.lanes)  # ceil division
            if op_name in _NON_PIPELINED:
                occupancy = max(occupancy, latency)
            occupancy = max(1, occupancy)
            unit.busy_until = cycle + occupancy
            unit.ops_executed += occupancy_rows
            return cycle + occupancy - 1 + latency
        return None

    def next_free(self, needs_complex: bool) -> int:
        """Earliest cycle at which a capable unit could accept an operation.

        The event-driven scheduler uses this as a retry horizon for
        structurally stalled instructions: every :meth:`try_issue` strictly
        before the returned cycle is guaranteed to fail without side
        effects.  The bound stays valid under interleaved issues by other
        instructions, because a claim only ever pushes ``busy_until``
        forward.
        """
        best = None
        for unit in self.units:
            if needs_complex and not unit.complex_capable:
                continue
            if best is None or unit.busy_until < best:
                best = unit.busy_until
        if best is None:
            raise ValueError("no capable unit in pool")
        return best

    @property
    def size(self) -> int:
        return len(self.units)


def fu_family(iclass: InstrClass) -> str | None:
    """Which FU family executes an instruction class (None for memory/ctrl)."""
    if iclass in (InstrClass.INT_SIMPLE, InstrClass.INT_COMPLEX):
        return "int"
    if iclass in (InstrClass.FP_SIMPLE, InstrClass.FP_COMPLEX):
        return "fp"
    if iclass in (InstrClass.MED_SIMPLE, InstrClass.MED_COMPLEX):
        return "med"
    return None


def needs_complex_unit(iclass: InstrClass) -> bool:
    return iclass in (
        InstrClass.INT_COMPLEX, InstrClass.FP_COMPLEX, InstrClass.MED_COMPLEX
    )
