"""Batch-lane timing core: N machine configurations, one pass over a trace.

A Figure-7 grid simulates one trace under many machine configurations.
:class:`~repro.cpu.core.Core` pays the trace walk -- columnar decode,
record classification, dependence discovery, branch-predictor streams --
once *per configuration*; :class:`BatchCore` pays it once per *trace* and
shares the products read-only across all configurations ("lanes"),
exactly the fetch/decode amortization the paper's matrix ISA applies to
data lanes (Section 2).

What is shared, and why it is exact
-----------------------------------

* **Decoded records.**  Each :class:`~repro.emulib.trace.TimingRecord` is
  folded once into flat ring buffers of plain ints and tuples (issue
  constants, packed register charges, chaining mode) sized to two
  streaming blocks, so a frame-scale trace is decoded once for the whole
  grid instead of once per point while peak memory stays at the columnar
  store plus two blocks.  Constants that depend on an ablation knob are
  folded into per-knob ring *variants* (records the knob does not touch
  share one tuple object), so lanes select a ring up front instead of
  re-testing knobs per instruction.
* **Dependences.**  ``Core.run`` discovers producers dynamically through
  a ``last_writer`` map that drops entries at commit.  Commit is in
  order, so the in-flight window is the contiguous index range
  ``[committed, fetch_idx)`` -- the *static* last-writer edge (computed
  once at decode) filtered per lane by ``producer >= committed`` is the
  identical relation, and any producer further back than the largest ROB
  in the batch can never be in flight, which bounds the edge distance.
* **Branch outcomes.**  Fetch is strictly in program order, so the
  bimodal counters and BTB tags see a configuration-independent stream:
  per (bimodal, BTB) *size class* the mispredict/redirect outcome of
  every control instruction -- and the total lookup/mispredict/BTB-miss
  counters -- are pure functions of the trace, computed once at decode.
  (The BTB stream depends on the bimodal size because mispredicted taken
  branches bypass the BTB, which is why the class key is the pair.)
  Fetch-disturbing controls are also listed positionally per class, so a
  lane's fetch phase advances a whole fetch group in O(1) instead of
  testing every instruction for a taken branch.
* **Register/LSQ charges.**  Rename bookkeeping runs on SWAR-packed
  ints: the four pool counters *and* the LSQ occupancy live in one
  integer (16-bit biased fields), and every record's allocation,
  rename-check, commit-release and writeback-release charges are packed
  once at decode, so dispatch admission is one subtract-mask-compare.
* **Memory rows.**  The materialized ``DynInstr`` of each memory row is
  handed read-only to every lane's memory model (no model mutates it).

Lane state and stepping
-----------------------

Each lane still owns divergent scheduler state -- clock, ROB window,
physical-register counters, FU and port horizons, stall counters -- kept
in flat rings of plain ints indexed by ``instruction_index & (window-1)``
(the live window is bounded by ``rob_size + 2*width``).  Lanes with
different configurations retire the same instruction at different
cycles, so there is no cross-lane cycle lockstep to vectorize; lockstep
exists at the *trace* level instead: all lanes consume one decoded block
stream, pausing at block boundaries, and identical lanes (same config,
knobs and perfect-memory shape) collapse to one simulation whose result
is replicated.  Between blocks every lane's scheduler state is
snapshotted into numpy arrays -- the driver uses them for the
ring-retention invariant, and they are the inter-block lane state of
record.

Divergent events -- mispredict redirects, structural parks, memory-model
retries -- are per-lane by nature and handled inside each lane's
stepper, a generator transcription of ``Core.run``'s event loop (same
phase order, same scheduling disciplines, same horizon search) that must
stay *bit-identical* to it; the golden-digest parity tests pin this.

Points a batch cannot express raise :class:`UnbatchableError`; callers
(``repro.exp.engine``) fall back to per-point ``Core`` runs.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from time import perf_counter as _perf_counter

try:
    import numpy as _np
except ImportError:                    # pragma: no cover - numpy is baked in
    _np = None

from ..emulib.trace import TimingRecord, Trace
from ..isa.model import InstrClass, RegPool
from ..memsys.perfect import PerfectMemory
from .config import MachineConfig
from .core import (Core, SimResult, TimingStats, checked_stack,
                   _FAR_FUTURE, _NO_EVENT)
from .funit import _NON_PIPELINED

#: compute InstrClass -> (family index, needs complex unit);
#: family order is (int, fp, med), matching Core's pool routing.
_FAM = {
    InstrClass.INT_SIMPLE: (0, False),
    InstrClass.INT_COMPLEX: (0, True),
    InstrClass.FP_SIMPLE: (1, False),
    InstrClass.FP_COMPLEX: (1, True),
    InstrClass.MED_SIMPLE: (2, False),
    InstrClass.MED_COMPLEX: (2, True),
}

_KIND_MEMORY = TimingRecord.KIND_MEMORY
_KIND_CONTROL = TimingRecord.KIND_CONTROL
_KIND_COMPUTE = TimingRecord.KIND_COMPUTE

#: SWAR register/LSQ accounting: pool ``p`` occupies bits ``[16p,
#: 16p+16)`` and the LSQ is field 4 (bits ``[64, 80)``), each with bias
#: ``1 << 15``.  Field values never stray more than a few hundred from
#: the bias (limits and charges are small), so fields never borrow into
#: their neighbours and sign tests reduce to bit 15.
_BIAS = 1 << 15
_LSQ_SHIFT = 64
_M32 = (1 << 32) - 1
_M80 = (1 << 80) - 1

#: ``e_completion`` sentinel for dispatched-but-unissued entries -- far
#: above any reachable cycle, so the commit head test and the producer
#: scan read one ring instead of a ring plus an "issued" flag ring.
_UNISSUED = 1 << 62


class UnbatchableError(RuntimeError):
    """This lane set cannot run through :class:`BatchCore`; use ``Core``."""


class LaneSpec:
    """One configuration lane: what ``Core(config, memsys, **knobs)`` takes.

    The memory system is owned by the lane (mutated during the run and
    read for ``mem_stats``), exactly as ``Core`` owns the one it is
    constructed with.
    """

    __slots__ = ("config", "memsys", "acc_chaining", "late_release",
                 "zero_idiom_elision", "accounting")

    def __init__(self, config: MachineConfig, memsys, *,
                 acc_chaining: bool = True, late_release: bool = True,
                 zero_idiom_elision: bool = True,
                 accounting: bool = False) -> None:
        self.config = config
        self.memsys = memsys
        self.acc_chaining = acc_chaining
        self.late_release = late_release
        self.zero_idiom_elision = zero_idiom_elision
        self.accounting = accounting

    def dedup_key(self):
        """Lanes with equal keys are provably identical simulations.

        Only perfect-memory lanes participate: a cache hierarchy is a
        stateful object whose identity matters, so such lanes never
        collapse.  Returns ``None`` for non-deduplicable lanes.
        """
        ms = self.memsys
        if type(ms) is not PerfectMemory:
            return None
        return (self.config, self.acc_chaining, self.late_release,
                self.zero_idiom_elision, self.accounting, ms.latency,
                ms.portset.ports, ms.portset.port_width)


class _CtlState:
    """Predictor/BTB stream for one (bimodal entries, BTB entries) class."""

    __slots__ = ("ring", "pos_idx", "pos_code", "counters", "bmask", "tags",
                 "btbmask", "btbdiv", "lookups", "mispredicts", "btb_misses")

    def __init__(self, bimodal_entries: int, btb_entries: int,
                 ring_size: int) -> None:
        #: per-record fetch outcome: 0 = fall through, 1 = mispredict
        #: (fetch blocks until resolve), 2 = taken redirect on a BTB hit
        #: (next fetch at cycle+1), 3 = redirect on a BTB miss (cycle+2).
        self.ring = [0] * ring_size
        #: absolute index / outcome of every *nonzero* control (the ones
        #: that disturb fetch), in program order.  Fetch consumes these
        #: sequentially, so a fetch group with no taken branch advances
        #: in one jump.
        self.pos_idx: list[int] = []
        self.pos_code: list[int] = []
        self.counters = bytearray([2]) * bimodal_entries
        self.bmask = bimodal_entries - 1
        self.tags: list[int | None] = [None] * btb_entries
        self.btbmask = btb_entries - 1
        self.btbdiv = btb_entries
        self.lookups = 0
        self.mispredicts = 0
        self.btb_misses = 0


class _SharedDecode:
    """The once-per-trace decode products, consumed block by block.

    Per record, indexed ``i & mask``:

    * ``op_raw`` / ``op_ac`` -- single-row pipelined compute packs to a
      small int (scan index | latency << 3, the overwhelmingly common
      case and the stepper's fastest path); everything else is a
      (kind, scan index, unused, exec_rows, latency, non_pipelined,
      chain_mode, vl, instr|None) tuple.  The ``_ac`` variant folds
      accumulator chaining (latency 1 on eligible records) and shares
      the object everywhere else
    * ``deps`` -- tuple of producer indices (static last-writer edges),
      or ``None``
    * ``chains`` -- consumer chains on producers' element streams
    * ``ismem`` -- 0/1, for the horizon's LSQ-vs-rename disambiguation
    * SWAR charge rings, in raw / zero-idiom-elided variants:
      ``alloc`` (sum of charges + LSQ slot, dispatch), ``chk``/``smask``
      (per-pool max charge and presence mask, rename/LSQ admission),
      ``commit_if`` / ``commit_full`` (commit-time decrements for
      late-release on/off), ``rel`` (writeback-release charges of the
      MED/ACC pools)
    * per (bimodal, BTB) class, ``ctl`` -- fetch-control codes (ring)
      plus the positional nonzero-control lists
    """

    def __init__(self, n: int, next_record, dep_cap: int,
                 ctl_classes, block: int, ring: int) -> None:
        self.n = n
        self.next_record = next_record
        self.dep_cap = dep_cap
        self.block = block
        if n > ring:
            self.size = ring
        else:
            self.size = 1 << max(0, (n - 1).bit_length())
        self.mask = self.size - 1
        self.avail = 0
        size = self.size
        self.op_raw: list = [None] * size
        self.op_ac: list = [None] * size
        self.deps: list = [None] * size
        self.chains = [False] * size
        self.ismem = [0] * size
        self.alloc_raw = [0] * size
        self.alloc_z = [0] * size
        self.chk = [0] * size
        self.smask_raw = [0] * size
        self.smask_z = [0] * size
        self.commit_if_raw = [0] * size
        self.commit_if_z = [0] * size
        self.commit_full_raw = [0] * size
        self.commit_full_z = [0] * size
        self.rel_raw = [0] * size
        self.rel_z = [0] * size
        #: all-zero ring late_release=False lanes read their releases from.
        self.zero_ring = [0] * size
        self.last_writer: dict[int, int] = {}
        self.ctl: dict[tuple[int, int], _CtlState] = {
            key: _CtlState(key[0], key[1], size) for key in ctl_classes}
        fill = min(block, size)
        self._zeros = [0] * fill
        self._nones: list = [None] * fill
        self._falses = [False] * fill

    def decode_block(self) -> None:
        """Decode up to one block of records into the shared rings."""
        n = self.n
        start = self.avail
        if start >= n:
            return
        m = min(self.block, n - start)
        mask = self.mask
        base = start & mask      # blocks are aligned: the span is contiguous
        end = base + m
        zeros = self._zeros
        # Reset the span (sparsely-written rings only; the op rings are
        # always written).  Slice stores are C-speed.
        self.deps[base:end] = self._nones[:m]
        self.chains[base:end] = self._falses[:m]
        self.ismem[base:end] = zeros[:m]
        self.alloc_raw[base:end] = zeros[:m]
        self.alloc_z[base:end] = zeros[:m]
        self.chk[base:end] = zeros[:m]
        self.smask_raw[base:end] = zeros[:m]
        self.smask_z[base:end] = zeros[:m]
        self.commit_if_raw[base:end] = zeros[:m]
        self.commit_if_z[base:end] = zeros[:m]
        self.commit_full_raw[base:end] = zeros[:m]
        self.commit_full_z[base:end] = zeros[:m]
        self.rel_raw[base:end] = zeros[:m]
        self.rel_z[base:end] = zeros[:m]

        op_raw_r = self.op_raw
        op_ac_r = self.op_ac
        deps_r = self.deps
        chains_r = self.chains
        ismem_r = self.ismem
        alloc_raw = self.alloc_raw
        alloc_z = self.alloc_z
        chk_r = self.chk
        smask_raw = self.smask_raw
        smask_z = self.smask_z
        cif_raw = self.commit_if_raw
        cif_z = self.commit_if_z
        cfull_raw = self.commit_full_raw
        cfull_z = self.commit_full_z
        rel_raw = self.rel_raw
        rel_z = self.rel_z
        lw = self.last_writer
        cap = self.dep_cap
        nxt = self.next_record
        zero_set = Core.ZERO_IDIOMS
        nonpip_set = _NON_PIPELINED
        fam_map = _FAM
        lsq_bit = 1 << _LSQ_SHIFT
        lsq_mask = _BIAS << _LSQ_SHIFT
        ctl_rows: list[tuple[int, int, bool, int, object]] = []
        for off in range(m):
            rec = nxt()
            i = start + off
            slot = i & mask
            kind = rec.kind
            vl = rec.vl
            is_mem = kind == _KIND_MEMORY
            if vl <= 1:
                chmode = 0
            elif is_mem:
                chmode = 1
            elif rec.writes_acc:
                chmode = 0
            else:
                chmode = 2
            op_name = rec.op_name
            if kind == _KIND_COMPUTE:
                fam, needc = fam_map[rec.iclass]
                rows = rec.exec_rows
                nonpip = op_name in nonpip_set
                sidx = fam * 2 + needc
                if rows == 1 and not nonpip:
                    # Fast single-row pipelined compute, packed as a
                    # small int (scan index | latency << 3).  For these
                    # the chain-ready cycle always equals completion
                    # (chmode 0 trivially; chmode 2 because the first
                    # element lands with the last when occupancy is one
                    # cycle), so the stepper's int path skips the
                    # chain-mode dispatch entirely.
                    op = sidx | rec.latency << 3
                else:
                    op = (kind, sidx, False, rows, rec.latency, nonpip,
                          chmode, vl, None)
                op_raw_r[slot] = op
                # Eligible accumulates always span multiple rows, so the
                # chained variant is never int-packed.
                op_ac_r[slot] = ((kind, sidx, False, rows, 1, nonpip,
                                  chmode, vl, None)
                                 if rec.acc_chain_eligible else op)
            else:
                if is_mem:
                    ismem_r[slot] = 1
                    op = (1, 0, False, 1, 0, False, chmode, vl, rec.instr)
                elif kind == _KIND_CONTROL:
                    op = (2, 0, False, 1, 0, False, 0, 1, None)
                    ctl_rows.append((i, slot, rec.is_jump, rec.site,
                                     rec.taken))
                else:
                    op = (3, 0, False, 1, 0, False, 0, 1, None)
                op_raw_r[slot] = op
                op_ac_r[slot] = op
            srcs = rec.srcs
            if srcs:
                dl = None
                for src in srcs:
                    j = lw.get(src, -1)
                    if j >= 0 and i - j <= cap:
                        if dl is None:
                            dl = [j]
                        else:
                            dl.append(j)
                if dl is not None:
                    deps_r[slot] = tuple(dl)
                    if rec.chains:
                        chains_r[slot] = True
            dsts = rec.dsts
            if dsts or is_mem:
                alloc = smask = if_sum = all_sum = rel = chk = 0
                if len(dsts) == 1:
                    d, pool, charge = dsts[0]
                    sh = pool << 4
                    alloc = chk = all_sum = charge << sh
                    smask = _BIAS << sh
                    if pool < 2:
                        if_sum = alloc
                    else:
                        rel = alloc
                    lw[d] = i
                elif dsts:
                    mx: dict[int, int] = {}
                    for d, pool, charge in dsts:
                        p = int(pool)
                        sh = p << 4
                        packed = charge << sh
                        alloc += packed
                        all_sum += packed
                        if p < 2:
                            if_sum += packed
                        else:
                            rel += packed
                        smask |= _BIAS << sh
                        if charge > mx.get(p, 0):
                            mx[p] = charge
                        lw[d] = i
                    for p, c in mx.items():
                        chk += c << (p << 4)
                if is_mem:       # LSQ admission/occupancy as SWAR field 4
                    alloc += lsq_bit
                    chk += lsq_bit
                    smask |= lsq_mask
                    if_sum += lsq_bit
                    all_sum += lsq_bit
                alloc_raw[slot] = alloc
                chk_r[slot] = chk
                smask_raw[slot] = smask
                cfull_raw[slot] = all_sum
                cif_raw[slot] = if_sum
                rel_raw[slot] = rel
                if op_name not in zero_set:
                    alloc_z[slot] = alloc
                    smask_z[slot] = smask
                    cfull_z[slot] = all_sum
                    cif_z[slot] = if_sum
                    rel_z[slot] = rel
        for st in self.ctl.values():
            ring = st.ring
            ring[base:end] = zeros[:m]
            pos_idx, pos_code = st.pos_idx, st.pos_code
            counters, bmask = st.counters, st.bmask
            tags, btbmask, btbdiv = st.tags, st.btbmask, st.btbdiv
            lookups = st.lookups
            mispred = st.mispredicts
            bmiss = st.btb_misses
            for i, slot, is_jump, site, taken in ctl_rows:
                code = 0
                if is_jump:
                    idx = site & btbmask
                    tag = site // btbdiv
                    if tags[idx] == tag:
                        code = 2
                    else:
                        tags[idx] = tag
                        bmiss += 1
                        code = 3
                else:
                    # Transcribes BimodalPredictor.predict_and_update plus
                    # Core.run's fetch-path use of its return value.
                    lookups += 1
                    idx = site & bmask
                    ctr = counters[idx]
                    pred = ctr >= 2
                    if taken:
                        if ctr < 3:
                            counters[idx] = ctr + 1
                    elif ctr > 0:
                        counters[idx] = ctr - 1
                    if pred != taken:
                        mispred += 1
                        code = 1
                    elif taken:
                        idx = site & btbmask
                        tag = site // btbdiv
                        if tags[idx] == tag:
                            code = 2
                        else:
                            tags[idx] = tag
                            bmiss += 1
                            code = 3
                if code:
                    ring[slot] = code
                    pos_idx.append(i)
                    pos_code.append(code)
            st.lookups = lookups
            st.mispredicts = mispred
            st.btb_misses = bmiss
        self.avail = start + m


class _LaneState:
    """Per-lane constants and end-of-run outputs for one stepper."""

    __slots__ = ("spec", "index", "width", "rob_size", "lsq_size",
                 "front_latency", "phys_limit", "acc_chaining",
                 "late_release", "zero_elision", "window",
                 "fu_busy", "fu_of", "scan", "lanes_of",
                 "fu_simple", "fu_total",
                 "pm", "mem_try", "mem_hint", "ctl_key", "accounting",
                 "cycles", "fetch_stalls", "rename_stalls", "stack", "sync")

    def __init__(self, spec: LaneSpec, index: int) -> None:
        cfg = spec.config
        self.spec = spec
        self.index = index
        self.width = cfg.width
        self.rob_size = cfg.rob_size
        self.lsq_size = cfg.lsq_size
        self.front_latency = cfg.front_latency
        self.phys_limit = [cfg.phys_limit(pool) for pool in RegPool]
        self.acc_chaining = spec.acc_chaining
        self.late_release = spec.late_release
        self.zero_elision = spec.zero_idiom_elision
        need = cfg.rob_size + 2 * cfg.width
        self.window = 1 << (need - 1).bit_length()
        # One busy-horizon list per FU family, simple units first -- the
        # exact unit order FuPool scans, so first-free-wins matches.
        self.fu_busy = [[0] * cfg.int_units.total,
                        [0] * cfg.fp_units.total,
                        [0] * cfg.med_units.total]
        self.fu_simple = [cfg.int_units.simple, cfg.fp_units.simple,
                          cfg.med_units.simple]
        self.fu_total = [cfg.int_units.total, cfg.fp_units.total,
                         cfg.med_units.total]
        # Indexed by a record's scan index (family*2 + needs_complex):
        # the busy list, the unit subrange FuPool would scan, and the
        # family's lane (row-per-cycle) count.
        self.fu_of = [self.fu_busy[0], self.fu_busy[0],
                      self.fu_busy[1], self.fu_busy[1],
                      self.fu_busy[2], self.fu_busy[2]]
        self.scan = [range(0, self.fu_total[0]),
                     range(self.fu_simple[0], self.fu_total[0]),
                     range(0, self.fu_total[1]),
                     range(self.fu_simple[1], self.fu_total[1]),
                     range(0, self.fu_total[2]),
                     range(self.fu_simple[2], self.fu_total[2])]
        self.lanes_of = [1, 1, 1, 1, cfg.med_lanes, cfg.med_lanes]
        ms = spec.memsys
        self.pm = ms if type(ms) is PerfectMemory else None
        self.mem_try = ms.try_issue
        self.mem_hint = getattr(ms, "earliest_issue", None)
        self.ctl_key = (cfg.bimodal_entries, cfg.btb_entries)
        self.accounting = spec.accounting
        self.cycles = 0
        self.fetch_stalls = 0
        self.rename_stalls = 0
        self.stack = None         # CPI-stack dict when accounting is on
        self.sync = None          # bound by BatchCore.run


def _lane_stepper(ls: _LaneState, shared: _SharedDecode):
    """One lane's event loop over the shared decode stream.

    A generator transcription of :meth:`Core.run` -- identical phase
    order (release, commit, wake, issue, dispatch, fetch, horizon),
    identical scheduling disciplines and identical stall accounting --
    over ring-buffered plain-int state instead of per-instruction
    objects.  Heap entries are packed ints (``cycle << 32 | index``,
    same lexicographic order as Core's ``(cycle, seq)`` tuples), the
    ready list is kept sorted instead of heapified (nothing is ever
    inserted mid-walk: every wakeup computed during issue lands strictly
    after ``cycle``), register/LSQ accounting is one SWAR word, and
    fetch advances per *group* (bounded by the shared nonzero-control
    positions) rather than per instruction.

    It ``yield``\\ s whenever fetch could outrun the decoded prefix; the
    driver decodes the next block and resumes every paused lane.
    Pausing is timing-transparent: the lane resumes inside the same
    simulated cycle with more records visible.
    """
    n = shared.n
    gmask = shared.mask
    g_deps = shared.deps
    g_chains = shared.chains
    g_ismem = shared.ismem
    ctl = shared.ctl[ls.ctl_key]
    g_ctl = ctl.ring
    pos_idx = ctl.pos_idx
    pos_code = ctl.pos_code
    g_op = shared.op_ac if ls.acc_chaining else shared.op_raw
    zel = ls.zero_elision
    g_alloc = shared.alloc_z if zel else shared.alloc_raw
    g_chk = shared.chk
    g_smask = shared.smask_z if zel else shared.smask_raw
    if ls.late_release:
        g_rel = shared.rel_z if zel else shared.rel_raw
        g_commit = shared.commit_if_z if zel else shared.commit_if_raw
    else:
        g_rel = shared.zero_ring
        g_commit = shared.commit_full_z if zel else shared.commit_full_raw
    heappush = heapq.heappush
    heappop = heapq.heappop

    width = ls.width
    rob_size = ls.rob_size
    front_latency = ls.front_latency
    fqcap = 2 * width
    redirect = Core.MISPREDICT_REDIRECT
    sync = ls.sync

    fu_of = ls.fu_of
    scan = ls.scan
    lanes_of = ls.lanes_of
    fu_simple = ls.fu_simple
    busy_int = ls.fu_busy[0]
    fu_busy = ls.fu_busy

    pm = ls.pm
    if pm is not None:
        portset = pm.portset
        pm_busy = portset.busy_until
        pm_ports = len(pm_busy)
        pm_lat = pm.latency
        pm_slots = pm_ports * portset.port_width
        pm_scalar = portset.scalar_accesses
        pm_vector = portset.vector_accesses
        pm_elem = portset.element_accesses
        mem_try = mem_hint = None
    else:
        pm_busy = None
        mem_try = ls.mem_try
        mem_hint = ls.mem_hint

    W = ls.window
    wmask = W - 1
    e_completion = [0] * W
    e_chain = [0] * W
    e_pending = [0] * W
    e_base = [0] * W
    e_waiters: list[list[int]] = [[] for _ in range(W)]

    #: SWAR headroom word: field p holds (limit[p] - inflight[p]) + bias
    #: for the four register pools; field 4 is the LSQ.
    limits = ls.phys_limit
    D = sum((limits[p] + _BIAS) << (p << 4) for p in range(len(limits)))
    D += (ls.lsq_size + _BIAS) << _LSQ_SHIFT
    releases: list[int] = []            # completion << 80 | packed charges
    issuable: list[int] = []            # indices, sorted descending
    wakeups: list[int] = []             # heap of ready << 32 | index
    wakeups_next: list[int] = []
    parked: list[int] = []              # heap of retry << 32 | index
    waiting = 0                         # entries registered on producers

    #: fetch groups: each fetch cycle appends ``end_index << 32 |
    #: (cycle + front_latency)``; dispatch consumes them in order.  The
    #: queue never holds more than the fetch-queue cap of instructions.
    bursts: deque[int] = deque()
    bq_append = bursts.append
    bq_popleft = bursts.popleft
    burst_end = 0
    front_ready = 0
    cp = 0                              # cursor into pos_idx / pos_code

    fetch_idx = 0
    disp_idx = 0
    committed = 0
    cycle = 0
    next_fetch_cycle = 0
    fetch_stalls = 0
    rename_stalls = 0
    # CPI-stack accumulators; cbase/disp_before feed the classifier's
    # commits-this-cycle and head-age tests (same rules as Core.run).
    accounting = ls.accounting
    st_base = st_fetch = st_rename = st_fu = 0
    st_memc = st_meml = st_drain = 0
    pm_acct_n = 0
    pm_acct_occ = 0
    avail = shared.avail
    #: pause guard: fetch may proceed while ``fetch_idx <= aw``; decode
    #: appends to ``pos_idx`` only while this lane is paused, so its
    #: length is refreshed at the same points.
    aw = avail - width if avail < n else n
    npos = len(pos_idx)

    while committed < n:
        while fetch_idx > aw:
            sync(cycle, committed, disp_idx, fetch_idx,
                 fetch_stalls, rename_stalls, D, fu_busy)
            yield
            avail = shared.avail
            aw = avail - width if avail < n else n
            npos = len(pos_idx)

        cycle += 1

        # --- release late-freed physical registers --------------------------
        while releases and (releases[0] >> 80) <= cycle:
            D += heappop(releases) & _M80

        # --- commit ---------------------------------------------------------
        cbase = committed
        lim = committed + width
        if disp_idx < lim:
            lim = disp_idx
        while committed < lim:
            if e_completion[committed & wmask] > cycle:
                break
            D += g_commit[committed & gmask]
            committed += 1
        if committed >= n:
            if accounting:
                if committed - cbase == width:
                    st_base += 1
                else:
                    st_drain += 1
            break

        # --- wake -----------------------------------------------------------
        dirty = False
        if wakeups_next:
            issuable += wakeups_next
            del wakeups_next[:]
            dirty = True
        while wakeups and (wakeups[0] >> 32) <= cycle:
            issuable.append(heappop(wakeups) & _M32)
            dirty = True
        while parked and (parked[0] >> 32) <= cycle:
            issuable.append(heappop(parked) & _M32)
            dirty = True
        if dirty and len(issuable) > 1:
            issuable.sort(reverse=True)     # pop() takes the oldest

        # --- issue: oldest-first among ready entries ------------------------
        issued = 0
        next_cycle = cycle + 1
        while issuable and issued < width:
            i = issuable.pop()
            gs = i & gmask
            op = g_op[gs]
            if type(op) is int:             # fast compute: 1 row, pipelined
                sidx = op & 7
                busy = fu_of[sidx]
                completion = None
                for u in scan[sidx]:
                    if busy[u] <= cycle:
                        busy[u] = next_cycle
                        completion = cycle + (op >> 3)
                        break
                if completion is None:
                    hint = min(busy[fu_simple[sidx >> 1]:]) if sidx & 1 \
                        else min(busy)
                    heappush(
                        parked,
                        ((hint if hint > cycle else next_cycle) << 32) | i)
                    continue
                ws = i & wmask
                e_completion[ws] = completion
                e_chain[ws] = completion
            else:
                kind, sidx, _fast, rows, lat, nonpip, chmode, vl, minstr = op
                completion = None
                if kind == 0:               # multi-row / non-pipelined
                    busy = fu_of[sidx]
                    for u in scan[sidx]:
                        if busy[u] <= cycle:
                            occ = -(-rows // lanes_of[sidx])
                            if nonpip and occ < lat:
                                occ = lat
                            if occ < 1:
                                occ = 1
                            busy[u] = cycle + occ
                            completion = cycle + occ - 1 + lat
                            break
                elif kind == 1:             # memory
                    if pm_busy is not None:
                        if vl > 1:
                            for b in pm_busy:
                                if b > cycle:
                                    break
                            else:
                                occ = -(-vl // pm_slots)
                                if occ < 1:
                                    occ = 1
                                until = cycle + occ
                                for p in range(pm_ports):
                                    pm_busy[p] = until
                                pm_vector += 1
                                pm_elem += vl
                                completion = cycle + occ - 1 + pm_lat
                                pm_acct_n += 1
                                pm_acct_occ += completion - cycle
                        else:
                            for p in range(pm_ports):
                                if pm_busy[p] <= cycle:
                                    pm_busy[p] = next_cycle
                                    pm_scalar += 1
                                    pm_elem += 1
                                    completion = cycle + pm_lat
                                    pm_acct_n += 1
                                    pm_acct_occ += pm_lat
                                    break
                    else:
                        completion = mem_try(minstr, cycle)
                elif kind == 2:             # control: simple integer pipe
                    for u in range(len(busy_int)):
                        if busy_int[u] <= cycle:
                            busy_int[u] = next_cycle
                            completion = next_cycle
                            break
                else:                       # nop
                    completion = next_cycle
                if completion is None:
                    # Structural hazard: park until the resource's
                    # earliest possible free cycle (Core._retry_cycle).
                    if kind == 1:
                        if pm_busy is not None:
                            hint = max(pm_busy) if vl > 1 else min(pm_busy)
                        else:
                            hint = mem_hint(minstr, cycle) if mem_hint \
                                else cycle
                    elif kind == 2:
                        hint = min(busy_int)
                    else:
                        busy = fu_of[sidx]
                        hint = min(busy[fu_simple[sidx >> 1]:]) if sidx & 1 \
                            else min(busy)
                    heappush(
                        parked,
                        ((hint if hint > cycle else next_cycle) << 32) | i)
                    continue
                ws = i & wmask
                e_completion[ws] = completion
                if chmode == 0:
                    e_chain[ws] = completion
                elif chmode == 1:
                    early = completion - vl + 1
                    e_chain[ws] = early if early > next_cycle else next_cycle
                else:
                    first = cycle + lat
                    e_chain[ws] = completion if completion < first else first
                if kind == 2 and g_ctl[gs] == 1:
                    next_fetch_cycle = completion + redirect
            issued += 1
            rel = g_rel[gs]
            if rel:
                heappush(releases, (completion << 80) | rel)
            if waiting:
                waiters = e_waiters[ws]
                if waiters:
                    waiting -= len(waiters)
                    chain = e_chain[ws]
                    for w in waiters:
                        wws = w & wmask
                        p = e_pending[wws] - 1
                        e_pending[wws] = p
                        avail_w = chain if g_chains[w & gmask] else completion
                        if avail_w > e_base[wws]:
                            e_base[wws] = avail_w
                        if p == 0:
                            ready = e_base[wws]
                            if ready == next_cycle:
                                wakeups_next.append(w)
                            elif ready <= cycle:
                                # Unreachable (results land after `cycle`);
                                # kept for strict equivalence with Core.
                                issuable.append(w)
                                issuable.sort(reverse=True)
                            else:
                                heappush(wakeups, (ready << 32) | w)
                    del waiters[:]

        # --- dispatch: fetch queue -> ROB (rename + allocate) ---------------
        # The three bounds (fetch frontier, dispatch width, ROB room) are
        # all fixed for the duration of the phase, so fold them into one.
        disp_before = disp_idx
        admission_blocked = False
        dlim = disp_idx + width
        if fetch_idx < dlim:
            dlim = fetch_idx
        rcap = committed + rob_size
        if rcap < dlim:
            dlim = rcap
        while disp_idx < dlim:
            if disp_idx >= burst_end:
                v = bq_popleft()
                burst_end = v >> 32
                front_ready = v & _M32
            if front_ready > cycle:
                break
            gs = disp_idx & gmask
            sm = g_smask[gs]
            if sm:
                if ((D - g_chk[gs]) & sm) != sm:
                    # Admission failed: LSQ-full breaks silently (a
                    # commit will free it); a register shortfall is a
                    # rename stall, exactly Core's check order.
                    admission_blocked = True
                    if (g_ismem[gs]
                            and ((D >> _LSQ_SHIFT) & 0xffff) <= _BIAS):
                        break
                    rename_stalls += 1
                    break
                D -= g_alloc[gs]
            i = disp_idx
            disp_idx += 1
            ws = i & wmask
            e_completion[ws] = _UNISSUED
            deps = g_deps[gs]
            if deps is None:
                wakeups_next.append(i)      # ready at dispatch + 1
                continue
            pending = 0
            base = next_cycle
            chaining = g_chains[gs]
            for j in deps:
                if j >= committed:          # producer still in flight
                    js = j & wmask
                    c = e_completion[js]
                    if c != _UNISSUED:
                        avail_d = e_chain[js] if chaining else c
                        if avail_d > base:
                            base = avail_d
                    else:
                        e_waiters[js].append(i)
                        pending += 1
            if pending:
                e_pending[ws] = pending
                e_base[ws] = base
                waiting += pending
            elif base == next_cycle:
                wakeups_next.append(i)
            else:
                heappush(wakeups, (base << 32) | i)

        # --- fetch: one group, stopping at the next taken branch ------------
        if cycle >= next_fetch_cycle:
            if fetch_idx < n:
                stop = fetch_idx + width
                if stop > n:
                    stop = n
                cap_stop = disp_idx + fqcap
                if stop > cap_stop:
                    stop = cap_stop
                if stop > fetch_idx:
                    if cp < npos and pos_idx[cp] < stop:
                        fetch_idx = pos_idx[cp] + 1
                        code = pos_code[cp]
                        cp += 1
                        if code == 1:
                            next_fetch_cycle = _FAR_FUTURE
                        elif code == 2:
                            next_fetch_cycle = next_cycle
                        else:
                            next_fetch_cycle = cycle + 2
                    else:
                        fetch_idx = stop
                    bq_append((fetch_idx << 32) | (cycle + front_latency))
        elif fetch_idx < n:
            fetch_stalls += 1

        # --- account: same end-of-cycle classification as Core.run ----------
        # Head index is `committed`; dispatched-this-cycle is
        # `committed >= disp_before` (the dispatch_cycle test without a
        # per-entry field).
        if accounting:
            if committed - cbase == width:
                st_base += 1
            elif committed < disp_idx:
                hc = e_completion[committed & wmask]
                if hc != _UNISSUED:
                    if g_ismem[committed & gmask] and hc > next_cycle:
                        st_meml += 1
                    elif admission_blocked:
                        st_rename += 1
                    else:
                        st_base += 1
                elif committed < disp_before:
                    if g_ismem[committed & gmask]:
                        st_memc += 1
                    elif admission_blocked:
                        st_rename += 1
                    else:
                        st_fu += 1
                elif admission_blocked:
                    st_rename += 1
                else:
                    st_base += 1
            elif fetch_idx >= n:
                st_drain += 1
            else:
                st_fetch += 1

        # --- horizon: first future cycle at which anything can happen -------
        if issuable or wakeups_next:
            continue
        nxt = _NO_EVENT
        if committed < disp_idx:
            hc = e_completion[committed & wmask]
            if hc != _UNISSUED:
                nxt = hc if hc > cycle else next_cycle
        if parked:
            retry = parked[0] >> 32
            if retry < nxt:
                nxt = retry
        if wakeups:
            ready = wakeups[0] >> 32
            if ready <= cycle:
                ready = next_cycle
            if ready < nxt:
                nxt = ready
        rename_blocked = False
        lsq_blocked = False
        if disp_idx < fetch_idx and disp_idx - committed < rob_size:
            if disp_idx >= burst_end:
                v = bq_popleft()
                burst_end = v >> 32
                front_ready = v & _M32
            if front_ready > cycle:
                if front_ready < nxt:
                    nxt = front_ready
            else:
                gs = disp_idx & gmask
                sm = g_smask[gs]
                if sm and ((D - g_chk[gs]) & sm) != sm:
                    if (g_ismem[gs]
                            and ((D >> _LSQ_SHIFT) & 0xffff) <= _BIAS):
                        # A commit frees the LSQ; commits are events.
                        lsq_blocked = True
                    else:
                        rename_blocked = True
                        if releases:
                            rel_at = releases[0] >> 80
                            if rel_at < nxt:
                                nxt = rel_at
                elif next_cycle < nxt:
                    nxt = next_cycle
        if (fetch_idx < n and fetch_idx - disp_idx < fqcap
                and next_fetch_cycle != _FAR_FUTURE):
            fetch_at = next_fetch_cycle if next_fetch_cycle > cycle \
                else next_cycle
            if fetch_at < nxt:
                nxt = fetch_at
        if nxt >= _NO_EVENT:
            raise RuntimeError(
                "batch lane deadlocked with no pending event "
                f"(lane {ls.index}, cycle {cycle}, {committed}/{n})")
        skipped = nxt - next_cycle
        if skipped > 0:
            if fetch_idx < n and next_fetch_cycle > next_cycle:
                stop = nxt if nxt < next_fetch_cycle else next_fetch_cycle
                fetch_stalls += stop - next_cycle
            if rename_blocked:
                rename_stalls += skipped
            if accounting:
                # Frozen-state span replay of the per-cycle rules; the
                # only in-span transition is the head's memory completion
                # landing exactly on `nxt` (see Core.run).
                adm = rename_blocked or lsq_blocked
                if committed < disp_idx:
                    hc = e_completion[committed & wmask]
                    if hc != _UNISSUED:
                        if g_ismem[committed & gmask]:
                            st_meml += skipped
                            if hc == nxt:
                                st_meml -= 1
                                if adm:
                                    st_rename += 1
                                else:
                                    st_base += 1
                        elif adm:
                            st_rename += skipped
                        else:
                            st_base += skipped
                    elif g_ismem[committed & gmask]:
                        st_memc += skipped
                    elif adm:
                        st_rename += skipped
                    else:
                        st_fu += skipped
                elif fetch_idx >= n:
                    st_drain += skipped
                else:
                    st_fetch += skipped
            cycle = nxt - 1     # the loop header re-increments

    ls.cycles = cycle
    ls.fetch_stalls = fetch_stalls
    ls.rename_stalls = rename_stalls
    if accounting:
        ls.stack = {
            "base": st_base, "fetch": st_fetch, "rename": st_rename,
            "fu_structural": st_fu, "mem_conflict": st_memc,
            "mem_latency": st_meml, "drain": st_drain}
    if pm is not None:
        portset.scalar_accesses = pm_scalar
        portset.vector_accesses = pm_vector
        portset.element_accesses = pm_elem
        pm.acct_accesses += pm_acct_n
        pm.acct_occupancy += pm_acct_occ
    sync(cycle, committed, disp_idx, fetch_idx,
         fetch_stalls, rename_stalls, D, fu_busy)


class BatchCore:
    """Run N configuration lanes over one trace in a single decode pass.

    Every lane's :class:`SimResult` is bit-identical to what
    ``Core(lane.config, lane.memsys, **knobs).run(trace)`` returns on a
    fresh core -- the golden-digest parity suite pins this.

    Args:
        lanes: :class:`LaneSpec` sequence (or ``(config, memsys)`` pairs,
            promoted with default knobs).  Order is preserved in
            :meth:`run`'s result list.
    """

    #: Same trace-size threshold and record sources as :class:`Core`.
    STREAM_THRESHOLD = Core.STREAM_THRESHOLD

    #: Records decoded per pause-resume round.  The shared rings hold
    #: two blocks, so a lane may trail the decode frontier by up to one
    #: whole block (its live window is only ``rob + 2*width`` anyway).
    BLOCK = 1 << 16
    RING = 1 << 17

    def __init__(self, lanes, *, jit: bool | None = None) -> None:
        """``jit`` forces the compiled fast path on/off for every lane it
        can express; ``None`` (default) uses it when available unless
        ``REPRO_NO_JIT=1``.  Inexpressible lanes always stay on the
        interpreted steppers (a *mixed* group runs both paths)."""
        if _np is None:
            raise UnbatchableError("numpy is unavailable")
        self.jit = jit
        specs: list[LaneSpec] = []
        for lane in lanes:
            if not isinstance(lane, LaneSpec):
                lane = LaneSpec(lane[0], lane[1])
            specs.append(lane)
        if not specs:
            raise ValueError("BatchCore needs at least one lane")
        for lane in specs:
            cfg = lane.config
            for entries in (cfg.bimodal_entries, cfg.btb_entries):
                if entries <= 0 or entries & (entries - 1):
                    raise UnbatchableError(
                        "predictor tables must be powers of two")
            if not hasattr(lane.memsys, "try_issue"):
                raise UnbatchableError(
                    f"memory model {type(lane.memsys).__name__} lacks "
                    "try_issue")
        self.lanes = specs

    def run(self, trace: Trace,
            phases: dict | None = None) -> list[SimResult]:
        """Simulate every lane to completion; results in lane order.

        ``phases``, when given, accumulates decode/step/writeback
        wall-clock seconds across the whole group (shared decode plus
        every lane), timed at decode-block granularity.  Jit-expressed
        representatives contribute through :func:`run_lanes_jit`'s own
        phase accounting into the same dict.
        """
        lanes = self.lanes
        n = len(trace)
        operations = trace.operation_count()

        # Identical perfect-memory lanes collapse onto one representative
        # simulation -- true lane lockstep.  share[i] is i for
        # representatives, else the index of the lane it mirrors.
        share = list(range(len(lanes)))
        rep_of: dict = {}
        for idx, lane in enumerate(lanes):
            key = lane.dedup_key()
            if key is None:
                continue
            if key in rep_of:
                share[idx] = rep_of[key]
            else:
                rep_of[key] = idx
        reps = [i for i in range(len(lanes)) if share[i] == i]

        if n == 0:
            empty = {name: 0 for name in ("base", "fetch", "rename",
                                          "fu_structural", "mem_conflict",
                                          "mem_latency", "drain")}
            results = [self._result(
                lane, 0, 0, 0, None, 0, operations=operations,
                stack=empty if lane.accounting else None) for lane in lanes]
            for result in results:
                result.meta["jit"] = False
            return results

        # Representatives the jit kernel can express run through it (one
        # shared-decode pass of their own); the rest -- and everything,
        # on an UnjittableError -- stay on the interpreted steppers.
        from .jit import (UnjittableError, jit_available, jit_enabled,
                          lane_unjittable_reason, run_lanes_jit)
        use_jit = jit_enabled() if self.jit is None else bool(self.jit)
        jit_stats: dict[int, dict] = {}
        if use_jit and jit_available():
            jit_reps = [i for i in reps
                        if lane_unjittable_reason(lanes[i]) is None]
            if jit_reps:
                try:
                    stats = run_lanes_jit(
                        [lanes[i] for i in jit_reps], trace,
                        block=self.BLOCK, ring=self.RING,
                        stream_threshold=self.STREAM_THRESHOLD,
                        phases=phases)
                except UnjittableError:
                    pass
                else:
                    jit_stats = dict(zip(jit_reps, stats))
        py_reps = [i for i in reps if i not in jit_stats]

        _t = _perf_counter()
        _decode_t = 0.0
        _step_t = 0.0
        # Same record-source policy as Core.run: cached records for the
        # grid-reuse regime, streamed chunks for frame-scale traces.
        if trace.records_cached() or n < self.STREAM_THRESHOLD:
            next_record = iter(trace.timing_records()).__next__
        else:
            next_record = trace.iter_timing_records().__next__

        states = [_LaneState(lanes[i], i) for i in py_reps]
        dep_cap = max((st.rob_size for st in states), default=1)
        shared = _SharedDecode(n, next_record, dep_cap,
                               {st.ctl_key for st in states},
                               self.BLOCK, self.RING)
        _decode_t += _perf_counter() - _t

        # Inter-block lane state of record: scheduler snapshots the
        # driver reads for the retention invariant and callers can
        # inspect for progress.
        L = len(lanes)
        npools = len(RegPool)
        state = {
            "cycle": _np.zeros(L, dtype=_np.int64),
            "committed": _np.zeros(L, dtype=_np.int64),
            "rob_occupancy": _np.zeros(L, dtype=_np.int64),
            "fetch_index": _np.zeros(L, dtype=_np.int64),
            "lsq_used": _np.zeros(L, dtype=_np.int64),
            "fetch_stall_cycles": _np.zeros(L, dtype=_np.int64),
            "rename_stall_events": _np.zeros(L, dtype=_np.int64),
            "inflight_regs": _np.zeros((L, npools), dtype=_np.int64),
            "fu_next_free": _np.zeros((L, 3), dtype=_np.int64),
        }
        self.state = state

        def make_sync(row: int, limits, lsq_size: int):
            def sync(cycle, committed, disp_idx, fetch_idx,
                     fetch_stalls, rename_stalls, D, fu_busy):
                state["cycle"][row] = cycle
                state["committed"][row] = committed
                state["rob_occupancy"][row] = disp_idx - committed
                state["fetch_index"][row] = fetch_idx
                state["lsq_used"][row] = lsq_size - (
                    ((D >> _LSQ_SHIFT) & 0xffff) - _BIAS)
                state["fetch_stall_cycles"][row] = fetch_stalls
                state["rename_stall_events"][row] = rename_stalls
                state["inflight_regs"][row] = [
                    limits[p] - (((D >> (p << 4)) & 0xffff) - _BIAS)
                    for p in range(npools)]
                state["fu_next_free"][row] = [min(b) if b else 0
                                              for b in fu_busy]
            return sync

        for st in states:
            st.sync = make_sync(st.index, st.phys_limit, st.lsq_size)
        rep_rows = _np.array(py_reps, dtype=_np.int64)

        steppers = [_lane_stepper(st, shared) for st in states]
        active = []
        for gen in steppers:
            try:
                next(gen)
                active.append(gen)
            except StopIteration:
                pass

        was_enabled = gc.isenabled()
        gc.disable()
        try:
            while active:
                if shared.avail < n:
                    if shared.avail >= shared.size:
                        # About to overwrite the oldest ring block: every
                        # lane must have retired past it (lanes pause at
                        # the decode frontier, so their live windows all
                        # hug it; this is the safety net for that proof).
                        m = min(self.BLOCK, n - shared.avail)
                        floor = shared.avail + m - shared.size
                        cmin = int(state["committed"][rep_rows].min())
                        if cmin < floor:
                            raise RuntimeError(
                                "batch ring retention violated: lane "
                                f"committed {cmin} < floor {floor}")
                    _t = _perf_counter()
                    shared.decode_block()
                    _decode_t += _perf_counter() - _t
                _t = _perf_counter()
                still = []
                for gen in active:
                    try:
                        next(gen)
                        still.append(gen)
                    except StopIteration:
                        pass
                active = still
                _step_t += _perf_counter() - _t
        finally:
            if was_enabled:
                gc.enable()

        _t = _perf_counter()
        # Jit lanes never stepped through the snapshot syncs; record
        # their final state so self.state reads consistently.
        for i, s in jit_stats.items():
            state["cycle"][i] = s["cycles"]
            state["committed"][i] = n
            state["fetch_index"][i] = n
            state["fetch_stall_cycles"][i] = s["fetch_stalls"]
            state["rename_stall_events"][i] = s["rename_stalls"]

        by_rep = {st.index: st for st in states}
        results: list[SimResult] = []
        for idx, lane in enumerate(lanes):
            rep = share[idx]
            s = jit_stats.get(rep)
            if s is not None:
                result = self._result(
                    lane, s["cycles"], s["fetch_stalls"],
                    s["rename_stalls"], s["ctl"], n, mirrored=rep != idx,
                    stats_of=lanes[rep], operations=operations,
                    stack=s.get("stack"))
                result.meta["jit"] = True
            else:
                st = by_rep[rep]
                ctl = shared.ctl[st.ctl_key]
                result = self._result(
                    lane, st.cycles, st.fetch_stalls, st.rename_stalls,
                    ctl, n, mirrored=rep != idx,
                    stats_of=lanes[rep], operations=operations,
                    stack=st.stack)
                result.meta["jit"] = False
            results.append(result)
        if phases is not None:
            phases["decode"] = phases.get("decode", 0.0) + _decode_t
            phases["step"] = phases.get("step", 0.0) + _step_t
            phases["writeback"] = (phases.get("writeback", 0.0)
                                   + _perf_counter() - _t)
        return results

    @staticmethod
    def _result(lane: LaneSpec, cycles: int, fetch_stalls: int,
                rename_stalls: int, ctl, n: int, *,
                mirrored: bool = False, stats_of: LaneSpec | None = None,
                operations: int | None = None,
                stack: dict | None = None) -> SimResult:
        source = (stats_of or lane).memsys
        mem_stats = source.stats() if hasattr(source, "stats") else {}
        result = SimResult(
            cycles=cycles,
            instructions=n,
            operations=operations if operations is not None else 0,
            branch_lookups=ctl.lookups if ctl is not None else 0,
            branch_mispredicts=ctl.mispredicts if ctl is not None else 0,
            btb_misses=ctl.btb_misses if ctl is not None else 0,
            fetch_stall_cycles=fetch_stalls,
            rename_stall_events=rename_stalls,
            mem_stats=dict(mem_stats),
        )
        if stack is not None:
            # Mirrored lanes replicate the representative's stack verbatim
            # (they are the same simulation); conservation is re-checked
            # per result either way.
            result.stack = checked_stack(cycles, TimingStats(**stack))
            if hasattr(source, "accounting_stats"):
                result.meta["mem_accounting"] = source.accounting_stats()
        if mirrored:
            result.meta["batch_mirrored"] = True
        return result
