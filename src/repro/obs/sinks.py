"""Span sinks: in-memory for tests/shipping, JSONL for offline traces."""

from __future__ import annotations

import json
import threading

__all__ = ["JsonlSink", "MemorySink", "read_jsonl"]


class MemorySink:
    """Collects span records in a list.  Thread-safe; used both for tests
    and for worker-side tracers whose records are shipped to the parent."""

    def __init__(self):
        self._lock = threading.Lock()
        self.records = []

    def emit(self, record):
        with self._lock:
            self.records.append(record)

    def drain(self):
        """Return and clear the collected records (for shipping)."""
        with self._lock:
            records = self.records
            self.records = []
        return records

    def clear(self):
        self.drain()


class JsonlSink:
    """Appends one JSON object per span record to a file.

    The file is opened lazily in append mode and each record is written
    as a single line + flush, so concurrent processes appending to the
    same path interleave whole lines (POSIX O_APPEND semantics).
    """

    def __init__(self, path):
        self.path = path
        self._lock = threading.Lock()
        self._fh = None

    def emit(self, record):
        line = json.dumps(record, separators=(",", ":"), default=str)
        with self._lock:
            if self._fh is None:
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self):
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_jsonl(path):
    """Load span records from a JSONL trace file, skipping torn lines."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError:
                continue
    return records
