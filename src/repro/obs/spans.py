"""Span tracing with explicit parent handles.

No globals, no contextvars: a span's identity is the plain tuple
``(trace_id, span_id)`` returned by :attr:`Span.handle`.  Handles are
picklable and JSON-safe, so they cross ``ProcessPoolExecutor`` payloads
and NDJSON requests unchanged; a worker builds its own :class:`Tracer`
seeded with the parent handle's trace id, records spans into a memory
sink, and ships the finished records back for the parent to
:meth:`Tracer.adopt` — stitching one tree across processes without any
ambient state.

Span record schema (one dict per finished span)::

    {"name": str, "trace": str, "span": str, "parent": str | None,
     "start": float,   # wall clock (time.time), cross-process comparable
     "dur": float,     # seconds, from a monotonic clock
     "attrs": {...}}   # only present when non-empty
"""

from __future__ import annotations

import itertools
import os
import time

__all__ = ["NULL_SPAN", "NullTracer", "Span", "Tracer"]


def _new_trace_id():
    return os.urandom(8).hex()


class Span:
    """A timed operation.  Use as a context manager or call :meth:`end`."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id",
                 "start", "attrs", "_t0", "_tracer", "_done")

    def __init__(self, tracer, name, trace_id, span_id, parent_id, attrs):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = time.time()
        self._t0 = time.perf_counter()
        self._tracer = tracer
        self._done = False

    @property
    def handle(self):
        """Picklable (trace_id, span_id) pair for cross-process parenting."""
        return (self.trace_id, self.span_id)

    def set(self, **attrs):
        """Attach attributes after creation (e.g. counts known at the end)."""
        self.attrs.update(attrs)
        return self

    def end(self):
        if self._done:
            return
        self._done = True
        self._tracer._finish(self, time.perf_counter() - self._t0)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()
        return False


class Tracer:
    """Creates spans and forwards finished records to a sink."""

    enabled = True

    def __init__(self, sink, trace_id=None):
        self.sink = sink
        self.trace_id = trace_id or _new_trace_id()
        # Prefix span ids with the pid so ids minted in forked workers
        # can never collide with the parent's.
        self._prefix = "%x-" % os.getpid()
        self._ids = itertools.count(1)

    def _next_id(self):
        return self._prefix + format(next(self._ids), "x")

    @staticmethod
    def _parent_ids(parent, default_trace):
        """Accept a Span, a (trace, span) handle (tuple or list), or None."""
        if parent is None:
            return default_trace, None
        if isinstance(parent, Span):
            return parent.trace_id, parent.span_id
        if isinstance(parent, (tuple, list)) and len(parent) == 2:
            return parent[0], parent[1]
        raise TypeError(f"bad span parent: {parent!r}")

    def span(self, name, parent=None, **attrs):
        trace_id, parent_id = self._parent_ids(parent, self.trace_id)
        return Span(self, name, trace_id, self._next_id(), parent_id, attrs)

    def record(self, name, start, dur, parent=None, **attrs):
        """Emit a span from explicit timings (phase aggregates, replays)."""
        trace_id, parent_id = self._parent_ids(parent, self.trace_id)
        rec = {
            "name": name,
            "trace": trace_id,
            "span": self._next_id(),
            "parent": parent_id,
            "start": start,
            "dur": dur,
        }
        if attrs:
            rec["attrs"] = attrs
        self.sink.emit(rec)
        return rec

    def adopt(self, records):
        """Stitch finished span records shipped back from a worker."""
        for rec in records or ():
            self.sink.emit(rec)

    def _finish(self, span, dur):
        rec = {
            "name": span.name,
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "start": span.start,
            "dur": dur,
        }
        if span.attrs:
            rec["attrs"] = span.attrs
        self.sink.emit(rec)


class _NullSpan:
    """Shared inert span: context manager and mutators are all no-ops."""

    __slots__ = ()

    handle = None
    name = trace_id = span_id = parent_id = None
    attrs = {}

    def set(self, **attrs):
        return self

    def end(self):
        pass

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: hands out the shared inert span."""

    enabled = False
    trace_id = None
    sink = None

    def span(self, name, parent=None, **attrs):
        return NULL_SPAN

    def record(self, name, start, dur, parent=None, **attrs):
        return None

    def adopt(self, records):
        pass


NULL_TRACER = NullTracer()
