"""Metrics registry: counters, gauges, and log-scale histograms.

Zero-dependency.  The enabled path is plain python objects guarded by a
single lock per registry; the disabled path (:class:`NullRegistry`) hands
out one shared no-op metric object, so instrumented code pays exactly an
attribute lookup plus a no-op call and allocates nothing.

Histograms use fixed log-scale buckets: bucket ``i`` covers
``[lo * growth**i, lo * growth**(i+1))`` with ``growth = 10**(1/bpd)``
for ``bpd`` buckets per decade.  Percentile readouts walk the cumulative
counts and report the geometric midpoint of the winning bucket, so the
worst-case relative error is about ``growth**0.5 - 1`` (~7.5% at the
default 16 buckets/decade) — plenty for latency telemetry, and cheap
enough to observe from hot paths.

Metric names may carry a literal Prometheus label suffix, e.g.
``repro_shard_queue_depth{shard="0"}``; :func:`render_prometheus` splits
the base name off for ``# TYPE`` lines.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "NullRegistry",
    "Registry",
    "render_prometheus",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def inc(self, n=1):
        self.value += n

    # Alias so counters and histograms can share call sites.
    add = inc


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def inc(self, n=1):
        self.value += n

    def dec(self, n=1):
        self.value -= n


class Histogram:
    """Fixed-bucket log-scale histogram with percentile readouts."""

    __slots__ = (
        "name", "lo", "hi", "_log_growth", "_log_lo", "buckets",
        "count", "total", "min", "max",
    )

    #: default buckets per decade; growth = 10**(1/16) ~ 1.155
    BUCKETS_PER_DECADE = 16

    def __init__(self, name, lo=1e-6, hi=1e4, buckets_per_decade=None):
        if lo <= 0 or hi <= lo:
            raise ValueError("need 0 < lo < hi")
        bpd = buckets_per_decade or self.BUCKETS_PER_DECADE
        self.name = name
        self.lo = lo
        self.hi = hi
        self._log_lo = math.log(lo)
        self._log_growth = math.log(10.0) / bpd
        n = int(math.ceil((math.log(hi) - self._log_lo) / self._log_growth))
        # One underflow bucket below lo and one overflow bucket above hi.
        self.buckets = [0] * (n + 2)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value):
        if value <= self.lo:
            idx = 0
        else:
            idx = 1 + int((math.log(value) - self._log_lo) / self._log_growth)
            if idx >= len(self.buckets):
                idx = len(self.buckets) - 1
        self.buckets[idx] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _bucket_mid(self, idx):
        if idx <= 0:
            return self.lo
        lo_edge = math.exp(self._log_lo + (idx - 1) * self._log_growth)
        return lo_edge * math.exp(self._log_growth * 0.5)

    def percentile(self, q):
        """Approximate q-th percentile (q in [0, 100]); None when empty."""
        if not self.count:
            return None
        rank = q / 100.0 * self.count
        seen = 0
        for idx, n in enumerate(self.buckets):
            seen += n
            if seen >= rank and n:
                mid = self._bucket_mid(idx)
                # Clamp to observed extremes: exact for min/max-heavy
                # distributions and never reports outside the data.
                return min(max(mid, self.min), self.max)
        return self.max

    def percentiles(self):
        return {
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    @property
    def mean(self):
        return self.total / self.count if self.count else None


class _NullMetric:
    """Shared no-op metric: every mutator is a pass-through."""

    __slots__ = ()

    def inc(self, n=1):
        pass

    def add(self, n=1):
        pass

    def set(self, value):
        pass

    def dec(self, n=1):
        pass

    def observe(self, value):
        pass

    value = 0
    count = 0


_NULL_METRIC = _NullMetric()


class Registry:
    """Named metric store.  ``counter/gauge/histogram`` get-or-create."""

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics = {}

    def _get(self, name, factory):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory(name)
                    self._metrics[name] = metric
        return metric

    def counter(self, name):
        return self._get(name, Counter)

    def gauge(self, name):
        return self._get(name, Gauge)

    def histogram(self, name, lo=1e-6, hi=1e4, buckets_per_decade=None):
        return self._get(
            name,
            lambda n: Histogram(n, lo=lo, hi=hi, buckets_per_decade=buckets_per_decade),
        )

    def snapshot(self):
        """JSON-safe dump: counters/gauges as numbers, histograms expanded."""
        out = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Histogram):
                out[metric.name] = {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min if metric.count else None,
                    "max": metric.max if metric.count else None,
                    "mean": metric.mean,
                    **metric.percentiles(),
                }
            else:
                out[metric.name] = metric.value
        return out


class NullRegistry:
    """Disabled registry: every accessor returns the shared no-op metric."""

    enabled = False

    def counter(self, name):
        return _NULL_METRIC

    def gauge(self, name):
        return _NULL_METRIC

    def histogram(self, name, lo=1e-6, hi=1e4, buckets_per_decade=None):
        return _NULL_METRIC

    def snapshot(self):
        return {}


NULL_REGISTRY = NullRegistry()


def _split_labels(name):
    if "{" in name:
        base, _, rest = name.partition("{")
        return base, "{" + rest
    return name, ""


def _sanitize(name):
    return "".join(c if (c.isalnum() or c == "_") else "_" for c in name)


def render_prometheus(registry):
    """Prometheus text exposition (version 0.0.4) of a Registry."""
    if not getattr(registry, "enabled", False):
        return ""
    lines = []
    typed = set()
    with registry._lock:
        metrics = sorted(registry._metrics.values(), key=lambda m: m.name)
    for metric in metrics:
        base, labels = _split_labels(metric.name)
        base = _sanitize(base)
        if isinstance(metric, Counter):
            if base not in typed:
                lines.append(f"# TYPE {base} counter")
                typed.add(base)
            lines.append(f"{base}{labels} {metric.value}")
        elif isinstance(metric, Gauge):
            if base not in typed:
                lines.append(f"# TYPE {base} gauge")
                typed.add(base)
            lines.append(f"{base}{labels} {metric.value}")
        elif isinstance(metric, Histogram):
            if base not in typed:
                lines.append(f"# TYPE {base} summary")
                typed.add(base)
            inner = labels[1:-1] if labels else ""
            for q, key in ((0.5, "p50"), (0.9, "p90"), (0.99, "p99")):
                val = metric.percentile(q * 100)
                if val is None:
                    continue
                lbl = f'quantile="{q}"' + (f",{inner}" if inner else "")
                lines.append(f"{base}{{{lbl}}} {val:.9g}")
            lines.append(f"{base}_sum{labels} {metric.total:.9g}")
            lines.append(f"{base}_count{labels} {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")
