"""TTY progress line driven by the metrics registry.

``ProgressLine`` owns (or borrows) a :class:`~repro.obs.metrics.Registry`
and keeps its state there — ``progress_done`` / ``progress_total``
counters and gauge — so anything else holding the registry (a sweep
command, a test) reads the same numbers the line renders.  Rendering is
throttled and writes ``\\r``-terminated lines to stderr; call
:meth:`close` to clear the line.  Use :func:`progress_wanted` to apply
the "off when not a TTY" policy.
"""

from __future__ import annotations

import sys
import time
from collections import deque

from .metrics import Registry

__all__ = ["ProgressLine", "progress_wanted"]


def progress_wanted(flag, stream=None):
    """--progress is honoured only when the stream is a real TTY."""
    if not flag:
        return False
    stream = stream if stream is not None else sys.stderr
    try:
        return bool(stream.isatty())
    except (AttributeError, ValueError):
        return False


class ProgressLine:
    """Live ``done/total  rate pts/s  ETA`` line for long sweeps."""

    #: minimum seconds between repaints
    INTERVAL = 0.1
    #: trailing window (seconds) for the rate estimate
    WINDOW = 10.0

    def __init__(self, total, registry=None, stream=None, label="points"):
        self.registry = registry if registry is not None else Registry()
        self.stream = stream if stream is not None else sys.stderr
        self.label = label
        self._done = self.registry.counter("progress_done")
        self._total = self.registry.gauge("progress_total")
        self._total.set(total)
        self._t0 = time.perf_counter()
        self._samples = deque([(self._t0, 0)])
        self._last_paint = 0.0
        self._painted = False

    def tick(self, n=1):
        self._done.inc(n)
        now = time.perf_counter()
        self._samples.append((now, self._done.value))
        while len(self._samples) > 2 and now - self._samples[0][0] > self.WINDOW:
            self._samples.popleft()
        if now - self._last_paint >= self.INTERVAL or self._done.value >= self._total.value:
            self._paint(now)

    def rate(self):
        (t0, d0), (t1, d1) = self._samples[0], self._samples[-1]
        if t1 <= t0:
            return 0.0
        return (d1 - d0) / (t1 - t0)

    def _paint(self, now):
        done, total = self._done.value, self._total.value
        rate = self.rate()
        if rate > 0 and total > done:
            eta = (total - done) / rate
            eta_s = f"ETA {eta:5.0f}s" if eta < 600 else f"ETA {eta / 60:4.1f}m"
        else:
            eta_s = "ETA   --"
        line = (f"\r{done}/{total} {self.label}  "
                f"{rate:6.1f} {self.label}/s  {eta_s}")
        try:
            self.stream.write(line.ljust(44))
            self.stream.flush()
        except (OSError, ValueError):
            return
        self._last_paint = now
        self._painted = True

    def close(self):
        if self._painted:
            try:
                self.stream.write("\r" + " " * 44 + "\r")
                self.stream.flush()
            except (OSError, ValueError):
                pass
            self._painted = False
