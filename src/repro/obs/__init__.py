"""repro.obs — zero-dependency telemetry: metrics, spans, phase profiling.

The single entry point is :class:`Obs`, a bundle of a metrics registry
and a span tracer.  Disabled (the default) both are shared no-op
singletons, so instrumented code costs an attribute lookup and a no-op
call; the overhead guard in ``benchmarks/test_obs_overhead.py`` holds
the enabled path under 3% on the golden mini-grid too.

Enable per process via the environment:

* ``REPRO_OBS=1`` — collect spans into an in-memory sink and count
  metrics (programmatic access via ``session.obs``).
* ``REPRO_OBS_TRACE=path.jsonl`` — additionally append every finished
  span to a JSONL trace file (render with ``repro stats --trace``).

or explicitly with ``Obs.make(sink=...)`` / ``Session(obs=...)``.

Spans use explicit parent handles (``span.handle`` — a picklable
``(trace_id, span_id)`` tuple) instead of ambient context, so the tree
survives ``ProcessPoolExecutor`` workers, shard processes, and asyncio:
workers record into a :class:`~repro.obs.sinks.MemorySink` and the
parent stitches the shipped records with :meth:`Tracer.adopt`.
"""

from __future__ import annotations

import os

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    NULL_REGISTRY,
    NullRegistry,
    Registry,
    render_prometheus,
)
from .progress import ProgressLine, progress_wanted
from .sinks import JsonlSink, MemorySink, read_jsonl
from .spans import NULL_SPAN, NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MemorySink",
    "NULL_SPAN",
    "NullRegistry",
    "NullTracer",
    "Obs",
    "OBS_OFF",
    "ProgressLine",
    "Registry",
    "Span",
    "Tracer",
    "obs_from_env",
    "progress_wanted",
    "read_jsonl",
    "render_prometheus",
]


class Obs:
    """Bundle of a metrics registry and a span tracer."""

    __slots__ = ("enabled", "metrics", "tracer", "sink")

    def __init__(self, metrics, tracer, sink=None, enabled=True):
        self.metrics = metrics
        self.tracer = tracer
        self.sink = sink
        self.enabled = enabled

    @classmethod
    def disabled(cls):
        return OBS_OFF

    @classmethod
    def make(cls, sink=None, trace_id=None):
        """An enabled Obs writing spans to ``sink`` (default: MemorySink)."""
        sink = sink if sink is not None else MemorySink()
        return cls(Registry(), Tracer(sink, trace_id=trace_id), sink=sink)

    def phase_spans(self, parent, start, phases):
        """Emit decode/step/writeback phase aggregates as child spans.

        ``phases`` is the dict a timing core filled (see ``cpu/core.py``);
        the spans are laid out back-to-back from ``start`` (wall clock) in
        decode → step → writeback order.  They are aggregates, not exact
        intervals — decode and step interleave on the streaming paths.
        """
        if not self.tracer.enabled or not phases:
            return
        t = start
        for key in ("decode", "step", "writeback"):
            dur = phases.get(key)
            if dur is None:
                continue
            self.tracer.record(f"phase.{key}", t, dur, parent=parent)
            t += dur


OBS_OFF = Obs(NULL_REGISTRY, NULL_TRACER, sink=None, enabled=False)


def obs_from_env(env=None):
    """Build an Obs from the environment (see module docstring)."""
    env = env if env is not None else os.environ
    trace_path = env.get("REPRO_OBS_TRACE")
    if trace_path:
        return Obs.make(sink=JsonlSink(trace_path))
    if env.get("REPRO_OBS") == "1":
        return Obs.make()
    return OBS_OFF
