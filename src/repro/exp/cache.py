"""Persistent on-disk cache of simulation results.

One JSON file per cached point, named by the point's content hash (which
already mixes in the code-version salt, see
:meth:`repro.exp.spec.PointSpec.content_hash`).  Writes are atomic
(temp file + rename) so parallel workers and concurrent sessions never
observe torn entries; readers treat any undecodable file as a miss.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

#: Bump when the entry layout changes; old entries become misses.
ENTRY_VERSION = 1

#: Minimum age before :meth:`ResultCache.prune` / :meth:`ResultCache.clear`
#: may sweep a ``*.tmp`` file: any younger one may belong to a writer
#: mid-atomic-rename.
TMP_GRACE_SECONDS = 60.0


class ResultCache:
    """Directory-backed map from cache key to a JSON-safe record.

    ``metrics``, when given, is a :class:`repro.obs.Registry` (or the
    no-op null registry) the cache counts disk hits/misses/writes into
    (``result_cache_disk_hits`` / ``_misses`` / ``_puts``) -- the
    telemetry behind hit-rate readouts in ``repro stats``.
    """

    def __init__(self, directory: str | Path, *, metrics=None) -> None:
        self.directory = Path(directory)
        if metrics is None:
            from ..obs.metrics import NULL_REGISTRY
            metrics = NULL_REGISTRY
        self.metrics = metrics

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """Load one entry, or ``None`` on a miss / corrupt file."""
        try:
            with open(self._path(key), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):      # ValueError covers bad JSON/UTF-8
            self.metrics.counter("result_cache_disk_misses").inc()
            return None
        if not isinstance(entry, dict) or entry.get("version") != ENTRY_VERSION:
            self.metrics.counter("result_cache_disk_misses").inc()
            return None
        self.metrics.counter("result_cache_disk_hits").inc()
        return entry

    def put(self, key: str, record: dict) -> None:
        """Atomically store one entry."""
        self.metrics.counter("result_cache_disk_puts").inc()
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = dict(record, version=ENTRY_VERSION)
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def entries(self) -> list[Path]:
        """All entry files currently on disk."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def _sweep_tmp(self, cutoff: float) -> None:
        """Unlink ``*.tmp`` files last touched at or before ``cutoff``.

        The grace window encoded in every cutoff (at least
        :data:`TMP_GRACE_SECONDS`) is what keeps sweeping safe against
        live writers: a younger temp file belongs to a writer between
        ``mkstemp`` and its atomic rename, and deleting it would break
        the rename.  Both :meth:`prune` and :meth:`clear` sweep through
        here so the safety rule cannot diverge between them.
        """
        if not self.directory.is_dir():
            return
        for orphan in self.directory.glob("*.tmp"):
            try:
                if orphan.stat().st_mtime <= cutoff:
                    orphan.unlink()
            except OSError:
                pass

    def prune(self, max_age_seconds: float, *,
              now: float | None = None) -> int:
        """Delete entries whose file is older than ``max_age_seconds``.

        Age is judged by mtime (``put`` rewrites the file, refreshing
        it), so recently revalidated points survive.  Safe to run while
        writers are active: entries are removed with a single ``unlink``
        (readers holding an open handle keep their snapshot; late
        ``get``\\ s see a clean miss), and ``*.tmp`` files are swept only
        once older than both the requested age and
        :data:`TMP_GRACE_SECONDS` (see :meth:`_sweep_tmp`).  Returns how
        many entries were removed (orphans don't count).
        """
        if max_age_seconds < 0:
            raise ValueError("max_age_seconds must be >= 0")
        moment = time.time() if now is None else now
        cutoff = moment - max_age_seconds
        removed = 0
        for path in self.entries():
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:      # raced with a writer/other pruner: skip
                pass
        self._sweep_tmp(moment - max(max_age_seconds, TMP_GRACE_SECONDS))
        return removed

    def clear(self, *, now: float | None = None) -> int:
        """Delete every entry; returns how many were removed.

        Also sweeps ``*.tmp`` orphans left by writers killed between
        ``mkstemp`` and the rename (those never count as entries) -- but
        only once they age past :data:`TMP_GRACE_SECONDS`, exactly like
        :meth:`prune`: a younger temp file belongs to a *live* writer
        mid-atomic-rename, and unlinking it would make the writer's
        ``os.replace`` fail, turning a concurrent ``clear``-vs-``put``
        race into a spurious :class:`OSError` in the writer.
        """
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        moment = time.time() if now is None else now
        self._sweep_tmp(moment - TMP_GRACE_SECONDS)
        return removed
