"""The experiment engine: build memo, point execution, parallel sessions.

:class:`Session` is the one way experiments run.  It resolves a
:class:`~repro.exp.spec.SweepSpec` (or any iterable of points) into
:class:`~repro.exp.spec.PointSpec`\\ s, returns cached
:class:`~repro.cpu.core.SimResult`\\ s where available, and executes the
misses -- in process when ``jobs == 1`` (bit-identical to the historical
sequential drivers), or on a :class:`~concurrent.futures.ProcessPoolExecutor`
when ``jobs > 1``.  Simulation is deterministic, so the two paths produce
identical results; only wall-clock differs.

Build products (verified traces) are memoized per process in
:data:`_BUILD_MEMO`, which subsumes the old ``eval.runner._BUILD_CACHE`` and
``eval.figure7._APP_CACHE``; cycle-level results persist across processes in
the on-disk :class:`~repro.exp.cache.ResultCache`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from ..cpu import Core, SimResult, machine_config
from ..emulib.fingerprint import source_fingerprint
from ..obs import OBS_OFF, Obs, obs_from_env
from .cache import ResultCache
from .spec import PointSpec, SweepSpec

#: Per-process memo of verified builds, keyed by (kind, target, isa, scale).
_BUILD_MEMO: dict[tuple[str, str, str, int], object] = {}


def built_kernel(kernel: str, isa: str, scale: int = 1):
    """Build (and verify against the golden reference) one kernel, memoized."""
    from ..kernels import KERNELS, build_and_check

    key = ("kernel", kernel, isa, scale)
    if key not in _BUILD_MEMO:
        spec = KERNELS[kernel]
        workload = spec.make_workload(scale)
        _BUILD_MEMO[key] = build_and_check(spec, isa, workload)
    return _BUILD_MEMO[key]


def built_app(app: str, isa: str, scale: int = 1):
    """Build (and verify) one full application, memoized."""
    from ..apps import APPS

    key = ("app", app, isa, scale)
    if key not in _BUILD_MEMO:
        _BUILD_MEMO[key] = APPS[app].build(isa, scale)
    return _BUILD_MEMO[key]


def make_memsys(point: PointSpec):
    """Instantiate the memory model a point asks for."""
    from ..memsys import (CollapsingBufferHierarchy, ConventionalHierarchy,
                          MultiAddressHierarchy, PerfectMemory,
                          VectorCacheHierarchy)

    if point.memory == "perfect":
        cfg = machine_config(point.way, point.isa)
        return PerfectMemory(point.latency, cfg.mem_ports, cfg.mem_port_width)
    factory = {
        "conventional": ConventionalHierarchy,
        "multiaddress": MultiAddressHierarchy,
        "vectorcache": VectorCacheHierarchy,
        "collapsing": CollapsingBufferHierarchy,
    }[point.memory]
    return factory(point.way)


def _phase_meta(phases: dict) -> dict:
    """Round a phase-accumulator dict for ``meta`` (stable, JSON-small)."""
    return {key: round(value, 6) for key, value in phases.items()}


def execute_point(point: PointSpec, *, jit: bool | None = None,
                  obs: Obs | None = None, parent=None) -> SimResult:
    """Build, verify and simulate one point (no caching).

    The wall-clock cost of the cycle-level simulation itself is recorded
    in ``result.meta`` (``sim_seconds``, ``sim_instructions_per_second``)
    so sweeps and the core-speed benchmark can track simulator throughput,
    and ``meta["phases"]`` breaks it into decode/step/writeback (see
    :meth:`Core.run`); ``meta`` is excluded from result equality and
    digests.  ``jit`` forwards to :meth:`Core.run` (``None`` defers to
    availability and ``REPRO_NO_JIT``); either path returns bit-identical
    results.  ``obs``/``parent`` attach trace.build and sim.point spans
    under an existing handle when telemetry is enabled.
    """
    obs = obs if obs is not None else OBS_OFF
    tracer = obs.tracer
    build = built_kernel if point.kind == "kernel" else built_app
    with tracer.span("trace.build", parent=parent, target=point.target,
                     isa=point.isa, scale=point.scale):
        built = build(point.target, point.isa, point.scale)
    cfg = machine_config(point.way, point.isa)
    core = Core(cfg, make_memsys(point), accounting=point.accounting)
    phases: dict = {}
    with tracer.span("sim.point", parent=parent, target=point.target,
                     isa=point.isa, way=point.way,
                     memory=point.memory) as span:
        start_wall = time.time()
        start = time.perf_counter()
        result = core.run(built.trace, jit=jit, phases=phases)
        elapsed = time.perf_counter() - start
    result.meta["sim_seconds"] = round(elapsed, 6)
    if elapsed > 0:
        result.meta["sim_instructions_per_second"] = round(
            result.instructions / elapsed)
    result.meta["phases"] = _phase_meta(phases)
    obs.phase_spans(span, start_wall, phases)
    obs.metrics.counter("points_simulated").inc()
    obs.metrics.counter("instructions_simulated").inc(result.instructions)
    obs.metrics.histogram("sim_point_seconds").observe(elapsed)
    _export_stack(obs, result)
    return result


def _export_stack(obs: Obs, result: SimResult) -> None:
    """Mirror a result's CPI-stack components into the metrics registry."""
    if result.stack is None:
        return
    for name, value in result.stack.to_dict().items():
        obs.metrics.counter(
            f'cpi_stack_cycles{{component="{name}"}}').inc(value)


def _worker(payload: dict) -> dict:
    """Process-pool entry: execute one point from its plain-data payload."""
    result = execute_point(PointSpec.from_payload(payload))
    return result.to_dict()


def build_key(point: PointSpec) -> tuple[str, str, str, int]:
    """The build-memo key: points sharing it simulate the same trace."""
    return (point.kind, point.target, point.isa, point.scale)


def execute_batch(points: list[PointSpec],
                  *, jit: bool | None = None,
                  obs: Obs | None = None, parent=None) -> list[SimResult]:
    """Simulate same-trace points as one :class:`BatchCore` pass.

    All points must share a :func:`build_key` (one build, one trace, one
    decode); each returned :class:`SimResult` is bit-identical to
    :func:`execute_point` on that point.  Raises
    :class:`~repro.cpu.batch.UnbatchableError` when a lane cannot run
    through the batch engine -- callers fall back to per-point execution.

    Per-lane ``meta["sim_seconds"]`` is an *equal share* of the group
    pass, not a measurement -- ``meta["sim_seconds_estimated"]`` flags
    it and ``meta["batch_group_seconds"]`` carries the measured
    whole-pass wall-clock; ``meta["phases"]`` holds the group's shared
    decode/step/writeback split.
    """
    from ..cpu.batch import BatchCore, LaneSpec, UnbatchableError

    if not points:
        return []
    keys = {build_key(p) for p in points}
    if len(keys) > 1:
        raise UnbatchableError(f"points span {len(keys)} traces")
    obs = obs if obs is not None else OBS_OFF
    tracer = obs.tracer
    first = points[0]
    build = built_kernel if first.kind == "kernel" else built_app
    with tracer.span("trace.build", parent=parent, target=first.target,
                     isa=first.isa, scale=first.scale):
        built = build(first.target, first.isa, first.scale)
    lanes = [LaneSpec(machine_config(p.way, p.isa), make_memsys(p),
                      accounting=p.accounting)
             for p in points]
    core = BatchCore(lanes, jit=jit)   # validates lanes before simulation
    group = "-".join(str(k) for k in build_key(first))
    phases: dict = {}
    with tracer.span("sim.group", parent=parent, group=group,
                     lanes=len(points)) as span:
        start_wall = time.time()
        start = time.perf_counter()
        results = core.run(built.trace, phases=phases)
        elapsed = time.perf_counter() - start
    share = elapsed / len(points)
    phase_meta = _phase_meta(phases)
    for result in results:
        # sim_seconds is this lane's amortized share of the batch pass,
        # keeping per-point throughput numbers comparable with the
        # sequential path; sim_seconds_estimated marks it as a share
        # rather than a measurement, and batch_group_seconds carries the
        # measured whole-pass cost (batch_seconds is the historical
        # alias, kept for existing readers).
        result.meta["sim_seconds"] = round(share, 6)
        result.meta["sim_seconds_estimated"] = True
        if share > 0:
            result.meta["sim_instructions_per_second"] = round(
                result.instructions / share)
        result.meta["batch_lanes"] = len(points)
        result.meta["batch_group"] = group
        result.meta["batch_seconds"] = round(elapsed, 6)
        result.meta["batch_group_seconds"] = round(elapsed, 6)
        result.meta["phases"] = dict(phase_meta)
    obs.phase_spans(span, start_wall, phases)
    obs.metrics.counter("points_simulated").inc(len(points))
    obs.metrics.counter("batch_groups").inc()
    obs.metrics.histogram("sim_group_seconds").observe(elapsed)
    for result in results:
        _export_stack(obs, result)
    return results


def batching_enabled() -> bool:
    """Process-wide batch toggle (``REPRO_NO_BATCH=1`` disables)."""
    return os.environ.get("REPRO_NO_BATCH") != "1"


def jitting_enabled() -> bool:
    """Process-wide jit toggle (``REPRO_NO_JIT=1`` disables)."""
    from ..cpu.jit import jit_enabled
    return jit_enabled()


def execute_group(points: list[PointSpec],
                  *, jit: bool | None = None,
                  obs: Obs | None = None, parent=None) -> list[SimResult]:
    """Execute one same-trace group, batched when possible.

    Single-point groups and unbatchable lane sets take the plain
    :func:`execute_point` path; results are identical either way.
    """
    from ..cpu.batch import UnbatchableError

    if len(points) > 1 and batching_enabled():
        try:
            return execute_batch(points, jit=jit, obs=obs, parent=parent)
        except UnbatchableError:
            pass
    return [execute_point(point, jit=jit, obs=obs, parent=parent)
            for point in points]


def _group_worker(task) -> dict | list:
    """Process-pool entry: execute one same-trace group of points.

    ``task`` is either the historical plain list of point payloads
    (returns a plain list of result dicts) or a dict::

        {"points": [payload, ...], "span": (trace_id, span_id) | None}

    returning ``{"results": [...], "spans": [...]}``.  When a parent
    span handle is present the worker records its spans into a local
    memory sink -- no globals, so pool reuse and fork/spawn start
    methods are both safe -- and ships the finished records back for
    the parent tracer to stitch (:meth:`~repro.obs.Tracer.adopt`).
    """
    if not isinstance(task, dict):
        points = [PointSpec.from_payload(p) for p in task]
        return [result.to_dict() for result in execute_group(points)]
    points = [PointSpec.from_payload(p) for p in task["points"]]
    parent = task.get("span")
    obs = Obs.make(trace_id=parent[0]) if parent is not None else OBS_OFF
    results = execute_group(points, obs=obs, parent=parent)
    spans = obs.sink.drain() if parent is not None else []
    return {"results": [result.to_dict() for result in results],
            "spans": spans}


def _default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    # repo-root/.repro-cache when running from a source checkout
    # (src/repro/exp/engine.py -> parents[3] == repo root).  When the
    # package is installed, parents[3] is some lib/ directory instead;
    # fall back to the user cache rather than writing next to it.
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / "pyproject.toml").is_file():
        return candidate / ".repro-cache"
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-mom"


class Session:
    """Runs experiment points with persistent memoization.

    Args:
        cache_dir: directory for the on-disk result cache; defaults to
            ``$REPRO_CACHE_DIR`` or ``.repro-cache`` at the repo root.
        jobs: default parallelism for :meth:`run` (overridable per call).
            ``1`` executes in process -- no pool, bit-identical to the
            historical sequential drivers.
        salt: cache-key salt; defaults to the package source fingerprint,
            so editing any model file invalidates stale entries.
        use_cache: disable the persistent layer entirely (an in-memory
            memo still serves repeats within this session).  Also
            disabled by ``REPRO_NO_CACHE=1``.
        batch: dispatch same-trace cache misses through
            :class:`~repro.cpu.batch.BatchCore` (one decode pass for the
            whole group) instead of looping ``Core.run``.  Results are
            bit-identical; only wall-clock differs.  Also disabled by
            ``REPRO_NO_BATCH=1``.
        jit: allow the compiled timing-core fast path (numba kernels)
            on points it can express; inexpressible points fall back to
            the interpreted loop automatically.  Results are
            bit-identical; only wall-clock differs.  ``False`` forces
            the interpreted path; also disabled by ``REPRO_NO_JIT=1``
            (the env var is what pool workers inherit -- in-process
            execution additionally honors this flag).
        obs: telemetry bundle (:class:`~repro.obs.Obs`).  Defaults to
            :func:`~repro.obs.obs_from_env` -- disabled no-op singletons
            unless ``REPRO_OBS=1`` / ``REPRO_OBS_TRACE=path`` is set.
            When enabled, :meth:`run` emits a span tree
            (``session.run`` → ``cache.lookup`` → ``trace.build`` →
            ``sim.point``/``sim.group`` → ``cache.put``) stitched across
            pool workers, and mirrors hit/miss/simulated counts into
            ``obs.metrics``.
    """

    def __init__(self, cache_dir: str | Path | None = None, *,
                 jobs: int = 1, salt: str | None = None,
                 use_cache: bool = True, batch: bool = True,
                 jit: bool = True, obs: Obs | None = None) -> None:
        if os.environ.get("REPRO_NO_CACHE") == "1":
            use_cache = False
        self.obs = obs if obs is not None else obs_from_env()
        self.cache = (ResultCache(cache_dir or _default_cache_dir(),
                                  metrics=self.obs.metrics)
                      if use_cache else None)
        self.salt = source_fingerprint() if salt is None else salt
        self.jobs = jobs
        self.batch = batch
        self.jit = jit
        self.hits = 0
        self.misses = 0
        self._memo: dict[str, SimResult] = {}

    def _jit_arg(self) -> bool | None:
        """``jit`` forward for executors: defer when on, force off when off."""
        return None if self.jit else False

    # --- cache plumbing ---------------------------------------------------

    def key_for(self, point: PointSpec) -> str:
        return point.content_hash(self.salt)

    def lookup(self, point: PointSpec) -> SimResult | None:
        """Cached result for a point, or ``None`` (does not execute)."""
        key = self.key_for(point)
        if key in self._memo:
            return self._memo[key]
        if self.cache is None:
            return None
        entry = self.cache.get(key)
        if entry is None:
            return None
        try:
            result = SimResult.from_dict(entry["result"])
        except (KeyError, TypeError, ValueError):
            # Valid JSON but not a result entry (hand-edited or foreign
            # file): a miss, never an exception -- lookup is called from
            # the serving layer's submit scan, where a raise would leak
            # backpressure slots but a miss just re-simulates.
            return None
        # Replayed, not measured: the wall-clock numbers in meta describe
        # the run that *populated* the cache, so flag the replay to keep
        # them from being read as a fresh measurement.
        result.meta["cache_hit"] = True
        self._memo[key] = result
        return result

    def store(self, point: PointSpec, result: SimResult) -> None:
        """Memoize a result and persist it to the on-disk cache.

        Public because the serving layer stores worker-produced results
        through the session, so the service and in-process sessions
        share one source-fingerprinted store.
        """
        self.memoize(point, result)
        self.persist(point, result)

    def memoize(self, point: PointSpec, result: SimResult) -> None:
        """In-memory half of :meth:`store` (must run on the owner's
        thread; later :meth:`lookup`\\ s see the result immediately)."""
        self._memo[self.key_for(point)] = result

    def persist(self, point: PointSpec, result: SimResult) -> None:
        """On-disk half of :meth:`store`.  Safe to run off-thread after
        :meth:`memoize` -- the cache write is atomic, and readers fall
        back to re-simulation if they race ahead of it."""
        if self.cache is None:
            return
        data = result.to_dict()
        # Never persist the replay marker itself: whoever loads this
        # entry gets a fresh ``cache_hit`` flag from :meth:`lookup`.
        data.get("meta", {}).pop("cache_hit", None)
        self.cache.put(self.key_for(point), {
            "spec": point.payload(),
            "salt": self.salt,
            "result": data,
        })

    # --- execution --------------------------------------------------------

    def run_point(self, point: PointSpec) -> SimResult:
        """One point through the cache; executes in process on a miss."""
        cached = self.lookup(point)
        if cached is not None:
            self.hits += 1
            self.obs.metrics.counter("session_cache_hits").inc()
            return cached
        self.misses += 1
        self.obs.metrics.counter("session_cache_misses").inc()
        result = execute_point(point, jit=self._jit_arg(), obs=self.obs)
        self.store(point, result)
        return result

    def resolve(self, sweep) -> tuple[PointSpec, ...]:
        """A sweep (or iterable of points) as a concrete point tuple."""
        if isinstance(sweep, SweepSpec):
            return sweep.points()
        if isinstance(sweep, PointSpec):
            return (sweep,)
        return tuple(sweep)

    def run(self, sweep, jobs: int | None = None, *,
            batch: bool | None = None,
            progress=None) -> dict[PointSpec, SimResult]:
        """Run a sweep; returns ``{point: result}`` in sweep order.

        Cache misses are grouped by :func:`build_key` -- points of one
        group simulate the same trace -- and each group runs as a single
        :class:`~repro.cpu.batch.BatchCore` pass (``batch=False`` or
        unbatchable groups loop ``Core.run`` instead; results are
        bit-identical).  Groups execute in process when the effective
        ``jobs`` is 1, else on a process pool ``jobs`` wide.  Results
        are stored back to the persistent cache so a warm rerun performs
        no simulation at all.

        ``progress``, when given, is called as ``progress(n)`` each time
        ``n`` more distinct points have resolved (cache hits once up
        front, then per completed group) -- the hook behind the CLI's
        ``--progress`` line.
        """
        points = self.resolve(sweep)
        jobs = self.jobs if jobs is None else jobs
        batch = self.batch if batch is None else batch
        tracer = self.obs.tracer
        metrics = self.obs.metrics
        root = tracer.span("session.run", points=len(points), jobs=jobs)
        try:
            results: dict[PointSpec, SimResult] = {}
            missing: list[PointSpec] = []
            with tracer.span("cache.lookup", parent=root) as scan:
                for point in points:
                    if point in results or point in missing:
                        continue
                    cached = self.lookup(point)
                    if cached is not None:
                        self.hits += 1
                        results[point] = cached
                    else:
                        missing.append(point)
                scan.set(hits=len(results), misses=len(missing))
            metrics.counter("session_cache_hits").inc(len(results))
            metrics.counter("session_cache_misses").inc(len(missing))
            if progress is not None and results:
                progress(len(results))

            # Same-trace groups, in first-appearance order.  With batching
            # off every point is its own group, which preserves the
            # historical per-point dispatch exactly.
            groups: list[list[PointSpec]] = []
            if batch:
                by_key: dict[tuple, list[PointSpec]] = {}
                for point in missing:
                    key = build_key(point)
                    if key in by_key:
                        by_key[key].append(point)
                    else:
                        by_key[key] = group = [point]
                        groups.append(group)
            else:
                groups = [[point] for point in missing]

            if missing and jobs > 1:
                self.misses += len(missing)
                # One task per same-trace group: the group's build (and its
                # decode, when batched) happens once in one worker instead of
                # every worker rebuilding every target.
                # (With batching off, groups are singletons and the group
                # worker degenerates to the historical per-point worker.)
                # Workers get the root span's handle and ship their span
                # records back with the results; the sink is local to each
                # worker call, so this survives pool reuse and either
                # start method.
                handle = root.handle    # None when telemetry is disabled
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    tasks = [{"points": [p.payload() for p in group],
                              "span": handle}
                             for group in groups]
                    for group, reply in zip(groups,
                                            pool.map(_group_worker, tasks)):
                        tracer.adopt(reply.get("spans"))
                        with tracer.span("cache.put", parent=root,
                                         points=len(group)):
                            for point, data in zip(group, reply["results"]):
                                result = SimResult.from_dict(data)
                                self.store(point, result)
                                results[point] = result
                        if progress is not None:
                            progress(len(group))
            else:
                for group in groups:
                    self._run_group(group, results, parent=root)
                    if progress is not None:
                        progress(len(group))

            return {point: results[point] for point in points}
        finally:
            root.end()

    def _run_group(self, group: list[PointSpec],
                   results: dict[PointSpec, SimResult],
                   parent=None) -> None:
        """Execute one same-trace group in process, caching per point."""
        self.misses += len(group)
        group_results = execute_group(group, jit=self._jit_arg(),
                                      obs=self.obs, parent=parent)
        with self.obs.tracer.span("cache.put", parent=parent,
                                  points=len(group)):
            for point, result in zip(group, group_results):
                self.store(point, result)
                results[point] = result


_DEFAULT_SESSION: Session | None = None


def default_session() -> Session:
    """The process-wide session shared by drivers, benchmarks and examples."""
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
