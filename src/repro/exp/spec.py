"""Declarative experiment specs: points, sweeps and named presets.

A :class:`PointSpec` is one simulation point -- (kernel or app, ISA, issue
width, memory model, latency, workload scale) -- as frozen, hashable data.
A :class:`SweepSpec` describes a family of points (cartesian product or an
explicit list of (isa, memory) pairs) without running anything.  The
:data:`PRESETS` registry names the sweeps behind every figure and table of
the paper, so drivers and the ``repro`` CLI share one source of truth.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, asdict

#: Valid point kinds.
KINDS = ("kernel", "app")

#: Memory-model names resolvable by the engine.
MEMORY_MODELS = ("perfect", "conventional", "multiaddress", "vectorcache",
                 "collapsing")

#: Issue widths of the Table 1 machines.
MACHINE_WAYS = (1, 2, 4, 8)


@dataclass(frozen=True, order=True)
class PointSpec:
    """One simulation point of the evaluation grid.

    Attributes:
        kind: ``"kernel"`` (Section 4.1 grid) or ``"app"`` (Section 4.2).
        target: kernel or application name in the respective registry.
        isa: ``alpha`` / ``mmx`` / ``mdmx`` / ``mom``.
        way: issue width (Table 1 machine).
        latency: fixed access latency for the ``perfect`` memory model;
            ignored by the cache hierarchies, which carry their own timing.
        memory: memory-model name from :data:`MEMORY_MODELS`.
        scale: workload scale factor.
        accounting: run with per-cycle CPI-stack attribution (slower;
            digests of the timing fields are unchanged either way).
    """

    kind: str
    target: str
    isa: str
    way: int
    latency: int = 1
    memory: str = "perfect"
    scale: int = 1
    accounting: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind {self.kind!r} not in {KINDS}")
        if self.memory not in MEMORY_MODELS:
            raise ValueError(
                f"memory {self.memory!r} not in {MEMORY_MODELS}")
        if self.way not in MACHINE_WAYS:
            raise ValueError(f"way {self.way} not in {MACHINE_WAYS}")
        if self.latency < 1:
            raise ValueError("latency must be >= 1")
        if self.scale < 1:
            raise ValueError("scale must be >= 1")

    def payload(self) -> dict:
        """Plain-data image (stable field order) for hashing and storage.

        ``accounting`` is emitted only when set, so pre-v1.7 payloads,
        cache keys and serve requests are byte-identical for plain
        points (and old servers accept them).
        """
        data = asdict(self)
        if not data["accounting"]:
            del data["accounting"]
        return data

    def content_hash(self, salt: str = "") -> str:
        """Deterministic digest of this point (plus an optional salt).

        Stable across processes and Python hash randomization: derived
        from canonical JSON, never from :func:`hash`.
        """
        canon = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(f"{salt}|{canon}".encode()).hexdigest()[:32]

    @classmethod
    def from_payload(cls, data: dict) -> "PointSpec":
        return cls(**data)


@dataclass(frozen=True)
class SweepSpec:
    """A named family of :class:`PointSpec`\\ s.

    By default points are the cartesian product ``targets x isas x ways x
    latencies x memories``; passing ``pairs`` instead of ``isas``/
    ``memories`` enumerates explicit (isa, memory) configurations, as
    Figure 7 needs (MOM runs only on the decoupled caches).
    """

    name: str
    kind: str
    targets: tuple[str, ...]
    isas: tuple[str, ...] = ()
    ways: tuple[int, ...] = (4,)
    latencies: tuple[int, ...] = (1,)
    memories: tuple[str, ...] = ("perfect",)
    pairs: tuple[tuple[str, str], ...] = ()
    scale: int = 1
    accounting: bool = False

    def points(self) -> tuple[PointSpec, ...]:
        """Resolve the sweep into concrete points (deterministic order)."""
        configs = self.pairs or tuple(
            (isa, memory) for isa in self.isas for memory in self.memories)
        return tuple(
            PointSpec(kind=self.kind, target=target, isa=isa, way=way,
                      latency=latency, memory=memory, scale=self.scale,
                      accounting=self.accounting)
            for target in self.targets
            for way in self.ways
            for isa, memory in configs
            for latency in self.latencies
        )

    def replace(self, **overrides) -> "SweepSpec":
        """A copy with some axes overridden (CLI ``repro sweep`` flags)."""
        data = {f: getattr(self, f) for f in self.__dataclass_fields__}
        data.update(overrides)
        return SweepSpec(**data)


# --- named presets (the paper's figures and tables) ---------------------------

#: Figure 7's five configurations: (label, isa, memory model).
FIGURE7_CONFIGS = (
    ("alpha-conv", "alpha", "conventional"),
    ("mmx-conv", "mmx", "conventional"),
    ("mom-multiaddress", "mom", "multiaddress"),
    ("mom-vectorcache", "mom", "vectorcache"),
    ("mom-collapsing", "mom", "collapsing"),
)

#: Section 4.1's "streaming-like" fixed memory latency.
HIGH_LATENCY = 50

#: The frame-scale study runs one full 720x480 MPEG-2 frame end-to-end on
#: one configuration per Figure 7 ISA: the conventional hierarchy for the
#: scalar and SIMD machines, the vector cache for MOM.
FRAME_SCALE_CONFIGS = (
    ("alpha-conv", "alpha", "conventional"),
    ("mmx-conv", "mmx", "conventional"),
    ("mom-vectorcache", "mom", "vectorcache"),
)


def _presets() -> dict[str, SweepSpec]:
    # Local import keeps module load order obvious; the kernel/app
    # registries populate as a side effect of importing their packages
    # (they never import repro.exp, so there is no cycle).
    from ..apps import APP_ORDER
    from ..kernels import KERNEL_ORDER, VC_KERNEL_ORDER

    kernel_isas = ("alpha", "mmx", "mdmx", "mom")
    return {
        # Compiler-built kernels (repro.vc): the full ISA x width grid,
        # same shape as figure5 but over the new workloads.
        "vc-kernels": SweepSpec(
            name="vc-kernels", kind="kernel", targets=VC_KERNEL_ORDER,
            isas=kernel_isas, ways=MACHINE_WAYS),
        # Figure 5: per-kernel speedups, idealized 1-cycle memory.
        "figure5": SweepSpec(
            name="figure5", kind="kernel", targets=KERNEL_ORDER,
            isas=kernel_isas, ways=MACHINE_WAYS),
        # Figure 7: full applications on the realistic hierarchies.
        "figure7": SweepSpec(
            name="figure7", kind="app", targets=APP_ORDER, ways=(4, 8),
            pairs=tuple((isa, mem) for _, isa, mem in FIGURE7_CONFIGS)),
        # Frame-scale study: one full 720x480 MPEG-2 frame per ISA
        # configuration.  Tens of millions of dynamic instructions per
        # point -- the columnar streaming trace engine is what makes this
        # preset buildable and simulatable in bounded memory.
        "frame-scale": SweepSpec(
            name="frame-scale", kind="app", targets=("mpeg2_frame",),
            ways=(4,),
            pairs=tuple((isa, mem) for _, isa, mem in FRAME_SCALE_CONFIGS)),
        # Section 4.1 latency-tolerance study: 1- vs 50-cycle memory.
        "latency": SweepSpec(
            name="latency", kind="kernel", targets=KERNEL_ORDER,
            isas=kernel_isas, ways=(4,), latencies=(1, HIGH_LATENCY)),
        # Fetch-pressure study: narrow vs wide machines.
        "fetch-pressure": SweepSpec(
            name="fetch-pressure", kind="kernel", targets=KERNEL_ORDER,
            isas=kernel_isas, ways=(1, 8)),
        # Tables 1-3 are configuration tables, not simulations; this small
        # sanity sweep exercises one point per Table 1 machine so `repro
        # sweep table1` can smoke-test every configured width.
        "table1": SweepSpec(
            name="table1", kind="kernel", targets=("compensation",),
            isas=("mmx", "mom"), ways=MACHINE_WAYS),
    }


#: Named sweeps behind the paper's figures and tables.
PRESETS: dict[str, SweepSpec] = _presets()


def preset(name: str) -> SweepSpec:
    """Look up a named sweep; raises with the available names on a miss."""
    if name not in PRESETS:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[name]
