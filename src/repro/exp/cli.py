"""The ``repro`` console command: reproduce any figure/table of the paper.

Examples::

    repro figure5                      # all eight kernel panels
    repro figure5 --kernel idct --jobs 4
    repro figure7 --app jpeg_encode
    repro tables
    repro latency --way 4
    repro fetch-pressure
    repro explain figure7 --ways 4       # ASCII CPI-stack bars per point
    repro explain figure7 --ways 4 --diff mom-vectorcache mmx-conv
    repro figure5 --explain              # figure + cycle attribution
    repro sweep figure5 --jobs 8       # raw grid, parallel
    repro sweep figure5 --progress     # live points/s + ETA line (TTY)
    repro sweep vc-kernels             # the compiler-built kernels
    repro sweep frame-scale            # one full 720x480 MPEG-2 frame
    repro sweep --kernels idct,motion2 --isas mom --ways 1,2,4,8
    repro sweep figure5 --no-batch     # per-point Core.run dispatch
    repro kernels                      # registry + per-ISA DLP coverage
    repro lint                         # static verification, whole grid
    repro lint --kernel ssd --isa mdmx --json --artifact findings.json
    repro bench                        # regenerate BENCH_batch.json + delta
    repro bench all --smoke            # fast sanity pass over every suite
    repro cache                        # show cache location / size
    repro cache --clear
    repro cache --prune 7d             # evict entries older than a week
    repro serve --workers 4            # boot the simulation service
    repro ping                         # handshake with a running server
    repro submit figure5               # run a sweep through the service
    repro stats                        # live server telemetry snapshot
    repro stats --prom                 # raw Prometheus text exposition
    repro stats --trace spans.jsonl    # aggregate a local span trace
    repro shutdown                     # drain and stop the server

Every simulation funnels through one :class:`~repro.exp.engine.Session`,
so a warm-cache rerun of any command skips simulation entirely; the
service shares the same persistent cache, so ``repro submit`` and
``repro sweep`` warm each other.
"""

from __future__ import annotations

import argparse
import sys

from .. import __version__
from .engine import Session
from .spec import SweepSpec, preset


def _csv(text: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _csv_int(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in _csv(text))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel simulation processes (default 1)")
    parser.add_argument("--scale", type=int, default=1,
                        help="workload scale factor (default 1)")
    parser.add_argument("--cache-dir", default=None,
                        help="override the result-cache directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent result cache")
    parser.add_argument("--batch", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="simulate same-trace config groups in one "
                             "BatchCore pass (default: on; results are "
                             "bit-identical either way)")
    parser.add_argument("--jit", action=argparse.BooleanOptionalAction,
                        default=True,
                        help="use the compiled timing-core fast path when "
                             "numba is available (default: on; results are "
                             "bit-identical either way)")
    parser.add_argument("--progress", action="store_true",
                        help="live done/total, points/s and ETA line on "
                             "stderr (honoured only when stderr is a TTY)")


def _session(args: argparse.Namespace) -> Session:
    import os

    jit = getattr(args, "jit", True)
    if not jit:
        # Pool workers pick the toggle up from the environment; in-process
        # execution additionally honors Session(jit=False).
        os.environ["REPRO_NO_JIT"] = "1"
    return Session(args.cache_dir, jobs=args.jobs,
                   use_cache=not args.no_cache,
                   batch=getattr(args, "batch", True), jit=jit)


def _progress_line(args, total: int, session: Session | None = None):
    """A live :class:`ProgressLine`, or ``None`` (no --progress / no TTY).

    When the session's telemetry is enabled the line keeps its counters in
    the session's own metrics registry, so ``progress_done`` shows up in
    any trace/metrics snapshot taken alongside the sweep.
    """
    from ..obs.progress import ProgressLine, progress_wanted

    if not progress_wanted(getattr(args, "progress", False)):
        return None
    registry = (session.obs.metrics
                if session is not None and session.obs.enabled else None)
    return ProgressLine(total, registry=registry)


def _cmd_figure5(args) -> int:
    from ..eval import figure5
    from ..kernels import KERNEL_ORDER

    kernels = tuple(args.kernel) if args.kernel else KERNEL_ORDER
    session = _session(args)
    sweep = preset("figure5").replace(targets=kernels, scale=args.scale)
    line = _progress_line(args, len(sweep.points()), session)
    try:
        results = figure5.run(scale=args.scale, kernels=kernels,
                              session=session,
                              progress=line.tick if line else None)
    finally:
        if line is not None:
            line.close()
    print("\n=== MOM gain over best 1D SIMD ISA at 4-way ===")
    for kernel, ratio in figure5.mom_vs_best_simd(results).items():
        print(f"  {kernel:16s} {ratio:5.2f}x")
    if getattr(args, "explain", False):
        _explain_sweep(session, sweep)
    return 0


def _cmd_figure7(args) -> int:
    from ..apps import APP_ORDER
    from ..eval import figure7

    apps = tuple(args.app) if args.app else APP_ORDER
    session = _session(args)
    sweep = preset("figure7").replace(targets=apps, scale=args.scale)
    line = _progress_line(args, len(sweep.points()), session)
    try:
        results = figure7.run(scale=args.scale, apps=apps, session=session,
                              progress=line.tick if line else None)
    finally:
        if line is not None:
            line.close()
    print("\n=== MOM (best cache) gain over MMX at 4-way "
          "(paper: ~20% average) ===")
    for app, ratio in figure7.summarize(results).items():
        print(f"  {app:16s} {ratio:5.2f}x")
    if getattr(args, "explain", False):
        _explain_sweep(session, sweep)
    return 0


def _cmd_latency(args) -> int:
    from ..eval import latency

    print(f"Slow-down going from 1-cycle to {latency.HIGH_LATENCY}-cycle "
          f"memory ({args.way}-way machine):\n")
    results = latency.run(scale=args.scale, way=args.way,
                          session=_session(args))
    print("\nRange per ISA (paper: Alpha 3-9x, MMX/MDMX 4-8x, MOM 2-4x):")
    for isa, (lo, hi) in latency.summarize(results).items():
        print(f"  {isa:6s} {lo:.1f}x .. {hi:.1f}x")
    return 0


def _cmd_fetch_pressure(args) -> int:
    from ..eval import fetch_pressure

    print("ops/instruction and 1-way retention of 8-way performance:\n")
    results = fetch_pressure.run(scale=args.scale, session=_session(args))
    print("\nFetch economy: MMX instructions per MOM instruction "
          "(paper: 'an order of magnitude'):")
    for kernel, ratio in fetch_pressure.mom_fetch_advantage(results).items():
        print(f"  {kernel:16s} {ratio:5.1f}x")
    return 0


def _cmd_tables(args) -> int:
    from ..eval import tables

    print(tables.render_all())
    return 0


def _sweep_from_args(args) -> SweepSpec:
    if args.preset:
        sweep = preset(args.preset)
    elif args.apps:
        sweep = SweepSpec(name="custom", kind="app", targets=(),
                          isas=("alpha", "mmx", "mom"))
    else:
        sweep = SweepSpec(name="custom", kind="kernel", targets=(),
                          isas=("alpha", "mmx", "mdmx", "mom"),
                          ways=(1, 2, 4, 8))
    overrides: dict = {"scale": args.scale}
    if args.kernels:
        overrides.update(kind="kernel", targets=args.kernels, pairs=())
    if args.apps:
        overrides.update(kind="app", targets=args.apps, pairs=())
    if args.isas:
        overrides.update(isas=args.isas, pairs=())
    if args.ways:
        overrides["ways"] = args.ways
    if args.latencies:
        overrides["latencies"] = args.latencies
    if args.memory:
        overrides.update(memories=args.memory, pairs=())
    sweep = sweep.replace(**overrides)
    from ..apps import APP_ORDER, APPS
    from ..kernels import KERNEL_ORDER, KERNELS
    if not sweep.targets:
        sweep = sweep.replace(targets=(KERNEL_ORDER if sweep.kind == "kernel"
                                       else APP_ORDER))
    if not sweep.pairs and not sweep.isas:
        # An override cleared a preset's explicit (isa, memory) pairs
        # (e.g. `repro sweep figure7 --memory conventional`): fall back
        # to the full ISA axis so the product is never silently empty.
        sweep = sweep.replace(isas=(("alpha", "mmx", "mdmx", "mom")
                                    if sweep.kind == "kernel"
                                    else ("alpha", "mmx", "mom")))
    registry = KERNELS if sweep.kind == "kernel" else APPS
    unknown = [t for t in sweep.targets if t not in registry]
    if unknown:
        raise ValueError(f"unknown {sweep.kind}(s) {unknown}; "
                         f"available: {sorted(registry)}")
    if not sweep.points():
        raise ValueError("sweep resolves to 0 points; check the "
                         "--kernels/--apps/--isas/--ways/--memory values")
    return sweep


def _print_grid(points, results) -> None:
    # Per-target baseline for the speedup column: alpha at the narrowest
    # way/latency present in the sweep, falling back to whatever is there.
    baselines: dict[str, tuple[tuple, int]] = {}
    for point in points:
        rank = (point.isa != "alpha", point.way, point.latency)
        if (point.target not in baselines
                or rank < baselines[point.target][0]):
            baselines[point.target] = (rank, results[point].cycles)

    header = (f"{'target':16s} {'isa':6s} {'way':>3s} {'lat':>4s} "
              f"{'memory':12s} {'cycles':>10s} {'speedup':>8s}")
    print(header)
    print("-" * len(header))
    for point in points:
        res = results[point]
        speedup = baselines[point.target][1] / res.cycles
        print(f"{point.target:16s} {point.isa:6s} {point.way:>3d} "
              f"{point.latency:>4d} {point.memory:12s} {res.cycles:>10d} "
              f"{speedup:7.2f}x")


def _cmd_sweep(args) -> int:
    session = _session(args)
    sweep = _sweep_from_args(args)
    if getattr(args, "explain", False):
        sweep = sweep.replace(accounting=True)
    points = sweep.points()
    print(f"sweep {sweep.name}: {len(points)} points, jobs={args.jobs}")
    line = _progress_line(args, len(points), session)
    try:
        results = session.run(points, jobs=args.jobs,
                              progress=line.tick if line else None)
    finally:
        if line is not None:
            line.close()
    _print_grid(points, results)
    if getattr(args, "explain", False):
        _print_stacks(points, results)
    print(f"\ncache: {session.hits} hits, {session.misses} misses")
    return 0


# --- CPI-stack rendering (repro explain / --explain) --------------------------

#: Stack components in commit-blame order, with their bar glyphs.
_STACK_GLYPHS = (
    ("base", "B"), ("fetch", "F"), ("rename", "R"), ("fu_structural", "S"),
    ("mem_conflict", "C"), ("mem_latency", "M"), ("drain", "D"),
)

#: Short memory-model aliases accepted by ``repro explain --diff``
#: (matching the figure7 configuration labels).
_MEMORY_ALIASES = {"conv": "conventional", "ma": "multiaddress",
                   "vc": "vectorcache", "col": "collapsing"}


def _stack_bar(stack: dict, cycles: int, length: int) -> str:
    """One segmented ASCII bar, component lengths by largest remainder."""
    if cycles <= 0 or length <= 0:
        return ""
    quotas = [(glyph, stack.get(name, 0) * length / cycles)
              for name, glyph in _STACK_GLYPHS]
    cells = [int(q) for _, q in quotas]
    short = length - sum(cells)
    order = sorted(range(len(quotas)),
                   key=lambda i: quotas[i][1] - cells[i], reverse=True)
    for i in order[:short]:
        cells[i] += 1
    return "".join(glyph * n for (glyph, _), n in zip(quotas, cells))


def _print_stacks(points, results, width: int = 40) -> None:
    """ASCII CPI-stack bars, one row per simulated point."""
    rows = []
    for point in points:
        res = results[point]
        if res.stack is None or not res.instructions:
            continue
        rows.append((point, res, res.cycles / res.instructions))
    if not rows:
        print("\nno CPI stacks: results carry no accounting data "
              "(rerun with --explain / accounting on)")
        return
    peak = max(cpi for _, _, cpi in rows)
    legend = " ".join(f"{glyph}={name}" for name, glyph in _STACK_GLYPHS)
    print(f"\nCPI stacks ({legend}):")
    header = (f"{'target':16s} {'isa':6s} {'way':>3s} {'memory':12s} "
              f"{'CPI':>6s}  stack")
    print(header)
    print("-" * (len(header) + width - 5))
    for point, res, cpi in rows:
        bar = _stack_bar(res.stack.to_dict(), res.cycles,
                         max(1, round(cpi / peak * width)))
        print(f"{point.target:16s} {point.isa:6s} {point.way:>3d} "
              f"{point.memory:12s} {cpi:>6.2f}  |{bar}|")


def _explain_sweep(session: Session, sweep: SweepSpec) -> None:
    """``--explain`` rider for the figure commands: an accounting pass
    over the same sweep (builds are memoized, so only the timing loop
    reruns) followed by the stack rendering."""
    points = sweep.replace(accounting=True).points()
    results = session.run(points)
    _print_stacks(points, results)


def _parse_explain_config(label: str) -> tuple[str, str]:
    """``isa-memory`` (figure7-style label) -> (isa, memory model)."""
    isa, sep, memory = label.partition("-")
    if not sep or not isa or not memory:
        raise ValueError(
            f"bad config {label!r}; use isa-memory, e.g. mom-vectorcache "
            f"or mmx-conv")
    return isa, _MEMORY_ALIASES.get(memory, memory)


def _print_stack_diff(points, results, pair: tuple[str, str]) -> None:
    """Per-component CPI delta between two (isa, memory) configurations.

    Components are averaged over every point of each configuration
    (cycle-weighted: total component cycles / total instructions), so a
    multi-target sweep diffs the aggregate stacks.
    """
    from ..cpu.core import STACK_COMPONENTS

    def aggregate(isa: str, memory: str) -> dict[str, float] | None:
        cycles = {name: 0 for name in STACK_COMPONENTS}
        instructions = 0
        for point in points:
            res = results[point]
            if (point.isa != isa or point.memory != memory
                    or res.stack is None):
                continue
            instructions += res.instructions
            for name, value in res.stack.to_dict().items():
                cycles[name] += value
        if not instructions:
            return None
        return {name: value / instructions for name, value in cycles.items()}

    configs = [_parse_explain_config(label) for label in pair]
    sides = [aggregate(isa, memory) for isa, memory in configs]
    for label, side in zip(pair, sides):
        if side is None:
            print(f"\ndiff: no accounted points match {label!r} "
                  f"in this sweep")
            return
    a, b = sides
    deltas = []
    # The two memory components read best as one "memory" delta plus
    # detail; everything else diffs per component.
    merged = (("fetch", ("fetch",)), ("rename", ("rename",)),
              ("fu", ("fu_structural",)),
              ("memory", ("mem_conflict", "mem_latency")),
              ("base", ("base",)), ("drain", ("drain",)))
    for label, names in merged:
        delta = sum(a[n] for n in names) - sum(b[n] for n in names)
        if abs(delta) >= 0.005:
            deltas.append(f"{delta:+.2f} CPI {label}")
    text = ", ".join(deltas) if deltas else "no component differs by >=0.01 CPI"
    print(f"\n{pair[0]} vs {pair[1]}: {text}")


def _cmd_explain(args) -> int:
    session = _session(args)
    sweep = _sweep_from_args(args).replace(accounting=True)
    points = sweep.points()
    print(f"explain {sweep.name}: {len(points)} points, jobs={args.jobs}")
    line = _progress_line(args, len(points), session)
    try:
        results = session.run(points, jobs=args.jobs,
                              progress=line.tick if line else None)
    finally:
        if line is not None:
            line.close()
    _print_stacks(points, results)
    if args.diff:
        _print_stack_diff(points, results, tuple(args.diff))
    print(f"\ncache: {session.hits} hits, {session.misses} misses")
    return 0


#: ``repro bench`` suites -> the benchmark module(s) that regenerate
#: each ``BENCH_*.json``.
_BENCH_SUITES = {
    "batch": ("test_batch_speed.py",),
    "core": ("test_core_speed.py",),
    "compile": ("test_compile_bench.py",),
    "serve": ("test_serve_load.py",),
    "obs": ("test_obs_overhead.py",),
    "trace": ("test_trace_stream.py",),
    "explain": ("test_explain_overhead.py",),
}
_BENCH_SUITES["all"] = tuple(f for files in
                             (_BENCH_SUITES[k] for k in
                              ("batch", "core", "compile", "serve", "obs",
                               "trace", "explain"))
                             for f in files)


def _flatten_json(data, prefix: str = "") -> dict[str, object]:
    out: dict[str, object] = {}
    if isinstance(data, dict):
        for key, value in data.items():
            out.update(_flatten_json(value, f"{prefix}{key}."))
    elif isinstance(data, list):
        for i, value in enumerate(data):
            out.update(_flatten_json(value, f"{prefix}{i}."))
    else:
        out[prefix[:-1]] = data
    return out


def _bench_delta_lines(old: dict, new: dict) -> list[str]:
    """Old-vs-new lines over the *union* of flattened keys.

    BENCH schemas drift between PRs (new jit fields, retired counters), so
    a key may exist on only one side; those print with an ``n/a`` marker
    instead of raising ``KeyError``.  Unchanged keys are omitted.
    """
    lines = []
    for key in sorted(old.keys() | new.keys()):
        if key in old and key in new and old[key] == new[key]:
            continue
        was = old.get(key, "n/a")
        now = new.get(key, "n/a")
        delta = ""
        if (isinstance(was, (int, float)) and isinstance(now, (int, float))
                and not isinstance(was, bool) and not isinstance(now, bool)
                and was):
            delta = f"  ({(now - was) / was:+.1%})"
        lines.append(f"  {key}: {was} -> {now}{delta}")
    return lines


def _cmd_bench(args) -> int:
    """Regenerate BENCH_*.json locally and print the old-vs-new delta."""
    import json
    import os
    import subprocess
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[3] / "benchmarks"
    if not bench_dir.is_dir():
        print("repro bench: no benchmarks/ directory next to this checkout "
              f"(looked at {bench_dir}); run from a source tree",
              file=sys.stderr)
        return 1
    files = [bench_dir / name for name in _BENCH_SUITES[args.suite]]
    before = {p.name: json.loads(p.read_text())
              for p in bench_dir.glob("BENCH_*.json")}
    env = dict(os.environ)
    if args.smoke:
        env["REPRO_BENCH_SMOKE"] = "1"
    if not getattr(args, "jit", True):
        env["REPRO_NO_JIT"] = "1"
    command = [sys.executable, "-m", "pytest", "-q",
               *(str(f) for f in files)]
    print("repro bench:", " ".join(command[2:]))
    status = subprocess.run(command, cwd=bench_dir.parent, env=env)
    if status.returncode != 0:
        print(f"repro bench: pytest exited {status.returncode}",
              file=sys.stderr)
        return status.returncode
    changed = False
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        new = _flatten_json(json.loads(path.read_text()))
        old = _flatten_json(before.get(path.name, {}))
        lines = _bench_delta_lines(old, new)
        if lines:
            changed = True
            print(f"\n{path.name}:")
            print("\n".join(lines))
    if not changed:
        print("\nno BENCH_*.json changes")
    return 0


#: Age-suffix multipliers accepted by ``repro cache --prune``.
_AGE_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400}


def _parse_age(text: str) -> float:
    """``"300"``, ``"90s"``, ``"30m"``, ``"12h"`` or ``"7d"`` -> seconds."""
    original = text
    text = text.strip().lower()
    unit = 1
    if text and text[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[text[-1]]
        text = text[:-1]
    import math

    try:
        value = float(text)
    except ValueError:
        raise ValueError(
            f"bad age {original!r}; use seconds or a s/m/h/d suffix "
            f"(e.g. 7d)")
    if not math.isfinite(value):
        raise ValueError(f"bad age {original!r}; must be finite")
    if value < 0:
        raise ValueError("age must be >= 0")
    return value * unit


def _cmd_kernels(args) -> int:
    from ..analysis import verified_status
    from ..apps import APP_ORDER, APPS
    from ..core.vectorize import coverage_for_isa
    from ..kernels import ISAS, KERNEL_ORDER, KERNELS
    from ..vc import COMPILED

    order = [k for k in KERNEL_ORDER if k in KERNELS]
    order += sorted(k for k in KERNELS if k not in order)
    print(f"{len(KERNELS)} kernels, {len(APPS)} applications; "
          f"builders: hand = hand-vectorized, vc = compiled from IR; "
          f"verified = all static analysis passes clean\n")
    header = (f"{'kernel':14s} {'isa':6s} {'builder':14s} "
              f"{'elems/instr':>11s} {'util':>6s} {'verified':>9s}")
    print(header)
    print("-" * len(header))
    for name in order:
        spec = KERNELS[name]
        record = COMPILED.get(name)
        nest = None
        if record is not None:
            binding = record.bind(spec.make_workload(1))
            primary = record.ir.buffers[0].name
            nest = record.ir.nest(binding.buffers[primary].row_stride)
        for i, isa in enumerate(ISAS):
            builder = spec.builders.get(isa)
            if getattr(builder, "compiled", False):
                origin = "vc"
            elif record is not None:
                origin = "hand (+mirror)"
            else:
                origin = "hand"
            if nest is not None:
                cov = coverage_for_isa(nest, isa)
                cover = f"{cov.elements_per_instruction:>11d}"
                util = f"{cov.utilization:>6.0%}"
            else:
                cover, util = f"{'-':>11s}", f"{'-':>6s}"
            verified = "yes" if verified_status(name, isa) else "NO"
            label = name if i == 0 else ""
            print(f"{label:14s} {isa:6s} {origin:14s} {cover} {util} "
                  f"{verified:>9s}")
    from ..apps import APP_ISAS

    print(f"\n{'application':14s} {'isas':20s} description")
    print("-" * 60)
    for name in APP_ORDER:
        app = APPS[name]
        print(f"{name:14s} {','.join(APP_ISAS):20s} {app.description}")
    return 0


def _cmd_lint(args) -> int:
    import json

    from ..analysis import lint_all
    from ..analysis.runner import kernel_names

    kernels = [args.kernel] if args.kernel else None
    isas = [args.isa] if args.isa else None
    # The jit-subset linter is stream-independent; it joins the run
    # unless the user narrowed the grid to one kernel.
    include_jit = args.kernel is None
    report, artifacts = lint_all(kernels, isas, include_jit=include_jit)

    payload = report.to_dict()
    payload["cells"] = artifacts
    if args.artifact:
        with open(args.artifact, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)

    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        names = kernels if kernels is not None else kernel_names()
        targets = isas if isas is not None else ["alpha", "mmx", "mdmx",
                                                 "mom"]
        proved = sum(len(cell.get("checkpoints",
                                  cell.get("mirror_checkpoints", [])))
                     for cell in artifacts)
        print(f"linted {len(names)} kernels x {len(targets)} ISAs"
              f"{' + jit subset' if include_jit else ''}: "
              f"{proved} range checkpoints, "
              f"{len(report.findings)} findings")
        for finding in report.findings:
            print(f"  {finding}")
        if args.artifact:
            print(f"findings artifact written to {args.artifact}")
    return 0 if report.ok else 1


def _cmd_cache(args) -> int:
    session = Session(args.cache_dir)
    cache = session.cache
    if cache is None:
        print("persistent cache disabled (REPRO_NO_CACHE=1)")
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached results from {cache.directory}")
        return 0
    if args.prune is not None:
        age = _parse_age(args.prune)
        removed = cache.prune(age)
        print(f"pruned {removed} cached results older than {args.prune} "
              f"from {cache.directory} ({len(cache)} remain)")
        return 0
    print(f"cache directory: {cache.directory}")
    print(f"entries:         {len(cache)}")
    print(f"size:            {cache.size_bytes() / 1024:.1f} KiB")
    print(f"code salt:       {session.salt}")
    return 0


# --- the serving layer --------------------------------------------------------

def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from ..serve import SimServer

    server = SimServer(args.host, args.port, workers=args.workers,
                       cache_dir=args.cache_dir,
                       use_cache=not args.no_cache,
                       max_inflight=args.max_inflight)

    async def main() -> None:
        loop = asyncio.get_running_loop()
        host, port = await server.start()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(server.stop()))
            except NotImplementedError:      # non-unix event loop
                pass
        print(f"repro serve: v{__version__} listening on {host}:{port} "
              f"({server.workers} workers, salt {server.session.salt})",
              flush=True)
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    print("repro serve: drained and stopped")
    return 0


def _cmd_ping(args) -> int:
    from ..emulib.fingerprint import source_fingerprint
    from ..serve import Client, ServeError
    from ..serve.protocol import PROTOCOL_VERSION

    try:
        with Client(args.host, args.port, timeout=args.timeout) as client:
            pong = client.ping()
    except (OSError, ServeError) as exc:
        print(f"repro ping: {args.host}:{args.port} unreachable or "
              f"incompatible: {exc}", file=sys.stderr)
        return 1
    if pong.get("protocol") != PROTOCOL_VERSION:
        print(f"repro ping: server speaks protocol {pong.get('protocol')}, "
              f"this client speaks {PROTOCOL_VERSION}; upgrade the older "
              f"side", file=sys.stderr)
        return 1
    print(f"server {args.host}:{args.port}: version {pong['version']}, "
          f"protocol {pong['protocol']}, {pong['workers']} workers")
    stats = pong["stats"]
    print(f"stats: {stats['points']} points served "
          f"({stats['cache_hits']} cache, {stats['dedup_hits']} dedup, "
          f"{stats['simulated']} simulated), "
          f"{stats['cache_entries']} cache entries, "
          f"{stats['workers_alive']} workers alive")
    local = source_fingerprint()
    if pong["salt"] != local:
        print(f"warning: server code salt {pong['salt']} != local {local}; "
              f"results will not share a cache namespace", file=sys.stderr)
    return 0


def _cmd_submit(args) -> int:
    from ..cpu import SimResult
    from ..serve import Client, ServeError
    from .spec import PointSpec

    sweep = _sweep_from_args(args)
    points = sweep.points()
    try:
        with Client(args.host, args.port, timeout=args.timeout) as client:
            print(f"submit {sweep.name}: {len(points)} points "
                  f"-> {args.host}:{args.port}")
            results: dict[PointSpec, SimResult] = {}
            failures: list[tuple[dict, str]] = []
            done: dict = {}
            for message in client.submit_iter(points):
                if message["op"] == "result" and message["ok"]:
                    results[PointSpec.from_payload(message["point"])] = \
                        SimResult.from_dict(message["result"])
                elif message["op"] == "result":
                    failures.append((message["point"], message["error"]))
                elif message["op"] == "done":
                    done = message
    except (OSError, ServeError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1
    completed = [p for p in points if p in results]
    if completed:
        _print_grid(completed, results)
    print(f"\nserver: {done.get('cache_hits', 0)} cache hits, "
          f"{done.get('dedup_hits', 0)} dedup hits, "
          f"{done.get('simulated', 0)} simulated")
    for payload, error in failures:
        print(f"repro submit: point {payload} failed: {error}",
              file=sys.stderr)
    return 1 if failures else 0


def _trace_stats(path: str) -> int:
    """Aggregate a local JSONL span trace (``REPRO_OBS_TRACE`` output)."""
    from ..obs.sinks import read_jsonl

    try:
        records = [r for r in read_jsonl(path)
                   if isinstance(r, dict) and "name" in r]
    except OSError as exc:
        print(f"repro stats: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(f"repro stats: no span records in {path}", file=sys.stderr)
        return 1
    by_name: dict[str, list] = {}
    for rec in records:
        entry = by_name.setdefault(rec["name"], [0, 0.0, 0.0])
        dur = float(rec.get("dur", 0.0))
        entry[0] += 1
        entry[1] += dur
        entry[2] = max(entry[2], dur)
    traces = {rec.get("trace") for rec in records}
    roots = sum(1 for rec in records if rec.get("parent") is None)
    print(f"{path}: {len(records)} spans, {len(traces)} trace(s), "
          f"{roots} root span(s)\n")
    header = (f"{'span':24s} {'count':>7s} {'total s':>9s} "
              f"{'mean ms':>9s} {'max ms':>9s}")
    print(header)
    print("-" * len(header))
    for name, (count, total, peak) in sorted(by_name.items(),
                                             key=lambda kv: -kv[1][1]):
        print(f"{name:24s} {count:>7d} {total:>9.3f} "
              f"{total / count * 1e3:>9.2f} {peak * 1e3:>9.2f}")
    return 0


def _cmd_stats(args) -> int:
    """Telemetry snapshot: a local span trace, or a live server's metrics."""
    if args.trace:
        return _trace_stats(args.trace)
    from ..serve import Client, ServeError

    try:
        with Client(args.host, args.port, timeout=args.timeout) as client:
            payload = client.metrics()
    except (OSError, ServeError) as exc:
        print(f"repro stats: {args.host}:{args.port}: {exc} "
              f"(is a 1.6+ server running? or use --trace FILE)",
              file=sys.stderr)
        return 1
    if args.prom:
        print(payload["text"], end="")
        return 0
    stats, metrics = payload["stats"], payload["metrics"]
    answered = stats.get("points", 0)
    print(f"server {args.host}:{args.port}")
    print(f"  points answered:  {answered} "
          f"({stats.get('cache_hits', 0)} cache, "
          f"{stats.get('dedup_hits', 0)} dedup, "
          f"{stats.get('simulated', 0)} simulated)")
    if answered:
        print(f"  hit rates:        "
              f"cache {stats.get('cache_hits', 0) / answered:.0%}, "
              f"dedup {stats.get('dedup_hits', 0) / answered:.0%}")
    print(f"  shard queues:     {stats.get('shard_queue_depths', [])} "
          f"(inflight {stats.get('inflight', 0)})")
    print(f"  workers:          {stats.get('workers_alive', 0)} alive, "
          f"{stats.get('worker_deaths', 0)} death(s), "
          f"{stats.get('worker_respawns', 0)} respawn(s), "
          f"{stats.get('worker_failed_keys', 0)} failed key(s)")
    latency = metrics.get("submit_answer_seconds")
    if isinstance(latency, dict) and latency.get("count"):
        print(f"  submit->answer:   "
              f"p50 {latency['p50'] * 1e3:.1f} ms, "
              f"p90 {latency['p90'] * 1e3:.1f} ms, "
              f"p99 {latency['p99'] * 1e3:.1f} ms "
              f"over {latency['count']} request(s)")
    print(f"  jobs/connections: {stats.get('jobs', 0)} job(s), "
          f"{stats.get('connections', 0)} connection(s), "
          f"{stats.get('errors', 0)} error(s)")
    return 0


def _cmd_shutdown(args) -> int:
    from ..serve import Client, ServeError

    try:
        with Client(args.host, args.port, timeout=args.timeout) as client:
            client.shutdown()
    except (OSError, ServeError) as exc:
        print(f"repro shutdown: {exc}", file=sys.stderr)
        return 1
    print(f"server {args.host}:{args.port} draining")
    return 0


def _add_sweep_axes(parser: argparse.ArgumentParser, *,
                    scale: bool = False) -> None:
    """The axis flags shared by ``repro sweep`` and ``repro submit``.

    ``_sweep_from_args`` reads every flag added here plus ``scale``;
    pass ``scale=True`` unless :func:`_add_common` already supplies it.
    """
    if scale:
        parser.add_argument("--scale", type=int, default=1,
                            help="workload scale factor (default 1)")
    parser.add_argument("preset", nargs="?", default=None,
                        help="named preset (figure5, figure7, vc-kernels, "
                             "latency, fetch-pressure, table1, frame-scale)")
    parser.add_argument("--kernels", type=_csv, default=(),
                        help="comma-separated kernel names")
    parser.add_argument("--apps", type=_csv, default=(),
                        help="comma-separated application names")
    parser.add_argument("--isas", type=_csv, default=(),
                        help="comma-separated ISAs (alpha,mmx,mdmx,mom)")
    parser.add_argument("--ways", type=_csv_int, default=(),
                        help="comma-separated issue widths (1,2,4,8)")
    parser.add_argument("--latencies", type=_csv_int, default=(),
                        help="comma-separated perfect-memory latencies")
    parser.add_argument("--memory", type=_csv, default=(),
                        help="comma-separated memory models")


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    from ..serve.protocol import DEFAULT_HOST, DEFAULT_PORT

    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"server address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"server port (default {DEFAULT_PORT})")
    parser.add_argument("--timeout", type=float, default=None,
                        help="socket timeout in seconds (default: none)")


def build_parser() -> argparse.ArgumentParser:
    from ..cpu.jit import NUMBA_VERSION
    from ..serve.protocol import PROTOCOL_VERSION

    numba = (f"numba {NUMBA_VERSION}" if NUMBA_VERSION is not None
             else "numba unavailable, jit falls back to pure python")
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures and tables of the MOM paper "
                    "(MICRO 1999) through the unified experiment engine.")
    parser.add_argument(
        "--version", action="version",
        version=f"repro {__version__} (serve protocol {PROTOCOL_VERSION}; "
                f"{numba})")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figure5", help="kernel speedups across issue widths")
    p.add_argument("--kernel", action="append",
                   help="restrict to specific kernels (repeatable)")
    p.add_argument("--explain", action="store_true",
                   help="follow up with a cycle-accounting pass and print "
                        "the CPI stacks")
    _add_common(p)
    p.set_defaults(func=_cmd_figure5)

    p = sub.add_parser("figure7", help="full-app speedups on real caches")
    p.add_argument("--app", action="append",
                   help="restrict to specific applications (repeatable)")
    p.add_argument("--explain", action="store_true",
                   help="follow up with a cycle-accounting pass and print "
                        "the CPI stacks")
    _add_common(p)
    p.set_defaults(func=_cmd_figure7)

    p = sub.add_parser("tables", help="print Tables 1-3 (configurations)")
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("latency", help="memory-latency tolerance study")
    p.add_argument("--way", type=int, default=4, choices=(1, 2, 4, 8))
    _add_common(p)
    p.set_defaults(func=_cmd_latency)

    p = sub.add_parser("fetch-pressure", help="ops/instruction study")
    _add_common(p)
    p.set_defaults(func=_cmd_fetch_pressure)

    p = sub.add_parser("sweep", help="run a preset or custom sweep")
    _add_sweep_axes(p)
    p.add_argument("--explain", action="store_true",
                   help="run with cycle accounting and print the CPI "
                        "stacks under the grid")
    _add_common(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("explain",
                       help="attribute every cycle: ASCII CPI-stack bars "
                            "per point, optionally diffing two configs")
    _add_sweep_axes(p)
    p.add_argument("--diff", nargs=2, metavar=("CFG_A", "CFG_B"),
                   default=None,
                   help="per-component CPI delta between two isa-memory "
                        "configurations, e.g. --diff mom-vectorcache "
                        "mmx-conv")
    _add_common(p)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("kernels",
                       help="list kernels/apps with per-ISA DLP coverage")
    p.set_defaults(func=_cmd_kernels)

    p = sub.add_parser("lint",
                       help="statically verify kernels: IR/stream "
                            "dataflow, saturation ranges, jit subset")
    p.add_argument("--kernel", help="lint one kernel (default: all)")
    p.add_argument("--isa", choices=["alpha", "mmx", "mdmx", "mom"],
                   help="lint one ISA (default: all)")
    p.add_argument("--json", action="store_true",
                   help="print findings and proof artifacts as JSON")
    p.add_argument("--artifact", metavar="PATH",
                   help="write the JSON findings/proof artifact to PATH")
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser("bench",
                       help="regenerate BENCH_*.json locally and print the "
                            "old-vs-new delta")
    p.add_argument("suite", nargs="?", default="batch",
                   choices=sorted(_BENCH_SUITES),
                   help="benchmark subset to run (default: batch)")
    p.add_argument("--smoke", action="store_true",
                   help="tiny workloads (REPRO_BENCH_SMOKE=1): fast sanity "
                        "pass, numbers not representative")
    p.add_argument("--jit", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="let benchmark rows use the compiled fast path "
                        "(--no-jit exports REPRO_NO_JIT=1 to the pytest "
                        "subprocess)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("cache", help="inspect, clear or prune the result "
                                     "cache")
    p.add_argument("--clear", action="store_true", help="delete all entries")
    p.add_argument("--prune", metavar="AGE", default=None,
                   help="evict entries older than AGE (seconds, or with a "
                        "s/m/h/d suffix, e.g. 7d)")
    p.add_argument("--cache-dir", default=None)
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser("serve", help="run the sharded simulation service")
    _add_endpoint(p)
    p.add_argument("--workers", type=int, default=2,
                   help="shard worker processes (default 2)")
    p.add_argument("--max-inflight", type=int, default=None,
                   help="in-flight simulation budget (default 8*workers)")
    p.add_argument("--cache-dir", default=None,
                   help="override the result-cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="skip the persistent result cache")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("ping", help="handshake with a running server")
    _add_endpoint(p)
    p.set_defaults(func=_cmd_ping)

    p = sub.add_parser("submit",
                       help="run a preset or custom sweep via the service")
    _add_sweep_axes(p, scale=True)
    _add_endpoint(p)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("stats",
                       help="render telemetry: live server metrics, or a "
                            "local JSONL span trace")
    _add_endpoint(p)
    p.add_argument("--trace", metavar="FILE", default=None,
                   help="aggregate a local REPRO_OBS_TRACE span file "
                        "instead of querying a server")
    p.add_argument("--prom", action="store_true",
                   help="print the raw Prometheus text exposition")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("shutdown", help="drain and stop a running server")
    _add_endpoint(p)
    p.set_defaults(func=_cmd_shutdown)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
