"""Unified experiment engine: declarative sweeps over the simulator.

The engine separates *what* to simulate from *how* it runs:

* :mod:`repro.exp.spec` -- :class:`PointSpec` (one simulation point as
  frozen, hashable data) and :class:`SweepSpec` (cartesian products plus
  the named presets behind every paper figure and table).
* :mod:`repro.exp.cache` -- :class:`ResultCache`, a persistent on-disk
  JSON store of :class:`~repro.cpu.core.SimResult`\\ s keyed by spec
  content hash plus a code-version salt.
* :mod:`repro.exp.engine` -- :class:`Session`, which resolves sweeps into
  points, executes cache misses (in process, or on a process pool with
  ``jobs > 1``) and memoizes everything it runs.
* :mod:`repro.exp.cli` -- the ``repro`` console command (``repro figure5``,
  ``repro sweep``, ``repro cache`` ...).

Every figure/table driver in :mod:`repro.eval` is a thin preset +
formatter over this package.
"""

from .spec import PointSpec, SweepSpec, PRESETS, preset
from .cache import ResultCache
from .engine import Session, default_session, built_kernel, built_app

__all__ = [
    "PointSpec", "SweepSpec", "PRESETS", "preset",
    "ResultCache", "Session", "default_session",
    "built_kernel", "built_app",
]
