"""Multi-address cache (Figure 6a): the conventional option for MOM.

"A multi-address cache is simply a conventional multi-banked cache where a
MOM memory access is decoupled among all available memory ports.  So, if we
have two independent memory ports, a MOM memory request will reserve both
ports so that the first will access the odd vector elements while the other
will access the even vector elements.  This model has the advantage of fully
taking benefit from all the port resources, even if we have only one single
memory request."

Strengths: MOM traffic enjoys the low-latency L1 when working sets fit (the
4-way winner of Figure 7); weaknesses: bank collisions and interconnect
pressure at higher widths.
"""

from __future__ import annotations

from ..emulib.trace import DynInstr
from .hierarchy import ConventionalHierarchy, HierarchyParams


class MultiAddressHierarchy(ConventionalHierarchy):
    """Conventional banked hierarchy plus decoupled MOM element access."""

    def __init__(self, way: int) -> None:
        super().__init__(way, HierarchyParams.conventional(way))
        self.vector_accesses = 0
        self.vector_elements = 0

    def try_issue(self, instr: DynInstr, cycle: int) -> int | None:
        if instr.vl <= 1:
            return self._scalar_access(instr, cycle)
        return self._vector_access(instr, cycle)

    def earliest_issue(self, instr: DynInstr, cycle: int) -> int:
        """Scheduler hint; a MOM access needs *every* port simultaneously."""
        if instr.vl > 1:
            return max(cycle, max(self.port_free))
        return super().earliest_issue(instr, cycle)

    def _vector_access(self, instr: DynInstr, cycle: int) -> int | None:
        """Stream VL element accesses round-robin over every port."""
        ports = len(self.port_free)
        if any(free > cycle for free in self.port_free):
            self.acct_conflict_retries += 1
            return None              # a MOM request reserves all ports
        addresses = instr.element_addresses()
        self.vector_accesses += 1
        self.vector_elements += len(addresses)
        completion = cycle
        slots_per_port = -(-len(addresses) // ports)   # ceil
        for i, addr in enumerate(addresses):
            slot_cycle = cycle + i // ports
            if instr.iclass.is_store:
                done = self.l1.store(addr, slot_cycle)
                if done is None:
                    # Write buffer full mid-stream: charge a drain delay
                    # instead of rolling back the issued elements.
                    done = slot_cycle + self.l1.wbuf.drain_interval
            else:
                done = self.l1.load(addr, slot_cycle, allow_stall=False)
            completion = max(completion, done)
        for p in range(ports):
            self.port_free[p] = cycle + slots_per_port
        self.acct_accesses += 1
        self.acct_occupancy += completion - cycle
        return completion

    def stats(self) -> dict[str, float]:
        merged = super().stats()
        merged.update({
            "vector_accesses": self.vector_accesses,
            "vector_elements": self.vector_elements,
        })
        return merged
