"""Cache building blocks: tag arrays, MSHRs and the coalescing write buffer.

These are the ingredients of the Alpha-21364-style hierarchy of Section
4.2.1: a 32 KB direct-mapped write-through L1 with 32-byte lines, a 1 MB
2-way write-back L2 with 128-byte lines, 8 MSHRs per cache and an 8-deep
coalescing write buffer with a selective-flush policy.  The composition
lives in :mod:`repro.memsys.hierarchy`.

All timing here is expressed as *completion cycles*; structural back
pressure is expressed by methods returning ``None`` (the core retries the
instruction next cycle).  The memory models built from these blocks may
additionally export an ``earliest_issue(instr, cycle)`` hint for the
event-driven core: a lower bound before which every retry is guaranteed to
fail without touching any of the stateful structures below (ports, banks,
MSHRs, write buffer) -- retries that *would* touch state must stay on the
cycle-by-cycle cadence so the hierarchy's counters stay bit-identical to a
busy-wait core.
"""

from __future__ import annotations


class CacheArray:
    """Tag/state array of one cache level (LRU within a set).

    Purely behavioural: the data itself lives in the functional memory of
    the emulation library; the array tracks presence, dirtiness and
    eviction decisions so the timing model charges the right misses.
    """

    def __init__(self, size_bytes: int, line_bytes: int, assoc: int) -> None:
        if size_bytes % (line_bytes * assoc):
            raise ValueError("size must be a multiple of line*assoc")
        self.line_bytes = line_bytes
        self.assoc = assoc
        self.sets = size_bytes // (line_bytes * assoc)
        # Per set: list of (tag, dirty) in LRU order (front = MRU).
        self._sets: list[list[list]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    def _locate(self, addr: int):
        line = self.line_of(addr)
        return self._sets[line % self.sets], line // self.sets

    def probe(self, addr: int, update_lru: bool = True) -> bool:
        """Look up a line; move to MRU on hit."""
        entries, tag = self._locate(addr)
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                if update_lru and i:
                    entries.insert(0, entries.pop(i))
                self.hits += 1
                return True
        self.misses += 1
        return False

    def contains(self, addr: int) -> bool:
        """Presence check without touching LRU state or counters."""
        entries, tag = self._locate(addr)
        return any(entry[0] == tag for entry in entries)

    def fill(self, addr: int, dirty: bool = False) -> int | None:
        """Install a line; returns the *address* of a dirty victim, if any.

        Clean victims vanish silently (write-through L1 / clean L2 lines);
        a dirty victim must be written back by the caller.
        """
        entries, tag = self._locate(addr)
        for i, entry in enumerate(entries):
            if entry[0] == tag:       # refill of a present line
                entry[1] = entry[1] or dirty
                if i:
                    entries.insert(0, entries.pop(i))
                return None
        victim_addr = None
        if len(entries) >= self.assoc:
            victim_tag, victim_dirty = entries.pop()
            if victim_dirty:
                set_index = self.line_of(addr) % self.sets
                victim_line = victim_tag * self.sets + set_index
                victim_addr = victim_line * self.line_bytes
        entries.insert(0, [tag, dirty])
        return victim_addr

    def set_dirty(self, addr: int) -> None:
        entries, tag = self._locate(addr)
        for entry in entries:
            if entry[0] == tag:
                entry[1] = True
                return

    def invalidate(self, addr: int) -> bool:
        """Drop a line (coherence); returns True if it was present."""
        entries, tag = self._locate(addr)
        for i, entry in enumerate(entries):
            if entry[0] == tag:
                entries.pop(i)
                return True
        return False

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class MshrFile:
    """Miss status holding registers: outstanding-miss tracking and merging.

    A new miss to a line already in flight merges into the existing entry
    (completing when the first fill returns).  When all registers are busy
    the access must be retried -- the caller sees ``None``.
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("need at least one MSHR")
        self.capacity = entries
        self.inflight: dict[int, int] = {}   # line -> fill completion cycle
        self.merges = 0
        self.full_events = 0
        # Cycle-accounting counter (kept out of digest-pinned ``stats``):
        # total cycles outstanding fills spent in flight, i.e. the raw
        # miss-latency exposure this MSHR file absorbed.
        self.acct_fill_cycles = 0

    def _expire(self, cycle: int) -> None:
        expired = [line for line, done in self.inflight.items() if done <= cycle]
        for line in expired:
            del self.inflight[line]

    def lookup(self, line: int, cycle: int) -> int | None:
        """Completion cycle if this line is already being fetched."""
        self._expire(cycle)
        done = self.inflight.get(line)
        if done is not None:
            self.merges += 1
        return done

    def allocate(self, line: int, done_cycle: int, cycle: int) -> bool:
        """Reserve an MSHR for a new miss; False when all are busy."""
        self._expire(cycle)
        if len(self.inflight) >= self.capacity:
            self.full_events += 1
            return False
        self.inflight[line] = done_cycle
        self.acct_fill_cycles += done_cycle - cycle
        return True


class WriteBuffer:
    """Coalescing write buffer between the write-through L1 and the L2.

    Stores coalesce by L2 line; the buffer drains one entry per L2 write
    opportunity.  The *selective flush* policy lets a load that hits a
    buffered line force just that entry out (charged as one L2 write)
    instead of draining the whole buffer.
    """

    def __init__(self, depth: int, line_bytes: int, drain_interval: int) -> None:
        if depth < 1:
            raise ValueError("write buffer needs depth >= 1")
        self.depth = depth
        self.line_bytes = line_bytes
        self.drain_interval = drain_interval
        self.lines: dict[int, int] = {}     # line -> earliest drain cycle
        self.coalesced = 0
        self.full_stalls = 0
        self.selective_flushes = 0
        self._next_drain = 0

    def _drain(self, cycle: int) -> None:
        """Retire entries whose drain opportunity has passed."""
        while self.lines and self._next_drain <= cycle:
            oldest = min(self.lines, key=self.lines.__getitem__)
            if self.lines[oldest] > cycle:
                break
            del self.lines[oldest]
            self._next_drain = cycle + self.drain_interval

    def push(self, addr: int, cycle: int) -> bool:
        """Enqueue a store; returns False (stall) when full and uncoalescable."""
        self._drain(cycle)
        line = addr // self.line_bytes
        if line in self.lines:
            self.coalesced += 1
            return True
        if len(self.lines) >= self.depth:
            self.full_stalls += 1
            return False
        self.lines[line] = cycle + self.drain_interval
        return True

    def flush_line(self, addr: int, cycle: int) -> int:
        """Selective flush: force out the entry covering ``addr``.

        Returns the extra delay (cycles) a dependent load must wait; zero
        when the address is not buffered.
        """
        line = addr // self.line_bytes
        if line in self.lines:
            del self.lines[line]
            self.selective_flushes += 1
            return self.drain_interval
        return 0

    def occupancy(self, cycle: int) -> int:
        self._drain(cycle)
        return len(self.lines)
