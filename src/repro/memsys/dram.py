"""Direct Rambus DRAM main-memory model.

The paper models "a 128 MB Direct Rambus main memory system which contains
a DRDRAM controller driving 8 Rambus chips and leveraging up to 3.2 GB/s
with a 128-bit wide, bi-directional 200 MHz main bus".

At a late-1999 processor clock of ~600 MHz, the 3.2 GB/s channel moves about
5.3 bytes per CPU cycle; we round to an explicit parameter.  An access pays
a fixed device latency (row activation + CAS through the controller) and
then occupies the shared channel for the transfer time of its line, which is
what bounds streaming bandwidth.  The 8 chips give pipelining across banks:
up to ``chips`` overlapping device accesses, but a single shared channel.
"""

from __future__ import annotations


class DirectRambus:
    """Timing model of the DRDRAM channel and devices.

    Args:
        device_latency: cycles from controller issue to first data.
        bytes_per_cycle: channel bandwidth in bytes per CPU cycle.
        chips: number of Rambus devices (overlapping accesses).
    """

    def __init__(self, device_latency: int = 45, bytes_per_cycle: float = 5.3,
                 chips: int = 8) -> None:
        if device_latency < 1 or bytes_per_cycle <= 0 or chips < 1:
            raise ValueError("invalid DRDRAM parameters")
        self.device_latency = device_latency
        self.bytes_per_cycle = bytes_per_cycle
        self.chips = chips
        self._channel_free = 0
        self._device_free = [0] * chips
        self.accesses = 0
        self.bytes_moved = 0

    def access(self, addr: int, nbytes: int, cycle: int) -> int:
        """Fetch or write ``nbytes``; returns the completion cycle.

        The device is chosen by address interleaving; the channel transfer
        serializes after both the device and the channel are free.
        """
        self.accesses += 1
        self.bytes_moved += nbytes
        device = (addr // 128) % self.chips
        start = max(cycle, self._device_free[device])
        data_ready = start + self.device_latency
        transfer = max(1, round(nbytes / self.bytes_per_cycle))
        begin_xfer = max(data_ready, self._channel_free)
        completion = begin_xfer + transfer
        self._channel_free = completion
        self._device_free[device] = start + self.device_latency
        return completion

    def stats(self) -> dict[str, int]:
        return {"dram_accesses": self.accesses, "dram_bytes": self.bytes_moved}
