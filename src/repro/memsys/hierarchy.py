"""The realistic cache hierarchy (Section 4.2.1) and the conventional system.

Composition, following the Alpha 21364 the paper cites:

* **L1**: 32 KB, direct-mapped, write-through, 32-byte lines, no-allocate on
  store miss, 8 MSHRs, behind ``ports`` cache ports and ``banks`` interleaved
  banks (Table 3).  Unaligned accesses are split by the port into two
  aligned accesses.
* **Write buffer**: 8-deep, coalescing by L2 line, selective flush.
* **L2**: 1 MB, 2-way, write-back, write-allocate, 128-byte lines, 8 MSHRs.
* **Main memory**: Direct Rambus (see :mod:`repro.memsys.dram`).

:class:`ConventionalHierarchy` is the memory system used by the Alpha and
MMX runs of Figure 7 and the scalar side of every MOM configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emulib.trace import DynInstr
from .cache import CacheArray, MshrFile, WriteBuffer
from .dram import DirectRambus


@dataclass(frozen=True)
class HierarchyParams:
    """Table 3 knobs for one cache organization at one issue width."""

    l1_ports: int
    l1_banks: int
    l1_latency: int
    l2_latency: int
    #: vector-side port width in elements/cycle (VC/COL organizations).
    vector_port_width: int = 1

    @staticmethod
    def conventional(way: int) -> "HierarchyParams":
        """Conv/MA column of Table 3 (4-way and 8-way machines)."""
        if way >= 8:
            return HierarchyParams(l1_ports=4, l1_banks=8, l1_latency=2,
                                   l2_latency=6)
        return HierarchyParams(l1_ports=2, l1_banks=4, l1_latency=1,
                               l2_latency=6)

    @staticmethod
    def vector(way: int, collapsing: bool) -> "HierarchyParams":
        """VC/COL column of Table 3; L2 latency 8 (VC) or 10 (COL)."""
        if way >= 8:
            return HierarchyParams(l1_ports=2, l1_banks=2, l1_latency=1,
                                   l2_latency=10 if collapsing else 8,
                                   vector_port_width=4)
        return HierarchyParams(l1_ports=1, l1_banks=1, l1_latency=1,
                               l2_latency=10 if collapsing else 8,
                               vector_port_width=2)


class L2Cache:
    """1 MB 2-way write-back second-level cache with MSHRs."""

    SIZE = 1 << 20
    LINE = 128
    MSHRS = 8

    def __init__(self, dram: DirectRambus, latency: int) -> None:
        self.array = CacheArray(self.SIZE, self.LINE, assoc=2)
        self.mshr = MshrFile(self.MSHRS)
        self.dram = dram
        self.latency = latency
        self.writebacks = 0

    def access(self, addr: int, is_store: bool, cycle: int,
               allow_stall: bool = True) -> int | None:
        """Access one L2 line; returns data-ready cycle (``None`` = retry).

        ``allow_stall=False`` callers (vector element streams that cannot
        roll back) get a pessimistic completion instead of a retry when the
        MSHR file is full.
        """
        line_addr = (addr // self.LINE) * self.LINE
        if self.array.probe(addr):
            if is_store:
                self.array.set_dirty(addr)
            return cycle + self.latency
        inflight = self.mshr.lookup(self.array.line_of(addr), cycle)
        if inflight is not None:
            return max(inflight, cycle + self.latency)
        fill_done = self.dram.access(line_addr, self.LINE, cycle + self.latency)
        if not self.mshr.allocate(self.array.line_of(addr), fill_done, cycle):
            if allow_stall:
                return None
            fill_done += self.latency  # charge a serialization penalty
        victim = self.array.fill(addr, dirty=is_store)
        if victim is not None:
            self.writebacks += 1
            self.dram.access(victim, self.LINE, fill_done)
        return fill_done + self.latency

    def invalidate(self, addr: int) -> None:
        self.array.invalidate(addr)

    def stats(self) -> dict[str, float]:
        return {
            "l2_hits": self.array.hits,
            "l2_misses": self.array.misses,
            "l2_miss_rate": self.array.miss_rate,
            "l2_writebacks": self.writebacks,
            "l2_mshr_merges": self.mshr.merges,
        }


class L1Cache:
    """32 KB direct-mapped write-through first-level cache."""

    SIZE = 32 << 10
    LINE = 32
    MSHRS = 8
    WBUF_DEPTH = 8

    def __init__(self, l2: L2Cache, latency: int, banks: int) -> None:
        self.array = CacheArray(self.SIZE, self.LINE, assoc=1)
        self.mshr = MshrFile(self.MSHRS)
        self.l2 = l2
        self.latency = latency
        self.banks = banks
        self.bank_free = [0] * banks
        self.wbuf = WriteBuffer(self.WBUF_DEPTH, L2Cache.LINE,
                                drain_interval=l2.latency)

    def _bank_delay(self, addr: int, cycle: int) -> int:
        """Serialize accesses that collide on one interleaved bank."""
        bank = self.array.line_of(addr) % self.banks
        start = max(cycle, self.bank_free[bank])
        self.bank_free[bank] = start + 1
        return start

    def load(self, addr: int, cycle: int, allow_stall: bool = True) -> int | None:
        start = self._bank_delay(addr, cycle)
        flush = self.wbuf.flush_line(addr, start)
        if self.array.probe(addr):
            return start + self.latency + flush
        line = self.array.line_of(addr)
        inflight = self.mshr.lookup(line, start)
        if inflight is not None:
            return max(inflight, start + self.latency) + flush
        l2_done = self.l2.access(addr, False, start + self.latency + flush,
                                 allow_stall=allow_stall)
        if l2_done is None:
            return None
        if not self.mshr.allocate(line, l2_done + self.latency, start):
            if allow_stall:
                return None
            l2_done += self.latency
        self.array.fill(addr)        # write-through L1: lines never dirty
        return l2_done + self.latency

    def store(self, addr: int, cycle: int) -> int | None:
        """Write-through, no-allocate; completes when buffered."""
        start = self._bank_delay(addr, cycle)
        if not self.wbuf.push(addr, start):
            return None
        if self.array.contains(addr):
            self.array.probe(addr)   # update LRU/hit stats on write hit
        return start + self.latency

    def invalidate(self, addr: int) -> bool:
        return self.array.invalidate(addr)

    def stats(self) -> dict[str, float]:
        return {
            "l1_hits": self.array.hits,
            "l1_misses": self.array.misses,
            "l1_miss_rate": self.array.miss_rate,
            "wbuf_coalesced": self.wbuf.coalesced,
            "wbuf_full_stalls": self.wbuf.full_stalls,
            "wbuf_selective_flushes": self.wbuf.selective_flushes,
        }


class ConventionalHierarchy:
    """The baseline memory system: ports -> banked L1 -> WB -> L2 -> DRDRAM.

    Used for the Alpha and MMX full-program runs.  Scalar and MMX media
    accesses are single words; unaligned words are decoupled into two
    aligned accesses by the port, as the paper specifies.
    """

    def __init__(self, way: int, params: HierarchyParams | None = None) -> None:
        self.params = params or HierarchyParams.conventional(way)
        self.dram = DirectRambus()
        self.l2 = L2Cache(self.dram, self.params.l2_latency)
        self.l1 = L1Cache(self.l2, self.params.l1_latency, self.params.l1_banks)
        self.port_free = [0] * self.params.l1_ports
        self.unaligned_splits = 0
        # Cycle-accounting counters (success-path occupancy plus retry
        # pressure; kept out of digest-pinned ``stats``).
        self.acct_accesses = 0
        self.acct_occupancy = 0
        self.acct_conflict_retries = 0

    # --- port machinery ----------------------------------------------------------

    def _claim_port(self, cycle: int, slots: int) -> int | None:
        """Claim one port for ``slots`` cycles; returns start cycle."""
        for i, free in enumerate(self.port_free):
            if free <= cycle:
                self.port_free[i] = cycle + slots
                return cycle
        return None

    def _split_unaligned(self, instr: DynInstr) -> list[int]:
        """Aligned sub-accesses of a (possibly unaligned) scalar access."""
        addr = instr.addr
        nbytes = max(1, instr.nbytes)
        if addr % nbytes == 0:
            return [addr]
        self.unaligned_splits += 1
        first = (addr // nbytes) * nbytes
        return [first, first + nbytes]

    # --- core-facing API ------------------------------------------------------------

    def try_issue(self, instr: DynInstr, cycle: int) -> int | None:
        if instr.vl > 1:
            raise ValueError(
                "conventional hierarchy cannot issue matrix accesses; "
                "use the multi-address / vector-cache systems"
            )
        return self._scalar_access(instr, cycle)

    def earliest_issue(self, instr: DynInstr, cycle: int) -> int:
        """Scheduler hint: earliest cycle :meth:`try_issue` could succeed.

        Same contract as :meth:`repro.memsys.perfect.PerfectMemory.\
earliest_issue`: every attempt strictly before the returned cycle must
        fail without side effects.  An *unaligned* scalar access counts a
        split on every attempt, so it gets no skip (the hint is ``cycle``
        itself, i.e. retry next cycle); an aligned access whose ports are
        all claimed can safely skip to the first port-release, because
        :meth:`_claim_port` fails before any state is touched.  Failures
        past the port claim (a full write buffer) also carry side effects,
        so a cycle with a free port never skips either.
        """
        if instr.vl > 1:
            return cycle         # decoupled subclasses override vector hints
        if instr.addr % max(1, instr.nbytes):
            return cycle
        if all(free > cycle for free in self.port_free):
            return min(self.port_free)
        return cycle

    def _scalar_access(self, instr: DynInstr, cycle: int) -> int | None:
        pieces = self._split_unaligned(instr)
        start = self._claim_port(cycle, len(pieces))
        if start is None:
            self.acct_conflict_retries += 1
            return None
        completion = start
        for i, addr in enumerate(pieces):
            if instr.iclass.is_store:
                done = self.l1.store(addr, start + i)
            else:
                done = self.l1.load(addr, start + i, allow_stall=False)
            if done is None:     # write buffer full: retry whole access
                self.acct_conflict_retries += 1
                return None
            completion = max(completion, done)
        self.acct_accesses += 1
        self.acct_occupancy += completion - cycle
        return completion

    def stats(self) -> dict[str, float]:
        merged: dict[str, float] = {"unaligned_splits": self.unaligned_splits}
        merged.update(self.l1.stats())
        merged.update(self.l2.stats())
        merged.update(self.dram.stats())
        return merged

    def accounting_stats(self) -> dict[str, int]:
        """Per-access occupancy detail for CPI-stack ``meta`` reporting.

        ``conflict_retries`` counts failed issues (port/bank/write-buffer
        structural pressure -- the ``mem_conflict`` side of the stack);
        the fill-wait counters expose the raw miss latency the MSHR files
        absorbed (the ``mem_latency`` side).
        """
        return {
            "accesses": self.acct_accesses,
            "occupancy_cycles": self.acct_occupancy,
            "conflict_retries": self.acct_conflict_retries,
            "l1_fill_wait_cycles": self.l1.mshr.acct_fill_cycles,
            "l2_fill_wait_cycles": self.l2.mshr.acct_fill_cycles,
        }
