"""The vector cache (Figure 6b) and its MOM memory system.

The vector cache (from the authors' ICS'99 paper, building on Conte et al.)
sits next to the L2: MOM vector requests bypass the L1 entirely and load
**two whole cache lines** (one per interleaved bank); an interchange switch,
a shifter and mask logic align the data, allowing byte-wise alignment of
stride-one streams.  The paper argues this (a) protects the L1 cycle time,
(b) decouples the vector from the scalar working set and (c) costs little
thanks to MOM's latency tolerance.  A coherence protocol (exclusive-bit plus
L1/L2 inclusion) keeps the bypass safe; here that means vector stores
invalidate L1 copies and vector loads selectively flush the write buffer.

The organization shines for stride-one accesses -- each line-pair transaction
delivers up to 2 x 128 bytes of useful data -- but degrades to one transaction
per element for large strides, which is exactly the mpeg2-encode exception
discussed in Section 4.2.2.
"""

from __future__ import annotations

from ..emulib.trace import DynInstr
from .hierarchy import ConventionalHierarchy, HierarchyParams, L2Cache


class VectorCacheHierarchy(ConventionalHierarchy):
    """Scalar traffic through a small L1; MOM traffic through the vector cache.

    Args:
        way: machine issue width (selects the Table 3 column).
        collapsing: build the collapsing-buffer variant (see subclass).
    """

    #: A line-pair transaction spans two consecutive L2 lines.
    WINDOW = 2 * L2Cache.LINE

    #: Strides (bytes) up to this are "stride-one" for the shift&mask logic:
    #: consecutive elements sit in consecutive 64-bit words.
    UNIT_STRIDE = 8

    def __init__(self, way: int, collapsing: bool = False) -> None:
        super().__init__(way, HierarchyParams.vector(way, collapsing))
        self.collapsing = collapsing
        self.vector_port_free = 0
        self.vector_transactions = 0
        self.vector_elements = 0
        self.l1_invalidations = 0

    # --- transaction grouping --------------------------------------------------

    def _windows(self, addresses: list[int]) -> list[list[int]]:
        """Group element addresses into line-pair transactions.

        The plain vector cache can only exploit the 2-line window for
        (near-)unit strides -- its shift&mask path extracts one contiguous
        chunk.  The collapsing buffer groups any elements that fall inside
        the same aligned 2-line window, "even if they are not consecutively
        allocated".
        """
        if not addresses:
            return []
        stride = abs(addresses[1] - addresses[0]) if len(addresses) > 1 else 0
        if not self.collapsing and stride > self.UNIT_STRIDE:
            return [[addr] for addr in addresses]
        groups: dict[int, list[int]] = {}
        for addr in addresses:
            groups.setdefault(addr // self.WINDOW, []).append(addr)
        return [groups[key] for key in sorted(groups)]

    # --- vector access ------------------------------------------------------------

    def try_issue(self, instr: DynInstr, cycle: int) -> int | None:
        if instr.vl <= 1:
            return self._scalar_access(instr, cycle)
        return self._vector_access(instr, cycle)

    def earliest_issue(self, instr: DynInstr, cycle: int) -> int:
        """Scheduler hint; vector traffic waits on the single vector port."""
        if instr.vl > 1:
            return max(cycle, self.vector_port_free)
        return super().earliest_issue(instr, cycle)

    def _vector_access(self, instr: DynInstr, cycle: int) -> int | None:
        if self.vector_port_free > cycle:
            self.acct_conflict_retries += 1
            return None
        addresses = instr.element_addresses()
        windows = self._windows(addresses)
        self.vector_transactions += len(windows)
        self.vector_elements += len(addresses)
        is_store = instr.iclass.is_store
        width = self.params.vector_port_width
        completion = cycle
        txn_start = cycle
        for window in windows:
            # Selective write-buffer flush keeps the bypass coherent.
            flush = max((self.l1.wbuf.flush_line(a, txn_start) for a in window),
                        default=0)
            # Both lines of the pair travel through the L2 tag path.
            first_line = (window[0] // L2Cache.LINE) * L2Cache.LINE
            data_ready = txn_start + flush
            for line_addr in (first_line, first_line + L2Cache.LINE):
                done = self.l2.access(line_addr, is_store, txn_start + flush,
                                      allow_stall=False)
                data_ready = max(data_ready, done)
            if is_store:
                for addr in window:
                    if self.l1.invalidate(addr):
                        self.l1_invalidations += 1
            transfer = max(1, -(-len(window) // width))
            txn_start += transfer          # the single vector port streams
            completion = max(completion, data_ready + transfer)
        self.vector_port_free = txn_start
        self.acct_accesses += 1
        self.acct_occupancy += completion - cycle
        return completion

    def stats(self) -> dict[str, float]:
        merged = super().stats()
        merged.update({
            "vector_transactions": self.vector_transactions,
            "vector_elements": self.vector_elements,
            "l1_invalidations": self.l1_invalidations,
        })
        return merged
