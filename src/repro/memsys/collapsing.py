"""The collapsing-buffer cache (Figure 6c).

"The collapsing buffer [Conte et al., ISCA 22] is a more complex version of
the vector cache that is able to access several vector elements along two
consecutive cache lines, even if they are not consecutively allocated.
Instead of the shift&mask logic, the collapsing buffer logic groups the
requested elements together."

Implementation-wise it is the vector cache with window grouping enabled for
*every* stride, at the cost of a slightly longer L2-side latency (the 10- vs
8-cycle entries of Table 3).
"""

from __future__ import annotations

from .vector_cache import VectorCacheHierarchy


class CollapsingBufferHierarchy(VectorCacheHierarchy):
    """Vector cache whose gather logic collapses non-contiguous elements."""

    def __init__(self, way: int) -> None:
        super().__init__(way, collapsing=True)

    def accounting_stats(self) -> dict[str, int]:
        """Adds the collapse efficiency: elements gathered per line-pair
        transaction, x100 (the gain over the plain vector cache comes
        entirely from this grouping of non-contiguous elements)."""
        merged = super().accounting_stats()
        merged["collapsed_per_window_x100"] = (
            100 * self.vector_elements // self.vector_transactions
            if self.vector_transactions else 0)
        return merged
