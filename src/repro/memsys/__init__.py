"""Memory-system models: perfect memory and the full cache hierarchies.

Every class exposes ``try_issue(instr, cycle) -> completion | None`` -- the
interface the out-of-order core drives -- plus ``stats()``.

* :class:`PerfectMemory` -- fixed latency, Table 1 ports (Section 4.1).
* :class:`ConventionalHierarchy` -- ports / banked L1 / write buffer / L2 /
  DRDRAM (Alpha and MMX full-program runs).
* :class:`MultiAddressHierarchy` -- conventional cache with MOM element
  decoupling over all ports (Figure 6a).
* :class:`VectorCacheHierarchy` -- L1 bypass, line-pair vector cache
  (Figure 6b).
* :class:`CollapsingBufferHierarchy` -- vector cache with element-collapsing
  gather logic (Figure 6c).
"""

from .perfect import PerfectMemory, PortSet
from .cache import CacheArray, MshrFile, WriteBuffer
from .dram import DirectRambus
from .hierarchy import ConventionalHierarchy, HierarchyParams, L1Cache, L2Cache
from .multi_address import MultiAddressHierarchy
from .vector_cache import VectorCacheHierarchy
from .collapsing import CollapsingBufferHierarchy

__all__ = [
    "PerfectMemory", "PortSet", "CacheArray", "MshrFile", "WriteBuffer",
    "DirectRambus", "ConventionalHierarchy", "HierarchyParams",
    "L1Cache", "L2Cache", "MultiAddressHierarchy", "VectorCacheHierarchy",
    "CollapsingBufferHierarchy",
]
