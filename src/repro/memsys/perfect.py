"""Idealized memory models used by the kernel-level study (Section 4.1).

The paper's Figure 5 assumes "an idealized memory system with no bandwidth
constraints and a fixed memory latency of one single cycle (that is, an
equivalent model of a perfect cache)"; the latency-tolerance study repeats
the experiment with a fixed 50-cycle latency.  Ports are still modeled --
they are processor resources (Table 1), not memory ones: a MOM memory
instruction reserves every port and streams its VL elements at the aggregate
element rate, exactly like the multi-address scheme.
"""

from __future__ import annotations

from ..emulib.trace import DynInstr


class PortSet:
    """Occupancy tracker for the processor's cache ports."""

    def __init__(self, ports: int, port_width: int) -> None:
        if ports < 1 or port_width < 1:
            raise ValueError("ports and port_width must be >= 1")
        self.ports = ports
        self.port_width = port_width
        self.busy_until = [0] * ports
        self.scalar_accesses = 0
        self.vector_accesses = 0
        self.element_accesses = 0

    def try_scalar(self, cycle: int) -> bool:
        """Claim one port for one cycle; scalar data moves one element."""
        for i, busy in enumerate(self.busy_until):
            if busy <= cycle:
                self.busy_until[i] = cycle + 1
                self.scalar_accesses += 1
                self.element_accesses += 1
                return True
        return False

    def try_vector(self, cycle: int, elements: int) -> int | None:
        """Claim *all* ports for a MOM access of ``elements`` rows.

        Mirrors the paper's multi-address discipline: "a MOM memory request
        will reserve both ports so that the first will access the odd vector
        elements while the other will access the even".  Returns the number
        of cycles the transfer occupies, or ``None`` if any port is busy.
        """
        if any(busy > cycle for busy in self.busy_until):
            return None
        slots_per_cycle = self.ports * self.port_width
        occupancy = max(1, -(-elements // slots_per_cycle))
        for i in range(self.ports):
            self.busy_until[i] = cycle + occupancy
        self.vector_accesses += 1
        self.element_accesses += elements
        return occupancy


class PerfectMemory:
    """Fixed-latency memory behind the configured cache ports.

    Args:
        latency: access latency in cycles (1 for the perfect cache, 50 for
            the streaming-latency study).
        ports: number of cache ports (Table 1).
        port_width: vector elements per port per cycle (2 for 8-way MOM).
    """

    def __init__(self, latency: int = 1, ports: int = 1, port_width: int = 1) -> None:
        if latency < 1:
            raise ValueError("latency must be >= 1")
        self.latency = latency
        self.portset = PortSet(ports, port_width)
        # Cycle-accounting counters (success-path only; kept out of
        # :meth:`stats`, which is digest-pinned): how many accesses
        # issued and the total cycles between issue and completion.
        self.acct_accesses = 0
        self.acct_occupancy = 0

    def try_issue(self, instr: DynInstr, cycle: int) -> int | None:
        """Start a memory instruction; returns its completion cycle or None."""
        if instr.vl > 1:
            occupancy = self.portset.try_vector(cycle, instr.vl)
            if occupancy is None:
                return None
            completion = cycle + occupancy - 1 + self.latency
            self.acct_accesses += 1
            self.acct_occupancy += completion - cycle
            return completion
        if not self.portset.try_scalar(cycle):
            return None
        self.acct_accesses += 1
        self.acct_occupancy += self.latency
        return cycle + self.latency

    def earliest_issue(self, instr: DynInstr, cycle: int) -> int:
        """Scheduler hint: earliest cycle :meth:`try_issue` could succeed.

        Contract (shared by every memory model that offers this hint):
        every ``try_issue`` strictly before the returned cycle is
        guaranteed to fail *without side effects*, so an event-driven core
        may skip those retry cycles and still be cycle-exact against a
        model that retries every cycle.  Port claims only push busy
        horizons forward, so the bound stays valid under interleaved
        issues by other instructions.
        """
        busy = self.portset.busy_until
        if instr.vl > 1:
            return max(cycle, max(busy))     # a vector claims every port
        return max(cycle, min(busy))         # a scalar needs any one port

    def stats(self) -> dict[str, int]:
        return {
            "scalar_accesses": self.portset.scalar_accesses,
            "vector_accesses": self.portset.vector_accesses,
            "element_accesses": self.portset.element_accesses,
        }

    def accounting_stats(self) -> dict[str, int]:
        """Per-access occupancy detail for CPI-stack ``meta`` reporting."""
        return {
            "accesses": self.acct_accesses,
            "occupancy_cycles": self.acct_occupancy,
        }
