"""Kernel tests: every ISA version must match the numpy golden reference."""

import numpy as np
import pytest

from repro.kernels import (ISAS, KERNEL_ORDER, KERNELS, VC_KERNEL_ORDER,
                           build_and_check)
from repro.kernels.idct import golden_block, idct_matrix, make_workload as idct_workload
from repro.kernels.motion import spiral_candidates
from repro.isa.model import InstrClass

ALL_PAIRS = [(k, isa) for k in KERNEL_ORDER for isa in ISAS]


@pytest.fixture(scope="module")
def workloads():
    return {name: KERNELS[name].make_workload(1) for name in KERNEL_ORDER}


@pytest.fixture(scope="module")
def built(workloads):
    cache = {}
    for name, isa in ALL_PAIRS:
        cache[(name, isa)] = build_and_check(
            KERNELS[name], isa, workloads[name]
        )
    return cache


def test_registry_complete():
    assert set(KERNEL_ORDER) | set(VC_KERNEL_ORDER) == set(KERNELS)
    assert len(KERNEL_ORDER) == 8        # the paper's Section 4.1 grid
    assert len(KERNELS) == 8 + len(VC_KERNEL_ORDER)
    for spec in KERNELS.values():
        assert set(ISAS) <= set(spec.builders)


@pytest.mark.parametrize("kernel,isa", ALL_PAIRS)
def test_kernel_matches_golden(built, kernel, isa):
    """build_and_check raises on mismatch; reaching here means bit-exact."""
    bk = built[(kernel, isa)]
    assert len(bk.trace) > 0


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
def test_instruction_count_ordering(built, kernel):
    """MOM needs far fewer instructions than MMX, which needs far fewer
    than scalar -- the fetch-pressure argument of the paper."""
    alpha = len(built[(kernel, "alpha")].trace)
    mmx = len(built[(kernel, "mmx")].trace)
    mom = len(built[(kernel, "mom")].trace)
    assert mom < mmx < alpha
    assert alpha / mmx > 2.5
    assert mmx / mom > 1.2


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
def test_operation_counts_agree(built, kernel):
    """All ISAs perform comparable element-level work on the same input."""
    alpha_ops = len(built[(kernel, "alpha")].trace)
    mom_ops = built[(kernel, "mom")].trace.operation_count()
    # MOM covers the same element work in lane-operations; the scalar
    # version spends several instructions per element, so a modest floor
    # already proves the vector version is not skipping work.
    assert mom_ops > 0.05 * alpha_ops


@pytest.mark.parametrize("kernel", KERNEL_ORDER)
def test_mom_memory_references_not_inflated(built, kernel):
    """Element-level memory traffic must not exceed the scalar version's
    by more than the packing factor allows."""
    alpha_refs = built[(kernel, "alpha")].trace.memory_references()
    mom_refs = built[(kernel, "mom")].trace.memory_references()
    assert mom_refs <= alpha_refs * 1.5


def test_scaled_workloads_still_verify():
    for name in ("motion1", "addblock"):
        spec = KERNELS[name]
        workload = spec.make_workload(2)
        for isa in ("alpha", "mom"):
            build_and_check(spec, isa, workload)


def test_workloads_deterministic():
    a = KERNELS["motion1"].make_workload(1)
    b = KERNELS["motion1"].make_workload(1)
    assert np.array_equal(a.ref, b.ref)
    assert a.candidates == b.candidates


# --- kernel-specific properties --------------------------------------------------------

def test_spiral_matches_paper_walk():
    cands = spiral_candidates(5, 5, 1)
    assert cands[0] == (5, 5)
    assert len(cands) == 9
    assert cands[1] == (4, 4)          # starts at (-win, -win)
    assert len(set(cands)) == 9        # no duplicates at win=1


def test_spiral_count_grows_quadratically():
    assert len(spiral_candidates(0, 0, 2)) == 1 + 8 + 16


def test_idct_matrix_orthogonality():
    m = idct_matrix().astype(np.float64) / (1 << 14)
    assert np.allclose(m.T @ m, np.eye(8), atol=0.01)


def test_idct_dc_block():
    block = np.zeros((8, 8), dtype=np.int16)
    block[0][0] = 1024
    out = golden_block(block)
    assert (np.abs(out.astype(int) - 128) <= 1).all()


def test_idct_roundtrip_accuracy():
    """fdct followed by idct recovers pixels within quantization error."""
    workload = idct_workload(1)
    for coef in workload.blocks:
        out = golden_block(coef)
        assert out.min() >= -256 and out.max() <= 255


def test_motion_golden_best_is_minimum():
    spec = KERNELS["motion1"]
    w = spec.make_workload(1)
    g = spec.golden(w)
    assert g["distances"][g["best"][0]] == g["distances"].min()


def test_motion_traces_contain_branches(built):
    alpha = built[("motion1", "alpha")].trace
    assert alpha.branch_count() > 100
    mom = built[("motion1", "mom")].trace
    assert mom.branch_count() < 10


def test_mom_kernels_use_matrix_memory(built):
    for kernel in KERNEL_ORDER:
        trace = built[(kernel, "mom")].trace
        vectors = [i for i in trace
                   if i.iclass in (InstrClass.MED_LOAD, InstrClass.MED_STORE)
                   and i.vl > 1]
        assert vectors, f"{kernel} never used a matrix memory access"


def test_mdmx_uses_accumulators(built):
    for kernel in ("motion1", "motion2", "ltpparameters", "rgb2ycc"):
        trace = built[(kernel, "mdmx")].trace
        assert any(i.op.writes_acc for i in trace), kernel


def test_addblock_scalar_is_memory_heavy(built):
    """The table-lookup clamp makes scalar addblock memory-bound."""
    trace = built[("addblock", "alpha")].trace
    hist = trace.class_histogram()
    memory = hist.get(InstrClass.LOAD, 0) + hist.get(InstrClass.STORE, 0)
    assert memory / len(trace) > 0.45


def test_h2v2_is_store_heavy(built):
    trace = built[("h2v2upsample", "alpha")].trace
    hist = trace.class_histogram()
    assert hist[InstrClass.STORE] > hist[InstrClass.LOAD]
