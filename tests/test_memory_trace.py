"""Tests for the flat memory image and the dynamic trace container."""

import numpy as np
import pytest

from repro.emulib.memory import Memory
from repro.emulib.trace import DynInstr, Trace, reg, reg_index, reg_pool
from repro.isa.alpha import ALPHA
from repro.isa.mmx import MMX
from repro.core.mom_isa import MOM
from repro.isa.model import InstrClass, RegPool


# --- Memory ------------------------------------------------------------------

def test_alloc_respects_alignment():
    mem = Memory()
    a = mem.alloc(3, align=64)
    c = mem.alloc(8, align=64)
    assert a % 64 == 0 and c % 64 == 0 and c > a


def test_alloc_rejects_bad_alignment():
    with pytest.raises(ValueError):
        Memory().alloc(8, align=3)


def test_alloc_exhaustion():
    mem = Memory(size=1024)
    with pytest.raises(MemoryError):
        mem.alloc(1 << 20)


def test_read_write_widths_little_endian():
    mem = Memory()
    addr = mem.alloc(16)
    mem.write(addr, 0x0123456789ABCDEF, 8)
    assert mem.read(addr, 1) == 0xEF
    assert mem.read(addr, 2) == 0xCDEF
    assert mem.read(addr, 4) == 0x89ABCDEF
    assert mem.read(addr, 8) == 0x0123456789ABCDEF


def test_signed_reads():
    mem = Memory()
    addr = mem.alloc(8)
    mem.write(addr, -1, 2)
    assert mem.read(addr, 2, signed=True) == -1
    assert mem.read(addr, 2) == 0xFFFF


def test_write_truncates():
    mem = Memory()
    addr = mem.alloc(8)
    mem.write(addr, 0x1FF, 1)
    assert mem.read(addr, 1) == 0xFF


def test_out_of_bounds_rejected():
    mem = Memory(size=256)
    with pytest.raises(IndexError):
        mem.read(0, 1)                       # below BASE
    with pytest.raises(IndexError):
        mem.read(Memory.BASE + 256, 1)


def test_array_roundtrip():
    mem = Memory()
    data = np.arange(100, dtype=np.int16)
    addr = mem.alloc_array(data)
    assert (mem.load_array(addr, np.int16, 100) == data).all()


def test_block_roundtrip():
    mem = Memory()
    addr = mem.alloc(32)
    mem.write_block(addr, b"hello world")
    assert mem.read_block(addr, 11) == b"hello world"


# --- register encoding --------------------------------------------------------

def test_reg_encode_decode():
    for pool in RegPool:
        for index in (0, 1, 31, 255):
            e = reg(pool, index)
            assert reg_pool(e) == pool and reg_index(e) == index


def test_reg_index_out_of_range():
    with pytest.raises(ValueError):
        reg(RegPool.INT, 256)


# --- DynInstr / Trace ------------------------------------------------------------

def test_element_addresses_scalar_and_vector():
    ld = DynInstr(ALPHA["ldq"], addr=0x1000, nbytes=8)
    assert ld.element_addresses() == [0x1000]
    vec = DynInstr(MOM["momldq"], addr=0x1000, nbytes=8, stride=32, vl=4)
    assert vec.element_addresses() == [0x1000, 0x1020, 0x1040, 0x1060]
    alu = DynInstr(ALPHA["addq"])
    assert alu.element_addresses() == []


def test_trace_histograms():
    t = Trace("alpha")
    t.append(DynInstr(ALPHA["addq"]))
    t.append(DynInstr(ALPHA["addq"]))
    t.append(DynInstr(ALPHA["ldq"], addr=8, nbytes=8))
    assert t.opcode_histogram() == {"addq": 2, "ldq": 1}
    assert t.class_histogram()[InstrClass.INT_SIMPLE] == 2
    assert t.memory_references() == 1


def test_trace_operation_count_scales_with_vl():
    t = Trace("mom")
    t.append(DynInstr(MOM["paddb"], vl=16))       # 16 rows x 8 lanes
    assert t.operation_count() == 128
    t2 = Trace("mmx")
    t2.append(DynInstr(MMX["paddb"], vl=1))
    assert t2.operation_count() == 8


def test_trace_extend_and_iteration():
    a, b = Trace("alpha"), Trace("alpha")
    a.append(DynInstr(ALPHA["addq"]))
    b.append(DynInstr(ALPHA["subq"]))
    a.extend(b)
    assert len(a) == 2
    assert [i.op.name for i in a] == ["addq", "subq"]
    assert a[1].op.name == "subq"


def test_branch_count():
    t = Trace("alpha")
    t.append(DynInstr(ALPHA["bne"], taken=True, site=1))
    t.append(DynInstr(ALPHA["br"], taken=True, site=2))   # JUMP, not BRANCH
    assert t.branch_count() == 1


def test_trace_summary_cached_and_invalidated_on_append():
    t = Trace("alpha")
    t.append(DynInstr(ALPHA["addq"]))
    assert t.operation_count() == 1
    assert t.summary() is t.summary()          # cached between reads
    t.append(DynInstr(ALPHA["addq"]))          # append invalidates
    assert t.operation_count() == 2
    assert t.opcode_histogram() == {"addq": 2}


def test_trace_summary_invalidated_on_extend():
    a, b = Trace("alpha"), Trace("alpha")
    a.append(DynInstr(ALPHA["addq"]))
    assert a.branch_count() == 0               # populate the cache
    b.append(DynInstr(ALPHA["bne"], taken=True, site=1))
    a.extend(b)
    assert a.branch_count() == 1
    assert a.class_histogram()[InstrClass.BRANCH] == 1


def test_trace_histogram_callers_cannot_corrupt_cache():
    t = Trace("alpha")
    t.append(DynInstr(ALPHA["addq"]))
    hist = t.opcode_histogram()
    hist["addq"] = 999                          # mutate the returned copy
    assert t.opcode_histogram() == {"addq": 1}


def test_timing_records_preclassify_instructions():
    t = Trace("mom")
    t.append(DynInstr(MOM["momldq"], addr=0, nbytes=8, stride=32, vl=4))
    t.append(DynInstr(MOM["paddb"], vl=16))
    load, add = t.timing_records()
    assert load.is_memory and load.chains and load.vl == 4
    assert not add.is_memory and add.exec_rows == 16
    assert t.timing_records() is t.summary().records


def test_dyninstr_repr():
    ins = DynInstr(MOM["momldq"], addr=0x2000, vl=8, stride=8)
    assert "momldq" in repr(ins)
