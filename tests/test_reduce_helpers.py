"""Tests for the cross-lane reduction idioms and end-to-end memory systems.

The reduction helpers are the realistic read-out cost MDMX pays for its
per-lane accumulators; the hierarchy integration tests run one verified
kernel trace through all four memory organizations and check the ordering
invariants the cache study rests on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MdmxBuilder, MomBuilder
from repro.cpu import Core, machine_config
from repro.eval.runner import built_kernel
from repro.kernels.reduce import (mdmx_sad_total, mdmx_sqd_total,
                                  mom_sad_total, mom_sqd_total)
from repro.memsys import (CollapsingBufferHierarchy, ConventionalHierarchy,
                          MultiAddressHierarchy, PerfectMemory,
                          VectorCacheHierarchy)

bytes8 = st.lists(st.integers(0, 255), min_size=8, max_size=8)


def word_of(vals):
    return int.from_bytes(bytes(vals), "little")


@given(bytes8, bytes8)
@settings(max_examples=30)
def test_mdmx_sad_total_matches_reference(xs, ys):
    b = MdmxBuilder()
    acc = b.areg()
    x, y = b.mreg(word_of(xs)), b.mreg(word_of(ys))
    # Accumulate a few rounds to stress the 16-bit lane assumption.
    for _ in range(4):
        b.paccsadb(acc, x, y)
    scratch = [b.mreg() for _ in range(4)]
    out = b.ireg()
    mdmx_sad_total(b, acc, scratch, out)
    expected = 4 * sum(abs(a - c) for a, c in zip(xs, ys))
    assert int(out.value) == expected


@given(bytes8, bytes8)
@settings(max_examples=30)
def test_mdmx_sqd_total_matches_reference(xs, ys):
    b = MdmxBuilder()
    acc = b.areg()
    x, y = b.mreg(word_of(xs)), b.mreg(word_of(ys))
    zero = b.mreg(0)
    for _ in range(8):
        b.paccsqdb(acc, x, y)
    scratch = [b.mreg() for _ in range(7)]
    out = b.ireg()
    mdmx_sqd_total(b, acc, scratch, zero, out)
    expected = 8 * sum((a - c) ** 2 for a, c in zip(xs, ys))
    assert int(out.value) == expected


def test_mom_reduction_helpers():
    b = MomBuilder()
    acc = b.areg()
    x, y = b.mreg(), b.mreg()
    data = np.full(16, word_of([9] * 8), dtype=np.uint64)
    from repro.core.matrix import MomRegister
    x.value = MomRegister(data)
    y.value = MomRegister(np.zeros(16, dtype=np.uint64))
    b.setvli(4)
    b.paccsadb(acc, x, y)            # per-lane: 4 rows x 9 per lane
    scratch = [b.mreg() for _ in range(4)]
    out = b.ireg()
    mom_sad_total(b, acc, scratch, out)
    assert int(out.value) == 4 * 8 * 9
    assert b.vl == 4                 # helper restores the caller's VL


def test_mom_sqd_total_restores_vl():
    b = MomBuilder()
    acc = b.areg()
    zero = b.mreg()
    b.momzero(zero)
    scratch = [b.mreg() for _ in range(7)]
    out = b.ireg()
    b.setvli(10)
    mom_sqd_total(b, acc, scratch, zero, out)
    assert int(out.value) == 0
    assert b.vl == 10


# --- end-to-end memory-system integration -------------------------------------------

@pytest.fixture(scope="module")
def mom_trace():
    return built_kernel("compensation", "mom", 1).trace


def test_all_hierarchies_complete_kernel(mom_trace):
    cfg = machine_config(4, "mom")
    cycles = {}
    for name, mem in (
        ("perfect", PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width)),
        ("multiaddress", MultiAddressHierarchy(4)),
        ("vectorcache", VectorCacheHierarchy(4)),
        ("collapsing", CollapsingBufferHierarchy(4)),
    ):
        cycles[name] = Core(cfg, mem).run(mom_trace).cycles
    # Perfect memory is a lower bound for every realistic organization.
    for name in ("multiaddress", "vectorcache", "collapsing"):
        assert cycles[name] >= cycles["perfect"], cycles


def test_realistic_hierarchy_reports_stats(mom_trace):
    cfg = machine_config(4, "mom")
    mem = MultiAddressHierarchy(4)
    result = Core(cfg, mem).run(mom_trace)
    stats = result.mem_stats
    assert stats["vector_elements"] > 0
    assert stats["l1_hits"] + stats["l1_misses"] > 0
    assert "dram_accesses" in stats


def test_alpha_kernel_on_conventional_hierarchy():
    trace = built_kernel("compensation", "alpha", 1).trace
    cfg = machine_config(4, "alpha")
    result = Core(cfg, ConventionalHierarchy(4)).run(trace)
    assert result.instructions == len(trace)
    assert 0 <= result.mem_stats["l1_miss_rate"] < 0.5


def test_simulation_deterministic(mom_trace):
    cfg = machine_config(4, "mom")
    a = Core(cfg, MultiAddressHierarchy(4)).run(mom_trace).cycles
    b = Core(cfg, MultiAddressHierarchy(4)).run(mom_trace).cycles
    assert a == b
