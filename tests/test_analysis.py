"""The static verification layer: unit behaviour and grid cleanliness.

The flagship property is *zero false positives*: every shipped kernel on
every ISA, plus the jit engine source, passes every analysis pass clean.
The complementary property (seeded defects are caught) lives in
``test_mutations.py``.
"""

import json

import pytest

from repro.analysis import (Interval, check_ir, check_ranges, lint_jit,
                            lint_kernel, pressure_report, verified_status)
from repro.analysis.interval import const, from_array
from repro.analysis.runner import kernel_names
from repro.exp.cli import main as cli_main
from repro.kernels import ISAS, KERNELS


# --- interval domain ---------------------------------------------------------

def test_interval_arithmetic():
    a, b = Interval(2, 10), Interval(-3, 4)
    assert a.add(b) == Interval(-1, 14)
    assert a.sub(b) == Interval(-2, 13)
    assert a.mul(b) == Interval(-30, 40)
    assert b.mul(b) == Interval(-12, 16)
    assert a.shr(1) == Interval(1, 5)
    assert a.abs_diff(b) == Interval(0, 13)
    assert b.square() == Interval(0, 16)
    assert Interval(-300, 500).sat_u8() == Interval(0, 255)
    assert a.join(b) == Interval(-3, 10)
    assert a.within(0, 10) and not b.within(0, 10)


def test_interval_helpers():
    import numpy as np
    assert const(7) == Interval(7, 7)
    assert from_array(np.asarray([-4, 9, 2])) == Interval(-4, 9)


def test_interval_shr_rejects_negative():
    with pytest.raises(ValueError):
        Interval(-1, 5).shr(2)


# --- the shipped grid is clean ----------------------------------------------

@pytest.mark.parametrize("isa", ISAS)
def test_grid_has_zero_findings(isa):
    for name in kernel_names():
        report, artifacts = lint_kernel(name, isa)
        assert report.ok, (name, isa, [str(f) for f in report.findings])
        assert artifacts["pressure"]["pools"], (name, isa)
        if isa != "alpha":      # Table 2 prices media files only
            assert artifacts["pressure"]["register_files"], (name, isa)


def test_jit_source_is_compliant():
    assert lint_jit() == []


def test_every_compiled_kernel_ships_a_range_proof():
    for name in kernel_names():
        for isa in ISAS:
            _, artifacts = lint_kernel(name, isa)
            proof = artifacts.get("checkpoints",
                                  artifacts.get("mirror_checkpoints"))
            if proof is None:
                continue          # hand kernel without a compiled mirror
            assert proof, (name, isa)
            for checkpoint in proof:
                assert checkpoint["status"] in ("in-range", "saturated")
                lo, hi = checkpoint["interval"]
                blo, bhi = checkpoint["bound"]
                assert blo <= lo <= hi <= bhi, checkpoint


def test_checkpoints_differ_between_scalar_and_packed():
    record_ir = _ir("blend")
    _, scalar = check_ranges(record_ir, None, "alpha")
    _, packed = check_ranges(record_ir, None, "mmx")
    srules = {c["rule"] for c in scalar}
    prules = {c["rule"] for c in packed}
    assert "sat-table" in srules and "sat-table" not in prules
    assert "sat-pack" in prules and "sat-pack" not in srules


def _ir(name):
    from repro.vc import COMPILED
    return COMPILED[name].ir


def test_check_ir_accepts_every_registered_ir():
    from repro.vc import COMPILED
    for name, record in COMPILED.items():
        assert check_ir(record.ir) == [], name


# --- register pressure -------------------------------------------------------

def test_pressure_report_shape():
    spec = KERNELS["blend"]
    built = spec.builders["mmx"](spec.make_workload(1))
    report = pressure_report(built.builder, "blend", "mmx")
    assert report["kernel"] == "blend" and report["isa"] == "mmx"
    pools = report["pools"]
    assert pools["int"]["peak"] <= pools["int"]["registers"]
    assert pools["med"]["peak"] >= 1
    for entry in report["register_files"]:
        assert 0 <= entry["peak_live"] <= entry["logical"]
        assert entry["area_units"] > 0


def test_pressure_peak_below_allocator_watermark():
    # Liveness can only tighten the allocator's watermark, never exceed it.
    for name in ("ssd", "blend"):
        spec = KERNELS[name]
        for isa in ISAS:
            built = spec.builders[isa](spec.make_workload(1))
            report = pressure_report(built.builder, name, isa)
            for pool, stats in report["allocators"].items():
                peak = report["pools"].get(pool, {"peak": 0})["peak"]
                assert peak <= stats["allocated"] <= stats["limit"], (
                    name, isa, pool)


# --- runner & CLI ------------------------------------------------------------

def test_verified_status_is_cached_and_true():
    assert verified_status("blend", "mmx") is True
    assert verified_status("idct", "alpha") is True


def test_lint_kernel_rejects_unknown_names():
    with pytest.raises(KeyError):
        lint_kernel("nonesuch", "mmx")
    with pytest.raises(KeyError):
        lint_kernel("blend", "vax")


def test_cli_lint_single_cell(capsys):
    assert cli_main(["lint", "--kernel", "ssd", "--isa", "mdmx"]) == 0
    out = capsys.readouterr().out
    assert "0 findings" in out


def test_cli_lint_json_artifact(tmp_path, capsys):
    artifact = tmp_path / "findings.json"
    code = cli_main(["lint", "--kernel", "blend", "--isa", "mom",
                     "--json", "--artifact", str(artifact)])
    assert code == 0
    payload = json.loads(artifact.read_text())
    assert payload["ok"] is True and payload["findings"] == []
    (cell,) = payload["cells"]
    assert cell["kernel"] == "blend" and cell["isa"] == "mom"
    assert cell["checkpoints"]
    assert json.loads(capsys.readouterr().out) == payload


def test_cli_kernels_lists_verified_column(capsys):
    assert cli_main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "verified" in out
    assert "NO" not in out
