"""Compiler-built kernels: goldens, IR validation, end-to-end sweeps."""

import numpy as np
import pytest

from repro.exp import Session
from repro.exp.spec import PointSpec, preset
from repro.kernels import ISAS, KERNELS, VC_KERNEL_ORDER, build_and_check
from repro.vc import (AbsDiff, Add, Buffer, Binding, BufferBinding, COMPILED,
                      Const, GtU, I16, Load, LoopKernel, Mul, SatU8, Select,
                      Square, Sub)

NEW_KERNELS = VC_KERNEL_ORDER


# --- correctness against numpy goldens ---------------------------------------

@pytest.mark.parametrize("kernel", NEW_KERNELS)
@pytest.mark.parametrize("isa", ISAS)
def test_new_kernels_verify_against_golden(kernel, isa):
    spec = KERNELS[kernel]
    built = build_and_check(spec, isa, spec.make_workload(1))
    assert len(built.trace) > 0
    assert built.trace.isa == isa


@pytest.mark.parametrize("kernel", NEW_KERNELS)
def test_new_kernels_scale_deterministically(kernel):
    """Same (kernel, scale) twice -> identical traces (seeded workloads)."""
    from repro.emulib.fingerprint import trace_digest
    spec = KERNELS[kernel]
    digests = []
    for _ in range(2):
        built = build_and_check(spec, "mom", spec.make_workload(2))
        digests.append(trace_digest(built.trace))
    assert digests[0] == digests[1]


def test_builders_are_marked_compiled():
    for kernel in NEW_KERNELS:
        for isa in ISAS:
            builder = KERNELS[kernel].builders[isa]
            assert getattr(builder, "compiled", False)
            assert builder.vc_isa == isa
            assert builder.vc_ir is COMPILED[kernel].ir


# --- end-to-end through the experiment engine --------------------------------

def test_vc_kernels_preset_resolves():
    sweep = preset("vc-kernels")
    points = sweep.points()
    assert {p.target for p in points} == set(NEW_KERNELS)
    assert {p.isa for p in points} == set(ISAS)


def test_new_kernels_run_through_session(tmp_path):
    """`repro sweep` path: points execute, cache round-trips, ISAs order
    as the paper expects (MOM fastest, scalar slowest)."""
    session = Session(tmp_path / "cache")
    points = [PointSpec(kind="kernel", target="chromakey", isa=isa, way=2)
              for isa in ISAS]
    results = session.run(points)
    cycles = {p.isa: results[p].cycles for p in points}
    assert cycles["mom"] < cycles["mmx"] < cycles["alpha"]
    # Warm rerun: all hits, identical results.
    warm = Session(tmp_path / "cache")
    rerun = warm.run(points)
    assert warm.hits == len(points) and warm.misses == 0
    assert {p: r for p, r in rerun.items()} == results


def test_sweep_cli_accepts_new_kernels(capsys):
    from repro.exp.cli import main
    rc = main(["sweep", "--kernels", "ssd", "--isas", "mom", "--ways", "2",
               "--no-cache"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "ssd" in out


def test_kernels_cli_lists_coverage(capsys):
    from repro.exp.cli import main
    rc = main(["kernels"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "blend" in out and "chromakey" in out and "ssd" in out
    # compiled builders are flagged, mirrored hand kernels noted
    assert "vc" in out
    assert "hand (+mirror)" in out
    # MOM covers 16x8 = 128 elements of the motion nest per instruction
    assert "128" in out


# --- IR validation -----------------------------------------------------------

def _map_kernel(expr, buffers=None):
    return LoopKernel(
        name="t", rows=8, cols=8,
        buffers=buffers or (Buffer("a"), Buffer("b"),
                            Buffer("out", out=True)),
        expr=expr)


def test_ir_rejects_missing_out_buffer():
    with pytest.raises(ValueError, match="exactly one out buffer"):
        LoopKernel(name="t", rows=8, cols=8, buffers=(Buffer("a"),),
                   expr=SatU8(Add(Load("a"), Load("a"))))


def test_ir_rejects_unknown_buffer():
    with pytest.raises(ValueError, match="unknown buffer"):
        _map_kernel(SatU8(Add(Load("a"), Load("zzz"))))


def test_ir_rejects_bad_reduction_shape():
    with pytest.raises(ValueError, match="reductions must be"):
        LoopKernel(name="t", rows=8, cols=8,
                   buffers=(Buffer("a"), Buffer("b")),
                   expr=Add(Load("a"), Load("b")), reduce=True)


def test_ir_rejects_same_operand_reduction():
    with pytest.raises(ValueError, match="must differ"):
        LoopKernel(name="t", rows=8, cols=8, buffers=(Buffer("a"),),
                   expr=AbsDiff(Load("a"), Load("a")), reduce=True)


def test_ir_rejects_square_in_map():
    with pytest.raises(ValueError, match="Square is reduce-only"):
        _map_kernel(SatU8(Square(Load("a"))))


def test_ir_rejects_bare_gtu():
    with pytest.raises(ValueError, match="Select mask"):
        _map_kernel(Select(AbsDiff(Load("a"), Load("b")), Load("a"),
                           Load("b")))


def test_ir_rejects_wide_tiles():
    with pytest.raises(ValueError, match="column tiles"):
        LoopKernel(name="t", rows=8, cols=24,
                   buffers=(Buffer("a"), Buffer("out", out=True)),
                   expr=SatU8(Add(Load("a"), Const(1))))


def test_ir_rejects_i16_output():
    with pytest.raises(ValueError, match="outputs must be u8"):
        Buffer("out", elem=I16, out=True)


def test_mom_rejects_deep_nests():
    from repro.vc import compile_kernel
    ir = LoopKernel(
        name="deep", rows=32, cols=8,
        buffers=(Buffer("a"), Buffer("b")),
        expr=Square(Sub(Load("a"), Load("b"))), reduce=True)
    binding = Binding(buffers={
        "a": BufferBinding(np.zeros((32, 8), np.uint8), 8, [0]),
        "b": BufferBinding(np.zeros((32, 8), np.uint8), 8, [0]),
    })
    with pytest.raises(ValueError, match="at most 16 rows"):
        compile_kernel(ir, "mom", binding)


def test_binding_rejects_inconsistent_instances():
    with pytest.raises(ValueError, match="instance counts"):
        Binding(buffers={
            "a": BufferBinding(np.zeros(8, np.uint8), 8, [0, 64]),
            "b": BufferBinding(np.zeros(8, np.uint8), 8, [0]),
        })


def test_nest_bridges_to_coverage_oracle():
    from repro.core.vectorize import coverage_for_isa
    ir = COMPILED["ssd"].ir
    nest = ir.nest(row_stride_bytes=16)
    assert nest.inner_trip == 16 and nest.outer_trip == 16
    assert coverage_for_isa(nest, "mom").elements_per_instruction == 128
    assert coverage_for_isa(nest, "mmx").elements_per_instruction >= 8
    assert coverage_for_isa(nest, "alpha").elements_per_instruction == 1
    mdmx = coverage_for_isa(nest, "mdmx")
    assert mdmx.paradigm == "mdmx"


def test_blend_constants_fold_into_packed_constant_pool():
    """The blend trace materializes broadcast constants, not per-element
    immediates: exactly 3 constant loads in the whole MMX preamble."""
    spec = KERNELS["blend"]
    built = spec.build("mmx", spec.make_workload(1))
    loads = [i for i in built.trace if i.op.name == "mmx_ldq"]
    # 3 constant loads + 2 source tiles per row x 8 rows x instances
    count = len(spec.make_workload(1).src0)
    assert len(loads) == 3 + 2 * 8 * count
