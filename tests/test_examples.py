"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_all_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = Path(__file__).parent.parent / "examples" / script
    proc = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must print their findings"
