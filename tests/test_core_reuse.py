"""Core instances are safely reusable across ``run()`` calls.

Regression for the reuse footgun: ``bpred``/``btb``/``FuPool`` state used
to survive across ``run()`` calls on one instance, so a second run saw
warm predictor tables and stale FU busy horizons and silently diverged
from a fresh core.  ``Core`` now rebuilds that run-scoped state at the
top of every run.

The *memory system* is caller-owned and deliberately not reset -- cache
contents surviving a run is a feature (and perfect-memory port horizons a
documented caller responsibility) -- so these tests swap in a fresh
memsys between runs to isolate exactly the core-owned state.
"""

from repro.cpu import Core, machine_config
from repro.exp.engine import built_kernel
from repro.memsys import ConventionalHierarchy, PerfectMemory

from test_golden_digest import make_memsys, result_digest


def _fresh_digest(kernel, isa, way, memory, trace):
    core = Core(machine_config(way, isa), make_memsys(memory, way, isa))
    return result_digest(core.run(trace))


def test_second_run_matches_fresh_core():
    """Two consecutive run() calls == two fresh cores, per-run digests."""
    for kernel, isa, way, memory in (("idct", "mom", 8, "perfect"),
                                     ("motion2", "mmx", 2, "cache")):
        trace = built_kernel(kernel, isa).trace
        core = Core(machine_config(way, isa), make_memsys(memory, way, isa))
        first = result_digest(core.run(trace))
        core.memsys = make_memsys(memory, way, isa)     # caller-owned state
        second = result_digest(core.run(trace))
        assert first == _fresh_digest(kernel, isa, way, memory, trace)
        assert second == _fresh_digest(kernel, isa, way, memory, trace)
        assert first == second


def test_second_run_different_trace_matches_fresh_core():
    """Reuse across *different* traces must not leak predictor history."""
    isa, way = "mom", 2
    t1 = built_kernel("idct", isa).trace
    t2 = built_kernel("motion2", isa).trace
    core = Core(machine_config(way, isa), PerfectMemory(1, 2, 1))
    core.run(t1)
    core.memsys = PerfectMemory(1, 2, 1)
    reused = result_digest(core.run(t2))
    fresh = result_digest(
        Core(machine_config(way, isa), PerfectMemory(1, 2, 1)).run(t2))
    assert reused == fresh


def test_reference_engine_reuse_matches_fresh_core():
    """The busy-wait oracle resets per run too."""
    isa, way = "alpha", 2
    trace = built_kernel("idct", isa).trace
    core = Core(machine_config(way, isa), ConventionalHierarchy(way))
    core.run_reference(trace)
    core.memsys = ConventionalHierarchy(way)
    reused = result_digest(core.run_reference(trace))
    fresh = result_digest(Core(machine_config(way, isa),
                               ConventionalHierarchy(way)).run_reference(trace))
    assert reused == fresh
