"""BatchCore parity: every lane bit-identical to a fresh ``Core.run``.

The batch engine shares one decode pass -- records, dependence edges,
branch-predictor streams, packed register charges -- across all
configuration lanes, so these tests pin the only thing that matters:
each lane's ``SimResult`` digests identically to running that lane alone
through ``Core``.  Covered: the full golden mini-grid batched per trace,
randomized mixed-lane batches (Table-1 configs x ablation knobs x
perfect-vs-cache memory), duplicate-lane collapsing, ring wrap-around
with artificially small decode blocks, and the unbatchable fallbacks.
"""

import itertools
import random

import pytest

from repro.cpu import Core, machine_config
from repro.cpu.batch import BatchCore, LaneSpec, UnbatchableError
from repro.exp.engine import built_kernel
from repro.memsys import PerfectMemory

from test_golden_digest import (GOLDEN_DIGESTS, grid_points, make_memsys,
                                result_digest)


def _grouped_grid():
    return [(key, list(points)) for key, points in itertools.groupby(
        sorted(grid_points()), key=lambda p: (p[0], p[1]))]


@pytest.mark.parametrize("group,points", _grouped_grid(),
                         ids=lambda v: "-".join(v) if isinstance(v, tuple)
                         and isinstance(v[0], str) else None)
def test_golden_grid_batched_per_trace(group, points):
    """All (way, memory) lanes of one trace in a single batch pass."""
    kernel, isa = group
    trace = built_kernel(kernel, isa).trace
    lanes = [LaneSpec(machine_config(way, isa), make_memsys(mem, way, isa))
             for _, _, way, mem in points]
    results = BatchCore(lanes).run(trace)
    for (k, i, way, mem), result in zip(points, results):
        assert result_digest(result) == GOLDEN_DIGESTS[(k, i, way, mem)], \
            (k, i, way, mem)


KNOB_SPACE = [
    dict(acc_chaining=ac, late_release=lr, zero_idiom_elision=ze)
    for ac in (True, False) for lr in (True, False) for ze in (True, False)
]


def test_mixed_lane_fuzz_matches_per_lane_core():
    """Random lane subsets -- knobs and memory models diverging *within*
    one batch -- each match a fresh per-lane ``Core.run`` digest."""
    rng = random.Random(0xB47C)
    for kernel, isa in (("idct", "mom"), ("motion2", "mom"),
                        ("idct", "mmx"), ("motion2", "alpha")):
        trace = built_kernel(kernel, isa).trace
        memories = ["perfect", "latency50", "cache"]
        if isa == "mom":
            memories += ["vectorcache", "collapsing"]
        pool = [(way, mem, knobs) for way in (2, 8) for mem in memories
                for knobs in KNOB_SPACE]
        picks = rng.sample(pool, 8)
        lanes = [LaneSpec(machine_config(way, isa),
                          make_memsys(mem, way, isa), **knobs)
                 for way, mem, knobs in picks]
        results = BatchCore(lanes).run(trace)
        for (way, mem, knobs), result in zip(picks, results):
            ref = Core(machine_config(way, isa), make_memsys(mem, way, isa),
                       **knobs).run(trace)
            assert result_digest(result) == result_digest(ref), \
                (kernel, isa, way, mem, knobs)


def test_duplicate_perfect_lanes_collapse_and_mirror():
    """Identical perfect-memory lanes run once; mirrors are flagged and
    digest identically to their representative."""
    trace = built_kernel("idct", "mom").trace
    cfg = machine_config(8, "mom")

    def lane():
        return LaneSpec(cfg, PerfectMemory(1, cfg.mem_ports,
                                           cfg.mem_port_width))

    results = BatchCore([lane(), lane(), lane()]).run(trace)
    digests = {result_digest(r) for r in results}
    assert len(digests) == 1
    assert "batch_mirrored" not in results[0].meta
    assert results[1].meta.get("batch_mirrored") is True
    assert results[2].meta.get("batch_mirrored") is True
    assert digests.pop() == GOLDEN_DIGESTS[("idct", "mom", 8, "perfect")]


def test_cache_lanes_never_collapse():
    """Stateful hierarchies must not dedup even when configured equally."""
    lane_a = LaneSpec(machine_config(2, "alpha"),
                      make_memsys("cache", 2, "alpha"))
    lane_b = LaneSpec(machine_config(2, "alpha"),
                      make_memsys("cache", 2, "alpha"))
    assert lane_a.dedup_key() is None and lane_b.dedup_key() is None
    trace = built_kernel("idct", "alpha").trace
    results = BatchCore([lane_a, lane_b]).run(trace)
    assert all("batch_mirrored" not in r.meta for r in results)
    assert result_digest(results[0]) == result_digest(results[1]) \
        == GOLDEN_DIGESTS[("idct", "alpha", 2, "cache")]


def test_ring_wraparound_with_tiny_blocks(monkeypatch):
    """Small decode blocks force many pause/resume rounds and full ring
    wrap-around; timing must be unaffected (pausing is cycle-transparent)."""
    monkeypatch.setattr(BatchCore, "BLOCK", 256)
    monkeypatch.setattr(BatchCore, "RING", 512)
    for kernel, isa, way, mem in (("idct", "alpha", 8, "cache"),
                                  ("motion2", "mmx", 2, "perfect")):
        trace = built_kernel(kernel, isa).trace
        assert len(trace) > 512      # otherwise nothing wraps
        lanes = [LaneSpec(machine_config(way, isa),
                          make_memsys(mem, way, isa))]
        (result,) = BatchCore(lanes).run(trace)
        assert result_digest(result) == GOLDEN_DIGESTS[(kernel, isa, way,
                                                        mem)]


def test_memsys_without_try_issue_is_unbatchable():
    class Weird:
        pass

    with pytest.raises(UnbatchableError):
        BatchCore([LaneSpec(machine_config(2, "alpha"), Weird())])


def test_empty_lane_list_rejected():
    with pytest.raises(ValueError):
        BatchCore([])


def test_plain_pairs_promote_to_lanespec():
    trace = built_kernel("idct", "alpha").trace
    cfg = machine_config(2, "alpha")
    (result,) = BatchCore(
        [(cfg, PerfectMemory(1, cfg.mem_ports, cfg.mem_port_width))]
    ).run(trace)
    assert result_digest(result) == GOLDEN_DIGESTS[("idct", "alpha", 2,
                                                    "perfect")]
